"""Experiment harness: runners, sweeps, and per-figure entry points."""

from repro.harness.experiment import (
    ExperimentRunner,
    RunSummary,
    bench_scale,
    default_runner,
)
from repro.harness.figures import (
    CORE_SWEEP,
    FREQUENCIES_MHZ,
    LOG_SWEEP,
    LOG_SWEEP_FIG12,
    fig1_comparison,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    sec6b_area,
    sec6c_power,
    table1,
    table2,
)

__all__ = [
    "CORE_SWEEP",
    "ExperimentRunner",
    "FREQUENCIES_MHZ",
    "LOG_SWEEP",
    "LOG_SWEEP_FIG12",
    "RunSummary",
    "bench_scale",
    "default_runner",
    "fig1_comparison",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "sec6b_area",
    "sec6c_power",
    "table1",
    "table2",
]
