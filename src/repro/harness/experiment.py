"""Experiment runner with memoised traces and timing runs.

The parameter sweeps of §VI-A re-time the same committed trace under many
configurations (checker frequency, log geometry, core counts).  The runner
caches:

* the functional **trace** per (benchmark, scale) — via the suite registry;
* the **unprotected baseline** per benchmark — the denominators of every
  normalised figure;
* each **detection run** per (benchmark, configuration) — Figure 9 and
  Figure 11 are two views of the same runs, so the second figure is free.

Configurations are frozen dataclasses and hash by value, so equal-valued
configs constructed independently share cache entries.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.config import SystemConfig, default_config
from repro.core.ooo_core import CoreResult
from repro.detection.system import (
    DetectionRunResult,
    run_unprotected,
    run_with_detection,
)
from repro.workloads.suite import BENCHMARK_ORDER, benchmark_trace

#: environment knob: REPRO_BENCH_SCALE=small shrinks every workload for
#: quick smoke runs of the benchmark harness.
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


def bench_scale() -> str:
    """The workload scale the benchmark harness should use."""
    return os.environ.get(SCALE_ENV_VAR, "default")


@dataclass(frozen=True)
class RunSummary:
    """One benchmark × configuration data point."""

    benchmark: str
    slowdown: float
    mean_delay_ns: float
    max_delay_ns: float
    base_cycles: int
    det_cycles: int


class ExperimentRunner:
    """Caches baselines and detection runs across figure regenerations."""

    def __init__(self, scale: str | None = None,
                 config: SystemConfig | None = None) -> None:
        self.scale = scale if scale is not None else bench_scale()
        self.default_cfg = config if config is not None else default_config()
        self._baselines: dict[str, CoreResult] = {}
        self._runs: dict[tuple[str, SystemConfig], DetectionRunResult] = {}

    # -- primitives -----------------------------------------------------------

    def baseline(self, benchmark: str) -> CoreResult:
        """Unprotected main-core timing (cached)."""
        if benchmark not in self._baselines:
            trace = benchmark_trace(benchmark, self.scale)
            self._baselines[benchmark] = run_unprotected(trace, self.default_cfg)
        return self._baselines[benchmark]

    def detection(self, benchmark: str,
                  config: SystemConfig | None = None) -> DetectionRunResult:
        """Detection-attached timing (cached per benchmark × config)."""
        cfg = config if config is not None else self.default_cfg
        key = (benchmark, cfg)
        if key not in self._runs:
            trace = benchmark_trace(benchmark, self.scale)
            self._runs[key] = run_with_detection(trace, cfg)
        return self._runs[key]

    # -- derived ---------------------------------------------------------------

    def summary(self, benchmark: str,
                config: SystemConfig | None = None) -> RunSummary:
        base = self.baseline(benchmark)
        det = self.detection(benchmark, config)
        return RunSummary(
            benchmark=benchmark,
            slowdown=det.main_cycles / base.cycles,
            mean_delay_ns=det.report.mean_delay_ns(),
            max_delay_ns=det.report.max_delay_ns(),
            base_cycles=base.cycles,
            det_cycles=det.main_cycles,
        )

    def sweep(self, configs: list[SystemConfig],
              benchmarks: list[str] | None = None,
              ) -> dict[str, list[RunSummary]]:
        """Run every benchmark under every configuration.

        Returns ``{benchmark: [summary per config, in order]}``.
        """
        names = benchmarks if benchmarks is not None else list(BENCHMARK_ORDER)
        return {
            name: [self.summary(name, cfg) for cfg in configs]
            for name in names
        }


_DEFAULT_RUNNER: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """A process-wide shared runner, so figure benchmarks share runs."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None or _DEFAULT_RUNNER.scale != bench_scale():
        _DEFAULT_RUNNER = ExperimentRunner()
    return _DEFAULT_RUNNER
