"""Experiment runner: a figure-harness façade over the campaign engine.

The parameter sweeps of §VI-A re-time the same committed trace under many
configurations (checker frequency, log geometry, core counts).  Every run
is submitted as a :class:`~repro.harness.campaign.JobSpec` through a
:class:`~repro.harness.campaign.CampaignEngine`, which provides

* in-memory memoisation (Figure 9 and Figure 11 are two views of the
  same runs, so the second figure is free),
* optional **on-disk caching** (regenerating a figure tomorrow replays
  today's runs from the cache with zero re-executions), and
* optional **parallel execution** across a worker pool — ``sweep()``
  submits its whole grid in one batch so the engine can fan it out.

Configurations are frozen dataclasses and hash by value, so equal-valued
configs constructed independently share cache entries.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.config import SystemConfig, default_config
from repro.common.records import RunRecord, RunSummary, SchemeRunResult, \
    record_from_dict
from repro.common.stats import Samples
from repro.detection.system import DetectionReport
from repro.harness.campaign import CampaignEngine, JobSpec
from repro.workloads.suite import BENCHMARK_ORDER

#: environment knob: REPRO_BENCH_SCALE=small shrinks every workload for
#: quick smoke runs of the benchmark harness.
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


def bench_scale() -> str:
    """The workload scale the benchmark harness should use."""
    return os.environ.get(SCALE_ENV_VAR, "default")


@dataclass(frozen=True)
class DetectionRunView:
    """A detection run reconstituted from its campaign record.

    Mirrors the parts of :class:`repro.detection.system.DetectionRunResult`
    the harness consumes: cycle counts plus a full
    :class:`~repro.detection.system.DetectionReport` (delay samples,
    closure accounting, stall breakdown).  Fault-free timing runs carry
    no events, so ``report.events`` is always empty here.
    """

    record: RunRecord
    report: DetectionReport

    @property
    def main_cycles(self) -> int:
        return self.record.main_cycles

    @property
    def system_cycles(self) -> int:
        return self.record.system_cycles

    @classmethod
    def from_record(cls, record: RunRecord) -> "DetectionRunView":
        delays = Samples()
        delays.extend(list(record.delays_ns))
        report = DetectionReport(
            delays_ns=delays,
            segments_checked=record.segments_checked,
            entries_checked=record.entries_checked,
            closes_by_reason=dict(record.closes_by_reason),
            log_full_stall_cycles=record.log_full_stall_cycles,
            checkpoint_stall_cycles=record.checkpoint_stall_cycles,
            checkpoints_taken=record.checkpoints_taken,
            checker_busy_ticks=list(record.checker_busy_ticks),
            all_checks_done_tick=record.all_checks_done_tick,
        )
        return cls(record=record, report=report)


class ExperimentRunner:
    """Caches baselines and detection runs across figure regenerations."""

    def __init__(self, scale: str | None = None,
                 config: SystemConfig | None = None,
                 engine: CampaignEngine | None = None,
                 workers: int = 1,
                 cache_dir: str | None = None) -> None:
        self.scale = scale if scale is not None else bench_scale()
        self.default_cfg = config if config is not None else default_config()
        self.engine = engine if engine is not None else CampaignEngine(
            workers=workers, cache_dir=cache_dir)
        self._baselines: dict[str, SchemeRunResult] = {}
        self._runs: dict[tuple[str, SystemConfig], DetectionRunView] = {}

    # -- job plumbing ---------------------------------------------------------

    def _baseline_spec(self, benchmark: str) -> JobSpec:
        return JobSpec("baseline", benchmark, self.scale, self.default_cfg)

    def _detection_spec(self, benchmark: str, cfg: SystemConfig) -> JobSpec:
        return JobSpec("detection", benchmark, self.scale, cfg)

    def _submit_one(self, spec: JobSpec):
        return record_from_dict(self.engine.run([spec]).records[0])

    # -- primitives -----------------------------------------------------------

    def baseline(self, benchmark: str) -> SchemeRunResult:
        """Unprotected main-core timing (cached): the ``unprotected``
        scheme's record, whose ``cycles`` is the normalisation base."""
        if benchmark not in self._baselines:
            self._baselines[benchmark] = self._submit_one(
                self._baseline_spec(benchmark))
        return self._baselines[benchmark]

    def detection(self, benchmark: str,
                  config: SystemConfig | None = None) -> DetectionRunView:
        """Detection-attached timing (cached per benchmark × config)."""
        cfg = config if config is not None else self.default_cfg
        key = (benchmark, cfg)
        if key not in self._runs:
            self._runs[key] = DetectionRunView.from_record(
                self._submit_one(self._detection_spec(benchmark, cfg)))
        return self._runs[key]

    # -- derived ---------------------------------------------------------------

    def summary(self, benchmark: str,
                config: SystemConfig | None = None) -> RunSummary:
        base = self.baseline(benchmark)
        det = self.detection(benchmark, config)
        return RunSummary(
            benchmark=benchmark,
            slowdown=det.main_cycles / base.cycles,
            mean_delay_ns=det.report.mean_delay_ns(),
            max_delay_ns=det.report.max_delay_ns(),
            base_cycles=base.cycles,
            det_cycles=det.main_cycles,
        )

    def sweep(self, configs: list[SystemConfig],
              benchmarks: list[str] | None = None,
              ) -> dict[str, list[RunSummary]]:
        """Run every benchmark under every configuration.

        The whole grid is submitted to the engine in one batch, so a
        parallel engine overlaps the cells; results come back through
        the same per-runner memo as single-cell queries.

        Returns ``{benchmark: [summary per config, in order]}``.
        """
        names = benchmarks if benchmarks is not None else list(BENCHMARK_ORDER)
        specs = [self._baseline_spec(name) for name in names
                 if name not in self._baselines]
        specs += [self._detection_spec(name, cfg)
                  for name in names for cfg in configs
                  if (name, cfg) not in self._runs]
        if specs:
            # warm the engine memo; summary() below is then pure assembly
            self.engine.run(specs)
        return {
            name: [self.summary(name, cfg) for cfg in configs]
            for name in names
        }


_DEFAULT_RUNNER: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """A process-wide shared runner, so figure benchmarks share runs.

    Rebuilt whenever the requested scale *or* the default configuration
    changes — a stale runner must never keep serving runs timed under a
    configuration that is no longer the default.
    """
    global _DEFAULT_RUNNER
    scale = bench_scale()
    cfg = default_config()
    if (_DEFAULT_RUNNER is None
            or _DEFAULT_RUNNER.scale != scale
            or _DEFAULT_RUNNER.default_cfg != cfg):
        _DEFAULT_RUNNER = ExperimentRunner(scale=scale, config=cfg)
    return _DEFAULT_RUNNER
