"""Parallel campaign engine with an on-disk run cache.

A **campaign** is a declarative grid of jobs — (benchmark, scale,
:class:`~repro.common.config.SystemConfig`, fault/interrupt scenario)
tuples — executed through a :class:`CampaignEngine` that

* **shards deterministically** across a ``multiprocessing`` worker pool:
  job *i* of the pending set goes to shard ``i % workers``, and results
  are reassembled in submission order, so worker count never changes
  what a campaign produces, only how fast;
* **caches results content-addressed on disk**: every job has a stable
  key — the SHA-256 of its canonical JSON description (kind, protection
  scheme, benchmark, scale, the full config tree, the fault/interrupt
  scenario, and a schema version bumped whenever record semantics
  change) — and a warm cache replays a figure regeneration or fault
  campaign with zero re-executions;
* **deduplicates** identical jobs within one submission (a sweep that
  names the same config twice executes it once).

Everything a job produces is a serialisable record from
:mod:`repro.common.records`; the full simulation objects never cross a
process or cache boundary.

Scaling beyond one process pool is the job of the orchestration layer
above this one: :mod:`repro.harness.manifest` materialises a grid as an
on-disk manifest and :mod:`repro.harness.orchestrator` lets any number
of worker processes (on any hosts sharing the directory) lease jobs
from it — all of them executing through the same :func:`execute_job`
and writing into the same :class:`RunCache`.  The static
:meth:`CampaignGrid.shard` round-robin split remains as the manual
compatibility path for environments without a shared directory.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.common.config import SystemConfig, default_config
from repro.common.records import (
    CoverageRecord,
    FaultBatchRecord,
    RecoveryRecord,
    RunRecord,
    SchemeRunResult,
    canonical_json,
    record_from_dict,
    record_to_dict,
)
from repro.common.rng import derive
from repro.core.timing import TIMING_MODES, timing_mode
from repro.core.timing import config_key as timing_config_key
from repro.detection.faults import FaultSite, TransientFault
from repro.detection.system import run_with_detection
from repro.schemes import get_scheme, scheme_names
from repro.schemes.base import ProtectionScheme
# re-exported from its historical home here; the definition moved to the
# scheme layer alongside its consumers
from repro.schemes.base import architecturally_masked as architecturally_masked
from repro.workloads.suite import benchmark_trace, configure_trace_store
from repro.workloads.trace_store import sweep_stale_temps

#: Bump whenever job execution or record layout changes meaning: every
#: cached result carries it, so stale caches read as misses, never as
#: silently wrong data.  v2: jobs carry a protection-scheme name, and
#: baseline/fault/recovery records gained scheme fields.  v3: the
#: execution core is columnar with pre-decoded dispatch and clean traces
#: flow through the shared golden-trace store (whose envelopes carry
#: their own schema) — results are re-keyed against the new pipeline.
#: v4: fault/recovery jobs execute through the fork-point path (golden
#: prefix spliced at the earliest fault, pre-fork segments checked by
#: column comparison) and golden envelopes carry state keyframes —
#: byte-identical records by construction, re-keyed all the same so a
#: fork-path defect can never be masked by pre-fork cached results.
#: v5: the ``fault-batch`` job kind (a whole fault grid cell per job,
#: one shared fork cursor over one golden trace), specs carry a
#: ``faults`` tuple, and golden envelopes are binary columnar (store
#: schema 3) — per-fault records stay byte-identical, but the spec
#: description grew a field, so every key changes.
#: v6: specs carry a ``timing`` mode (``cycle`` re-times every run on
#: the OoO model, ``interval`` estimates from the golden timing record),
#: golden envelopes carry per-config timing columns (store schema 4),
#: and detection-scheme fault jobs splice the pre-fork golden timing —
#: ``cycle`` records stay byte-identical, but interval records are a
#: genuinely different estimator, so the mode is part of every key.
#: v7: detection-scheme fault batches schedule one shared timing-splice
#: cursor per cell (snapshots at the sorted fork seqs, golden prefix
#: timed once per cell), forks are explicit flat snapshots instead of
#: deepcopy, and pre-fork segment checks are memoised — all pinned
#: byte-identical, but ``fault-batch`` is now gated on the scheme's
#: ``supports_fault_batch`` capability, so the envelope is re-keyed
#: against the capability-checked pipeline.
CACHE_SCHEMA_VERSION = 7

#: Subdirectory of a cache root holding the shared golden-trace store
#: (two-character key prefixes can never collide with it).
TRACE_STORE_DIRNAME = "traces"

#: Job kinds the engine knows how to execute.
JOB_KINDS = ("baseline", "detection", "fault", "fault-batch", "recovery")

#: Default scheme per job kind when a spec does not name one: timing
#: baselines default to the unprotected core; everything else to the
#: paper's detection scheme (the pre-registry behaviour).
DEFAULT_SCHEMES = {"baseline": "unprotected"}

#: The six architecturally visible main-core fault sites of the §IV-I
#: coverage campaigns (PC faults are exercised separately).
CAMPAIGN_SITES = (
    FaultSite.RESULT, FaultSite.LOAD_VALUE, FaultSite.LOAD_ADDR,
    FaultSite.STORE_VALUE, FaultSite.STORE_ADDR, FaultSite.BRANCH,
)


def config_fingerprint(config: SystemConfig) -> str:
    """Stable content hash of a full system configuration.

    Delegates to :func:`repro.core.timing.config_key` so campaign
    records and golden timing records address configurations by the
    same key — a record's ``config_key`` can be looked up directly in a
    trace's timing sections.
    """
    return timing_config_key(config)


def unique_suffix() -> str:
    """Collision-proof token for temp/reap file names in directories
    shared between hosts (pid alone is not unique across hosts)."""
    return f"{os.getpid()}-{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class JobSpec:
    """One unit of campaign work, hashable and picklable.

    Equal-valued specs are the same job: they share a cache entry and
    execute at most once per campaign.
    """

    kind: str
    benchmark: str
    scale: str = "small"
    config: SystemConfig = field(default_factory=default_config)
    fault: TransientFault | None = None
    #: the whole fault cell of a ``fault-batch`` job, in record order
    faults: tuple[TransientFault, ...] = ()
    interrupt_seqs: tuple[int, ...] = ()
    #: protection-scheme registry name; empty resolves to the kind's
    #: default (:data:`DEFAULT_SCHEMES`) so pre-registry call sites keep
    #: naming the same jobs
    scheme: str = ""
    #: timing model the job runs under: ``cycle`` (the OoO model, exact)
    #: or ``interval`` (calibrated estimate from the golden timing
    #: record; see :mod:`repro.core.timing`)
    timing: str = "cycle"

    def __post_init__(self) -> None:
        if not self.scheme:
            object.__setattr__(
                self, "scheme", DEFAULT_SCHEMES.get(self.kind, "detection"))
        if self.timing not in TIMING_MODES:
            raise ValueError(f"unknown timing mode {self.timing!r}; "
                             f"one of {TIMING_MODES} expected")

    def describe(self) -> dict:
        """The canonical description hashed into the cache key."""
        def describe_fault(fault: TransientFault) -> dict:
            payload = asdict(fault)
            payload["site"] = fault.site.value
            return payload

        return {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": self.kind,
            "scheme": self.scheme,
            "benchmark": self.benchmark,
            "scale": self.scale,
            "config": asdict(self.config),
            "fault": (describe_fault(self.fault)
                      if self.fault is not None else None),
            "faults": [describe_fault(fault) for fault in self.faults],
            "interrupt_seqs": list(self.interrupt_seqs),
            "timing": self.timing,
        }

    def key(self) -> str:
        return hashlib.sha256(
            canonical_json(self.describe()).encode()).hexdigest()


# -- job execution (runs inside worker processes) ---------------------------

def _run_record(spec: JobSpec, config_key: str, result) -> RunRecord:
    report = result.report
    return RunRecord(
        benchmark=spec.benchmark,
        scale=spec.scale,
        config_key=config_key,
        main_cycles=result.main_cycles,
        system_cycles=result.system_cycles,
        instructions=result.core.instructions,
        delays_ns=tuple(report.delays_ns.values),
        segments_checked=report.segments_checked,
        entries_checked=report.entries_checked,
        closes_by_reason=tuple(sorted(report.closes_by_reason.items())),
        checkpoints_taken=report.checkpoints_taken,
        checkpoint_stall_cycles=report.checkpoint_stall_cycles,
        log_full_stall_cycles=report.log_full_stall_cycles,
        checker_busy_ticks=tuple(report.checker_busy_ticks),
        all_checks_done_tick=report.all_checks_done_tick,
        detected=report.detected,
    )


def _timing_record(spec: JobSpec, scheme: ProtectionScheme,
                   config_key: str) -> SchemeRunResult:
    """A ``baseline``-kind job: time the benchmark under ``scheme``."""
    trace = benchmark_trace(spec.benchmark, spec.scale)
    timing = scheme.time(trace, spec.config)
    summary = scheme.overheads(timing, spec.config)
    return SchemeRunResult(
        scheme=scheme.name,
        benchmark=spec.benchmark,
        scale=spec.scale,
        config_key=config_key,
        cycles=timing.cycles,
        base_cycles=timing.base_cycles,
        instructions=timing.instructions,
        system_cycles=timing.system_cycles,
        slowdown=summary.slowdown,
        detection_latency_ns=summary.detection_latency_ns,
        area_overhead=summary.area_overhead,
        energy_overhead=summary.energy_overhead,
        detects_faults=scheme.detects_faults,
        covers_hard_faults=scheme.covers_hard_faults,
        supports_recovery=scheme.supports_recovery,
    )


def _detection_record(spec: JobSpec, scheme: ProtectionScheme,
                      config_key: str) -> RunRecord:
    """A ``detection``-kind job: the paper scheme's *rich* fault-free run
    (delay distribution, closure accounting, stall breakdown).  Other
    schemes have no detection report; time them with ``baseline`` jobs."""
    if spec.scheme != "detection":
        raise ValueError(
            f"kind 'detection' needs the 'detection' scheme's report; "
            f"got scheme {spec.scheme!r} (use kind 'baseline' to time it)")
    trace = benchmark_trace(spec.benchmark, spec.scale)
    result = run_with_detection(
        trace, spec.config,
        interrupt_seqs=list(spec.interrupt_seqs) or None)
    return _run_record(spec, config_key, result)


def _coverage_record(spec: JobSpec, scheme: ProtectionScheme,
                     config_key: str, fault: TransientFault,
                     verdict) -> CoverageRecord:
    """One classified trial as a record — shared verbatim by the
    per-fault and batch executors, so their records cannot drift."""
    return CoverageRecord(
        scheme=scheme.name,
        benchmark=spec.benchmark,
        scale=spec.scale,
        config_key=config_key,
        site=fault.site.value,
        seq=fault.seq,
        bit=fault.bit,
        activated=verdict.activated,
        outcome=verdict.outcome,
        detect_latency_us=verdict.detect_latency_us,
        first_error_segment=verdict.first_error_segment,
        first_error_entry=verdict.first_error_entry,
    )


def _fault_record(spec: JobSpec, scheme: ProtectionScheme,
                  config_key: str) -> CoverageRecord:
    fault = spec.fault
    clean = benchmark_trace(spec.benchmark, spec.scale)
    verdict = scheme.inject(clean, spec.config, fault,
                            interrupt_seqs=spec.interrupt_seqs)
    return _coverage_record(spec, scheme, config_key, fault, verdict)


def _fault_batch_record(spec: JobSpec, scheme: ProtectionScheme,
                        config_key: str) -> FaultBatchRecord:
    """A ``fault-batch`` job: one grid cell of faults, one golden trace,
    one fork cursor (see :meth:`ProtectionScheme.inject_batch`).

    The nested per-fault dicts are exactly what the same faults would
    produce as individual ``fault`` jobs — pinned by tests, so batch
    campaigns remain flattenable and comparable against per-job runs.
    """
    if not spec.faults:
        raise ValueError("fault-batch job carries an empty fault cell")
    if not scheme.supports_fault_batch:
        # grids validate this at build time; manifest-delivered specs are
        # re-checked here, in whichever worker the job lands in
        raise ValueError(
            f"scheme {scheme.name!r} does not support fault-batch jobs")
    clean = benchmark_trace(spec.benchmark, spec.scale)
    verdicts = scheme.inject_batch(clean, spec.config, spec.faults,
                                   interrupt_seqs=spec.interrupt_seqs)
    return FaultBatchRecord(
        benchmark=spec.benchmark,
        scale=spec.scale,
        config_key=config_key,
        records=tuple(
            record_to_dict(
                _coverage_record(spec, scheme, config_key, fault, verdict))
            for fault, verdict in zip(spec.faults, verdicts)),
        scheme=scheme.name,
    )


def _recovery_record(spec: JobSpec, scheme: ProtectionScheme,
                     config_key: str) -> RecoveryRecord:
    if not scheme.supports_recovery:
        raise ValueError(
            f"scheme {scheme.name!r} does not support recovery campaigns")
    fault = spec.fault
    clean = benchmark_trace(spec.benchmark, spec.scale)
    # the helper takes the fork-point path when the scheme supports it:
    # byte-identical to a full re-execution, minus the clean prefix
    injector, faulty = scheme.faulty_trace(clean, fault)
    if not injector.activations:
        return RecoveryRecord(
            benchmark=spec.benchmark, scale=spec.scale, config_key=config_key,
            site=fault.site.value, seq=fault.seq, bit=fault.bit,
            activated=False, detected=False, rollback_seq=None,
            replayed_instructions=0, recovered=False, state_correct=False,
            trace_len=len(clean), scheme=scheme.name)
    outcome = scheme.recover(faulty, spec.config)
    return RecoveryRecord(
        benchmark=spec.benchmark, scale=spec.scale, config_key=config_key,
        site=fault.site.value, seq=fault.seq, bit=fault.bit,
        activated=True, detected=outcome.detected,
        rollback_seq=outcome.rollback_seq,
        replayed_instructions=outcome.replayed_instructions,
        recovered=outcome.recovered, state_correct=outcome.state_correct,
        trace_len=len(clean), scheme=scheme.name)


#: kind → executor; each executor receives the spec, its resolved scheme
#: instance, and the config fingerprint.
_KIND_EXECUTORS = {
    "baseline": _timing_record,
    "detection": _detection_record,
    "fault": _fault_record,
    "fault-batch": _fault_batch_record,
    "recovery": _recovery_record,
}


def execute_job(spec: JobSpec) -> dict:
    """Execute one job and return its record as a plain dict.

    This is the single execution entry point shared by serial runs and
    pool workers; the scheme named by the spec is resolved through the
    registry here, in whichever process the job lands in.  Per-process
    trace caches in the suite registry keep repeated jobs on the same
    benchmark cheap within one worker.
    """
    try:
        executor = _KIND_EXECUTORS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown job kind {spec.kind!r}; "
                         f"one of {JOB_KINDS} expected") from None
    scheme = get_scheme(spec.scheme)
    config_key = config_fingerprint(spec.config)
    # the spec's timing mode governs the whole job; the env override
    # (REPRO_TIMING_MODE) still wins inside resolve_timing_mode, so one
    # setting can force a whole campaign back to the cycle model
    with timing_mode(spec.timing):
        return record_to_dict(executor(spec, scheme, config_key))


def _execute_shard(payload: tuple[str | None, list[tuple[int, JobSpec]]],
                   ) -> list[tuple[int, dict]]:
    """Worker entry: execute one shard, tagging results with job indices.

    ``payload`` carries the golden-trace store root alongside the jobs so
    pool children (including spawn-start ones) share the parent's store.
    """
    store_root, items = payload
    if store_root is not None:
        configure_trace_store(store_root)
    return [(index, execute_job(spec)) for index, spec in items]


# -- the on-disk cache -------------------------------------------------------

class RunCache:
    """Content-addressed result store: ``<root>/<key[:2]>/<key>.json``.

    Files are canonical-JSON envelopes ``{key, schema, record}`` written
    atomically (temp file + rename), so a campaign killed mid-write never
    leaves a corrupt entry behind — unreadable or mismatched files read
    as misses and are re-executed.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: crash-stranded ``*.tmp.*`` files removed at init (a worker
        #: killed between temp write and rename leaks one; anything
        #: older than a lease TTL cannot belong to a live writer).  The
        #: trace store nested under this root sweeps its own buckets.
        self.stale_temps_swept = sweep_stale_temps(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @staticmethod
    def _valid(envelope: object, key: str) -> bool:
        return (isinstance(envelope, dict)
                and envelope.get("key") == key
                and envelope.get("schema") == CACHE_SCHEMA_VERSION
                and isinstance(envelope.get("record"), dict))

    def _load(self, key: str) -> dict | None:
        """Read and validate one envelope; no hit/miss accounting."""
        try:
            envelope = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            return None
        if not self._valid(envelope, key):
            return None
        return envelope["record"]

    @staticmethod
    def etag(key: str) -> str:
        """The strong HTTP entity tag of ``key``'s record.

        The store is content-addressed and envelopes are canonical JSON,
        so the content key *is* the entity: two envelopes with the same
        key and schema are byte-identical by construction.  The schema
        version is folded in because a schema bump changes the envelope
        bytes for the same key.
        """
        return f'"{CACHE_SCHEMA_VERSION}-{key}"'

    def read_envelope(self, key: str) -> bytes | None:
        """The raw canonical envelope bytes of a valid entry, or None.

        This is the record-serving accessor: callers that put envelopes
        on the wire (``GET /records/{key}``) get exactly the bytes on
        disk, so an HTTP fetch and a direct cache read can never differ.
        """
        try:
            data = self._path(key).read_bytes()
        except OSError:
            return None
        try:
            envelope = json.loads(data)
        except ValueError:
            return None
        if not self._valid(envelope, key):
            return None
        return data

    def get(self, key: str) -> dict | None:
        record = self._load(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def has(self, key: str) -> bool:
        """Whether a valid record exists, without perturbing the hit/miss
        counters — manifest state scans poll doneness far more often than
        the engine actually consumes records."""
        return self._load(key) is not None

    def put(self, key: str, record: dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = canonical_json(
            {"key": key, "schema": CACHE_SCHEMA_VERSION, "record": record})
        # concurrent same-key writers (the documented lease-reap race)
        # must not trample each other's temp files
        tmp = path.with_suffix(f".tmp.{unique_suffix()}")
        tmp.write_text(envelope)
        os.replace(tmp, path)
        self.writes += 1


# -- grids -------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignGrid:
    """A declarative, ordered set of campaign jobs."""

    jobs: tuple[JobSpec, ...]

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    def shard(self, index: int, count: int) -> "CampaignGrid":
        """Deterministic round-robin sub-grid ``index`` of ``count``.

        Shards partition the grid: running every shard (on any machine,
        in any order) against a shared cache covers exactly the full
        campaign.

        This is the *static* fan-out compatibility path: every shard
        must be launched (and relaunched after a crash) by hand, and a
        slow shard cannot be helped by a fast one.  Manifest-driven
        campaigns (:mod:`repro.harness.orchestrator`) supersede it with
        work-stealing leases wherever workers can share a directory.
        """
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} outside 0..{count - 1}")
        return CampaignGrid(self.jobs[index::count])


def detection_grid(benchmarks: Sequence[str],
                   configs: Sequence[SystemConfig],
                   scale: str = "small",
                   include_baselines: bool = True,
                   scheme: str = "detection") -> CampaignGrid:
    """The figure-sweep grid: every benchmark under every configuration,
    plus the unprotected baselines the slowdown normalisation needs.

    For the paper scheme the per-config cells are rich ``detection``
    runs; any other registered scheme gets uniform ``baseline`` timing
    jobs under the same configurations.
    """
    jobs: list[JobSpec] = []
    if include_baselines:
        base_cfg = configs[0] if configs else default_config()
        jobs.extend(JobSpec("baseline", name, scale, base_cfg)
                    for name in benchmarks)
    kind = "detection" if scheme == "detection" else "baseline"
    jobs.extend(JobSpec(kind, name, scale, cfg, scheme=scheme)
                for name in benchmarks for cfg in configs)
    return CampaignGrid(tuple(jobs))


def scheme_grid(benchmarks: Sequence[str],
                schemes: Sequence[str] | None = None,
                scale: str = "small",
                config: SystemConfig | None = None) -> CampaignGrid:
    """The cross-scheme comparison grid (Figure 1(d)): one timing job
    per registered scheme × benchmark, all under the same configuration.
    ``schemes=None`` sweeps the whole registry."""
    cfg = config if config is not None else default_config()
    names = tuple(schemes) if schemes is not None else scheme_names()
    for scheme in names:
        get_scheme(scheme)  # unknown names fail at grid build, not in a worker
    return CampaignGrid(tuple(
        JobSpec("baseline", bench, scale, cfg, scheme=scheme)
        for scheme in names for bench in benchmarks))


def fault_grid(benchmarks: Sequence[str],
               trials: int,
               sites: Sequence[FaultSite] = CAMPAIGN_SITES,
               scale: str = "small",
               config: SystemConfig | None = None,
               seed: int = 0,
               kind: str = "fault",
               scheme: str = "detection",
               timing: str = "cycle") -> CampaignGrid:
    """A fault-injection grid: ``trials`` jobs per benchmark, cycling
    through ``sites``, with fault positions drawn from a per-benchmark
    deterministic stream (so the grid is a pure function of its
    arguments and caches are stable across invocations).

    The fault stream deliberately ignores ``scheme``: the same seed
    gives every scheme the identical fault set, so cross-scheme coverage
    and latency comparisons are apples-to-apples.

    Fault positions need each benchmark's dynamic trace length, so grid
    construction performs one functional execution per benchmark in the
    submitting process (memoised per process by the suite registry) —
    cheap next to the timing runs, but not free on a fully warm cache.
    """
    cfg = config if config is not None else default_config()
    get_scheme(scheme)
    jobs = []
    for name in benchmarks:
        clean_len = len(benchmark_trace(name, scale))
        rng = derive(seed, f"campaign:{kind}:{name}")
        for trial in range(trials):
            site = sites[trial % len(sites)]
            fault = TransientFault(
                site,
                seq=rng.randrange(10, clean_len - 10),
                bit=rng.randrange(0, 48))
            jobs.append(JobSpec(kind, name, scale, cfg, fault=fault,
                                scheme=scheme, timing=timing))
    return CampaignGrid(tuple(jobs))


def fault_batch_grid(benchmarks: Sequence[str],
                     trials: int,
                     batch_size: int = 50,
                     sites: Sequence[FaultSite] = CAMPAIGN_SITES,
                     scale: str = "small",
                     config: SystemConfig | None = None,
                     seed: int = 0,
                     scheme: str = "detection",
                     timing: str = "cycle") -> CampaignGrid:
    """The batched counterpart of :func:`fault_grid`: the *same* fault
    stream (same seed → the identical fault set, fault for fault, as a
    ``kind="fault"`` grid), chunked into ``fault-batch`` jobs of up to
    ``batch_size`` faults per cell.

    One batch job amortises fork-state reconstruction and per-job
    overhead across its whole cell; its record flattens into per-fault
    records byte-identical to the unbatched grid's.
    """
    if batch_size < 1:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    cfg = config if config is not None else default_config()
    if not get_scheme(scheme).supports_fault_batch:
        raise ValueError(
            f"scheme {scheme!r} does not support fault-batch jobs")
    jobs = []
    for name in benchmarks:
        clean_len = len(benchmark_trace(name, scale))
        # the same stream fault_grid draws from: batching must not
        # change which faults a campaign injects
        rng = derive(seed, f"campaign:fault:{name}")
        faults = []
        for trial in range(trials):
            site = sites[trial % len(sites)]
            faults.append(TransientFault(
                site,
                seq=rng.randrange(10, clean_len - 10),
                bit=rng.randrange(0, 48)))
        for lo in range(0, len(faults), batch_size):
            jobs.append(JobSpec(
                "fault-batch", name, scale, cfg,
                faults=tuple(faults[lo:lo + batch_size]), scheme=scheme,
                timing=timing))
    return CampaignGrid(tuple(jobs))


def recovery_grid(benchmarks: Sequence[str],
                  trials: int,
                  scale: str = "small",
                  config: SystemConfig | None = None,
                  seed: int = 0,
                  site: FaultSite = FaultSite.STORE_VALUE,
                  bit: int = 5,
                  scheme: str = "detection") -> CampaignGrid:
    """Rollback-recovery trials: one late-striking fault per job.

    Only schemes with ``supports_recovery`` can run these; the check
    happens here so an unsupported scheme fails at grid construction
    rather than deep inside a worker process.
    """
    cfg = config if config is not None else default_config()
    if not get_scheme(scheme).supports_recovery:
        raise ValueError(
            f"scheme {scheme!r} does not support recovery campaigns")
    jobs = []
    for name in benchmarks:
        clean_len = len(benchmark_trace(name, scale))
        rng = derive(seed, f"campaign:recovery:{name}")
        for _ in range(trials):
            fault = TransientFault(
                site, seq=rng.randrange(clean_len // 4, clean_len - 10),
                bit=bit)
            jobs.append(JobSpec("recovery", name, scale, cfg, fault=fault,
                                scheme=scheme))
    return CampaignGrid(tuple(jobs))


# -- the engine --------------------------------------------------------------

@dataclass
class CampaignResult:
    """Outcome of one engine submission, in submission order."""

    jobs: tuple[JobSpec, ...]
    keys: tuple[str, ...]
    records: tuple[dict, ...]
    #: jobs actually simulated in this submission (unique pending keys)
    executed: int
    #: job slots not simulated: served from the in-memory memo or the
    #: on-disk cache, or duplicates of a job executed in this submission
    #: (``executed + cached == len(jobs)`` always)
    cached: int

    def __len__(self) -> int:
        return len(self.jobs)

    def typed_records(self) -> list:
        return [record_from_dict(r) for r in self.records]

    def records_json(self) -> str:
        """Canonical JSON of all records — the byte-identity artefact."""
        return canonical_json(list(self.records))


class CampaignEngine:
    """Executes job grids: dedupe → cache lookup → sharded pool → store.

    ``workers=1`` runs everything in-process (no pool, fully serial);
    any higher count fans pending jobs out round-robin.  Results are
    independent of ``workers`` by construction: each job is a pure
    function of its spec.
    """

    def __init__(self, workers: int = 1,
                 cache_dir: str | os.PathLike | None = None,
                 trace_store_dir: str | os.PathLike | None = None) -> None:
        self.workers = max(1, int(workers))
        self.cache = RunCache(cache_dir) if cache_dir is not None else None
        #: golden-trace store root: explicit, or derived from the cache
        #: directory (``<cache>/traces``) so cached campaigns share clean
        #: executions across processes exactly like they share results
        if trace_store_dir is None and cache_dir is not None:
            trace_store_dir = Path(cache_dir) / TRACE_STORE_DIRNAME
        self.trace_store_dir = (str(trace_store_dir)
                                if trace_store_dir is not None else None)
        self._memo: dict[str, dict] = {}

    def run(self, jobs: Iterable[JobSpec]) -> CampaignResult:
        if self.trace_store_dir is not None:
            configure_trace_store(self.trace_store_dir)
        specs = tuple(jobs)
        keys = tuple(spec.key() for spec in specs)
        records: list[dict | None] = [None] * len(specs)

        # cache pass: memo first (free), then disk
        pending: dict[str, list[int]] = {}
        for i, key in enumerate(keys):
            record = self._memo.get(key)
            if record is None and self.cache is not None:
                record = self.cache.get(key)
                if record is not None:
                    self._memo[key] = record
            if record is not None:
                records[i] = record
            else:
                pending.setdefault(key, []).append(i)

        # execute each unique pending job exactly once; duplicate slots
        # count as cached so executed + cached == len(specs)
        unique = [(positions[0], key) for key, positions in pending.items()]
        cached = len(specs) - len(unique)
        fresh: dict[str, dict] = {}
        if unique:
            indexed = [(i, specs[pos]) for i, (pos, _key) in enumerate(unique)]
            if self.workers == 1 or len(indexed) == 1:
                outputs = _execute_shard((self.trace_store_dir, indexed))
            else:
                shards = [(self.trace_store_dir, indexed[w::self.workers])
                          for w in range(self.workers)]
                shards = [s for s in shards if s[1]]
                with multiprocessing.Pool(len(shards)) as pool:
                    outputs = [item for shard_out
                               in pool.map(_execute_shard, shards)
                               for item in shard_out]
            for i, record in outputs:
                fresh[unique[i][1]] = record

        for key, record in fresh.items():
            self._memo[key] = record
            if self.cache is not None:
                self.cache.put(key, record)
            for i in pending[key]:
                records[i] = record

        return CampaignResult(
            jobs=specs, keys=keys, records=tuple(records),
            executed=len(unique), cached=cached)
