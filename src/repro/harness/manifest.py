"""On-disk campaign manifests: the shared ground truth of a distributed run.

A manifest materialises one campaign grid as a directory that any number
of worker processes — on one host or on many hosts sharing the directory
(NFS, a synced volume, a CI workspace) — can cooperate on:

::

    <dir>/manifest.json   header + every job slot (key + canonical spec)
    <dir>/cache/          content-addressed results (RunCache layout)
    <dir>/leases/         one atomic lease file per in-flight job
    <dir>/failed/         one failure envelope per permanently failed job
    <dir>/traces/         shared golden-trace store (columns + keyframes)

The header records the run-cache schema, so a manifest materialised
before an execution-pipeline change (e.g. v4's fork-point fault path)
refuses to mix with workers from after it.

Job state is always *derived* from the filesystem, never stored as a
mutable field that could go stale:

* **done** — a valid record for the job's key exists in the cache;
* **failed** — a :class:`~repro.common.records.JobFailure` envelope
  exists under ``failed/``;
* **leased** — a live (unexpired) :class:`~repro.common.records.JobLease`
  file exists under ``leases/``;
* **pending** — none of the above.

Leases are the only coordination primitive.  Acquisition is an atomic
``link(2)`` of a fully written temp file, so exactly one worker can win
a job; a crashed worker's leases expire, and expiry is handled by
*reaping* — an atomic ``rename(2)`` of the stale lease file, which again
exactly one worker can win, followed by a fresh acquisition.  Because
results are content-addressed and written atomically (temp + rename),
even the worst-case race — a reaped worker that was merely slow, not
dead — only ever re-executes a job into the byte-identical cache entry:
duplicated effort, never corrupted or divergent results.  That is what
makes a manifest resumable and idempotent: re-running a finished one is
a pure cache replay.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.common.config import config_from_dict
from repro.common.records import (
    JobFailure,
    JobLease,
    canonical_json,
    record_from_dict,
    record_to_json,
)
from repro.detection.faults import FaultSite, TransientFault
from repro.harness.campaign import (
    CACHE_SCHEMA_VERSION,
    CampaignGrid,
    JobSpec,
    RunCache,
    unique_suffix as _unique_suffix,
)

#: Bump when the manifest directory layout or header changes shape.
MANIFEST_SCHEMA_VERSION = 1

MANIFEST_FILE = "manifest.json"

#: Default lease time-to-live in seconds: generous next to any single
#: job (hundreds of ms to a few s), small next to a campaign.
DEFAULT_LEASE_TTL = 300.0


class ManifestError(ValueError):
    """A manifest directory is missing, malformed, or names a different
    campaign than the one being submitted."""


def spec_from_description(desc: dict,
                          _config_memo: dict | None = None) -> JobSpec:
    """Rebuild a :class:`JobSpec` from its canonical ``describe()`` dict.

    The inverse of :meth:`JobSpec.describe`, used when a worker joins a
    manifest written by another process (or host) and has nothing but
    JSON.  ``_config_memo`` lets bulk loaders share reconstructed
    configs across the many jobs of one grid that differ only in fault.
    """
    def fault_from_fields(fields: dict) -> TransientFault:
        fault_fields = dict(fields)
        fault_fields["site"] = FaultSite(fault_fields["site"])
        return TransientFault(**fault_fields)

    fault = None
    if desc["fault"] is not None:
        fault = fault_from_fields(desc["fault"])
    config_json = canonical_json(desc["config"])
    if _config_memo is not None and config_json in _config_memo:
        config = _config_memo[config_json]
    else:
        config = config_from_dict(desc["config"])
        if _config_memo is not None:
            _config_memo[config_json] = config
    return JobSpec(
        kind=desc["kind"],
        benchmark=desc["benchmark"],
        scale=desc["scale"],
        config=config,
        fault=fault,
        faults=tuple(fault_from_fields(fields)
                     for fields in desc.get("faults", ())),
        interrupt_seqs=tuple(desc["interrupt_seqs"]),
        scheme=desc["scheme"],
        timing=desc.get("timing", "cycle"),
    )


def campaign_id(keys: Iterable[str]) -> str:
    """Stable identity of a campaign: the hash of its ordered job keys.

    Two grids with the same jobs in the same slot order are the same
    campaign; anything else is a different one and may not reuse a
    manifest directory.
    """
    return hashlib.sha256(
        canonical_json(list(keys)).encode()).hexdigest()


@dataclass(frozen=True)
class ManifestJob:
    """One unique job of a manifest, in first-occurrence order."""

    index: int
    key: str
    spec: JobSpec


#: The four derived job states.
JOB_STATES = ("pending", "leased", "done", "failed")


class CampaignManifest:
    """One campaign grid materialised on disk for cooperative execution.

    Construct with :meth:`create` (materialise a grid, or rejoin the
    identical grid's existing manifest) or :meth:`load` (join whatever
    is already there).  ``clock`` is injectable so lease expiry is
    testable without real waiting.
    """

    def __init__(self, root: str | os.PathLike, header: dict,
                 jobs: Sequence[JobSpec], keys: Sequence[str],
                 clock: Callable[[], float] = time.time) -> None:
        self.root = Path(root)
        self.header = header
        #: every job slot in submission order (may contain duplicates)
        self.slots: tuple[JobSpec, ...] = tuple(jobs)
        self.keys: tuple[str, ...] = tuple(keys)
        #: unique jobs in first-occurrence order — the executable set
        unique: dict[str, ManifestJob] = {}
        for i, (key, spec) in enumerate(zip(self.keys, self.slots)):
            if key not in unique:
                unique[key] = ManifestJob(index=i, key=key, spec=spec)
        self.unique: tuple[ManifestJob, ...] = tuple(unique.values())
        self.cache = RunCache(self.root / "cache")
        self._clock = clock

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, root: str | os.PathLike,
               grid: CampaignGrid | Iterable[JobSpec],
               kind: str = "", scheme: str = "", scale: str = "",
               benchmarks: Sequence[str] = (),
               clock: Callable[[], float] = time.time) -> "CampaignManifest":
        """Materialise ``grid`` under ``root`` — idempotently.

        If a manifest already exists there it is loaded and verified to
        describe the *same* campaign (same job keys, same order); a
        mismatch raises :class:`ManifestError` rather than silently
        mixing two campaigns' results.
        """
        root = Path(root)
        specs = tuple(grid)
        keys = tuple(spec.key() for spec in specs)
        if (root / MANIFEST_FILE).exists():
            manifest = cls.load(root, clock=clock)
            if manifest.header["campaign_id"] != campaign_id(keys):
                raise ManifestError(
                    f"manifest at {root} holds campaign "
                    f"{manifest.header['campaign_id'][:12]}…, not the one "
                    f"being submitted — use a fresh directory per campaign")
            return manifest
        header = {
            "manifest_schema": MANIFEST_SCHEMA_VERSION,
            "schema": CACHE_SCHEMA_VERSION,
            "campaign_id": campaign_id(keys),
            "kind": kind,
            "scheme": scheme,
            "scale": scale,
            "benchmarks": list(benchmarks),
            "slots": len(specs),
        }
        payload = dict(header)
        payload["jobs"] = [
            {"key": key, "spec": spec.describe()}
            for key, spec in zip(keys, specs)
        ]
        for sub in ("cache", "leases", "failed", "traces"):
            (root / sub).mkdir(parents=True, exist_ok=True)
        path = root / MANIFEST_FILE
        tmp = path.with_suffix(f".tmp.{_unique_suffix()}")
        tmp.write_text(canonical_json(payload))
        os.replace(tmp, path)
        return cls(root, header, specs, keys, clock=clock)

    @classmethod
    def load(cls, root: str | os.PathLike,
             clock: Callable[[], float] = time.time) -> "CampaignManifest":
        """Join an existing manifest, reconstructing and verifying every
        job spec (a spec whose recomputed key disagrees with the stored
        one means the manifest was written by an incompatible version)."""
        root = Path(root)
        path = root / MANIFEST_FILE
        try:
            payload = json.loads(path.read_text())
        except OSError as err:
            raise ManifestError(f"no campaign manifest at {root}: {err}") \
                from None
        except ValueError as err:
            raise ManifestError(f"corrupt manifest {path}: {err}") from None
        if not isinstance(payload, dict):
            raise ManifestError(
                f"corrupt manifest {path}: top level is "
                f"{type(payload).__name__}, not an object")
        if payload.get("manifest_schema") != MANIFEST_SCHEMA_VERSION:
            raise ManifestError(
                f"manifest {path} has layout schema "
                f"{payload.get('manifest_schema')!r}; this version reads "
                f"{MANIFEST_SCHEMA_VERSION}")
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            raise ManifestError(
                f"manifest {path} was built for record schema "
                f"{payload.get('schema')!r}, current is "
                f"{CACHE_SCHEMA_VERSION} — rebuild it in a fresh directory")
        config_memo: dict = {}
        specs, keys = [], []
        # any structural defect below — missing fields, wrong types, an
        # unreconstructable spec — is a *malformed manifest*, reported as
        # one ManifestError rather than whatever exception it first trips
        try:
            for entry in payload["jobs"]:
                spec = spec_from_description(entry["spec"], config_memo)
                if spec.key() != entry["key"]:
                    raise ManifestError(
                        f"manifest {path} job {entry['key'][:12]}… does not "
                        f"hash to its stored key after reconstruction")
                specs.append(spec)
                keys.append(entry["key"])
            header = {k: v for k, v in payload.items() if k != "jobs"}
            if header["campaign_id"] != campaign_id(keys):
                raise ManifestError(f"manifest {path} campaign id does not "
                                    f"match its own job list")
        except ManifestError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as err:
            raise ManifestError(
                f"malformed manifest {path}: "
                f"{type(err).__name__}: {err}") from None
        return cls(root, header, specs, keys, clock=clock)

    # -- derived job state ---------------------------------------------------

    def _lease_path(self, key: str) -> Path:
        return self.root / "leases" / f"{key}.json"

    def _failure_path(self, key: str) -> Path:
        return self.root / "failed" / f"{key}.json"

    def is_done(self, key: str) -> bool:
        return self.cache.has(key)

    def is_failed(self, key: str) -> bool:
        return self._failure_path(key).exists()

    def read_lease(self, key: str) -> JobLease | None:
        """The lease envelope on ``key``, live or expired, else None."""
        try:
            payload = json.loads(self._lease_path(key).read_text())
            lease = record_from_dict(payload)
        except (OSError, ValueError, KeyError):
            return None
        return lease if isinstance(lease, JobLease) else None

    def job_state(self, key: str, now: float | None = None) -> str:
        """One of :data:`JOB_STATES`; an expired lease reads as pending."""
        if self.is_done(key):
            return "done"
        if self.is_failed(key):
            return "failed"
        now = self._clock() if now is None else now
        lease = self.read_lease(key)
        if lease is not None and lease.expires_at > now:
            return "leased"
        if lease is None and self._lease_path(key).exists():
            # unreadable lease file (should not happen with link-created
            # envelopes): trust the file while it is fresh, reap it once
            # a full default TTL has passed
            try:
                mtime = self._lease_path(key).stat().st_mtime
            except OSError:
                return "pending"
            if mtime + DEFAULT_LEASE_TTL > now:
                return "leased"
        return "pending"

    def _scan_json_names(self, directory: Path, into: set[str]) -> None:
        """Collect the ``<key>`` of every ``<key>.json`` in ``directory``
        (temp/reap files carry ``.tmp.``/``.reap.`` suffixes after the
        ``.json``, so they never match)."""
        try:
            entries = os.scandir(directory)
        except OSError:
            return
        with entries:
            for entry in entries:
                name = entry.name
                if name.endswith(".json"):
                    into.add(name[:-5])

    def job_states(self, now: float | None = None) -> dict[str, str]:
        """Derived state of every unique job, computed in one bulk pass.

        :meth:`job_state` costs ~4 metadata round-trips per key (cache
        read, failure stat, lease read/stat), so a status poll over a
        large manifest is O(jobs × stats).  This method instead takes
        three directory listings — the cache's key buckets, ``failed/``,
        and ``leases/`` — and derives every state from the merged name
        sets; only the (few) present lease files are actually read, to
        evaluate expiry.

        Presence of ``<key>.json`` in its cache bucket counts as done
        without re-parsing the envelope: entries are written atomically
        (temp + rename) by workers whose record schema the manifest
        header pins at load time, so a present entry is a complete,
        current one.  The leasing path (:meth:`try_lease`) still
        validates envelopes before trusting them.
        """
        now = self._clock() if now is None else now
        done: set[str] = set()
        failed: set[str] = set()
        lease_files: set[str] = set()
        try:
            buckets = os.scandir(self.cache.root)
        except OSError:
            buckets = None
        if buckets is not None:
            with buckets:
                for bucket in buckets:
                    # key buckets are exactly two hex chars; skips the
                    # nested golden-trace store and stray files
                    if len(bucket.name) == 2:
                        self._scan_json_names(Path(bucket.path), done)
        self._scan_json_names(self.root / "failed", failed)
        self._scan_json_names(self.root / "leases", lease_files)
        states: dict[str, str] = {}
        for job in self.unique:
            key = job.key
            if key in done:
                states[key] = "done"
            elif key in failed:
                states[key] = "failed"
            elif key in lease_files:
                # same liveness rules as job_state, but only for keys
                # that actually have a lease file on disk
                lease = self.read_lease(key)
                if lease is not None:
                    states[key] = ("leased" if lease.expires_at > now
                                   else "pending")
                else:
                    try:
                        mtime = self._lease_path(key).stat().st_mtime
                    except OSError:
                        states[key] = "pending"
                        continue
                    states[key] = ("leased"
                                   if mtime + DEFAULT_LEASE_TTL > now
                                   else "pending")
            else:
                states[key] = "pending"
        return states

    # -- leasing -------------------------------------------------------------

    def _write_lease(self, path: Path, lease: JobLease) -> bool:
        """Atomically create ``path`` with the full envelope: write a
        temp file, then ``link(2)`` it in — exactly one creator wins."""
        tmp = path.with_name(f"{path.name}.tmp.{_unique_suffix()}")
        tmp.write_text(record_to_json(lease))
        try:
            os.link(tmp, path)
            return True
        except FileExistsError:
            return False
        finally:
            tmp.unlink(missing_ok=True)

    def _reap(self, path: Path) -> bool:
        """Atomically remove an expired lease; exactly one reaper wins
        (``rename(2)`` of the same source succeeds for one caller)."""
        grave = path.with_name(f"{path.name}.reap.{_unique_suffix()}")
        try:
            os.rename(path, grave)
        except OSError:
            return False
        grave.unlink(missing_ok=True)
        return True

    #: Sentinel: "the caller has not read the failure envelope for me".
    _UNREAD = object()

    def try_lease(self, key: str, worker: str,
                  ttl: float = DEFAULT_LEASE_TTL,
                  max_attempts: int = 1, *,
                  _failure: object = _UNREAD) -> JobLease | None:
        """Attempt to claim ``key`` for ``worker``.

        Returns the lease on success; None if the job is done, failed,
        or validly leased to someone else.  An expired lease is reaped
        and re-acquired with an incremented ``attempt``.

        ``max_attempts`` bounds *automatic re-lease of failed jobs*: a
        job whose failure envelope records fewer than ``max_attempts``
        attempts is re-queued — its envelope is consumed by whichever
        worker wins the fresh lease, and the new lease (and any
        subsequent failure envelope) carries the incremented attempt
        count.  The default of 1 preserves the manual behaviour: failed
        jobs stay failed until an operator clears them
        (``--retry-failed``).
        """
        if self.is_done(key):
            return None
        failure = None
        if self.is_failed(key):
            # ``_failure`` lets lease_batch hand over the envelope it
            # already parsed this scan instead of re-reading it here
            failure = (self.read_failure(key)
                       if _failure is self._UNREAD else _failure)
            if not self._has_attempts_left(failure, max_attempts):
                return None
        path = self._lease_path(key)
        now = self._clock()
        attempt = 1 if failure is None else failure.attempt + 1
        if path.exists():
            stale = self.read_lease(key)
            if stale is not None:
                if stale.expires_at > now:
                    return None
                attempt = max(attempt, stale.attempt + 1)
            elif self.job_state(key, now) == "leased":
                return None  # unreadable but fresh: leave it alone
            if not self._reap(path):
                return None  # lost the reaping race
        lease = JobLease(key=key, worker=worker, acquired_at=now,
                         expires_at=now + ttl, attempt=attempt)
        if not self._write_lease(path, lease):
            return None
        if failure is not None:
            # the lease is won: consume the failure envelope so the job
            # reads as leased (then done/failed-again), not failed
            self._failure_path(key).unlink(missing_ok=True)
        return lease

    def lease_batch(self, worker: str, ttl: float = DEFAULT_LEASE_TTL,
                    limit: int = 8,
                    settled: set[str] | None = None,
                    max_attempts: int = 1,
                    ) -> list[tuple[ManifestJob, JobLease]]:
        """Claim up to ``limit`` pending jobs (work-stealing scan).

        ``settled`` is an optional caller-owned memo of keys known to be
        done or *terminally* failed: those states are sticky, so jobs in
        it are skipped without touching the filesystem, and jobs newly
        observed settled during this scan are added to it.  Without the
        memo, every scan re-reads every completed result envelope —
        quadratic I/O over a long campaign.

        ``max_attempts`` (see :meth:`try_lease`) turns failed jobs with
        remaining attempts back into leasable work; only a failure at
        the attempt cap settles.
        """
        batch: list[tuple[ManifestJob, JobLease]] = []
        for job in self.unique:
            if len(batch) >= limit:
                break
            if settled is not None and job.key in settled:
                continue
            if self.is_done(job.key):
                if settled is not None:
                    settled.add(job.key)
                continue
            failure: object = self._UNREAD
            if self.is_failed(job.key):
                failure = self.read_failure(job.key)
                if not self._has_attempts_left(failure, max_attempts):
                    if settled is not None:
                        settled.add(job.key)
                    continue
            lease = self.try_lease(job.key, worker, ttl, max_attempts,
                                   _failure=failure)
            if lease is not None:
                batch.append((job, lease))
        return batch

    @staticmethod
    def _has_attempts_left(failure: JobFailure | None,
                           max_attempts: int) -> bool:
        """The one retry-policy predicate: a failed job is re-leasable
        exactly when its envelope is readable and records fewer than
        ``max_attempts`` attempts (an unreadable envelope is terminal —
        its attempt count is unknowable, so it is never auto-retried)."""
        return failure is not None and failure.attempt < max_attempts

    def release(self, key: str, lease: JobLease | None = None) -> None:
        """Drop the lease on ``key`` (after its result or failure
        envelope has been written).

        Pass the lease you hold to make the release ownership-checked:
        if the job's lease on disk is no longer yours — you overran your
        TTL and a rescuer reaped and re-leased the job — the rescuer's
        live lease is left untouched rather than being unlinked out from
        under it.  ``lease=None`` releases unconditionally (administrative
        use).
        """
        if lease is not None and self.read_lease(key) != lease:
            return
        self._lease_path(key).unlink(missing_ok=True)

    # -- failures ------------------------------------------------------------

    def record_failure(self, key: str, worker: str, error: str,
                       attempt: int = 1) -> None:
        path = self._failure_path(key)
        tmp = path.with_name(f"{path.name}.tmp.{_unique_suffix()}")
        tmp.write_text(record_to_json(
            JobFailure(key=key, worker=worker, error=error,
                       attempt=attempt)))
        os.replace(tmp, path)

    def read_failure(self, key: str) -> JobFailure | None:
        """The failure envelope on ``key``, or None."""
        try:
            payload = json.loads(self._failure_path(key).read_text())
            failure = record_from_dict(payload)
        except (OSError, ValueError, KeyError):
            return None
        return failure if isinstance(failure, JobFailure) else None

    def failures(self, keys: Iterable[str] | None = None) -> list[JobFailure]:
        """Failure envelopes, for all unique jobs or just ``keys`` (a
        caller that already ran :meth:`job_states` passes the failed
        keys so this does not rescan every job)."""
        out = []
        for key in ([job.key for job in self.unique]
                    if keys is None else keys):
            failure = self.read_failure(key)
            if failure is not None:
                out.append(failure)
        return out

    def clear_failures(self) -> int:
        """Re-queue every failed job; returns how many were cleared."""
        cleared = 0
        for job in self.unique:
            path = self._failure_path(job.key)
            if path.exists():
                path.unlink(missing_ok=True)
                cleared += 1
        return cleared
