"""One entry point per paper table/figure.

Each ``figNN`` function runs its experiment through a shared
:class:`~repro.harness.experiment.ExperimentRunner`, whose runs are
campaign jobs dispatched through the protection-scheme registry — so a
runner built with ``workers``/``cache_dir`` (or the ``figures
--workers/--cache-dir`` CLI flags) regenerates figures in parallel and
incrementally, and a cross-scheme figure like Figure 1(d) is a measured
registry sweep rather than hand-assembled constants.  Every entry point
returns ``(text, data)``: a paper-style plain-text rendering plus the
raw series for programmatic checks.  The ``benchmarks/`` directory
wraps these in pytest-benchmark entries (README: "How figures map to
campaign grids" lists the figure → grid → CLI correspondence).
"""

from __future__ import annotations

from repro.analysis.area import area_model
from repro.analysis.delay import density_series, summarize_delays
from repro.analysis.power import power_model
from repro.analysis.report import (
    delay_table,
    format_table,
    series_block,
    slowdown_table,
)
from repro.common.config import SystemConfig, default_config, table1_rows
from repro.harness.campaign import scheme_grid
from repro.harness.experiment import ExperimentRunner, default_runner
from repro.workloads.suite import BENCHMARK_ORDER, table2_rows

#: Figure 9/11 checker-frequency sweep (MHz).
FREQUENCIES_MHZ = [125, 250, 500, 1000, 2000]

#: Figures 10/12 log-size / timeout sweep: (label, log bytes, timeout).
LOG_SWEEP: list[tuple[str, int, int | None]] = [
    ("3.6KiB/500", int(3.6 * 1024), 500),
    ("36KiB/5000", 36 * 1024, 5000),
    ("360KiB/50000", 360 * 1024, 50_000),
    ("360KiB/inf", 360 * 1024, None),
]

#: Figure 12 adds the 36 KiB log with no timeout (the bitcount blow-up).
LOG_SWEEP_FIG12 = LOG_SWEEP + [("36KiB/inf", 36 * 1024, None)]

#: Figure 13 core-count/frequency pairs.
CORE_SWEEP: list[tuple[str, int, float]] = [
    ("3c/1GHz", 3, 1000.0),
    ("12c/250MHz", 12, 250.0),
    ("6c/1GHz", 6, 1000.0),
    ("12c/500MHz", 12, 500.0),
    ("12c/1GHz", 12, 1000.0),
]


def _runner(runner: ExperimentRunner | None) -> ExperimentRunner:
    return runner if runner is not None else default_runner()


# -- configuration tables ---------------------------------------------------------

def table1() -> tuple[str, list[tuple[str, str]]]:
    """Table I: the experimental setup."""
    rows = table1_rows()
    text = format_table("Table I: core and memory experimental setup",
                        ["parameter", "value"],
                        [[k, v] for k, v in rows])
    return text, rows


def table2() -> tuple[str, list[tuple[str, str, str]]]:
    """Table II: the benchmark suite."""
    rows = table2_rows()
    text = format_table("Table II: benchmarks evaluated",
                        ["benchmark", "source", "input"],
                        [list(r) for r in rows])
    return text, rows


# -- headline figures ---------------------------------------------------------------

def fig7(runner: ExperimentRunner | None = None
         ) -> tuple[str, dict[str, float]]:
    """Figure 7: normalised slowdown at Table I defaults."""
    r = _runner(runner)
    data = {name: r.summary(name).slowdown for name in BENCHMARK_ORDER}
    text = slowdown_table(
        "Figure 7: normalised slowdown, default configuration "
        "(paper: mean 1.75%, max 3.4%)",
        ["slowdown"], {k: [v] for k, v in data.items()}, BENCHMARK_ORDER)
    return text, data


def fig8(runner: ExperimentRunner | None = None, bins: int = 25,
         ) -> tuple[str, dict[str, list[tuple[float, float]]]]:
    """Figure 8: detection-delay density at defaults."""
    r = _runner(runner)
    series = {}
    summaries = []
    for name in BENCHMARK_ORDER:
        det = r.detection(name)
        series[name] = density_series(det.report.delays_ns, bins=bins)
        summaries.append(summarize_delays(name, det.report.delays_ns))
    from repro.analysis.plot import ascii_density
    text = series_block(
        "Figure 8: detection-delay density, default configuration",
        series, "delay ns", "density")
    shape = ascii_density(series)
    coverage = "\n".join(
        f"  {s.benchmark:<14} mean={s.mean_ns:7.0f}ns "
        f"p99.9={s.p999_ns:7.0f}ns max={s.max_ns:8.0f}ns "
        f"within-5us={100 * s.fraction_within_5us:5.1f}%"
        for s in summaries)
    return (text + "\n\ndistribution shapes (per-benchmark, peak-"
            "normalised):\n" + shape + "\n\ncoverage summary:\n"
            + coverage), series


def fig9(runner: ExperimentRunner | None = None
         ) -> tuple[str, dict[str, list[float]]]:
    """Figure 9: slowdown vs checker-core frequency."""
    r = _runner(runner)
    configs = [r.default_cfg.with_checker_freq(mhz) for mhz in FREQUENCIES_MHZ]
    sweep = r.sweep(configs)
    data = {name: [s.slowdown for s in rows] for name, rows in sweep.items()}
    text = slowdown_table(
        "Figure 9: normalised slowdown vs checker frequency "
        "(paper: memory-bound flat, compute-bound up to ~4.5x at 125MHz)",
        [f"{mhz}MHz" for mhz in FREQUENCIES_MHZ], data, BENCHMARK_ORDER)
    return text, data


def fig10(runner: ExperimentRunner | None = None
          ) -> tuple[str, dict[str, list[float]]]:
    """Figure 10: checkpoint-only slowdown vs log size / timeout
    (ideal checkers — isolates the checkpointing cost)."""
    r = _runner(runner)
    configs = [
        r.default_cfg.with_log(log_bytes, timeout).with_ideal_checkers()
        for _label, log_bytes, timeout in LOG_SWEEP
    ]
    sweep = r.sweep(configs)
    data = {name: [s.slowdown for s in rows] for name, rows in sweep.items()}
    text = slowdown_table(
        "Figure 10: slowdown from checkpointing alone vs log size/timeout "
        "(paper: <=2% at 36KiB, up to 15% at 3.6KiB)",
        [label for label, _b, _t in LOG_SWEEP], data, BENCHMARK_ORDER)
    return text, data


def _delay_sweep(runner: ExperimentRunner, configs: list[SystemConfig],
                 labels: list[str], stat: str, title: str,
                 ) -> tuple[str, dict[str, list[float]]]:
    sweep = runner.sweep(configs)
    attr = "mean_delay_ns" if stat == "mean" else "max_delay_ns"
    data = {
        name: [getattr(s, attr) for s in rows] for name, rows in sweep.items()
    }
    return delay_table(title, labels, data, BENCHMARK_ORDER), data


def fig11(runner: ExperimentRunner | None = None
          ) -> tuple[str, dict[str, dict[str, list[float]]]]:
    """Figure 11: mean (a) and max (b) detection delay vs checker frequency."""
    r = _runner(runner)
    configs = [r.default_cfg.with_checker_freq(mhz) for mhz in FREQUENCIES_MHZ]
    labels = [f"{mhz}MHz" for mhz in FREQUENCIES_MHZ]
    text_a, mean_data = _delay_sweep(
        r, configs, labels, "mean",
        "Figure 11(a): mean detection delay vs checker frequency "
        "(paper: ~halves per frequency doubling)")
    text_b, max_data = _delay_sweep(
        r, configs, labels, "max",
        "Figure 11(b): max detection delay vs checker frequency")
    return text_a + "\n\n" + text_b, {"mean": mean_data, "max": max_data}


def fig12(runner: ExperimentRunner | None = None
          ) -> tuple[str, dict[str, dict[str, list[float]]]]:
    """Figure 12: mean (a) and max (b) detection delay vs log size/timeout."""
    r = _runner(runner)
    configs = [
        r.default_cfg.with_log(log_bytes, timeout)
        for _label, log_bytes, timeout in LOG_SWEEP_FIG12
    ]
    labels = [label for label, _b, _t in LOG_SWEEP_FIG12]
    text_a, mean_data = _delay_sweep(
        r, configs, labels, "mean",
        "Figure 12(a): mean detection delay vs log size/timeout "
        "(paper: scales ~linearly with log size)")
    text_b, max_data = _delay_sweep(
        r, configs, labels, "max",
        "Figure 12(b): max detection delay vs log size/timeout "
        "(paper: timeout cuts bitcount's max by ~250x)")
    return text_a + "\n\n" + text_b, {"mean": mean_data, "max": max_data}


def fig13(runner: ExperimentRunner | None = None
          ) -> tuple[str, dict[str, list[float]]]:
    """Figure 13: slowdown across checker-core count/frequency pairs."""
    r = _runner(runner)
    configs = [
        r.default_cfg.with_checker_cores(cores).with_checker_freq(mhz)
        for _label, cores, mhz in CORE_SWEEP
    ]
    sweep = r.sweep(configs)
    data = {name: [s.slowdown for s in rows] for name, rows in sweep.items()}
    text = slowdown_table(
        "Figure 13: slowdown vs checker core count/frequency "
        "(paper: N cores at f ~ 2N cores at f/2; more slower cores win)",
        [label for label, _c, _m in CORE_SWEEP], data, BENCHMARK_ORDER)
    return text, data


#: The Figure 1(d) contenders, in paper order; the paper scheme renders
#: as "ours" in the figure data.
FIG1_SCHEMES = ("lockstep", "rmt", "detection")
FIG1_LABELS = {"detection": "ours"}


def fig1_comparison(runner: ExperimentRunner | None = None,
                    benchmarks: list[str] | None = None,
                    schemes: tuple[str, ...] = FIG1_SCHEMES,
                    ) -> tuple[str, dict[str, dict[str, float]]]:
    """Figure 1(d): lockstep vs RMT vs this scheme, measured.

    A cross-scheme sweep over the protection-scheme registry: every row
    is assembled from the :class:`~repro.common.records.SchemeRunResult`
    records of one :func:`~repro.harness.campaign.scheme_grid` campaign,
    so the comparison runs through the same cache/sharding path as every
    other figure — and adding a registered scheme adds a row.
    """
    r = _runner(runner)
    # one memory-bound and two compute-bound benchmarks: RMT's bandwidth
    # sharing only bites where there is ILP to lose, and Figure 1's point
    # is precisely that contrast
    names = benchmarks if benchmarks is not None else [
        "stream", "bitcount", "swaptions"]
    grid = scheme_grid(names, schemes, scale=r.scale, config=r.default_cfg)
    records = r.engine.run(grid).typed_records()
    by_scheme: dict[str, list] = {}
    for record in records:
        by_scheme.setdefault(record.scheme, []).append(record)

    def mean(values: list[float]) -> float:
        return sum(values) / len(values)

    data: dict[str, dict[str, float]] = {}
    rows = []
    for scheme in schemes:
        recs = by_scheme[scheme]
        label = FIG1_LABELS.get(scheme, scheme)
        latencies = [rec.detection_latency_ns for rec in recs
                     if rec.detection_latency_ns is not None]
        data[label] = {
            "slowdown": mean([rec.slowdown for rec in recs]),
            "area": mean([rec.area_overhead for rec in recs]),
            "energy": mean([rec.energy_overhead for rec in recs]),
            "detect_latency_ns": mean(latencies) if latencies else None,
        }
        vals = data[label]
        rows.append([
            label,
            f"{vals['slowdown']:.3f}",
            f"{100 * vals['area']:.0f}%",
            f"{100 * vals['energy']:.0f}%",
            (f"{vals['detect_latency_ns']:.0f}ns"
             if vals["detect_latency_ns"] is not None else "-"),
        ])
    text = format_table(
        "Figure 1(d): scheme comparison "
        f"(measured over {', '.join(names)})",
        ["scheme", "slowdown", "area overhead", "energy overhead",
         "detect latency"], rows)
    return text, data


def sec6b_area(config: SystemConfig | None = None
               ) -> tuple[str, dict[str, float]]:
    """§VI-B: the area-overhead model."""
    cfg = config if config is not None else default_config()
    a = area_model(cfg)
    data = {
        "main_core_mm2": a.main_core_mm2,
        "checker_cores_mm2": a.checker_cores_mm2,
        "sram_added_mm2": a.sram_added_mm2,
        "added_sram_kib": a.added_sram_kib,
        "overhead_vs_core": a.overhead_vs_core,
        "overhead_vs_core_with_l2": a.overhead_vs_core_with_l2,
    }
    rows = [
        ["main core (A57-class, 20nm)", f"{a.main_core_mm2:.2f} mm2"],
        [f"{cfg.checker.num_cores} checker cores (Rocket-class)",
         f"{a.checker_cores_mm2:.2f} mm2"],
        [f"added SRAM ({a.added_sram_kib:.0f} KiB)",
         f"{a.sram_added_mm2:.3f} mm2"],
        ["overhead vs core (paper ~24%)",
         f"{100 * a.overhead_vs_core:.1f}%"],
        ["overhead incl 1MiB L2 (paper ~16%)",
         f"{100 * a.overhead_vs_core_with_l2:.1f}%"],
        ["dual-core lockstep", "100%"],
    ]
    return format_table("Section VI-B: area overhead",
                        ["item", "value"], rows), data


def sec6c_power(config: SystemConfig | None = None
                ) -> tuple[str, dict[str, float]]:
    """§VI-C: the power-overhead model."""
    cfg = config if config is not None else default_config()
    p = power_model(cfg)
    data = {
        "main_core_mw": p.main_core_mw,
        "checker_cores_mw": p.checker_cores_mw,
        "overhead": p.overhead,
    }
    rows = [
        ["main core", f"{p.main_core_mw:.0f} mW"],
        [f"{cfg.checker.num_cores} checker cores",
         f"{p.checker_cores_mw:.0f} mW"],
        ["overhead (paper ~16%, upper bound)", f"{100 * p.overhead:.1f}%"],
        ["dual-core lockstep", "100%"],
    ]
    return format_table("Section VI-C: power overhead",
                        ["item", "value"], rows), data
