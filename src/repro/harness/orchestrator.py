"""Work-stealing campaign orchestration over on-disk manifests.

This is the scale-out layer above the campaign engine.  The engine
(:mod:`repro.harness.campaign`) executes a grid inside one process pool;
the orchestrator lets *independent worker processes* — started at
different times, on different hosts sharing the manifest directory —
drive one campaign to completion together:

* :class:`CampaignWorker` loops ``lease batch → execute → store →
  release`` until no leasable work remains.  Work distribution is
  demand-driven (work-stealing): a fast worker simply leases more, so
  stragglers never gate a campaign the way static ``i % N`` round-robin
  shards do.
* :func:`run_campaign` is the single-command form: it fans N local
  worker processes out over one manifest and then merges.
* :func:`collect` replays the manifest's slot list through a
  :class:`~repro.harness.campaign.CampaignEngine` against the shared
  cache, yielding the one merged result set — byte-identical to a
  serial run of the same grid, because every job is a pure function of
  its spec and every record is stored in canonical form.
* :func:`manifest_status` and :func:`summarize_result` are the single
  source of truth for progress and summary numbers: the CLI's human
  output, its ``--json`` output, and ``campaign-status`` all read the
  same one-pass aggregation, so they can never disagree on job counts.

Crash tolerance comes from lease expiry (see
:mod:`repro.harness.manifest`): a dead worker's jobs return to the
pending pool after the TTL, and a resumed campaign replays finished
jobs from the cache — zero duplicated work, identical merged bytes.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
from dataclasses import dataclass, field

from repro.harness.campaign import (
    TRACE_STORE_DIRNAME,
    CampaignEngine,
    CampaignResult,
    execute_job,
)
from repro.harness.manifest import (
    DEFAULT_LEASE_TTL,
    CampaignManifest,
    ManifestJob,
)
from repro.workloads.suite import configure_trace_store

#: Default jobs claimed per lease scan: big enough to amortise the scan,
#: small enough that a crashed worker strands little work.
DEFAULT_BATCH = 8


def default_worker_id() -> str:
    """host-pid, unique across the processes sharing a manifest."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerStats:
    """What one worker actually did (its contribution to the campaign)."""

    worker: str
    #: jobs this worker executed to completion
    executed: int = 0
    #: jobs leased but found already done (finished elsewhere between
    #: the state scan and execution — possible only around lease reaping)
    skipped: int = 0
    #: jobs whose execution raised; each has a failure envelope
    failed: int = 0
    #: lease scans that returned at least one job
    batches: int = 0

    def as_dict(self) -> dict:
        return {"worker": self.worker, "executed": self.executed,
                "skipped": self.skipped, "failed": self.failed,
                "batches": self.batches}


class CampaignWorker:
    """One lease-driven executor over a shared manifest.

    Run any number of these concurrently (threads, processes, hosts);
    the lease protocol guarantees each pending job is executed by
    exactly one of them, crash-recovery races aside.
    """

    def __init__(self, manifest: CampaignManifest,
                 worker_id: str | None = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 batch_size: int = DEFAULT_BATCH,
                 max_attempts: int = 1) -> None:
        self.manifest = manifest
        self.worker_id = worker_id or default_worker_id()
        self.lease_ttl = float(lease_ttl)
        self.batch_size = max(1, int(batch_size))
        #: bounded automatic re-lease of failed jobs: a job may be
        #: executed up to this many times before its failure is terminal
        #: (1 = today's manual-retry-only behaviour)
        self.max_attempts = max(1, int(max_attempts))
        #: keys this worker knows are done or terminally failed (sticky
        #: states), so lease scans stop re-reading their envelopes
        self._settled: set[str] = set()
        # clean traces come from the manifest's shared golden-trace
        # store: the first worker to need a benchmark executes and
        # publishes it, everyone else forks the stored columns
        configure_trace_store(manifest.root / TRACE_STORE_DIRNAME)

    def _run_one(self, job: ManifestJob, lease, stats: WorkerStats) -> None:
        settled = True
        try:
            if self.manifest.is_done(job.key):
                stats.skipped += 1
                return
            try:
                record = execute_job(job.spec)
            except Exception as err:  # noqa: BLE001 — a failed job must
                # not take the worker (and the rest of the campaign) down
                self.manifest.record_failure(
                    job.key, self.worker_id, f"{type(err).__name__}: {err}",
                    attempt=lease.attempt)
                stats.failed += 1
                # below the attempt cap the failure is not sticky: leave
                # the job scannable so some worker (maybe this one)
                # re-leases it with the next attempt number
                settled = lease.attempt >= self.max_attempts
            else:
                self.manifest.cache.put(job.key, record)
                stats.executed += 1
        finally:
            if settled:
                self._settled.add(job.key)
            # ownership-checked: if we overran our TTL and were reaped,
            # this leaves the rescuer's live lease alone
            self.manifest.release(job.key, lease)

    def run(self, max_jobs: int | None = None) -> WorkerStats:
        """Work until no job can be leased (campaign finished, or every
        remainder is done/failed/validly leased to another worker).

        ``max_jobs`` bounds this worker's contribution — used by tests
        and by operators draining a host; unexecuted leases are released
        so other workers pick them up immediately.
        """
        stats = WorkerStats(worker=self.worker_id)
        claimed = 0
        while max_jobs is None or claimed < max_jobs:
            limit = self.batch_size
            if max_jobs is not None:
                limit = min(limit, max_jobs - claimed)
            batch = self.manifest.lease_batch(
                self.worker_id, self.lease_ttl, limit,
                settled=self._settled, max_attempts=self.max_attempts)
            if not batch:
                break
            stats.batches += 1
            for job, lease in batch:
                claimed += 1
                self._run_one(job, lease, stats)
        return stats


def collect(manifest: CampaignManifest, workers: int = 1) -> CampaignResult:
    """Merge a manifest into one :class:`CampaignResult`, in slot order.

    On a completed manifest this is a pure cache replay (``executed ==
    0``) producing bytes identical to a serial run of the grid; on an
    incomplete one the engine finishes the leftovers in-process
    (ignoring leases — call it only once cooperating workers have
    exited, or accept re-executing their in-flight jobs).

    Slots whose job carries a failure envelope are *excluded* — their
    deterministic exception would simply re-raise inside the engine,
    which has no failure handling.  Callers see them through
    :func:`manifest_status`'s ``failures`` list instead.
    """
    failed = {job.key for job in manifest.unique
              if manifest.is_failed(job.key)}
    slots = (manifest.slots if not failed else
             [spec for key, spec in zip(manifest.keys, manifest.slots)
              if key not in failed])
    engine = CampaignEngine(
        workers=workers, cache_dir=manifest.cache.root,
        trace_store_dir=manifest.root / TRACE_STORE_DIRNAME)
    return engine.run(slots)


def _worker_entry(root: str, lease_ttl: float, batch_size: int,
                  max_attempts: int, queue) -> None:
    """Child-process entry point of :func:`run_campaign`."""
    manifest = CampaignManifest.load(root)
    stats = CampaignWorker(manifest, lease_ttl=lease_ttl,
                           batch_size=batch_size,
                           max_attempts=max_attempts).run()
    queue.put(stats.as_dict())


def run_campaign(manifest: CampaignManifest, processes: int = 1,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 batch_size: int = DEFAULT_BATCH,
                 max_attempts: int = 1,
                 ) -> tuple[CampaignResult, WorkerStats]:
    """Drive ``manifest`` to completion with ``processes`` local workers
    and return the merged result plus the run's *aggregated* stats
    (parent + children summed; ``worker`` names the parent).

    One process works in-place; more fork ``processes - 1`` children
    that join the same manifest exactly the way a ``campaign-worker``
    on another host would.  After all workers exit, :func:`collect`
    merges (and mops up anything a crashed child stranded).
    """
    queue: multiprocessing.SimpleQueue = multiprocessing.SimpleQueue()
    children = [
        multiprocessing.Process(
            target=_worker_entry,
            args=(str(manifest.root), lease_ttl, batch_size, max_attempts,
                  queue))
        for _ in range(max(1, int(processes)) - 1)
    ]
    for child in children:
        child.start()
    stats = CampaignWorker(manifest, lease_ttl=lease_ttl,
                           batch_size=batch_size,
                           max_attempts=max_attempts).run()
    for child in children:
        child.join()
    while not queue.empty():  # a crashed child simply contributes nothing
        child_stats = queue.get()
        stats.executed += child_stats["executed"]
        stats.skipped += child_stats["skipped"]
        stats.failed += child_stats["failed"]
        stats.batches += child_stats["batches"]
    queue.close()
    # merge at the caller's parallelism: anything a crashed child
    # stranded re-executes across the same number of processes
    return collect(manifest, workers=max(1, int(processes))), stats


# -- status / summaries (one pass, one source of truth) ----------------------

def manifest_status(manifest: CampaignManifest) -> dict:
    """The ``campaign-status`` payload: per-state counts, per-scheme and
    per-kind progress, and failure summaries — computed from one bulk
    :meth:`~repro.harness.manifest.CampaignManifest.job_states` scan
    (three directory listings, not per-job stat calls), so polling it —
    the CLI, ``--watch``, and the service's status/events endpoints all
    do — stays cheap on large manifests."""
    state_map = manifest.job_states()
    states = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
    by_scheme: dict[str, dict[str, int]] = {}
    by_kind: dict[str, dict[str, int]] = {}
    for job in manifest.unique:
        state = state_map[job.key]
        states[state] += 1
        for axis, label in ((by_scheme, job.spec.scheme),
                            (by_kind, job.spec.kind)):
            group = axis.setdefault(
                label, {"jobs": 0, "done": 0, "failed": 0})
            group["jobs"] += 1
            if state in ("done", "failed"):
                group[state] += 1
    unique = len(manifest.unique)
    return {
        "campaign_id": manifest.header["campaign_id"],
        "kind": manifest.header.get("kind", ""),
        "scheme": manifest.header.get("scheme", ""),
        "scale": manifest.header.get("scale", ""),
        "benchmarks": list(manifest.header.get("benchmarks", [])),
        "slots": len(manifest.slots),
        "jobs": unique,
        "states": states,
        "by_scheme": by_scheme,
        "by_kind": by_kind,
        "failures": [
            {"key": f.key, "worker": f.worker, "error": f.error,
             "attempt": f.attempt}
            for f in manifest.failures(
                keys=[k for k, s in state_map.items() if s == "failed"])
        ],
        "complete": states["done"] == unique,
    }


@dataclass
class ResultSummary:
    """One-pass aggregation of a campaign result, shared by the human,
    ``--json``, and status output paths."""

    summary: dict = field(default_factory=dict)
    #: SDC trials (``outcome == "escaped"``) — the nonzero-exit signal
    escaped: int = 0


def summarize_result(kind: str, result: CampaignResult,
                     benchmarks: list[str]) -> ResultSummary:
    """Aggregate ``result`` for ``kind`` in a single pass over records.

    Timing kinds (``baseline``/``detection``) yield mean slowdown and
    detection latency; injection kinds (``fault``/``recovery``) yield
    activation/detection counts, the outcome histogram, and latency.
    """
    base = {
        "benchmarks": benchmarks,
        "jobs": len(result),
        "executed": result.executed,
        "cached": result.cached,
    }
    if kind in ("baseline", "detection"):
        slowdowns: list[float] = []
        latencies: list[float] = []
        for record in result.records:
            if record["record_type"] == "SchemeRunResult":
                slowdowns.append(record["slowdown"])
                if record["detection_latency_ns"] is not None:
                    latencies.append(record["detection_latency_ns"])
            else:  # RunRecord: rich detection run, no baseline to norm by
                delays = record["delays_ns"]
                if delays:
                    latencies.append(sum(delays) / len(delays))
        base.update({
            "mean_slowdown": (
                sum(slowdowns) / len(slowdowns) if slowdowns else None),
            "mean_detection_latency_ns": (
                sum(latencies) / len(latencies) if latencies else None),
        })
        return ResultSummary(summary=base)

    outcomes: dict[str, int] = {}
    detect_latencies: list[float] = []
    activated = detected = 0
    records: list[dict] = []
    for record in result.records:
        if record.get("record_type") == "FaultBatchRecord":
            # a batch job is just its per-fault records, flattened
            records.extend(record["records"])
        else:
            records.append(record)
    for record in records:
        if "outcome" in record:
            outcome = record["outcome"]
        elif not record.get("activated"):
            outcome = "not_activated"
        else:
            outcome = ("recovered" if record.get("state_correct")
                       else "not_recovered")
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        if record.get("activated"):
            activated += 1
        if outcome == "detected" or record.get("detected"):
            detected += 1
        if record.get("detect_latency_us") is not None:
            detect_latencies.append(record["detect_latency_us"])
    base.update({
        "activated": activated,
        "detected": detected,
        "outcomes": outcomes,
        "mean_detect_latency_us": (
            sum(detect_latencies) / len(detect_latencies)
            if detect_latencies else None),
    })
    return ResultSummary(summary=base, escaped=outcomes.get("escaped", 0))
