"""§VI-D: scaling to bigger main cores.

The paper argues the scheme extends *favourably* to more aggressive main
cores: single-thread performance grows sublinearly with core size, while
checking throughput scales linearly with the number of checker cores —
so the relative overheads of detection shrink as the protected core grows.

This experiment builds three main-core aggressiveness tiers, finds the
checker-core count that keeps slowdown under a threshold for each, and
evaluates the area overhead relative to an area model where the main
core's area grows roughly quadratically with width (the classic OoO
scaling rule the paper's argument rests on).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.area import NODE_SCALE_40_TO_20, ROCKET_AREA_MM2_40NM, \
    A57_AREA_MM2_20NM
from repro.common.config import SystemConfig, default_config
from repro.detection.system import run_unprotected, run_with_detection
from repro.isa.executor import Trace

#: Main-core tiers: (name, width, ROB, IQ, LQ/SQ, int ALUs, fp ALUs)
CORE_TIERS: list[tuple[str, int, int, int, int, int, int]] = [
    ("baseline-3wide", 3, 40, 32, 16, 3, 2),
    ("big-4wide", 4, 96, 48, 24, 4, 3),
    ("huge-6wide", 6, 192, 64, 32, 6, 4),
]


def tier_config(tier: tuple, num_checkers: int) -> SystemConfig:
    """A SystemConfig for one main-core tier with ``num_checkers``."""
    _name, width, rob, iq, lsq, int_alus, fp_alus = tier
    base = default_config()
    main = replace(
        base.main_core,
        fetch_width=width, commit_width=width, rob_entries=rob,
        iq_entries=iq, lq_entries=lsq, sq_entries=lsq,
        int_alus=int_alus, fp_alus=fp_alus,
    )
    # keep per-checker segment size constant: the log grows with checkers
    log_bytes = base.detection.segment_bytes(12) * num_checkers
    cfg = replace(base, main_core=main)
    cfg = cfg.with_checker_cores(num_checkers).with_log(
        log_bytes, base.detection.instruction_timeout)
    return cfg.validate()


def main_core_area_mm2(width: int) -> float:
    """OoO core area grows ~quadratically with issue width (wakeup/select
    and bypass networks): normalised to the A57-class 3-wide point."""
    return A57_AREA_MM2_20NM * (width / 3.0) ** 2


@dataclass(frozen=True)
class TierResult:
    """Outcome of sizing detection hardware for one core tier."""

    name: str
    width: int
    checkers_needed: int
    slowdown: float
    main_core_mm2: float
    checker_mm2: float

    @property
    def area_overhead(self) -> float:
        return self.checker_mm2 / self.main_core_mm2


def size_tier(trace: Trace, tier: tuple, max_slowdown: float = 1.06,
              candidates: tuple[int, ...] = (6, 12, 18, 24)) -> TierResult:
    """Find the smallest checker count keeping ``trace`` under budget."""
    name, width = tier[0], tier[1]
    chosen = candidates[-1]
    slowdown = float("inf")
    base = run_unprotected(trace, tier_config(tier, 12))
    for count in candidates:
        cfg = tier_config(tier, count)
        det = run_with_detection(trace, cfg)
        slow = det.main_cycles / base.cycles
        if slow <= max_slowdown:
            chosen, slowdown = count, slow
            break
    else:
        cfg = tier_config(tier, chosen)
        det = run_with_detection(trace, cfg)
        slowdown = det.main_cycles / base.cycles
    checker_area = chosen * ROCKET_AREA_MM2_40NM * NODE_SCALE_40_TO_20
    return TierResult(
        name=name, width=width, checkers_needed=chosen, slowdown=slowdown,
        main_core_mm2=main_core_area_mm2(width), checker_mm2=checker_area,
    )
