"""Serialisable result records for campaigns and figure harnesses.

Every record here is a frozen dataclass with a stable dict/JSON
round-trip, so campaign results can be cached on disk, shipped between
worker processes, and compared byte-for-byte across runs.  The canonical
JSON encoding (sorted keys, no whitespace) is the determinism contract:
a campaign run serially, in parallel, or replayed from a warm cache must
produce identical bytes for identical jobs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields


def canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, minimal separators.

    Identical payloads serialise to identical bytes regardless of dict
    construction order or worker count — the byte-identity contract of
    the campaign cache.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunSummary:
    """One benchmark × configuration data point (the figure-table cell)."""

    benchmark: str
    slowdown: float
    mean_delay_ns: float
    max_delay_ns: float
    base_cycles: int
    det_cycles: int


@dataclass(frozen=True)
class BaselineRecord:
    """Unprotected main-core timing — the denominator of every figure."""

    benchmark: str
    scale: str
    config_key: str
    cycles: int
    instructions: int
    system_cycles: int


@dataclass(frozen=True)
class RunRecord:
    """A full fault-free detection run, rich enough to rebuild the
    per-run :class:`~repro.detection.system.DetectionReport` views the
    figure harness consumes (delay distribution, closure accounting,
    stall breakdown)."""

    benchmark: str
    scale: str
    config_key: str
    main_cycles: int
    system_cycles: int
    instructions: int
    delays_ns: tuple[float, ...]
    segments_checked: int
    entries_checked: int
    closes_by_reason: tuple[tuple[str, int], ...]
    checkpoints_taken: int
    checkpoint_stall_cycles: int
    log_full_stall_cycles: int
    checker_busy_ticks: tuple[int, ...]
    all_checks_done_tick: int
    detected: bool

    def mean_delay_ns(self) -> float:
        return (sum(self.delays_ns) / len(self.delays_ns)
                if self.delays_ns else 0.0)

    def max_delay_ns(self) -> float:
        return max(self.delays_ns) if self.delays_ns else 0.0


@dataclass(frozen=True)
class SchemeRunResult:
    """One benchmark timed under one protection scheme — the unified
    record every registered :class:`repro.schemes.base.ProtectionScheme`
    produces for a ``baseline``-kind campaign job.

    Carries both the measured timing (cycles vs. the unprotected core)
    and the scheme's Figure 1(d) comparison row plus capability flags,
    so a cross-scheme sweep is a pure function of these records.
    """

    scheme: str
    benchmark: str
    scale: str
    config_key: str
    cycles: int
    base_cycles: int
    instructions: int
    system_cycles: int
    slowdown: float
    #: typical error-detection latency in nanoseconds (None = no detection)
    detection_latency_ns: float | None
    area_overhead: float
    energy_overhead: float
    detects_faults: bool
    covers_hard_faults: bool
    supports_recovery: bool


#: Classification of one fault-injection trial (§IV-I's coverage buckets).
FAULT_OUTCOMES = ("not_activated", "masked", "detected", "escaped")


@dataclass(frozen=True)
class CoverageRecord:
    """One fault-injection trial, classified.

    ``escaped`` is the outcome the paper's coverage argument forbids:
    architecturally visible corruption that no check caught (SDC).
    """

    benchmark: str
    scale: str
    config_key: str
    site: str
    seq: int
    bit: int
    activated: bool
    outcome: str
    #: segment-close-to-check latency of the first event, in microseconds
    detect_latency_us: float | None
    first_error_segment: int | None
    first_error_entry: int | None
    #: protection scheme that classified the trial
    scheme: str = "detection"


@dataclass(frozen=True)
class FaultBatchRecord:
    """One batched fault-injection job: a whole grid cell of trials
    evaluated in one pass over a single golden trace.

    ``records`` holds one :class:`CoverageRecord` *as its tagged dict*
    per injected fault, in the cell's fault order — byte-identical to
    what the same faults produce as individual ``fault`` jobs, so any
    consumer may flatten a batch into per-fault records and forget the
    batching ever happened.
    """

    benchmark: str
    scale: str
    config_key: str
    #: per-fault CoverageRecord dicts, in the cell's fault order
    records: tuple[dict, ...]
    #: protection scheme that classified the trials
    scheme: str = "detection"


@dataclass(frozen=True)
class RecoveryRecord:
    """One detect→rollback→re-execute trial (the recovery extension)."""

    benchmark: str
    scale: str
    config_key: str
    site: str
    seq: int
    bit: int
    activated: bool
    detected: bool
    rollback_seq: int | None
    replayed_instructions: int
    recovered: bool
    state_correct: bool
    trace_len: int
    #: protection scheme that drove the detect→rollback→re-execute loop
    scheme: str = "detection"


@dataclass(frozen=True)
class JobLease:
    """A worker's exclusive, time-bounded claim on one manifest job.

    Lease envelopes are the only mutable coordination state of a
    distributed campaign: they are created atomically (``link(2)`` of a
    fully written temp file) so exactly one worker wins a job, and they
    carry a wall-clock expiry so a crashed worker's jobs return to the
    pending pool once ``expires_at`` passes.  Hosts sharing a manifest
    are expected to have loosely synchronised clocks (NTP-grade skew is
    far below any sensible TTL).
    """

    key: str
    worker: str
    acquired_at: float
    expires_at: float
    #: how many times this job has been leased (1 = first attempt; each
    #: reap of an expired lease increments it)
    attempt: int = 1


@dataclass(frozen=True)
class JobFailure:
    """A permanently failed manifest job: the envelope written under
    ``failed/`` when a worker's execution raised.  Failed jobs leave the
    pending pool (no retry storm); ``campaign-worker --retry-failed``
    clears the envelopes to re-queue them."""

    key: str
    worker: str
    error: str
    attempt: int = 1


_RECORD_TYPES = {
    cls.__name__: cls
    for cls in (BaselineRecord, RunRecord, CoverageRecord, FaultBatchRecord,
                RecoveryRecord, RunSummary, SchemeRunResult, JobLease,
                JobFailure)
}

#: Record fields that round-trip through JSON as lists but are tuples in
#: the frozen dataclasses.
_TUPLE_FIELDS = {"delays_ns", "checker_busy_ticks", "records"}


def record_to_dict(record) -> dict:
    """Record → plain dict tagged with its type, ready for JSON."""
    payload = asdict(record)
    for name in _TUPLE_FIELDS & payload.keys():
        payload[name] = list(payload[name])
    closes = payload.get("closes_by_reason")
    if closes is not None:
        payload["closes_by_reason"] = [list(pair) for pair in closes]
    payload["record_type"] = type(record).__name__
    return payload


def record_from_dict(payload: dict):
    """Inverse of :func:`record_to_dict`."""
    data = dict(payload)
    type_name = data.pop("record_type")
    cls = _RECORD_TYPES[type_name]
    names = {f.name for f in fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise ValueError(f"{type_name} record has unknown fields {sorted(unknown)}")
    for name in _TUPLE_FIELDS & data.keys():
        data[name] = tuple(data[name])
    if "closes_by_reason" in data:
        data["closes_by_reason"] = tuple(
            (str(reason), int(count))
            for reason, count in data["closes_by_reason"])
    return cls(**data)


def record_to_json(record) -> str:
    return canonical_json(record_to_dict(record))


def record_from_json(text: str):
    return record_from_dict(json.loads(text))
