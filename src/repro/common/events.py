"""A small deterministic discrete-event kernel.

The detection co-simulation (:mod:`repro.detection.system`) advances the
main core's commit stream instruction by instruction, but checker-core
completions, interrupt arrivals and segment reclamations happen at arbitrary
times in between.  This heap-based queue keeps those future events ordered.

Determinism matters: events scheduled for the same tick pop in insertion
order (stable FIFO tie-break), so two runs of the same experiment produce
bit-identical results.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator


class EventQueue:
    """A time-ordered queue of ``(time, payload)`` events."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: int, payload: Any) -> None:
        """Add ``payload`` to fire at absolute ``time`` ticks."""
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def peek_time(self) -> int | None:
        """Time of the earliest pending event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> tuple[int, Any]:
        """Remove and return the earliest event as ``(time, payload)``."""
        time, _seq, payload = heapq.heappop(self._heap)
        return time, payload

    def pop_until(self, time: int) -> Iterator[tuple[int, Any]]:
        """Yield and remove every event with time <= ``time``, in order."""
        while self._heap and self._heap[0][0] <= time:
            yield self.pop()

    def clear(self) -> None:
        self._heap.clear()


class Simulator:
    """A minimal run-to-completion event loop over :class:`EventQueue`.

    Payloads must be callables taking the fire time; they may schedule
    further events through the simulator.  Used by tests and by the
    interrupt generator; the main detection co-simulation drives its
    EventQueue directly for speed.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0

    def at(self, time: int, action: Callable[[int], None]) -> None:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        self.queue.schedule(time, action)

    def after(self, delay: int, action: Callable[[int], None]) -> None:
        self.at(self.now + delay, action)

    def run(self, until: int | None = None) -> int:
        """Run until the queue drains or past ``until``; returns final time."""
        while self.queue:
            next_time = self.queue.peek_time()
            assert next_time is not None
            if until is not None and next_time > until:
                break
            time, action = self.queue.pop()
            self.now = time
            action(time)
        return self.now
