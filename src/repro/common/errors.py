"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError`, so that
callers can distinguish library failures from programming errors.  Detection
*events* (a checker discovering a fault) are not exceptions — they are data,
reported through :class:`repro.detection.system.DetectionReport` — but misuse
of the simulator (bad configuration, malformed programs, out-of-range
accesses) raises the types below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class AssemblyError(ReproError):
    """A program could not be assembled (unknown opcode, bad operand,
    undefined label, duplicate label, ...)."""


class ExecutionError(ReproError):
    """The functional executor encountered an illegal situation (unaligned
    access, unmapped instruction address, division by zero, runaway
    execution past the instruction budget)."""


class MemoryAccessError(ExecutionError):
    """An access violated the memory model (misalignment, negative address)."""


class SimulationError(ReproError):
    """The timing simulation reached an inconsistent internal state."""


class FaultSpecError(ReproError):
    """A fault specification cannot be applied (e.g. targeting a dynamic
    instruction index beyond the end of the trace)."""
