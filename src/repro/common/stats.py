"""Statistics primitives used throughout the simulator.

The evaluation figures need running means/maxima (Figures 11, 12),
percentiles (the paper's "99.9% of loads and stores checked within 5000 ns"
claim) and density estimates (Figure 8).  Everything here is deterministic
and allocation-light so it can sit on the simulator's hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class RunningStats:
    """Single-pass mean/variance/min/max accumulator (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> None:
        """Fold ``other`` into this accumulator (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class Samples:
    """A full sample set with percentile and density support.

    Used where the figure needs the distribution itself (Figure 8's density
    plot, the 99.9th-percentile claim).  Stores raw values; the simulator
    produces at most a few hundred thousand per run, which is fine.
    """

    __slots__ = ("_values", "_sorted")

    def __init__(self) -> None:
        self._values: list[float] = []
        self._sorted = True

    def add(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    def extend(self, values: list[float]) -> None:
        for v in values:
            self.add(v)

    def __len__(self) -> int:
        return len(self._values)

    def snapshot(self) -> "Samples":
        """Independent copy sharing nothing mutable (fork support)."""
        clone = Samples.__new__(Samples)
        clone._values = self._values[:]
        clone._sorted = self._sorted
        return clone

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def _ensure_sorted(self) -> list[float]:
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values

    def mean(self) -> float:
        return sum(self._values) / len(self._values) if self._values else 0.0

    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        values = self._ensure_sorted()
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        rank = (p / 100.0) * (len(values) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(values) - 1)
        if values[lo] == values[hi]:
            # avoid float interpolation drift on equal neighbours
            return values[lo]
        frac = rank - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples <= threshold (e.g. the 5000 ns coverage claim)."""
        values = self._ensure_sorted()
        if not values:
            return 0.0
        # binary search for rightmost index with value <= threshold
        lo, hi = 0, len(values)
        while lo < hi:
            mid = (lo + hi) // 2
            if values[mid] <= threshold:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(values)

    def density(self, bins: int = 50, lo: float | None = None,
                hi: float | None = None) -> list[tuple[float, float]]:
        """Histogram-based density estimate: (bin centre, density) pairs.

        The densities integrate to ~1 over [lo, hi], matching the y-axis of
        the paper's Figure 8.
        """
        values = self._ensure_sorted()
        if not values:
            return []
        if lo is None:
            lo = values[0]
        if hi is None:
            hi = values[-1]
        if hi <= lo:
            hi = lo + 1.0
        width = (hi - lo) / bins
        counts = [0] * bins
        covered = 0
        for v in values:
            if lo <= v <= hi:
                idx = min(int((v - lo) / width), bins - 1)
                counts[idx] += 1
                covered += 1
        if covered == 0:
            return [(lo + (i + 0.5) * width, 0.0) for i in range(bins)]
        return [
            (lo + (i + 0.5) * width, counts[i] / (covered * width))
            for i in range(bins)
        ]


@dataclass
class Counter:
    """A named bag of integer event counters."""

    counts: dict[str, int] = field(default_factory=dict)

    def inc(self, name: str, by: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + by

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def merge(self, other: "Counter") -> None:
        for name, value in other.counts.items():
            self.inc(name, value)


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, used for suite-level slowdown summaries."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
