"""Deterministic random-number helpers.

Every stochastic element of the simulator (workload data, fault sites,
interrupt arrivals) draws from an explicitly seeded generator so that
experiments are exactly reproducible.  We use Python's Mersenne Twister via
``random.Random`` — speed is adequate and the stream is stable across
platforms and Python versions for the methods we use.
"""

from __future__ import annotations

import hashlib
import random

#: Seed used by the benchmark suite when none is given, so published
#: numbers are reproducible.
DEFAULT_SEED = 0xDE7EC7


def make_rng(seed: int | None = None) -> random.Random:
    """Create a deterministic generator; ``None`` means the default seed."""
    return random.Random(DEFAULT_SEED if seed is None else seed)


def derive(rng_or_seed: random.Random | int | None, salt: str) -> random.Random:
    """Derive an independent, deterministic sub-stream.

    Sub-streams keep unrelated consumers (e.g. workload data vs. fault
    sites) from perturbing each other when one of them changes how many
    numbers it draws.

    The sub-seed comes from a SHA-256 content hash, **not** Python's
    builtin ``hash()``: string hashing is randomised per process
    (PYTHONHASHSEED), and derived streams must be identical across
    processes — campaign workers and the on-disk run cache key results
    by fault positions drawn from these streams.
    """
    if isinstance(rng_or_seed, random.Random):
        base = rng_or_seed.getrandbits(64)
    elif rng_or_seed is None:
        base = DEFAULT_SEED
    else:
        base = rng_or_seed
    digest = hashlib.sha256(f"{base}:{salt}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))
