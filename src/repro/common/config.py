"""Configuration dataclasses reproducing Table I of the paper.

Every structural parameter of the simulated system lives here, with the
paper's defaults.  The experiment harness varies these (checker frequency,
log size, instruction timeout, number of checker cores) to regenerate the
parameter-sensitivity figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError
from repro.common.time import CHECKER_CLOCK_MHZ, MAIN_CLOCK_MHZ, Clock

#: Bytes occupied by one load-store log entry: a 64-bit address plus a
#: 64-bit value (loads record both so the checker can validate the address
#: and consume the value; stores record both so the checker can validate
#: address and data).
LOG_ENTRY_BYTES = 16


@dataclass(frozen=True)
class MainCoreConfig:
    """The high-performance out-of-order core (Table I, top)."""

    freq_mhz: float = MAIN_CLOCK_MHZ
    fetch_width: int = 3
    commit_width: int = 3
    rob_entries: int = 40
    iq_entries: int = 32
    lq_entries: int = 16
    sq_entries: int = 16
    int_regs: int = 128
    fp_regs: int = 128
    int_alus: int = 3
    fp_alus: int = 2
    muldiv_alus: int = 1
    #: Cycles commit pauses while an architectural register checkpoint is
    #: copied out (Table I: 16 cycles).
    checkpoint_latency_cycles: int = 16
    #: Pipeline refill penalty after a branch misprediction, in cycles.
    mispredict_penalty_cycles: int = 12

    def clock(self) -> Clock:
        return Clock.from_mhz(self.freq_mhz)

    def validate(self) -> None:
        if self.fetch_width < 1 or self.commit_width < 1:
            raise ConfigError("core widths must be >= 1")
        if self.rob_entries < self.commit_width:
            raise ConfigError("ROB must hold at least one commit group")
        if min(self.int_alus, self.fp_alus, self.muldiv_alus) < 1:
            raise ConfigError("each functional-unit class needs >= 1 unit")
        if self.checkpoint_latency_cycles < 0:
            raise ConfigError("checkpoint latency cannot be negative")


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Tournament predictor (Table I): local/global/chooser + BTB + RAS."""

    local_entries: int = 2048
    local_history_bits: int = 11
    global_entries: int = 8192
    chooser_entries: int = 2048
    btb_entries: int = 2048
    ras_entries: int = 16

    def validate(self) -> None:
        for name in ("local_entries", "global_entries", "chooser_entries", "btb_entries"):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise ConfigError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class CacheConfig:
    """One level of set-associative cache."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency_cycles: int = 2
    mshrs: int = 6

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    def validate(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by assoc*line "
                f"({self.assoc}*{self.line_bytes})"
            )
        sets = self.num_sets
        if sets < 1 or sets & (sets - 1):
            raise ConfigError(f"cache set count must be a power of two, got {sets}")


@dataclass(frozen=True)
class DRAMConfig:
    """DDR3-1600 11-11-11-28 timing (Table I), expressed as access latencies
    seen by the L2 miss path, in nanoseconds."""

    #: Row-buffer hit latency (CL only).
    row_hit_ns: float = 13.75
    #: Row-buffer miss (tRCD + CL).
    row_miss_ns: float = 27.5
    #: Row-buffer conflict (tRP + tRCD + CL).
    row_conflict_ns: float = 41.25
    #: Number of row-buffer-tracked banks.
    banks: int = 8
    #: Bytes per DRAM row.
    row_bytes: int = 8192

    def validate(self) -> None:
        if not (0 < self.row_hit_ns <= self.row_miss_ns <= self.row_conflict_ns):
            raise ConfigError("DRAM latencies must satisfy hit <= miss <= conflict")
        if self.banks < 1:
            raise ConfigError("DRAM needs at least one bank")


@dataclass(frozen=True)
class MemoryConfig:
    """The main core's memory hierarchy (Table I, middle)."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, assoc=2, hit_latency_cycles=2, mshrs=6
        )
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, assoc=2, hit_latency_cycles=2, mshrs=6
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=1024 * 1024, assoc=16, hit_latency_cycles=12, mshrs=16
        )
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    #: Whether the L2 runs the stride prefetcher (Table I: yes).
    l2_stride_prefetcher: bool = True

    def validate(self) -> None:
        self.l1i.validate()
        self.l1d.validate()
        self.l2.validate()
        self.dram.validate()


@dataclass(frozen=True)
class CheckerConfig:
    """The set of small in-order checker cores (Table I, bottom)."""

    num_cores: int = 12
    freq_mhz: float = CHECKER_CLOCK_MHZ
    pipeline_stages: int = 4
    #: Per-core private L0 instruction cache.
    l0i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=2 * 1024, assoc=2, hit_latency_cycles=1, mshrs=1
        )
    )
    #: L1 instruction cache shared between all checker cores.
    shared_l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=16 * 1024, assoc=4, hit_latency_cycles=4, mshrs=4
        )
    )
    #: L0 miss that also misses the shared L1I and goes to the main L2, in
    #: checker cycles.
    l2_fetch_latency_cycles: int = 12

    def clock(self) -> Clock:
        return Clock.from_mhz(self.freq_mhz)

    def validate(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("need at least one checker core")
        if self.pipeline_stages < 1:
            raise ConfigError("pipeline needs at least one stage")
        self.l0i.validate()
        self.shared_l1i.validate()
        Clock.from_mhz(self.freq_mhz)


@dataclass(frozen=True)
class DetectionConfig:
    """The load-store log and detection policy (Table I: 36 KiB log, 3 KiB
    per core, 5,000-instruction timeout)."""

    #: Total load-store log size in bytes, split evenly between segments.
    log_bytes: int = 36 * 1024
    #: Maximum committed instructions per segment before an early checkpoint
    #: is forced.  ``None`` disables the timeout (used by Figures 10/12).
    instruction_timeout: int | None = 5000
    #: Model the load forwarding unit (ablation knob; the paper always has
    #: it).  When disabled, load values are snapshotted at commit instead of
    #: at access, re-opening the window of vulnerability.
    load_forwarding_unit: bool = True
    #: When True, checker cores are treated as infinitely fast and the only
    #: detection cost is register checkpointing.  Used for Figure 10.
    ideal_checkers: bool = False

    def segment_bytes(self, num_cores: int) -> int:
        return self.log_bytes // num_cores

    def segment_entries(self, num_cores: int) -> int:
        """Capacity of one log segment, in load/store entries."""
        entries = self.segment_bytes(num_cores) // LOG_ENTRY_BYTES
        if entries < 1:
            raise ConfigError(
                f"log of {self.log_bytes} B split {num_cores} ways leaves "
                f"no room for even one {LOG_ENTRY_BYTES} B entry per segment"
            )
        return entries

    def validate(self, num_cores: int) -> None:
        if self.log_bytes <= 0:
            raise ConfigError("log size must be positive")
        if self.instruction_timeout is not None and self.instruction_timeout < 1:
            raise ConfigError("instruction timeout must be >= 1 or None")
        self.segment_entries(num_cores)


@dataclass(frozen=True)
class SystemConfig:
    """Complete system configuration (Table I)."""

    main_core: MainCoreConfig = field(default_factory=MainCoreConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    checker: CheckerConfig = field(default_factory=CheckerConfig)
    detection: DetectionConfig = field(default_factory=DetectionConfig)

    def validate(self) -> "SystemConfig":
        """Validate every sub-config; returns self for chaining."""
        self.main_core.validate()
        self.branch.validate()
        self.memory.validate()
        self.checker.validate()
        self.detection.validate(self.checker.num_cores)
        return self

    # -- convenience constructors used by the sweep harness ---------------

    def with_checker_freq(self, freq_mhz: float) -> "SystemConfig":
        return replace(self, checker=replace(self.checker, freq_mhz=freq_mhz))

    def with_checker_cores(self, num_cores: int) -> "SystemConfig":
        return replace(self, checker=replace(self.checker, num_cores=num_cores))

    def with_log(self, log_bytes: int, instruction_timeout: int | None) -> "SystemConfig":
        return replace(
            self,
            detection=replace(
                self.detection,
                log_bytes=log_bytes,
                instruction_timeout=instruction_timeout,
            ),
        )

    def with_ideal_checkers(self, ideal: bool = True) -> "SystemConfig":
        return replace(self, detection=replace(self.detection, ideal_checkers=ideal))


def default_config() -> SystemConfig:
    """The paper's Table I configuration."""
    return SystemConfig().validate()


def config_from_dict(data: dict) -> SystemConfig:
    """Rebuild a validated :class:`SystemConfig` from ``asdict()`` output.

    The inverse of :func:`dataclasses.asdict` for the nested config tree:
    campaign manifests persist each job's full configuration as plain
    JSON, and worker processes on other hosts reconstruct it from this.
    Round-trip contract: ``config_from_dict(asdict(cfg)) == cfg``.
    """
    memory = data["memory"]
    checker = dict(data["checker"])
    checker["l0i"] = CacheConfig(**checker["l0i"])
    checker["shared_l1i"] = CacheConfig(**checker["shared_l1i"])
    return SystemConfig(
        main_core=MainCoreConfig(**data["main_core"]),
        branch=BranchPredictorConfig(**data["branch"]),
        memory=MemoryConfig(
            l1i=CacheConfig(**memory["l1i"]),
            l1d=CacheConfig(**memory["l1d"]),
            l2=CacheConfig(**memory["l2"]),
            dram=DRAMConfig(**memory["dram"]),
            l2_stride_prefetcher=memory["l2_stride_prefetcher"],
        ),
        checker=CheckerConfig(**checker),
        detection=DetectionConfig(**data["detection"]),
    ).validate()


def table1_rows() -> list[tuple[str, str]]:
    """Render Table I as (parameter, value) rows, for the config bench."""
    cfg = default_config()
    mc, ck, det = cfg.main_core, cfg.checker, cfg.detection
    mem = cfg.memory
    timeout = "inf" if det.instruction_timeout is None else str(det.instruction_timeout)
    return [
        ("Main core", f"{mc.fetch_width}-wide, out-of-order, {mc.freq_mhz / 1000:.1f}GHz"),
        (
            "Pipeline",
            f"{mc.rob_entries}-entry ROB, {mc.iq_entries}-entry IQ, "
            f"{mc.lq_entries}-entry LQ, {mc.sq_entries}-entry SQ, "
            f"{mc.int_regs} Int / {mc.fp_regs} FP registers, "
            f"{mc.int_alus} Int ALUs, {mc.fp_alus} FP ALUs, {mc.muldiv_alus} Mult/Div ALU",
        ),
        (
            "Branch pred.",
            f"{cfg.branch.local_entries}-entry local, {cfg.branch.global_entries}-entry "
            f"global, {cfg.branch.chooser_entries}-entry chooser, "
            f"{cfg.branch.btb_entries}-entry BTB, {cfg.branch.ras_entries}-entry RAS",
        ),
        ("Reg. checkpoint", f"{mc.checkpoint_latency_cycles} cycles latency"),
        ("L1 ICache", f"{mem.l1i.size_bytes // 1024}KiB, {mem.l1i.assoc}-way, "
                      f"{mem.l1i.hit_latency_cycles}-cycle hit lat, {mem.l1i.mshrs} MSHRs"),
        ("L1 DCache", f"{mem.l1d.size_bytes // 1024}KiB, {mem.l1d.assoc}-way, "
                      f"{mem.l1d.hit_latency_cycles}-cycle hit lat, {mem.l1d.mshrs} MSHRs"),
        ("L2 Cache", f"{mem.l2.size_bytes // 1024}KiB, {mem.l2.assoc}-way, "
                     f"{mem.l2.hit_latency_cycles}-cycle hit lat, {mem.l2.mshrs} MSHRs, "
                     f"stride prefetcher"),
        ("Memory", "DDR3-1600 11-11-11-28 800MHz"),
        ("Checker cores", f"{ck.num_cores}x in-order, {ck.pipeline_stages} stage pipeline, "
                          f"{ck.freq_mhz / 1000:g}GHz"),
        ("Log size", f"{det.log_bytes // 1024}KiB: "
                     f"{det.segment_bytes(ck.num_cores) // 1024}KiB per core, "
                     f"{timeout} instruction timeout"),
        ("Checker cache", f"{ck.l0i.size_bytes // 1024}KiB L0 ICache per core, "
                          f"{ck.shared_l1i.size_bytes // 1024}KiB shared L1"),
    ]
