"""Shared substrate: time base, configuration, statistics, events, errors."""

from repro.common.config import (
    BranchPredictorConfig,
    CacheConfig,
    CheckerConfig,
    DetectionConfig,
    DRAMConfig,
    MainCoreConfig,
    MemoryConfig,
    SystemConfig,
    default_config,
)
from repro.common.errors import (
    AssemblyError,
    ConfigError,
    ExecutionError,
    FaultSpecError,
    MemoryAccessError,
    ReproError,
    SimulationError,
)
from repro.common.events import EventQueue, Simulator
from repro.common.rng import DEFAULT_SEED, derive, make_rng
from repro.common.stats import Counter, RunningStats, Samples, geometric_mean
from repro.common.time import (
    TICKS_PER_NS,
    TICKS_PER_US,
    Clock,
    ns_to_ticks,
    ticks_to_ns,
    ticks_to_us,
)

__all__ = [
    "AssemblyError",
    "BranchPredictorConfig",
    "CacheConfig",
    "CheckerConfig",
    "Clock",
    "ConfigError",
    "Counter",
    "DEFAULT_SEED",
    "DRAMConfig",
    "DetectionConfig",
    "EventQueue",
    "ExecutionError",
    "FaultSpecError",
    "MainCoreConfig",
    "MemoryAccessError",
    "MemoryConfig",
    "ReproError",
    "RunningStats",
    "Samples",
    "SimulationError",
    "Simulator",
    "SystemConfig",
    "TICKS_PER_NS",
    "TICKS_PER_US",
    "default_config",
    "derive",
    "geometric_mean",
    "make_rng",
    "ns_to_ticks",
    "ticks_to_ns",
    "ticks_to_us",
]
