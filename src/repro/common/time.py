"""Deterministic simulated-time base.

All timing in the simulator is kept in integer *ticks*.  One tick is 1/16 of
a nanosecond (62.5 ps), chosen so that every clock frequency used by the
paper maps to an exact integer period:

=========  ==================  ============
Frequency  Period              Ticks/cycle
=========  ==================  ============
3.2 GHz    0.3125 ns           5
2 GHz      0.5 ns              8
1 GHz      1 ns                16
500 MHz    2 ns                32
250 MHz    4 ns                64
125 MHz    8 ns                128
=========  ==================  ============

Using integers avoids any floating-point drift when converting between the
main core's clock domain and the checker cores' clock domain, which the
detection co-simulation does constantly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

#: Number of ticks per nanosecond.  62.5 ps resolution.
TICKS_PER_NS = 16

#: Number of ticks per microsecond.
TICKS_PER_US = TICKS_PER_NS * 1000


def ns_to_ticks(ns: float) -> int:
    """Convert nanoseconds to ticks, rounding to the nearest tick."""
    return round(ns * TICKS_PER_NS)


def ticks_to_ns(ticks: int) -> float:
    """Convert ticks to nanoseconds."""
    return ticks / TICKS_PER_NS

def ticks_to_us(ticks: int) -> float:
    """Convert ticks to microseconds."""
    return ticks / TICKS_PER_US


@dataclass(frozen=True)
class Clock:
    """A clock domain defined by its frequency.

    The clock's period must be an exact whole number of ticks; the
    frequencies used throughout the paper (125 MHz ... 3.2 GHz) all satisfy
    this.  Construct with :meth:`from_mhz`.
    """

    freq_mhz: float
    period_ticks: int

    @classmethod
    def from_mhz(cls, freq_mhz: float) -> "Clock":
        """Create a clock from a frequency in MHz.

        Raises :class:`ConfigError` if the period is not an exact number of
        ticks (i.e. the frequency does not divide 16 GHz).
        """
        if freq_mhz <= 0:
            raise ConfigError(f"clock frequency must be positive, got {freq_mhz} MHz")
        period = 1000.0 * TICKS_PER_NS / freq_mhz
        period_int = round(period)
        if abs(period - period_int) > 1e-9 or period_int == 0:
            raise ConfigError(
                f"{freq_mhz} MHz does not have an integer tick period "
                f"(got {period} ticks); pick a divisor of 16 GHz"
            )
        return cls(freq_mhz=freq_mhz, period_ticks=period_int)

    def cycles_to_ticks(self, cycles: int) -> int:
        """Number of ticks spanned by ``cycles`` clock cycles."""
        return cycles * self.period_ticks

    def ticks_to_cycles_ceil(self, ticks: int) -> int:
        """Smallest cycle count covering ``ticks`` ticks."""
        return -(-ticks // self.period_ticks)

    def next_edge(self, ticks: int) -> int:
        """The first clock edge at or after absolute time ``ticks``."""
        return -(-ticks // self.period_ticks) * self.period_ticks


#: The main core's clock (Table I: 3.2 GHz).
MAIN_CLOCK_MHZ = 3200.0

#: The default checker cores' clock (Table I: 1 GHz).
CHECKER_CLOCK_MHZ = 1000.0
