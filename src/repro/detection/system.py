"""The parallel error detection system (paper §IV, Figure 3).

:class:`ParallelErrorDetection` attaches to the out-of-order core's commit
stream (as a :class:`repro.core.ooo_core.CommitHook`) and co-simulates:

* the **load forwarding unit** duplicating loads at access and forwarding
  them into the log at commit (§IV-C);
* the **partitioned load-store log**: entries append in commit order; a
  segment closes on fill / instruction timeout / interrupt / termination
  (§IV-D, §IV-G, §IV-H, §IV-J);
* **register checkpoints** at each closure, pausing commit for the Table I
  16 cycles (§IV-E);
* **back-pressure**: when the next log segment's slot is still being
  checked, the main core's commit stalls until the checker frees it (the
  paper's "if all log segments are full, we stall the main core");
* **checker dispatch**: each closed segment is functionally replayed
  (:mod:`repro.detection.checker`) and timed on its in-order core model in
  the checker clock domain, producing per-entry check timestamps;
* **detection-delay accounting**: for every load/store, the time from
  main-core commit to its check on a checker core — the metric of
  Figures 8, 11 and 12.

The hook never looks at an oracle: errors surface only through the replay's
hardware comparisons, and the report records when each check completed.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from repro.common.config import SystemConfig
from repro.common.stats import Samples
from repro.common.time import ticks_to_ns
from repro.core.inorder_core import InOrderCoreModel
from repro.core.ooo_core import CommitHook, CoreResult, OoOCore
from repro.core.timing import (
    config_key,
    resolve_timing_mode,
    time_bare,
    timing_model,
    timing_record,
    timing_splice_enabled,
)
from repro.detection.checker import CheckError, SegmentChecker
from repro.detection.checkpoint import ArchStateTracker, RegisterCheckpoint
from repro.detection.faults import FaultSite, TransientFault
from repro.detection.lfu import LoadForwardingUnit
from repro.detection.lslog import CloseReason, LogEntry, Segment, SegmentBuilder
from repro.isa.executor import LOAD, Trace
from repro.isa.meta import program_meta
from repro.isa.program import Program
from repro.memory.hierarchy import CheckerICaches


@dataclass(frozen=True)
class DetectionEvent:
    """One error reported by a checker core."""

    error: CheckError
    #: absolute tick at which the failing check completed
    detect_tick: int
    #: tick the offending segment closed (checkpoint taken)
    segment_close_tick: int

    @property
    def detect_ns(self) -> float:
        return ticks_to_ns(self.detect_tick)


@dataclass
class DetectionReport:
    """Everything the detection system observed during one run."""

    #: per-load/store delay between commit and check, in nanoseconds
    delays_ns: Samples = field(default_factory=Samples)
    events: list[DetectionEvent] = field(default_factory=list)
    segments_checked: int = 0
    entries_checked: int = 0
    closes_by_reason: dict[str, int] = field(default_factory=dict)
    #: cycles the main core spent stalled waiting for a free log segment
    log_full_stall_cycles: int = 0
    #: cycles commit paused for register checkpoint copies
    checkpoint_stall_cycles: int = 0
    checkpoints_taken: int = 0
    #: busy ticks per checker core (for utilisation)
    checker_busy_ticks: list[int] = field(default_factory=list)
    #: tick the last outstanding check finished (program termination is
    #: held back until then — §IV-H)
    all_checks_done_tick: int = 0

    @property
    def detected(self) -> bool:
        return bool(self.events)

    @property
    def first_event(self) -> DetectionEvent | None:
        return min(self.events, key=lambda e: e.detect_tick) \
            if self.events else None

    def first_error_position(self) -> tuple[int, int | None] | None:
        """The *program-order-first* error: (segment index, entry index).

        The paper (§IV): once every check up to a point completes, the
        system can identify the position of the first error — later
        errors may be consequences of it.  Entry index is None when the
        failing check was the register-checkpoint validation or a
        stream-level divergence.
        """
        if not self.events:
            return None
        first = min(
            self.events,
            key=lambda e: (e.error.segment_index,
                           e.error.entry_index if e.error.entry_index
                           is not None else 1 << 60))
        return first.error.segment_index, first.error.entry_index

    def mean_delay_ns(self) -> float:
        return self.delays_ns.mean()

    def max_delay_ns(self) -> float:
        return self.delays_ns.max()

    def snapshot(self) -> "DetectionReport":
        """Independent copy for a forked continuation.  Flat copies only:
        the :class:`DetectionEvent` records are frozen and shared."""
        return DetectionReport(
            delays_ns=self.delays_ns.snapshot(),
            events=list(self.events),
            segments_checked=self.segments_checked,
            entries_checked=self.entries_checked,
            closes_by_reason=dict(self.closes_by_reason),
            log_full_stall_cycles=self.log_full_stall_cycles,
            checkpoint_stall_cycles=self.checkpoint_stall_cycles,
            checkpoints_taken=self.checkpoints_taken,
            checker_busy_ticks=list(self.checker_busy_ticks),
            all_checks_done_tick=self.all_checks_done_tick,
        )


class ParallelErrorDetection(CommitHook):
    """Co-simulation hook implementing the paper's detection scheme."""

    def __init__(
        self,
        config: SystemConfig,
        program: Program,
        checkpoint_faults: list[TransientFault] | None = None,
        checker_faults: list[TransientFault] | None = None,
        interrupt_seqs: list[int] | None = None,
    ) -> None:
        config.validate()
        self.config = config
        self.program = program
        self.metas = program_meta(program)

        num_cores = config.checker.num_cores
        self.num_cores = num_cores
        self.main_period = config.main_core.clock().period_ticks
        self.checker_period = config.checker.clock().period_ticks
        self.ckpt_cycles = config.main_core.checkpoint_latency_cycles
        self.ideal = config.detection.ideal_checkers
        self.use_lfu = config.detection.load_forwarding_unit

        self.arch = ArchStateTracker()
        self.lfu = LoadForwardingUnit(config.main_core.rob_entries)
        self.builder = SegmentBuilder(
            capacity=config.detection.segment_entries(num_cores),
            timeout=config.detection.instruction_timeout,
            num_slots=num_cores,
            first_checkpoint=self.arch.snapshot(program.entry),
        )
        self.segment_checker = SegmentChecker(
            program, checker_faults=checker_faults)
        self.icaches = CheckerICaches(config.checker)
        self.core_models = [
            InOrderCoreModel(config.checker, self.icaches, core_id)
            for core_id in range(num_cores)
        ]
        #: absolute tick each log slot (and its checker core) frees up
        self.slot_free_tick = [0] * num_cores
        #: pending first-commit gate after a segment closure
        self._commit_gate_tick = 0

        self._checkpoint_faults = {
            f.seq: f for f in (checkpoint_faults or ())
            if f.site is FaultSite.CHECKPOINT
        }
        self._interrupts = sorted(interrupt_seqs or [])
        self._next_interrupt = 0
        self._last_next_pc = program.entry

        self.report = DetectionReport(
            closes_by_reason={r.value: 0 for r in CloseReason},
            checker_busy_ticks=[0] * num_cores,
        )

    # -- checkpointing -------------------------------------------------------

    def _take_checkpoint(self, pc: int) -> RegisterCheckpoint:
        ckpt = self.arch.snapshot(pc)
        fault = self._checkpoint_faults.get(ckpt.index)
        if fault is not None:
            ckpt = ckpt.with_bit_flip(fault.reg, fault.bit)
        self.report.checkpoints_taken += 1
        return ckpt

    # -- CommitHook interface ---------------------------------------------------

    def begin(self, trace: Trace) -> None:
        """Bind to the trace being timed: cache its column references so
        the per-commit callbacks below are pure column reads."""
        if trace.fork_of is not None and not self._checkpoint_faults:
            # fork-point run: segments entirely before the fork seq are
            # clean golden splices — let the checker verify them by
            # column comparison instead of replay.  Corrupted-checkpoint
            # experiments must keep full replay: a flipped checkpoint
            # bit is only caught by the register comparison the fast
            # path elides (CHECKER faults are guarded per segment by the
            # checker itself).
            self.segment_checker.bind_fork(trace, trace.fork_of,
                                           trace.fork_seq)
        self._pcs = trace.pcs
        self._dsts = trace.dsts
        self._mem_off = trace.mem_off
        self._mem_kind = trace.mem_kind
        self._mem_addr = trace.mem_addr
        self._mem_value = trace.mem_value
        self._mem_used = trace.mem_used
        self._total = len(trace)
        self._final_next_pc = trace.final_next_pc

    def clone_shared(self) -> tuple:
        """Immutable structure :meth:`OoOCore.fork` aliases into timing
        snapshots instead of deep-copying: the configuration, program and
        metadata, the program-wide handler table, the bound trace columns
        (mmap-backed memoryviews cannot be deep-copied at all), and the
        checker's trace bindings.  Everything else on the hook is mutable
        per-run state and *is* copied."""
        checker = self.segment_checker
        shared = [self.config, self.program, self.metas, checker.program,
                  checker._steps]
        shared.extend(obj for obj in (checker._trace, checker._golden)
                      if obj is not None)
        for name in ("_pcs", "_dsts", "_mem_off", "_mem_kind", "_mem_addr",
                     "_mem_value", "_mem_used"):
            column = getattr(self, name, None)
            if column is not None:
                shared.append(column)
        return tuple(shared)

    def restore(self, src: "ParallelErrorDetection") -> None:
        """Overwrite this hook with an independent copy of ``src``.

        Immutable structure (config, program, metadata, trace columns,
        the checker's handler table and bindings) is aliased — exactly
        the set :meth:`clone_shared` declares; every mutable co-simulated
        structure is copied via its own flat ``snapshot``/``clone``.
        """
        self.config = src.config
        self.program = src.program
        self.metas = src.metas
        self.num_cores = src.num_cores
        self.main_period = src.main_period
        self.checker_period = src.checker_period
        self.ckpt_cycles = src.ckpt_cycles
        self.ideal = src.ideal
        self.use_lfu = src.use_lfu
        self.arch = src.arch.clone()
        self.lfu = src.lfu.snapshot()
        self.builder = src.builder.snapshot()
        self.segment_checker = src.segment_checker.clone()
        self.icaches = src.icaches.snapshot()
        # the in-order models are stateless (all timing state lives in
        # the icaches), so fresh instances over the copied icaches are
        # exact replacements
        self.core_models = [
            InOrderCoreModel(src.config.checker, self.icaches, core_id)
            for core_id in range(src.num_cores)
        ]
        self.slot_free_tick = src.slot_free_tick[:]
        self._commit_gate_tick = src._commit_gate_tick
        self._checkpoint_faults = dict(src._checkpoint_faults)
        self._interrupts = list(src._interrupts)
        self._next_interrupt = src._next_interrupt
        self._last_next_pc = src._last_next_pc
        self.report = src.report.snapshot()
        for name in ("_pcs", "_dsts", "_mem_off", "_mem_kind", "_mem_addr",
                     "_mem_value", "_mem_used", "_total", "_final_next_pc"):
            if hasattr(src, name):
                setattr(self, name, getattr(src, name))

    def snapshot(self) -> "ParallelErrorDetection":
        """An isolated copy of this hook for a forked continuation
        (overrides the base deepcopy fallback with explicit flat copies,
        pinned byte-identical to it by the fork-identity tests)."""
        clone = ParallelErrorDetection.__new__(ParallelErrorDetection)
        clone.restore(self)
        return clone

    def _next_pc_of(self, seq: int) -> int:
        return (self._pcs[seq + 1] if seq + 1 < self._total
                else self._final_next_pc)

    def pre_commit(self, seq: int, earliest_cycle: int) -> int:
        builder = self.builder
        entry_count = self._mem_off[seq + 1] - self._mem_off[seq]

        if entry_count and builder.will_overflow(entry_count):
            # macro-op rule: close at the boundary *before* this instruction;
            # its entries all go into the next segment (§IV-D)
            close_tick = earliest_cycle * self.main_period
            closed = builder.close(
                CloseReason.FULL, self._take_checkpoint(self._pcs[seq]),
                end_seq=seq, close_tick=close_tick)
            self._dispatch(closed, close_tick)
            earliest_cycle += self.ckpt_cycles
            self.report.checkpoint_stall_cycles += self.ckpt_cycles
            self._arm_commit_gate()

        if self._commit_gate_tick:
            # first commit into a freshly opened segment: its slot must have
            # been released by the checker of its previous occupant
            gate_cycle = -(-self._commit_gate_tick // self.main_period)
            if gate_cycle > earliest_cycle:
                self.report.log_full_stall_cycles += gate_cycle - earliest_cycle
                earliest_cycle = gate_cycle
            self._commit_gate_tick = 0

        return earliest_cycle

    def post_commit(self, seq: int, commit_cycle: int) -> int:
        builder = self.builder
        commit_tick = commit_cycle * self.main_period
        self.arch.apply_dsts(self._dsts[seq])
        next_pc = self._next_pc_of(seq)
        self._last_next_pc = next_pc

        if self._mem_off[seq + 1] - self._mem_off[seq]:
            builder.append(self._log_entries(seq, commit_tick))
        builder.count_instruction()

        reason: CloseReason | None = None
        if builder.is_full():
            reason = CloseReason.FULL
        elif builder.timeout_reached():
            reason = CloseReason.TIMEOUT
        elif (self._next_interrupt < len(self._interrupts)
                and self._interrupts[self._next_interrupt] <= seq):
            self._next_interrupt += 1
            reason = CloseReason.INTERRUPT

        if reason is None:
            return 0

        closed = builder.close(
            reason, self._take_checkpoint(next_pc),
            end_seq=seq + 1, close_tick=commit_tick)
        self._dispatch(closed, commit_tick)
        self.report.checkpoint_stall_cycles += self.ckpt_cycles
        self._arm_commit_gate()
        return self.ckpt_cycles

    def finish(self, last_commit_cycle: int) -> int:
        builder = self.builder
        final_tick = last_commit_cycle * self.main_period
        current = builder.current
        if current.instr_count or current.entries:
            closed = builder.close(
                CloseReason.TERMINATION, self._take_checkpoint(self._last_next_pc),
                end_seq=current.start_seq + current.instr_count,
                close_tick=final_tick)
            self._dispatch(closed, final_tick)
            self.report.checkpoint_stall_cycles += self.ckpt_cycles
        for reason, count in builder.closes_by_reason.items():
            self.report.closes_by_reason[reason.value] = count
        done = max([final_tick] + self.slot_free_tick)
        self.report.all_checks_done_tick = done
        # the program's termination is held back until every outstanding
        # check completes (§IV-H)
        return -(-done // self.main_period)

    # -- internals ---------------------------------------------------------------

    def _arm_commit_gate(self) -> None:
        slot = self.builder.current.slot
        if self.slot_free_tick[slot] > 0:
            self._commit_gate_tick = self.slot_free_tick[slot]

    def _log_entries(self, seq: int, commit_tick: int) -> list[LogEntry]:
        entries = []
        mem_kind = self._mem_kind
        mem_addr = self._mem_addr
        mem_value = self._mem_value
        for j in range(self._mem_off[seq], self._mem_off[seq + 1]):
            kind = mem_kind[j]
            if kind == LOAD:
                if self.use_lfu:
                    # duplicated at access, forwarded at commit (§IV-C)
                    self.lfu.capture(seq, mem_addr[j], mem_value[j])
                    addr, value = self.lfu.forward_at_commit(seq)
                else:
                    # ablation: commit-time forwarding from the register
                    # file re-opens the window of vulnerability
                    addr, value = mem_addr[j], self._mem_used[j]
                entries.append(LogEntry(LOAD, addr, value, commit_tick))
            else:
                # STORE logs addr + data; NONDET logs the forwarded result
                # at address 0 — both exactly the column contents
                entries.append(LogEntry(kind, mem_addr[j], mem_value[j],
                                        commit_tick))
        return entries

    def _dispatch(self, segment: Segment, close_tick: int) -> None:
        """Hand a closed segment to its checker core."""
        slot = segment.slot
        checkpoint_done = close_tick + self.ckpt_cycles * self.main_period
        if self.ideal:
            # Figure 10 mode: infinitely fast checkers — the only cost left
            # is the checkpoint machinery itself
            self.slot_free_tick[slot] = checkpoint_done
            self.report.segments_checked += 1
            return

        result = self.segment_checker.check(segment)
        start = max(checkpoint_done, self.slot_free_tick[slot])
        # align to the checker's clock edge
        start = -(-start // self.checker_period) * self.checker_period
        # the in-order model runs in the checker clock's absolute time so
        # its I-cache state (in-flight fills, MSHRs) stays coherent across
        # segments
        timing = self.core_models[slot].run_segment(
            result.steps, self.metas, start_cycle=start // self.checker_period)
        finish = start + timing.total_cycles * self.checker_period
        self.slot_free_tick[slot] = finish
        self.report.checker_busy_ticks[slot] += finish - start
        self.report.segments_checked += 1
        self.report.entries_checked += result.entries_checked

        delays = self.report.delays_ns
        checked = min(result.entries_checked, len(timing.entry_check_cycles),
                      len(segment.entries))
        for i in range(checked):
            check_tick = start + timing.entry_check_cycles[i] * self.checker_period
            delays.add(ticks_to_ns(check_tick - segment.entries[i].commit_tick))

        if not result.ok:
            for error in result.errors:
                if (error.entry_index is not None
                        and error.entry_index < len(timing.entry_check_cycles)):
                    tick = start + (timing.entry_check_cycles[error.entry_index]
                                    * self.checker_period)
                else:
                    tick = finish
                self.report.events.append(DetectionEvent(
                    error=error, detect_tick=tick,
                    segment_close_tick=close_tick))


@dataclass
class DetectionRunResult:
    """A full protected run: core timing + detection report."""

    core: CoreResult
    report: DetectionReport

    @property
    def main_cycles(self) -> int:
        return self.core.cycles

    @property
    def system_cycles(self) -> int:
        return self.core.system_cycles


def run_unprotected(trace: Trace, config: SystemConfig) -> CoreResult:
    """Time ``trace`` on a bare main core (the normalisation baseline).

    Served from the trace's golden timing record when one exists — the
    record *is* the stored output of this exact run — and recorded (and
    published to the trace store) on first use otherwise."""
    return time_bare(trace, config)


#: Snapshot spacing floor for timing-splice cursors, in trace rows: the
#: per-fault re-timed prefix is bounded by the spacing, the snapshot
#: count by ``len(trace) / spacing``.
SPLICE_SNAPSHOT_MIN_INTERVAL = 1024

#: Environment override for the cursor-registry capacity (each resident
#: cursor pins its golden trace and up to ~16 state snapshots).
SPLICE_CURSOR_ENV = "REPRO_SPLICE_CURSORS"

#: Default timing-splice cursors kept alive per process when
#: :data:`SPLICE_CURSOR_ENV` is unset.
_SPLICE_CURSOR_CAP = 4

#: Planned (exact fork-seq) snapshots retained per cursor beyond the
#: always-kept interval snapshots; covers default campaign batch sizes
#: while bounding resident state for pathological cells.
SPLICE_PLANNED_SNAPSHOT_CAP = 128


def splice_cursor_cap() -> int:
    """The cursor-registry capacity, from the environment or the default."""
    raw = os.environ.get(SPLICE_CURSOR_ENV)
    if raw:
        try:
            cap = int(raw)
        except ValueError:
            return _SPLICE_CURSOR_CAP
        if cap >= 1:
            return cap
    return _SPLICE_CURSOR_CAP


class _TimingSpliceCursor:
    """A resumable timed run of one golden trace under detection.

    Walks the golden trace through a fresh :class:`ParallelErrorDetection`
    hook exactly once, monotonically, snapshotting the full (core,
    run-state, hook) bundle via :meth:`OoOCore.fork` at interval
    boundaries — plus, for batch cells, at the exact fork seqs
    pre-registered through :meth:`plan`.  A fault job then clones the
    snapshot at the nearest boundary before its fork seq and re-times
    only the rows from there — byte-identical to a full re-timing
    because it is the same loop resumed from the same state:

    * pre-fork rows of a forked trace are splices of the golden columns,
      so re-timing them from a boundary reproduces the golden timing;
    * the cursor binds the checker's columnar fast path against the
      golden trace itself, which takes exactly the code path (and yields
      exactly the per-segment check results and checker-core timings)
      that pre-fork segments of a forked run take;
    * ``run_rows`` chunk boundaries are timing-transparent, so stopping
      at an extra planned boundary perturbs nothing.
    """

    def __init__(self, golden: Trace, config: SystemConfig) -> None:
        self.golden = golden
        self.config = config
        total = len(golden)
        self.interval = max(SPLICE_SNAPSHOT_MIN_INTERVAL, -(-total // 16))
        self.core = OoOCore(config)
        self.hook = ParallelErrorDetection(config, golden.program)
        self.hook.begin(golden)
        # a golden run is its own fork prefix: let every segment take the
        # checker's columnar path, exactly like a forked run's prefix
        self.hook.segment_checker.bind_fork(golden, golden, total + 1)
        # memoise the passing pre-fork column comparisons; every fork of
        # this cursor shares the memo by reference
        self.hook.segment_checker.enable_prefix_memo()
        self.state = self.core.start_state()
        #: batch-planned exact boundaries not yet consumed, sorted
        self._planned: list[int] = []
        self._snapshots = {0: self.core.fork(self.state, self.hook)}

    def plan(self, fork_seqs) -> None:
        """Register a batch cell's fork seqs as exact snapshot boundaries.

        Interval multiples are skipped (snapshotted natively), as are
        seqs whose snapshot already exists.  Seqs the live run has
        already passed are planned too: :meth:`bundle` serves them by
        re-timing the short stretch from the retained snapshot below,
        so a sorted batch resumes each fault at its own fork seq.
        """
        total = len(self.golden)
        merged = set(self._planned)
        for seq in fork_seqs:
            seq = min(seq, total)
            if seq % self.interval and seq not in self._snapshots:
                merged.add(seq)
        self._planned = sorted(merged)

    def bundle(self, fork_seq: int):
        """An isolated (core, state, hook) clone timed to the nearest
        snapshot boundary at or before ``fork_seq``, ready to resume.
        Planned (batch) boundaries are exact; anything else rounds down
        to the last interval multiple."""
        boundary = min(fork_seq, len(self.golden))
        if (boundary not in self._snapshots
                and boundary not in self._planned):
            boundary -= boundary % self.interval
        snapshot = self._snapshots.get(boundary)
        if snapshot is None:
            planned = self._planned
            if boundary < self.state.next_row:
                # the live run is already past a planned boundary: walk a
                # detached clone of the nearest retained snapshot up to
                # it — at most one interval of golden re-timing, shared
                # by every later fault planned in the same stretch
                base = max(b for b in self._snapshots if b <= boundary)
                core, state, hook = self._snapshots[base]
                core, state, hook = core.fork(state, hook)
            else:
                # advance the live run monotonically (the common path)
                core, state, hook = self.core, self.state, self.hook
            # either walk snapshots every interval and planned boundary
            # it crosses, so later faults reuse them
            while state.next_row < boundary:
                row = state.next_row
                target = min(row - row % self.interval + self.interval,
                             boundary)
                i = bisect_right(planned, row)
                if i < len(planned) and planned[i] < target:
                    target = planned[i]
                core.run_rows(self.golden, hook, state, target)
                self._snapshots[target] = core.fork(state, hook)
            snapshot = self._snapshots[boundary]
        self._retire_planned(boundary)
        core, state, hook = snapshot
        return core.fork(state, hook)

    def _retire_planned(self, boundary: int) -> None:
        """Bound the planned snapshots retained beyond the cap.

        Batches drain in fork-seq order, so when the cap bites the
        lowest already-passed boundaries are the dead ones.  Below the
        cap nothing is dropped: a repeated cell (same seeds, benchmark
        repeats) replays entirely from retained snapshots, exactly like
        the per-job path replays from its interval snapshots."""
        excess = len(self._planned) - SPLICE_PLANNED_SNAPSHOT_CAP
        if excess <= 0:
            return
        drop = min(excess, bisect_left(self._planned, boundary))
        if not drop:
            return
        for seq in self._planned[:drop]:
            self._snapshots.pop(seq, None)
        del self._planned[:drop]


#: (config key → cursor entries) in LRU order — lookups move an entry to
#: the back, insertions evict from the front past :func:`splice_cursor_cap`;
#: entries verify golden identity on lookup.
_SPLICE_CURSORS: dict = {}


def _splice_cursor(golden: Trace,
                   config: SystemConfig) -> _TimingSpliceCursor:
    key = (id(golden), config_key(config))
    cursor = _SPLICE_CURSORS.get(key)
    if cursor is not None and cursor.golden is golden:
        # LRU refresh: re-insert at the back
        _SPLICE_CURSORS.pop(key)
        _SPLICE_CURSORS[key] = cursor
        return cursor
    cursor = _TimingSpliceCursor(golden, config)
    _SPLICE_CURSORS.pop(key, None)
    _SPLICE_CURSORS[key] = cursor
    cap = splice_cursor_cap()
    while len(_SPLICE_CURSORS) > cap:
        _SPLICE_CURSORS.pop(next(iter(_SPLICE_CURSORS)))
    return cursor


def prime_splice_cursor(golden: Trace, config: SystemConfig,
                        fork_seqs) -> None:
    """Pre-register a batch cell's fork seqs on the cell's shared cursor.

    Called by the detection scheme before draining a fault batch, so the
    cursor snapshots at each fault's exact fork seq while walking the
    golden prefix once.  Seqs the resident cursor has already passed (a
    previous cell drove it further) cost at most one short detached
    re-timing from the retained interval snapshot below — shared across
    every fault planned in the same stretch.  Byte-identity is
    unaffected — any snapshot resumes the same loop from the same state.
    """
    seqs = sorted(fork_seqs)
    if not seqs:
        return
    _splice_cursor(golden, config).plan(seqs)


def _spliced_detection_run(trace: Trace, config: SystemConfig,
                           ) -> DetectionRunResult:
    """Re-time only the post-fork suffix of a forked faulty trace."""
    cursor = _splice_cursor(trace.fork_of, config)
    core, state, hook = cursor.bundle(trace.fork_seq)
    # rebinding is all ``begin`` does: column refs plus the checker's
    # fork binding (now golden vs faulty, from the faulty trace's seam)
    hook.begin(trace)
    core.run_rows(trace, hook, state, len(trace))
    return DetectionRunResult(core=core.finish_run(trace, hook, state),
                              report=hook.report)


def run_with_detection(
    trace: Trace,
    config: SystemConfig,
    checkpoint_faults: list[TransientFault] | None = None,
    checker_faults: list[TransientFault] | None = None,
    interrupt_seqs: list[int] | None = None,
    golden: Trace | None = None,
) -> DetectionRunResult:
    """Time ``trace`` on a main core with parallel error detection attached.

    Fault injection into the *main core's execution* happens earlier, when
    the trace is produced (``execute_program(program, fault_injector=...)``);
    checkpoint/checker faults and interrupt arrivals are modelled here.

    Timing path selection (see :mod:`repro.core.timing`):

    * interval mode (per JobSpec, or ``REPRO_TIMING_MODE=interval``)
      drives the hook from analytical commit estimates calibrated on the
      golden timing record (``golden``, or the trace's fork parent, or
      the trace itself when it is clean);
    * in cycle mode, a forked faulty trace with no detection-side faults
      or interrupts resumes a golden timing snapshot at the last splice
      boundary before its fork seq and re-times only the suffix —
      byte-identical to the full re-timing below, which remains the path
      for everything else (and the whole story under
      ``REPRO_TIMING_SPLICE=0``).
    """
    if resolve_timing_mode() == "interval":
        hook = ParallelErrorDetection(
            config, trace.program,
            checkpoint_faults=checkpoint_faults,
            checker_faults=checker_faults,
            interrupt_seqs=interrupt_seqs,
        )
        base = timing_record(golden or trace.fork_of or trace, config)
        core_result = timing_model("interval").drive(trace, config, hook, base)
        return DetectionRunResult(core=core_result, report=hook.report)
    if (trace.fork_of is not None
            and timing_splice_enabled()
            and not checkpoint_faults
            and not checker_faults
            and not interrupt_seqs):
        return _spliced_detection_run(trace, config)
    hook = ParallelErrorDetection(
        config, trace.program,
        checkpoint_faults=checkpoint_faults,
        checker_faults=checker_faults,
        interrupt_seqs=interrupt_seqs,
    )
    core_result = OoOCore(config).run(trace, hook=hook)
    return DetectionRunResult(core=core_result, report=hook.report)
