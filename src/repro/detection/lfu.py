"""The load forwarding unit (paper §IV-C, Figure 5).

Loads are duplicated *at cache access time*, while the value is still in
the ECC-protected domain, and tagged with their reorder-buffer ID.  At
commit, the tagged entry is forwarded to the load-store log; mis-speculated
loads are never forwarded and are simply overwritten when their ROB entry
is reallocated (no flush logic — §IV-C).

This closes the window of vulnerability that naive commit-time forwarding
would leave: if a particle strike corrupts the loaded value in the main
core's physical register *after* the access but *before* commit, the log
still receives the correct value, so the checker core re-executes with
good data and the corrupted store/checkpoint downstream is caught.

The detection system uses :meth:`capture`/:meth:`forward_at_commit` on the
committed stream; the speculative overwrite semantics are exercised
directly by the unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LfuEntry:
    """One load captured at access time."""

    rob_id: int
    addr: int
    value: int
    valid: bool = True


class LoadForwardingUnit:
    """ROB-ID-indexed table of loads awaiting commit.

    Sized like the ROB (paper: "having a load forwarding unit as large as
    the reorder buffer is over-provisioning... the table will never be
    full"), so a capture can never fail for lack of space.
    """

    __slots__ = ("size", "_table", "captures", "forwards", "overwrites")

    def __init__(self, rob_entries: int) -> None:
        self.size = rob_entries
        self._table: list[LfuEntry | None] = [None] * rob_entries
        self.captures = 0
        self.forwards = 0
        self.overwrites = 0

    def snapshot(self) -> "LoadForwardingUnit":
        """Independent copy of the table (fork support).  The
        :class:`LfuEntry` objects themselves are shared: they are written
        once at capture and only ever read afterwards."""
        clone = LoadForwardingUnit.__new__(LoadForwardingUnit)
        clone.size = self.size
        clone._table = self._table[:]
        clone.captures = self.captures
        clone.forwards = self.forwards
        clone.overwrites = self.overwrites
        return clone

    def capture(self, rob_id: int, addr: int, value: int) -> None:
        """Duplicate a load at cache-access time (possibly speculative)."""
        slot = rob_id % self.size
        if self._table[slot] is not None:
            # the previous occupant was mis-speculated or already
            # forwarded; reallocation simply overwrites it
            self.overwrites += 1
        self._table[slot] = LfuEntry(rob_id=rob_id, addr=addr, value=value)
        self.captures += 1

    def forward_at_commit(self, rob_id: int) -> tuple[int, int]:
        """On commit of load ``rob_id``, emit (addr, value) for the log."""
        slot = rob_id % self.size
        entry = self._table[slot]
        if entry is None or entry.rob_id != rob_id:
            raise LookupError(
                f"no captured load for ROB id {rob_id}; capture/commit "
                f"sequencing violated")
        self._table[slot] = None
        self.forwards += 1
        return entry.addr, entry.value

    def occupancy(self) -> int:
        return sum(1 for e in self._table if e is not None)
