"""Architectural register checkpoints (paper §IV, §IV-E).

The main core takes a checkpoint of the full architectural register file
(and the PC) whenever a load-store log segment closes.  Each checkpoint is
simultaneously the *end* checkpoint validated by one checker core and the
*start* checkpoint another checker core replays from — this sharing is what
makes the strong-induction argument compose across segments.

Checkpoint copy pauses commit for ``checkpoint_latency_cycles`` (Table I:
16 cycles — two-ported register files copying 32 registers each).

Comparisons are **bit-exact**: FP registers compare by IEEE-754 bit
pattern, exactly as checkpoint-compare hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.executor import DynInstr
from repro.isa.instructions import NUM_FP_REGS, NUM_INT_REGS
from repro.isa.memory_image import float_to_bits


@dataclass(frozen=True)
class RegisterCheckpoint:
    """A snapshot of architectural state at a segment boundary.

    ``index`` counts checkpoints from 0 (the program-entry checkpoint);
    ``pc`` is the instruction index the next segment starts at.
    """

    index: int
    pc: int
    xregs: tuple[int, ...]
    fregs: tuple[float, ...]

    def mismatches(self, xregs: list[int], fregs: list[float]) -> list[str]:
        """Registers whose values differ from this checkpoint (bit-exact)."""
        diffs = []
        for i in range(NUM_INT_REGS):
            if self.xregs[i] != xregs[i]:
                diffs.append(f"x{i}")
        for i in range(NUM_FP_REGS):
            if float_to_bits(self.fregs[i]) != float_to_bits(fregs[i]):
                diffs.append(f"f{i}")
        return diffs

    def with_bit_flip(self, reg: str, bit: int) -> "RegisterCheckpoint":
        """A corrupted copy of this checkpoint (fault-injection helper).

        ``reg`` is e.g. ``"x5"`` or ``"f3"``; ``bit`` indexes the 64-bit
        representation.
        """
        space, idx = reg[0], int(reg[1:])
        if space == "x":
            xregs = list(self.xregs)
            xregs[idx] ^= 1 << bit
            return RegisterCheckpoint(self.index, self.pc, tuple(xregs), self.fregs)
        from repro.isa.memory_image import bits_to_float
        fregs = list(self.fregs)
        fregs[idx] = bits_to_float(float_to_bits(fregs[idx]) ^ (1 << bit))
        return RegisterCheckpoint(self.index, self.pc, self.xregs, tuple(fregs))


class ArchStateTracker:
    """Reconstructs architectural register state along the commit stream.

    The detection system walks the committed trace in order; applying each
    instruction's writebacks here lets it snapshot the register file at any
    segment boundary without re-executing anything.
    """

    __slots__ = ("xregs", "fregs", "_next_index")

    def __init__(self) -> None:
        self.xregs = [0] * NUM_INT_REGS
        self.fregs = [0.0] * NUM_FP_REGS
        self._next_index = 0

    def clone(self) -> "ArchStateTracker":
        """Independent copy of the tracked register file (fork support).

        Named ``clone`` because :meth:`snapshot` already means "take a
        checkpoint" on this class.
        """
        twin = ArchStateTracker.__new__(ArchStateTracker)
        twin.xregs = self.xregs[:]
        twin.fregs = self.fregs[:]
        twin._next_index = self._next_index
        return twin

    def apply(self, dyn: DynInstr) -> None:
        """Apply one committed instruction's register writebacks."""
        self.apply_dsts(dyn.dsts)

    def apply_dsts(self, dsts: tuple) -> None:
        """Apply one writeback tuple straight from the trace's column
        (the hot path: no row view needed)."""
        for is_fp, idx, value in dsts:
            if is_fp:
                self.fregs[idx] = value
            else:
                self.xregs[idx] = value

    def snapshot(self, pc: int) -> RegisterCheckpoint:
        """Take the checkpoint for a segment boundary at ``pc``."""
        ckpt = RegisterCheckpoint(
            index=self._next_index,
            pc=pc,
            xregs=tuple(self.xregs),
            fregs=tuple(self.fregs),
        )
        self._next_index += 1
        return ckpt
