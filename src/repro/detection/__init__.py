"""The paper's contribution: parallel error detection on heterogeneous cores."""

from repro.detection.checker import (
    CheckError,
    CheckResult,
    ErrorKind,
    SegmentChecker,
)
from repro.detection.checkpoint import ArchStateTracker, RegisterCheckpoint
from repro.detection.faults import (
    EXECUTION_SITES,
    FaultInjector,
    FaultSite,
    HardFault,
    TransientFault,
)
from repro.detection.interrupts import periodic_interrupts, random_interrupts
from repro.detection.lfu import LfuEntry, LoadForwardingUnit
from repro.detection.lslog import CloseReason, LogEntry, Segment, SegmentBuilder
from repro.detection.system import (
    DetectionEvent,
    DetectionReport,
    DetectionRunResult,
    ParallelErrorDetection,
    run_unprotected,
    run_with_detection,
)

__all__ = [
    "ArchStateTracker",
    "CheckError",
    "CheckResult",
    "CloseReason",
    "DetectionEvent",
    "DetectionReport",
    "DetectionRunResult",
    "ErrorKind",
    "EXECUTION_SITES",
    "FaultInjector",
    "FaultSite",
    "HardFault",
    "LfuEntry",
    "LoadForwardingUnit",
    "LogEntry",
    "ParallelErrorDetection",
    "RegisterCheckpoint",
    "Segment",
    "SegmentBuilder",
    "SegmentChecker",
    "TransientFault",
    "periodic_interrupts",
    "random_interrupts",
    "run_unprotected",
    "run_with_detection",
]
