"""The partitioned load-store log (paper §IV-D).

An SRAM structure that records, in commit order, every load (address +
forwarded value), every store (address + data) and every non-deterministic
result from the main core.  It is split into one fixed-size segment per
checker core (one-to-one, no arbitration — §IV-D), and a segment closes
when any of these happens:

* it is **full** — including the macro-op rule: a macro-op's micro-ops may
  never straddle two segments, so an instruction whose entries do not all
  fit closes the current segment and writes all of them into the next;
* the **instruction timeout** is reached (§IV-J), bounding detection
  latency for stretches of code with few memory operations;
* an **interrupt / context switch** arrives (§IV-G);
* the **program terminates** (§IV-H), flushing the final partial segment.

The structures here are purely architectural (what is in each segment);
their interaction with time (stalls, checkpoint pauses, checker dispatch)
lives in :mod:`repro.detection.system`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.detection.checkpoint import RegisterCheckpoint
from repro.isa.executor import LOAD, NONDET, STORE


class CloseReason(enum.Enum):
    """Why a log segment stopped filling."""

    FULL = "full"
    TIMEOUT = "timeout"
    INTERRUPT = "interrupt"
    TERMINATION = "termination"


@dataclass(frozen=True)
class LogEntry:
    """One record in a load-store log segment.

    ``kind`` is :data:`repro.isa.executor.LOAD`, :data:`STORE` or
    :data:`NONDET`.  ``commit_tick`` is when the main core committed it —
    the reference point for the paper's detection-delay metric.
    """

    kind: int
    addr: int
    value: int
    commit_tick: int

    def describe(self) -> str:
        kind = {LOAD: "load", STORE: "store", NONDET: "nondet"}[self.kind]
        return f"{kind} @{self.addr:#x} = {self.value:#x}"


@dataclass
class Segment:
    """One closed (or filling) portion of the load-store log."""

    index: int
    slot: int
    start_checkpoint: RegisterCheckpoint
    start_seq: int
    entries: list[LogEntry] = field(default_factory=list)
    instr_count: int = 0
    end_checkpoint: RegisterCheckpoint | None = None
    end_seq: int | None = None
    close_reason: CloseReason | None = None
    close_tick: int = 0

    @property
    def closed(self) -> bool:
        return self.close_reason is not None


class SegmentBuilder:
    """Fills segments in commit order, enforcing the closure rules.

    This is the architectural state machine of §IV-D/J: the timing layer
    asks :meth:`will_overflow` before committing an instruction's memory
    entries (to know which slot must be free), appends entries and
    instruction counts as commits happen, and is told when to cut a
    segment.  Closed segments are handed back for dispatch to a checker.
    """

    def __init__(self, capacity: int, timeout: int | None, num_slots: int,
                 first_checkpoint: RegisterCheckpoint) -> None:
        if capacity < 2:
            raise ConfigError(
                f"segment capacity {capacity} cannot hold one macro-op's "
                f"entries; enlarge the log")
        self.capacity = capacity
        self.timeout = timeout
        self.num_slots = num_slots
        self._next_index = 0
        self._next_slot = 0
        self.current = self._new_segment(first_checkpoint, start_seq=0)
        self.segments_closed = 0
        self.closes_by_reason: dict[CloseReason, int] = {r: 0 for r in CloseReason}

    def _new_segment(self, checkpoint: RegisterCheckpoint, start_seq: int) -> Segment:
        segment = Segment(
            index=self._next_index,
            slot=self._next_slot,
            start_checkpoint=checkpoint,
            start_seq=start_seq,
        )
        self._next_index += 1
        self._next_slot = (self._next_slot + 1) % self.num_slots
        return segment

    def snapshot(self) -> "SegmentBuilder":
        """Independent copy of the builder state (fork support).

        The filling segment is copied field by field with a fresh entries
        list; checkpoints and :class:`LogEntry` records are frozen and
        shared.  Closed segments are never reachable from the builder, so
        nothing else needs copying.
        """
        clone = SegmentBuilder.__new__(SegmentBuilder)
        clone.capacity = self.capacity
        clone.timeout = self.timeout
        clone.num_slots = self.num_slots
        clone._next_index = self._next_index
        clone._next_slot = self._next_slot
        current = self.current
        clone.current = Segment(
            index=current.index,
            slot=current.slot,
            start_checkpoint=current.start_checkpoint,
            start_seq=current.start_seq,
            entries=current.entries[:],
            instr_count=current.instr_count,
            end_checkpoint=current.end_checkpoint,
            end_seq=current.end_seq,
            close_reason=current.close_reason,
            close_tick=current.close_tick,
        )
        clone.segments_closed = self.segments_closed
        clone.closes_by_reason = dict(self.closes_by_reason)
        return clone

    # -- queries used by the timing layer -----------------------------------

    def will_overflow(self, entry_count: int) -> bool:
        """Would committing ``entry_count`` entries overflow the segment?

        Macro-op rule: either they all fit in the current segment, or the
        segment closes and they all go into the next one.
        """
        if entry_count == 0:
            return False
        if entry_count > self.capacity:
            raise ConfigError(
                f"an instruction produced {entry_count} log entries but a "
                f"segment holds only {self.capacity}")
        return len(self.current.entries) + entry_count > self.capacity

    def timeout_reached(self) -> bool:
        """Has the current segment hit the instruction timeout?"""
        return (self.timeout is not None
                and self.current.instr_count >= self.timeout)

    def is_full(self) -> bool:
        return len(self.current.entries) >= self.capacity

    # -- mutation -------------------------------------------------------------

    def append(self, entries: list[LogEntry]) -> None:
        """Append one committed instruction's entries (caller has already
        closed the segment if they would not fit)."""
        if len(self.current.entries) + len(entries) > self.capacity:
            raise ConfigError("segment overflow: close before appending")
        self.current.entries.extend(entries)

    def count_instruction(self) -> None:
        self.current.instr_count += 1

    def close(self, reason: CloseReason, end_checkpoint: RegisterCheckpoint,
              end_seq: int, close_tick: int) -> Segment:
        """Close the current segment and open the next.

        The end checkpoint of the closed segment becomes the start
        checkpoint of its successor — the induction chain of §IV.
        """
        closed = self.current
        closed.close_reason = reason
        closed.end_checkpoint = end_checkpoint
        closed.end_seq = end_seq
        closed.close_tick = close_tick
        self.segments_closed += 1
        self.closes_by_reason[reason] += 1
        self.current = self._new_segment(end_checkpoint, start_seq=end_seq)
        return closed
