"""Checker-core functional replay and validation (paper §IV-B).

A checker core starts from a segment's start register checkpoint and
re-executes the original instruction stream.  Loads do not touch memory:
the next entry of the segment's load-store log supplies the value, and
hardware compares the *address* the checker computed against the logged
one.  Stores compare both address and data.  Non-deterministic results
(RDRAND/RDCYCLE) are consumed from the log.  When the checker has executed
as many instructions as the main core committed in the segment (or the
stream ends), the architectural register file is compared bit-exactly
against the end checkpoint.

Detection is therefore performed by *real comparisons*, not by an oracle:
an injected fault is caught only if one of these hardware checks actually
fires — which is exactly the paper's coverage argument (checks on stores,
load addresses, and end-of-segment register state, composed by strong
induction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ExecutionError, ReproError
from repro.detection.lslog import Segment
from repro.isa.blocks import STATS, block_exec_enabled, block_table
from repro.isa.executor import LOAD, Machine, NONDET, STORE, Trace, bound_handlers

try:  # the whole-column comparison fast path is an optional acceleration
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Below this many rows the numpy call overhead beats the win.
_VECTOR_MIN_ROWS = 48


def _columns_equal(a, b, start: int, stop: int, dtype) -> bool:
    """Whole-slice equality of two trace columns.

    Columns may be ``array`` objects (live executions) or memoryviews
    over a mapped golden envelope; both satisfy the buffer protocol, so
    the numpy path wraps them zero-copy.  ``array_equal`` (not ``==``)
    because elementwise comparison has no useful truthiness.
    """
    if _np is not None and stop - start >= _VECTOR_MIN_ROWS:
        return bool(_np.array_equal(
            _np.frombuffer(a, dtype=dtype)[start:stop],
            _np.frombuffer(b, dtype=dtype)[start:stop]))
    return a[start:stop] == b[start:stop]
from repro.isa.instructions import Opcode
from repro.isa.memory_image import MemoryImage, bits_to_float, float_to_bits
from repro.isa.program import Program


class ErrorKind(enum.Enum):
    """What comparison failed."""

    LOAD_ADDR_MISMATCH = "load_addr_mismatch"
    STORE_ADDR_MISMATCH = "store_addr_mismatch"
    STORE_VALUE_MISMATCH = "store_value_mismatch"
    #: The replayed stream diverged from the log structure: wrong entry
    #: kind, log exhausted early, entries left over, or the instruction
    #: timeout hit before every logged operation was reproduced.
    LOG_DIVERGENCE = "log_divergence"
    CHECKPOINT_MISMATCH = "checkpoint_mismatch"
    #: The replay itself faulted (e.g. corrupted control flow ran off the
    #: program); the checker flags the segment as erroneous.
    REPLAY_FAULT = "replay_fault"


@dataclass(frozen=True)
class CheckError:
    """A failed check within one segment."""

    kind: ErrorKind
    segment_index: int
    #: index of the offending log entry within the segment (None for
    #: checkpoint/stream-level errors)
    entry_index: int | None
    detail: str


@dataclass
class CheckResult:
    """Outcome of replaying one segment on a checker core."""

    segment_index: int
    ok: bool
    errors: list[CheckError] = field(default_factory=list)
    #: replayed instruction stream as (pc, taken) pairs, for the timing model
    steps: list[tuple[int, bool]] = field(default_factory=list)
    #: number of log entries validated before stopping
    entries_checked: int = 0
    instructions_executed: int = 0

    @property
    def first_error(self) -> CheckError | None:
        return self.errors[0] if self.errors else None


#: Shared placeholder memory for replay machines (never accessed).
_NO_MEMORY = MemoryImage()


class _LogMismatch(ReproError):
    """Internal control flow: a hardware check failed during replay."""

    def __init__(self, error: CheckError) -> None:
        super().__init__(error.detail)
        self.error = error


class SegmentChecker:
    """Replays and validates load-store-log segments for one program."""

    def __init__(self, program: Program,
                 checker_faults: list | None = None) -> None:
        self.program = program
        # the program-wide handler table (memoised on the program by
        # bound_handlers); held directly so every segment replay shares
        # one reference instead of fetching it through its Machine
        self._steps = bound_handlers(program)
        #: CHECKER-site TransientFaults keyed by global dynamic seq
        self._faults_by_seq: dict[int, list] = {}
        for fault in checker_faults or ():
            self._faults_by_seq.setdefault(fault.seq, []).append(fault)
        # columnar fast-path context (fork-point fault jobs only)
        self._trace: Trace | None = None
        self._golden: Trace | None = None
        self._fork_seq = 0
        # (start_seq, end_seq) -> passing pre-fork CheckResult, shared by
        # reference across the forks of one timing-splice cursor so a
        # batch cell compares each golden segment range exactly once
        self._prefix_memo: dict | None = None

    def bind_fork(self, trace: Trace, golden: Trace, fork_seq: int) -> None:
        """Enable the columnar fast path for ``trace``'s pre-fork rows.

        ``trace`` is the run being checked, whose rows ``[0, fork_seq)``
        were spliced from ``golden``.  A segment lying entirely before
        the fork seq can then be verified by a whole-slice comparison of
        the spliced columns against the golden columns — one equality
        sweep instead of a per-instruction Python replay.  Segments at
        or after the fork (and any segment a CHECKER-site fault strikes)
        keep the full replay path.
        """
        self._trace = trace
        self._golden = golden
        self._fork_seq = fork_seq

    def enable_prefix_memo(self) -> None:
        """Start memoising passing pre-fork columnar results.

        Only the timing-splice cursor turns this on: its forks all check
        the same golden prefix, segmented at the same boundaries, so the
        whole-slice comparisons (and the steps list built from the golden
        columns) are identical across faults in a batch cell.  A cached
        result is only served when the segment index matches, and any
        segment that fails the columnar gate still takes the replay path.
        """
        if self._prefix_memo is None:
            self._prefix_memo = {}

    def clone(self) -> "SegmentChecker":
        """Copy for a forked continuation (fork support).

        The program, handler table, trace bindings, and prefix memo are
        shared — all either immutable or append-only caches whose entries
        are valid for every fork of the same golden run.  The fault map is
        copied (its lists are never mutated after construction).
        """
        twin = SegmentChecker.__new__(SegmentChecker)
        twin.program = self.program
        twin._steps = self._steps
        twin._faults_by_seq = dict(self._faults_by_seq)
        twin._trace = self._trace
        twin._golden = self._golden
        twin._fork_seq = self._fork_seq
        twin._prefix_memo = self._prefix_memo
        return twin

    def _check_columnar(self, segment: Segment) -> CheckResult | None:
        """The pre-fork fast path; None means \"use the replay path\".

        This is still a *real comparison*, not an oracle: every column
        the replay would reproduce (pcs, writebacks, branch outcomes,
        the memory-operation CSR block) and every logged entry is
        compared against the golden trace.  Any mismatch falls back to
        the replay path, which classifies the error exactly as it would
        have without the fast path.
        """
        trace, golden = self._trace, self._golden
        start, end = segment.start_seq, segment.end_seq
        lo, hi = trace.mem_off[start], trace.mem_off[end]
        if not (_columns_equal(trace.pcs, golden.pcs, start, end, "uint64")
                and _columns_equal(trace.takens, golden.takens,
                                   start, end, "int8")
                and trace.dsts[start:end] == golden.dsts[start:end]
                and _columns_equal(trace.mem_off, golden.mem_off,
                                   start, end + 1, "uint64")
                and _columns_equal(trace.mem_kind, golden.mem_kind,
                                   lo, hi, "int8")
                and _columns_equal(trace.mem_addr, golden.mem_addr,
                                   lo, hi, "uint64")
                and _columns_equal(trace.mem_value, golden.mem_value,
                                   lo, hi, "uint64")
                and _columns_equal(trace.mem_used, golden.mem_used,
                                   lo, hi, "uint64")):
            return None
        entries = segment.entries
        if len(entries) != hi - lo:
            return None
        mem_kind, mem_addr = golden.mem_kind, golden.mem_addr
        mem_value = golden.mem_value
        for k, entry in enumerate(entries):
            j = lo + k
            if (entry.kind != mem_kind[j] or entry.addr != mem_addr[j]
                    or entry.value != mem_value[j]):
                return None
        result = CheckResult(segment_index=segment.index, ok=True)
        pcs, takens = golden.pcs, golden.takens
        if _np is not None and end - start >= _VECTOR_MIN_ROWS:
            # .tolist() materialises plain Python ints/bools, so the
            # timing model sees exactly what the scalar path builds
            result.steps = list(zip(
                _np.frombuffer(pcs, dtype="uint64")[start:end].tolist(),
                (_np.frombuffer(takens, dtype="int8")[start:end]
                 == 1).tolist()))
        else:
            result.steps = [(pcs[i], takens[i] == 1)
                            for i in range(start, end)]
        result.entries_checked = len(entries)
        result.instructions_executed = end - start
        return result

    def check(self, segment: Segment) -> CheckResult:
        """Replay ``segment`` and run every hardware comparison."""
        if not segment.closed or segment.end_checkpoint is None:
            raise ReproError("segment must be closed before checking")
        if (self._golden is not None and segment.end_seq is not None
                and segment.end_seq <= self._fork_seq
                and not any(segment.start_seq <= seq < segment.end_seq
                            for seq in self._faults_by_seq)):
            memo = self._prefix_memo
            if memo is not None:
                cached = memo.get((segment.start_seq, segment.end_seq))
                if (cached is not None
                        and cached.segment_index == segment.index):
                    return cached
            result = self._check_columnar(segment)
            if result is not None:
                if memo is not None:
                    memo[(segment.start_seq, segment.end_seq)] = result
                return result
        start = segment.start_checkpoint
        end = segment.end_checkpoint
        entries = segment.entries
        instr_budget = (segment.end_seq or 0) - segment.start_seq

        result = CheckResult(segment_index=segment.index, ok=True)
        cursor = 0  # next log entry to consume

        def load_port(addr: int) -> tuple[int, int]:
            nonlocal cursor
            if cursor >= len(entries):
                raise _LogMismatch(CheckError(
                    ErrorKind.LOG_DIVERGENCE, segment.index, None,
                    "log segment exhausted before replay finished"))
            entry = entries[cursor]
            if entry.kind != LOAD:
                raise _LogMismatch(CheckError(
                    ErrorKind.LOG_DIVERGENCE, segment.index, cursor,
                    f"replayed a load but log holds {entry.describe()}"))
            if entry.addr != addr:
                raise _LogMismatch(CheckError(
                    ErrorKind.LOAD_ADDR_MISMATCH, segment.index, cursor,
                    f"load address {addr:#x} != logged {entry.addr:#x}"))
            cursor += 1
            result.entries_checked = cursor
            return addr, entry.value

        def store_port(addr: int, value: int) -> tuple[int, int]:
            nonlocal cursor
            if cursor >= len(entries):
                raise _LogMismatch(CheckError(
                    ErrorKind.LOG_DIVERGENCE, segment.index, None,
                    "log segment exhausted before replay finished"))
            entry = entries[cursor]
            if entry.kind != STORE:
                raise _LogMismatch(CheckError(
                    ErrorKind.LOG_DIVERGENCE, segment.index, cursor,
                    f"replayed a store but log holds {entry.describe()}"))
            if entry.addr != addr:
                raise _LogMismatch(CheckError(
                    ErrorKind.STORE_ADDR_MISMATCH, segment.index, cursor,
                    f"store address {addr:#x} != logged {entry.addr:#x}"))
            if entry.value != value:
                raise _LogMismatch(CheckError(
                    ErrorKind.STORE_VALUE_MISMATCH, segment.index, cursor,
                    f"store value {value:#x} != logged {entry.value:#x}"))
            cursor += 1
            result.entries_checked = cursor
            return addr, value

        def nondet_port(op: Opcode) -> int:
            nonlocal cursor
            if cursor >= len(entries) or entries[cursor].kind != NONDET:
                raise _LogMismatch(CheckError(
                    ErrorKind.LOG_DIVERGENCE, segment.index,
                    cursor if cursor < len(entries) else None,
                    "non-deterministic result missing from log"))
            value = entries[cursor].value
            cursor += 1
            result.entries_checked = cursor
            return value

        # the replay never touches memory (every access goes through the
        # log ports), so all segments share one empty image
        machine = Machine(
            self.program,
            memory=_NO_MEMORY,
            load_port=load_port,
            store_port=store_port,
            nondet_port=nondet_port,
            pc=start.pc,
        )
        machine.set_registers(list(start.xregs), list(start.fregs))

        executed = 0
        global_seq = segment.start_seq
        # drive the pre-bound handler table directly: the replay loop is
        # the checker-core hot path, so it skips the step() wrapper just
        # like the main-core executor does
        steps = self._steps
        faults_by_seq = self._faults_by_seq
        steps_out = result.steps
        # the block-compiled fast path replays whole basic blocks via
        # their generated bodies (CHECKER-site faults strike individual
        # replayed writebacks, so they keep the per-instruction loop)
        cells = build = None
        tlen = 0
        if not faults_by_seq and block_exec_enabled():
            table = block_table(self.program)
            cells = table.cells
            build = table.build
            tlen = len(cells)
        try:
            while executed < instr_budget and not machine.halted:
                pc = machine.pc
                if cells is not None and pc < tlen:
                    block = cells[pc]
                    if block is None:
                        block = build(pc)
                    if block.n <= instr_budget - executed:
                        block.replay(machine, steps_out)
                        executed += block.n
                        global_seq += block.n
                        STATS.block_instrs += block.n
                        STATS.block_calls += 1
                        continue
                try:
                    fn = steps[pc]
                except IndexError:
                    # deliberately ExecutionError (not the executor's
                    # AssemblyError): replayed control flow running off
                    # the program is a checker *finding* — the handler
                    # below classifies it as REPLAY_FAULT
                    raise ExecutionError(
                        f"instruction fetch out of range: pc={pc}") from None
                dsts, _mem, taken = fn(machine)
                machine.instr_count += 1
                if faults_by_seq:
                    faults = faults_by_seq.get(global_seq)
                    if faults:
                        self._corrupt(machine, dsts, faults)
                steps_out.append((pc, bool(taken)))
                executed += 1
                global_seq += 1
        except _LogMismatch as mismatch:
            # a block raising mid-way has already appended its completed
            # rows' steps, so the step list is the executed count
            executed = len(steps_out)
            result.ok = False
            result.errors.append(mismatch.error)
        except ExecutionError as exc:
            executed = len(steps_out)
            result.ok = False
            result.errors.append(CheckError(
                ErrorKind.REPLAY_FAULT, segment.index, None,
                f"replay faulted: {exc}"))
        result.instructions_executed = executed
        STATS.total_instrs += executed

        if result.ok and machine.halted and executed < instr_budget:
            result.ok = False
            result.errors.append(CheckError(
                ErrorKind.LOG_DIVERGENCE, segment.index, None,
                f"replay halted after {executed} of {instr_budget} "
                f"instructions"))

        if result.ok and cursor != len(entries):
            # the instruction-count timeout fired on the checker before all
            # logged operations were reproduced: divergence (§IV-J)
            result.ok = False
            result.errors.append(CheckError(
                ErrorKind.LOG_DIVERGENCE, segment.index, cursor,
                f"{len(entries) - cursor} log entries left unchecked after "
                f"{executed} instructions"))

        if result.ok:
            diffs = end.mismatches(machine.xregs, machine.fregs)
            if diffs:
                result.ok = False
                result.errors.append(CheckError(
                    ErrorKind.CHECKPOINT_MISMATCH, segment.index, None,
                    f"register checkpoint mismatch: {', '.join(diffs[:8])}"))
            elif machine.pc != end.pc and not machine.halted:
                result.ok = False
                result.errors.append(CheckError(
                    ErrorKind.CHECKPOINT_MISMATCH, segment.index, None,
                    f"PC mismatch: {machine.pc} != checkpoint {end.pc}"))
        return result

    @staticmethod
    def _corrupt(machine: Machine, dsts: tuple, faults: list) -> None:
        """Apply CHECKER-site faults to the replayed writeback."""
        for fault in faults:
            if not dsts:
                continue
            is_fp, idx, value = dsts[0]
            if is_fp:
                machine.fregs[idx] = bits_to_float(
                    float_to_bits(value) ^ (1 << fault.bit))
            elif idx != 0:
                machine.xregs[idx] = (value ^ (1 << fault.bit))
