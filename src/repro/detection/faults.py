"""Fault models and the fault injector (paper §II-A, §IV-I).

Faults are injected at the **architectural boundary of the main core** —
register writebacks, load values after the load-forwarding-unit capture
point, store data/addresses in the store queue, branch outcomes, the PC,
register checkpoints — plus checker-side faults for the over-detection
experiments.  Caches and DRAM are ECC-protected (§IV-A) and never corrupted.

Two duration classes:

* :class:`TransientFault` — a single-event upset: one bit, one dynamic
  instruction.
* :class:`HardFault` — a permanent functional-unit defect: every dynamic
  execution of the matching opcode produces a corrupted result from
  ``start_seq`` onwards.

:class:`FaultInjector` applies these while the functional executor runs,
by wrapping the machine's memory ports and post-processing each step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import FaultSpecError
from repro.isa.executor import LOAD, Machine
from repro.isa.instructions import BRANCH_OPS, MASK64, Opcode
from repro.isa.memory_image import bits_to_float, float_to_bits


class FaultSite(enum.Enum):
    """Where in the main core a fault strikes."""

    #: The writeback value of any instruction (ALU/FPU/load destination).
    RESULT = "result"
    #: A loaded value in a physical register, after the LFU captured it.
    #: (The detectability of this site is exactly what the load forwarding
    #: unit exists for — see the LFU ablation benchmark.)
    LOAD_VALUE = "load_value"
    #: The address a load accesses (AGU fault): main core reads the wrong
    #: location and the log records the wrong address.
    LOAD_ADDR = "load_addr"
    #: Store data in the store queue: memory and log both get the bad value.
    STORE_VALUE = "store_value"
    #: Store address in the store queue: memory and log both get it.
    STORE_ADDR = "store_addr"
    #: A conditional branch resolves the wrong way.
    BRANCH = "branch"
    #: The program counter is corrupted after an instruction commits.
    PC = "pc"
    #: A register checkpoint is corrupted as it is copied out.
    CHECKPOINT = "checkpoint"
    #: A checker core computes a wrong value during replay (over-detection:
    #: reported as an error even though the main computation is fine).
    CHECKER = "checker"


#: Sites the injector handles inside the main-core functional execution.
EXECUTION_SITES = frozenset({
    FaultSite.RESULT, FaultSite.LOAD_VALUE, FaultSite.LOAD_ADDR,
    FaultSite.STORE_VALUE, FaultSite.STORE_ADDR, FaultSite.BRANCH,
    FaultSite.PC,
})


@dataclass(frozen=True)
class TransientFault:
    """A single-bit single-event upset.

    ``seq`` is the dynamic instruction index it strikes; ``bit`` the bit
    flipped (ignored for BRANCH); ``memop_index`` selects which micro-op of
    a pair instruction is hit.  For CHECKPOINT faults ``seq`` is the
    checkpoint index and ``reg`` names the register (e.g. ``"x7"``).
    For CHECKER faults ``seq`` is the dynamic index within the whole trace
    whose replayed writeback is corrupted.
    """

    site: FaultSite
    seq: int
    bit: int = 0
    memop_index: int = 0
    reg: str = "x1"

    def validate(self) -> None:
        if self.seq < 0:
            raise FaultSpecError("fault seq must be non-negative")
        if not 0 <= self.bit < 64:
            raise FaultSpecError("bit must be in 0..63")
        if self.memop_index < 0:
            raise FaultSpecError("memop_index must be non-negative")


@dataclass(frozen=True)
class HardFault:
    """A permanent defect in the functional unit executing ``opcode``.

    From ``start_seq`` on, every result of ``opcode`` is XORed with
    ``mask`` — a stuck-at-style corruption that, unlike a transient,
    repeats until the part is retired.
    """

    opcode: Opcode
    mask: int = 1
    start_seq: int = 0

    def validate(self) -> None:
        if not 0 < self.mask <= MASK64:
            raise FaultSpecError("hard-fault mask must be a nonzero 64-bit value")
        if self.start_seq < 0:
            raise FaultSpecError("start_seq must be non-negative")


def earliest_fault_seq(faults: list[TransientFault | HardFault]) -> int | None:
    """The first dynamic seq at which main-core execution can diverge
    from the golden trace, or None when no fault touches execution.

    Execution-site transients strike exactly at their ``seq``; a hard
    fault corrupts every matching opcode from ``start_seq`` on.
    CHECKPOINT/CHECKER faults never perturb the main core's run, so a
    job carrying only those forks past the end of the golden trace.
    """
    seqs = [
        fault.start_seq if isinstance(fault, HardFault) else fault.seq
        for fault in faults
        if isinstance(fault, HardFault) or fault.site in EXECUTION_SITES
    ]
    return min(seqs) if seqs else None


class FaultInjector:
    """Applies fault specs during main-core functional execution.

    Usage (done internally by :func:`repro.isa.executor.execute_program`)::

        injector = FaultInjector([TransientFault(FaultSite.RESULT, seq=1000, bit=3)])
        trace = execute_program(program, fault_injector=injector)

    After the run, :attr:`activations` lists the faults that actually fired
    (a transient targeting seq beyond the end of execution never does).
    """

    def __init__(self, faults: list[TransientFault | HardFault]) -> None:
        self.faults = list(faults)
        self.transients: dict[int, list[TransientFault]] = {}
        self.hard_faults: list[HardFault] = []
        for fault in faults:
            fault.validate()
            if isinstance(fault, HardFault):
                self.hard_faults.append(fault)
            elif fault.site in EXECUTION_SITES:
                self.transients.setdefault(fault.seq, []).append(fault)
            elif fault.site in (FaultSite.CHECKPOINT, FaultSite.CHECKER):
                # handled by the detection system, not the executor
                pass
            else:  # pragma: no cover - enum is closed
                raise FaultSpecError(f"unhandled fault site {fault.site}")
        self.activations: list[tuple[int, FaultSite]] = []
        self._machine: Machine | None = None
        self._memop_counter = 0

    def last_execution_seq(self) -> int | None:
        """The last commit seq at which this injector can still perturb
        execution, or ``None`` when it must observe every instruction
        (hard faults strike on every matching opcode).

        Past this seq the commit loop may drop back to the plain
        handler path: the transient dicts hold no later seqs, so the
        wrapped ports and :meth:`step` would pass everything through
        unchanged anyway — skipping them is pure speed, invisible in
        the committed trace.
        """
        if self.hard_faults:
            return None
        return max(self.transients, default=-1)

    def fork_seq(self, trace_len: int) -> int:
        """The last safe commit seq before this injector's earliest
        fault: golden rows ``[0, fork_seq)`` are provably clean, so a
        fork-point execution may splice them (clamped to ``trace_len``
        for faults targeting seqs past the end of the golden trace)."""
        earliest = earliest_fault_seq(self.faults)
        return trace_len if earliest is None else min(earliest, trace_len)

    # -- executor integration ------------------------------------------------

    def attach(self, machine: Machine) -> None:
        """Wrap the machine's memory ports with fault application."""
        self._machine = machine
        original_load = machine.load_port
        original_store = machine.store_port

        def load_port(addr: int) -> tuple[int, int]:
            which = self._memop_counter
            self._memop_counter += 1
            for fault in self.transients.get(machine.instr_count, ()):
                if fault.site is FaultSite.LOAD_ADDR and fault.memop_index == which:
                    addr = self._flip_addr(addr, fault.bit)
                    self.activations.append((machine.instr_count, fault.site))
            return original_load(addr)

        def store_port(addr: int, value: int) -> tuple[int, int]:
            which = self._memop_counter
            self._memop_counter += 1
            for fault in self.transients.get(machine.instr_count, ()):
                if fault.memop_index != which:
                    continue
                if fault.site is FaultSite.STORE_ADDR:
                    addr = self._flip_addr(addr, fault.bit)
                    self.activations.append((machine.instr_count, fault.site))
                elif fault.site is FaultSite.STORE_VALUE:
                    value ^= 1 << fault.bit
                    self.activations.append((machine.instr_count, fault.site))
            return original_store(addr, value)

        machine.load_port = load_port
        machine.store_port = store_port

    @staticmethod
    def _flip_addr(addr: int, bit: int) -> int:
        # flip within the word-offset-preserving part of the address so the
        # access stays aligned (hardware AGU faults on low bits would trap
        # on alignment — equally detectable, but less interesting)
        bit = max(bit, 3)
        return addr ^ (1 << bit)

    def step(self, machine: Machine, seq: int) -> tuple[tuple, tuple, bool | None]:
        """Execute one instruction with fault application."""
        self._memop_counter = 0
        pc_before = machine.pc
        instr = machine.program.instructions[pc_before]
        dsts, mem, taken = machine.step()

        faults = self.transients.get(seq)
        if faults:
            for fault in faults:
                if fault.site in (FaultSite.RESULT, FaultSite.LOAD_VALUE):
                    dsts, mem = self._corrupt_result(
                        machine, instr, dsts, mem, fault)
                elif fault.site is FaultSite.BRANCH and taken is not None \
                        and instr.op in BRANCH_OPS:
                    taken = not taken
                    machine.pc = instr.target if taken else pc_before + 1
                    self.activations.append((seq, fault.site))
                elif fault.site is FaultSite.PC:
                    machine.pc = (machine.pc ^ (1 << fault.bit)) \
                        % len(machine.program.instructions)
                    self.activations.append((seq, fault.site))

        for hard in self.hard_faults:
            if seq >= hard.start_seq and instr.op is hard.opcode and dsts:
                dsts = self._apply_hard(machine, dsts, hard)
                self.activations.append((seq, FaultSite.RESULT))

        return dsts, mem, taken

    def _corrupt_result(self, machine: Machine, instr, dsts: tuple,
                        mem: tuple, fault: TransientFault) -> tuple[tuple, tuple]:
        """Flip a bit in a writeback value (and the register holding it).

        ``mem`` entries are the executor's raw ``(kind, addr, value,
        used_value)`` tuples; the corrupted copy is returned alongside
        the new writebacks."""
        if not dsts:
            return dsts, mem
        which = min(fault.memop_index, len(dsts) - 1)
        if fault.site is FaultSite.LOAD_VALUE and not any(
                entry[0] == LOAD for entry in mem):
            return dsts, mem  # LOAD_VALUE only strikes loads
        is_fp, idx, value = dsts[which]
        if is_fp:
            bad = bits_to_float(float_to_bits(value) ^ (1 << fault.bit))
            machine.fregs[idx] = bad
        else:
            bad = value ^ (1 << fault.bit)
            if idx != 0:
                machine.xregs[idx] = bad
        new_dsts = list(dsts)
        new_dsts[which] = (is_fp, idx, bad)
        # mark the architecturally-used value on the matching load record,
        # so LFU-off mode forwards the corrupted value into the log
        if which < len(mem) and mem[which][0] == LOAD:
            kind, addr, value, _used = mem[which]
            used = float_to_bits(bad) if is_fp else bad
            mem = (mem[:which] + ((kind, addr, value, used),)
                   + mem[which + 1:])
        self.activations.append((machine.instr_count - 1, fault.site))
        return tuple(new_dsts), mem

    def _apply_hard(self, machine: Machine, dsts: tuple, hard: HardFault) -> tuple:
        is_fp, idx, value = dsts[0]
        if is_fp:
            bad = bits_to_float(float_to_bits(value) ^ hard.mask)
            machine.fregs[idx] = bad
        else:
            bad = (value ^ hard.mask) & MASK64
            if idx != 0:
                machine.xregs[idx] = bad
        return ((is_fp, idx, bad),) + dsts[1:]


def system_faults(faults: list[TransientFault | HardFault]) -> dict:
    """Split out the fault specs handled by the detection system itself.

    Returns ``{"checkpoint": [...], "checker": [...]}``.
    """
    result = {"checkpoint": [], "checker": []}
    for fault in faults:
        if isinstance(fault, TransientFault):
            if fault.site is FaultSite.CHECKPOINT:
                result["checkpoint"].append(fault)
            elif fault.site is FaultSite.CHECKER:
                result["checker"].append(fault)
    return result
