"""Interrupt-arrival generators (paper §IV-G).

Interrupts and context switches force an early register checkpoint so
the checker cores see events at the same instruction boundary as the
main core.  The detection system takes arrival points as committed-
instruction sequence numbers; these helpers generate realistic arrival
patterns deterministically.
"""

from __future__ import annotations

from repro.common.rng import derive


def periodic_interrupts(trace_length: int, period: int,
                        offset: int = 0) -> list[int]:
    """Timer-style interrupts every ``period`` committed instructions.

    A 10 ms timer tick on a 3.2 GHz core at IPC 2 is one interrupt per
    ~64 M instructions — far sparser than our traces — so tests use much
    smaller periods to actually exercise the splitting logic.
    """
    if period < 1:
        raise ValueError("period must be >= 1")
    return list(range(offset + period, trace_length, period))


def random_interrupts(trace_length: int, count: int,
                      seed: int | None = None) -> list[int]:
    """``count`` device-style interrupts at uniform random commits."""
    if count < 0:
        raise ValueError("count must be >= 0")
    rng = derive(seed, "interrupt-arrivals")
    upper = max(1, trace_length - 1)
    return sorted(rng.randrange(1, upper + 1) for _ in range(count))
