"""In-order checker-core timing model (paper §IV-B, Figure 4).

A small scalar 4-stage pipeline: issues at most one instruction per cycle,
functional units are pipelined (so back-to-back independent FP operations
sustain one per cycle) but a consumer of a not-yet-ready result interlocks.
Loads and stores are serviced from the core's load-store log segment in a
single cycle — the checker has **no data cache**.  Instruction fetch goes
through the private L0 I-cache and the shared checker L1I.

Branches use static not-taken prediction with a short taken-branch bubble;
the pipeline is short, so the penalty is small (Figure 4's design point).

All times are in *checker-core cycles*; the detection system converts to
ticks using the checker clock, which is the axis of the paper's Figure 9
frequency sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import CheckerConfig
from repro.core.latencies import NON_PIPELINED, execute_latency
from repro.isa.instructions import pc_to_byte_address
from repro.isa.meta import ProgramMeta
from repro.memory.hierarchy import CheckerICaches

#: Bubble cycles after a taken branch (fetch redirect in a 4-stage pipe).
TAKEN_BRANCH_PENALTY = 2

#: Cycles to read the next entry from the load-store log segment.
LOG_READ_LATENCY = 1


@dataclass
class SegmentTiming:
    """Timing of one replayed segment on a checker core."""

    #: checker cycle (relative to segment start) each log entry was checked
    entry_check_cycles: list[int]
    #: total checker cycles to execute the segment, including the final
    #: register-checkpoint comparison
    total_cycles: int


#: Cycles to compare the architectural register file against the end
#: checkpoint (two-ported file, 32+32 registers, matching the main core's
#: 16-cycle checkpoint copy cost).
CHECKPOINT_COMPARE_CYCLES = 16


class InOrderCoreModel:
    """Timing model for one checker core."""

    __slots__ = ("config", "icaches", "core_id")

    def __init__(self, config: CheckerConfig, icaches: CheckerICaches,
                 core_id: int) -> None:
        self.config = config
        self.icaches = icaches
        self.core_id = core_id

    def run_segment(
        self,
        steps: list[tuple[int, bool]],
        metas: ProgramMeta,
        start_cycle: int = 0,
    ) -> SegmentTiming:
        """Time the replay of one segment.

        ``steps`` is the replayed instruction sequence as ``(pc, taken)``
        pairs (produced by the functional replay in
        :mod:`repro.detection.checker`).  Returns per-log-entry check cycles
        relative to ``start_cycle`` == 0 of the segment.
        """
        icaches = self.icaches
        core_id = self.core_id
        int_ready = [0] * 32
        fp_ready = [0] * 32
        cycle = start_cycle
        line_shift = 6
        current_line = -1
        fetch_ready = start_cycle
        entry_checks: list[int] = []

        for pc, taken in steps:
            meta = metas[pc]
            byte_addr = pc_to_byte_address(pc)
            line = byte_addr >> line_shift
            if line != current_line:
                fetch_ready = icaches.access(core_id, byte_addr, cycle)
                current_line = line
            if fetch_ready > cycle:
                cycle = fetch_ready

            # operand interlock
            ready = cycle
            for is_fp, idx in meta.srcs:
                t = fp_ready[idx] if is_fp else int_ready[idx]
                if t > ready:
                    ready = t
            cycle = ready

            if meta.is_load or meta.is_store:
                # log segment read + hardware compare, per micro-op
                done = cycle + LOG_READ_LATENCY * meta.uops
                for _ in range(meta.uops):
                    entry_checks.append(done - start_cycle)
            else:
                latency = execute_latency(meta.op)
                done = cycle + latency
                if meta.op.value in ("RDRAND", "RDCYCLE"):
                    # non-deterministic results consumed from the log
                    entry_checks.append(done - start_cycle)

            for is_fp, idx in meta.dsts:
                if is_fp:
                    fp_ready[idx] = done
                else:
                    int_ready[idx] = done

            if meta.op in NON_PIPELINED:
                cycle = done  # unit blocks the scalar pipe
            else:
                cycle += 1
            if taken and (meta.is_branch or meta.is_jump):
                cycle += TAKEN_BRANCH_PENALTY
                current_line = -1

        total = (cycle - start_cycle) + CHECKPOINT_COMPARE_CYCLES
        return SegmentTiming(entry_check_cycles=entry_checks, total_cycles=total)
