"""Per-opcode execution latencies, in cycles of the executing core's clock.

Both the main core and the checker cores use the same table — the paper's
heterogeneity is in width, scheduling and clock frequency, not in
functional-unit latency.  Division and square root additionally occupy
their unit (non-pipelined); everything else is fully pipelined.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode

#: Default latency for anything not listed below.
DEFAULT_LATENCY = 1

_LATENCIES: dict[Opcode, int] = {
    Opcode.MUL: 3,
    Opcode.DIV: 12,
    Opcode.REM: 12,
    Opcode.FADD: 3,
    Opcode.FSUB: 3,
    Opcode.FMUL: 4,
    Opcode.FMADD: 5,
    Opcode.FDIV: 12,
    Opcode.FSQRT: 16,
    Opcode.FMIN: 2,
    Opcode.FMAX: 2,
    Opcode.FCMPLT: 2,
    Opcode.FCMPLE: 2,
    Opcode.FCMPEQ: 2,
    Opcode.FCVT_I2F: 2,
    Opcode.FCVT_F2I: 2,
    Opcode.FNEG: 1,
    Opcode.FABS: 1,
    Opcode.FMOV: 1,
}

#: Opcodes whose functional unit is busy for the whole latency
#: (non-pipelined).
NON_PIPELINED = frozenset({Opcode.DIV, Opcode.REM, Opcode.FDIV, Opcode.FSQRT})


def execute_latency(op: Opcode) -> int:
    """Execution latency of ``op`` in cycles (excluding memory access)."""
    return _LATENCIES.get(op, DEFAULT_LATENCY)
