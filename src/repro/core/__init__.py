"""Core timing models: the OoO main core and the in-order checker cores."""

from repro.core.branch import TournamentPredictor
from repro.core.inorder_core import (
    CHECKPOINT_COMPARE_CYCLES,
    InOrderCoreModel,
    SegmentTiming,
)
from repro.core.latencies import NON_PIPELINED, execute_latency
from repro.core.ooo_core import CommitHook, CoreResult, OoOCore

__all__ = [
    "CHECKPOINT_COMPARE_CYCLES",
    "CommitHook",
    "CoreResult",
    "InOrderCoreModel",
    "NON_PIPELINED",
    "OoOCore",
    "SegmentTiming",
    "TournamentPredictor",
    "execute_latency",
]
