"""Trace-driven out-of-order main-core timing model.

The model walks the committed dynamic trace (from the functional executor)
and computes per-instruction fetch → dispatch → issue → complete → commit
times under the Table I resource constraints:

* fetch bandwidth and L1I behaviour (line-granularity accesses, redirect
  bubbles after branch mispredictions from a real tournament predictor);
* dispatch limited by width, ROB occupancy (µop-granular, so LDP/STP take
  two slots), IQ occupancy, and LQ/SQ occupancy;
* issue when operands are ready, subject to functional-unit counts
  (non-pipelined divide/sqrt occupy their unit);
* loads access the L1D/L2/DRAM hierarchy with MSHR limits, stride
  prefetching, and store-to-load forwarding from in-flight stores;
* in-order commit limited by commit width.

This is deliberately a *mechanistic approximation*, not a µop-accurate
pipeline: it reproduces the IPC contrast between memory-bound and
compute-bound codes and the stall behaviour the detection scheme interacts
with, at a speed that allows the full parameter sweeps of §VI-A.

The detection system attaches through :class:`CommitHook`:

* ``pre_commit`` lets it hold an instruction's commit back (main core
  stalled because every log segment is full — paper §IV-D);
* ``post_commit`` lets it pause commit afterwards (the 16-cycle register
  checkpoint at the end of a segment — paper §VI "Register Checkpoint
  Overhead").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.core.branch import TournamentPredictor
from repro.core.latencies import NON_PIPELINED, execute_latency
from repro.isa.executor import LOAD, STORE, Trace
from repro.isa.instructions import FuClass, Opcode, pc_to_byte_address
from repro.isa.meta import program_meta
from repro.memory.hierarchy import MemoryHierarchy


class CommitHook:
    """Interface by which the detection system observes/stalls commit.

    The hook walks the trace's columns alongside the core: ``begin``
    hands it the columnar trace once, and the per-instruction callbacks
    identify the committing instruction by its row index (== commit
    ``seq``), so no per-instruction record objects are materialised on
    the timing path.  The base implementation is a no-op (unprotected
    core).
    """

    def begin(self, trace: Trace) -> None:
        """Called once before the first commit with the trace being run."""

    def pre_commit(self, seq: int, earliest_cycle: int) -> int:
        """Return the earliest cycle at which row ``seq`` may commit (>= the
        argument).  Called once per instruction, in commit order."""
        return earliest_cycle

    def post_commit(self, seq: int, commit_cycle: int) -> int:
        """Called after row ``seq`` commits at ``commit_cycle``.  Returns the
        number of cycles to pause commit afterwards (0 for none)."""
        return 0

    def finish(self, last_commit_cycle: int) -> int:
        """Called once after the last instruction commits; returns the cycle
        at which the *system* is done (e.g. held-back program termination
        waiting for outstanding checks, paper §IV-H)."""
        return last_commit_cycle


@dataclass
class CoreResult:
    """Timing outcome of one main-core run."""

    cycles: int
    instructions: int
    uops: int
    #: cycle the whole system finished (== cycles without a hook)
    system_cycles: int = 0
    branch_lookups: int = 0
    branch_mispredicts: int = 0
    l1d_misses: int = 0
    l2_misses: int = 0
    commit_stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


#: Frontend depth in cycles between fetch and dispatch (decode+rename).
FRONTEND_DEPTH = 4


class OoOCore:
    """The 3-wide out-of-order core of Table I."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        self.core = config.main_core
        self.clock = self.core.clock()
        self.hierarchy = MemoryHierarchy(config.memory, self.clock)
        self.predictor = TournamentPredictor(config.branch)

    def run(self, trace: Trace, hook: CommitHook | None = None) -> CoreResult:
        """Simulate the committed ``trace``; returns timing totals.

        If ``hook`` is given, its pre/post-commit methods are invoked for
        every instruction in commit order (this is how the parallel error
        detection attaches to the core).
        """
        core = self.core
        meta_table = program_meta(trace.program)
        metas = meta_table.metas
        hierarchy = self.hierarchy
        predictor = self.predictor
        mispredict_penalty = core.mispredict_penalty_cycles

        fetch_width = core.fetch_width
        commit_width = core.commit_width
        rob_size = core.rob_entries
        iq_size = core.iq_entries
        lq_size = core.lq_entries
        sq_size = core.sq_entries

        # register ready times: int and fp files
        int_ready = [0] * 32
        fp_ready = [0] * 32

        # functional units: next-free cycle per unit instance
        fu_pools: dict[FuClass, list[int]] = {
            FuClass.INT_ALU: [0] * core.int_alus,
            FuClass.FP_ALU: [0] * core.fp_alus,
            FuClass.MULDIV: [0] * core.muldiv_alus,
            FuClass.MEM: [0] * 2,       # one load port + one store port
            FuClass.BRANCH: [0] * core.int_alus,  # branches use int ALUs
        }

        # occupancy rings: cycle at which the slot is released
        rob_ring = [0] * rob_size
        rob_head = 0
        iq_ring = [0] * iq_size
        iq_head = 0
        lq_ring = [0] * lq_size
        lq_head = 0
        sq_ring = [0] * sq_size
        sq_head = 0

        # in-flight stores for store-to-load forwarding: addr -> data cycle
        store_forward: dict[int, int] = {}

        # fetch state
        fetch_cycle = 0          # cycle the next fetch group starts
        fetch_slots = 0          # instructions fetched in fetch_cycle
        line_shift = 6           # 64-byte I-cache lines
        current_fetch_line = -1
        icache_ready = 0

        # commit state
        last_commit_cycle = 0
        commit_slots = 0
        commit_floor = 0         # earliest next commit (stall injection)
        stall_cycles_total = 0

        # trace columns (structure of arrays: no row objects on this path)
        pcs = trace.pcs
        takens = trace.takens
        mem_off = trace.mem_off
        mem_kind = trace.mem_kind
        mem_addr = trace.mem_addr
        final_next_pc = trace.final_next_pc
        total = len(pcs)
        total_uops = 0

        if hook is not None:
            hook.begin(trace)

        for i in range(total):
            pc = pcs[i]
            meta = metas[pc]
            op = meta.op
            uops = meta.uops
            total_uops += uops

            # ---- fetch -----------------------------------------------------
            line = pc_to_byte_address(pc) >> line_shift
            if line != current_fetch_line:
                icache_ready = hierarchy.access_instr(
                    pc_to_byte_address(pc), fetch_cycle)
                current_fetch_line = line
            this_fetch = max(fetch_cycle, icache_ready)
            if this_fetch > fetch_cycle:
                fetch_cycle = this_fetch
                fetch_slots = 0
            fetch_slots += 1
            if fetch_slots >= fetch_width:
                fetch_cycle += 1
                fetch_slots = 0

            # ---- dispatch ---------------------------------------------------
            dispatch = this_fetch + FRONTEND_DEPTH
            # ROB occupancy (µop-granular): note the slots this instruction
            # claims; their release times are written at commit below.
            rob_slots = []
            for _ in range(uops):
                if rob_ring[rob_head] > dispatch:
                    dispatch = rob_ring[rob_head]
                rob_slots.append(rob_head)
                rob_head = rob_head + 1 if rob_head + 1 < rob_size else 0
            # IQ occupancy
            if iq_ring[iq_head] > dispatch:
                dispatch = iq_ring[iq_head]
            # LQ/SQ occupancy
            if meta.is_load:
                if lq_ring[lq_head] > dispatch:
                    dispatch = lq_ring[lq_head]
            elif meta.is_store:
                if sq_ring[sq_head] > dispatch:
                    dispatch = sq_ring[sq_head]

            # ---- issue ------------------------------------------------------
            ready = dispatch + 1
            for is_fp, idx in meta.srcs:
                t = fp_ready[idx] if is_fp else int_ready[idx]
                if t > ready:
                    ready = t
            pool = fu_pools.get(meta.fu)
            if pool is not None and meta.fu is not FuClass.NONE:
                best = 0
                best_t = pool[0]
                for k in range(1, len(pool)):
                    if pool[k] < best_t:
                        best_t = pool[k]
                        best = k
                issue = ready if ready >= best_t else best_t
                latency = execute_latency(op)
                pool[best] = issue + (latency if op in NON_PIPELINED else 1)
            else:
                issue = ready
                latency = 1

            # ---- execute ----------------------------------------------------
            m_lo, m_hi = mem_off[i], mem_off[i + 1]
            if meta.is_load:
                done = issue
                for j in range(m_lo, m_hi):
                    if mem_kind[j] != LOAD:
                        continue
                    addr = mem_addr[j]
                    fwd = store_forward.get(addr)
                    if fwd is not None:
                        access_done = max(issue + 1, fwd)
                    else:
                        access_done = hierarchy.access_data(
                            addr, False, pc, issue + 1)
                    if access_done > done:
                        done = access_done
            elif meta.is_store:
                done = issue + 1
                for j in range(m_lo, m_hi):
                    if mem_kind[j] == STORE:
                        store_forward[mem_addr[j]] = done
                        if len(store_forward) > 2 * sq_size:
                            # retire oldest forwarding entries
                            for key in list(store_forward)[:sq_size]:
                                del store_forward[key]
            else:
                done = issue + latency

            # ---- branch resolution -------------------------------------------
            if meta.is_branch or meta.is_jump:
                mispredicted = predictor.mispredicted(
                    pc,
                    meta.is_branch,
                    meta.is_jump,
                    op is Opcode.JALR,
                    op is Opcode.JAL,
                    takens[i] == 1,
                    pcs[i + 1] if i + 1 < total else final_next_pc,
                )
                if mispredicted:
                    redirect = done + mispredict_penalty
                    if redirect > fetch_cycle:
                        fetch_cycle = redirect
                        fetch_slots = 0
                        current_fetch_line = -1

            # ---- commit ------------------------------------------------------
            earliest = done + 1
            if earliest < last_commit_cycle:
                earliest = last_commit_cycle
            if earliest < commit_floor:
                earliest = commit_floor
            if hook is not None:
                held = hook.pre_commit(i, earliest)
                if held > earliest:
                    stall_cycles_total += held - earliest
                    earliest = held
            if earliest == last_commit_cycle:
                commit_slots += 1
                if commit_slots > commit_width:
                    earliest += 1
                    commit_slots = 1
            else:
                commit_slots = 1
            commit_cycle = earliest
            last_commit_cycle = commit_cycle

            # release resources: write release times into the slots claimed
            # at dispatch
            for slot in rob_slots:
                rob_ring[slot] = commit_cycle + 1
            iq_ring[iq_head] = issue + 1
            iq_head = iq_head + 1 if iq_head + 1 < iq_size else 0
            if meta.is_load:
                lq_ring[lq_head] = commit_cycle + 1
                lq_head = lq_head + 1 if lq_head + 1 < lq_size else 0
            elif meta.is_store:
                sq_ring[sq_head] = commit_cycle + 1
                sq_head = sq_head + 1 if sq_head + 1 < sq_size else 0
                # drain the store to the cache hierarchy post-commit
                for j in range(m_lo, m_hi):
                    if mem_kind[j] == STORE:
                        hierarchy.access_data(mem_addr[j], True, pc,
                                              commit_cycle + 1)

            # writeback ready times
            for is_fp, idx in meta.dsts:
                if is_fp:
                    fp_ready[idx] = done
                else:
                    int_ready[idx] = done

            if hook is not None:
                pause = hook.post_commit(i, commit_cycle)
                if pause:
                    stall_cycles_total += pause
                    commit_floor = commit_cycle + pause
                    # the architectural register file / rename state must
                    # hold still while the checkpoint is copied out, so
                    # dispatch pauses with commit
                    if commit_floor > fetch_cycle:
                        fetch_cycle = commit_floor
                        fetch_slots = 0
                        current_fetch_line = -1

        total_cycles = last_commit_cycle + 1
        system_cycles = total_cycles
        if hook is not None:
            system_cycles = hook.finish(total_cycles)

        return CoreResult(
            cycles=total_cycles,
            instructions=total,
            uops=total_uops,
            system_cycles=system_cycles,
            branch_lookups=self.predictor.lookups,
            branch_mispredicts=(self.predictor.direction_mispredicts
                                + self.predictor.target_mispredicts),
            l1d_misses=hierarchy.l1d.misses,
            l2_misses=hierarchy.l2.misses,
            commit_stall_cycles=stall_cycles_total,
        )
