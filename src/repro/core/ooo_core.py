"""Trace-driven out-of-order main-core timing model.

The model walks the committed dynamic trace (from the functional executor)
and computes per-instruction fetch → dispatch → issue → complete → commit
times under the Table I resource constraints:

* fetch bandwidth and L1I behaviour (line-granularity accesses, redirect
  bubbles after branch mispredictions from a real tournament predictor);
* dispatch limited by width, ROB occupancy (µop-granular, so LDP/STP take
  two slots), IQ occupancy, and LQ/SQ occupancy;
* issue when operands are ready, subject to functional-unit counts
  (non-pipelined divide/sqrt occupy their unit);
* loads access the L1D/L2/DRAM hierarchy with MSHR limits, stride
  prefetching, and store-to-load forwarding from in-flight stores;
* in-order commit limited by commit width.

This is deliberately a *mechanistic approximation*, not a µop-accurate
pipeline: it reproduces the IPC contrast between memory-bound and
compute-bound codes and the stall behaviour the detection scheme interacts
with, at a speed that allows the full parameter sweeps of §VI-A.

The detection system attaches through :class:`CommitHook`:

* ``pre_commit`` lets it hold an instruction's commit back (main core
  stalled because every log segment is full — paper §IV-D);
* ``post_commit`` lets it pause commit afterwards (the 16-cycle register
  checkpoint at the end of a segment — paper §VI "Register Checkpoint
  Overhead").

The run loop is *resumable*: all mutable run state lives in a
:class:`CoreRunState` capsule, ``run_rows`` advances it over a half-open
row range, and :meth:`OoOCore.fork` snapshots a mid-run (core, state,
hook) bundle into an isolated continuation via explicit
``snapshot()``/``restore()`` methods (flat list/dict copies — no
recursive deepcopy).  This is what the timing splice (ROADMAP item 2)
builds on: time a golden trace once, snapshot at keyframe-like
boundaries, and re-time only the post-fork suffix of each faulty trace —
byte-identical to a full re-timing because it *is* the same loop,
resumed.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.core.branch import TournamentPredictor
from repro.core.latencies import NON_PIPELINED, execute_latency
from repro.isa.executor import LOAD, STORE, Trace
from repro.isa.instructions import FuClass, Opcode, pc_to_byte_address
from repro.isa.meta import program_meta
from repro.memory.hierarchy import MemoryHierarchy


class CommitHook:
    """Interface by which the detection system observes/stalls commit.

    The hook walks the trace's columns alongside the core: ``begin``
    hands it the columnar trace once, and the per-instruction callbacks
    identify the committing instruction by its row index (== commit
    ``seq``), so no per-instruction record objects are materialised on
    the timing path.  The base implementation is a no-op (unprotected
    core).
    """

    def begin(self, trace: Trace) -> None:
        """Called once before the first commit with the trace being run."""

    def pre_commit(self, seq: int, earliest_cycle: int) -> int:
        """Return the earliest cycle at which row ``seq`` may commit (>= the
        argument).  Called once per instruction, in commit order."""
        return earliest_cycle

    def post_commit(self, seq: int, commit_cycle: int) -> int:
        """Called after row ``seq`` commits at ``commit_cycle``.  Returns the
        number of cycles to pause commit afterwards (0 for none)."""
        return 0

    def finish(self, last_commit_cycle: int) -> int:
        """Called once after the last instruction commits; returns the cycle
        at which the *system* is done (e.g. held-back program termination
        waiting for outstanding checks, paper §IV-H)."""
        return last_commit_cycle

    def clone_shared(self) -> tuple:
        """Objects :meth:`OoOCore.fork` must alias, never deep-copy, when
        snapshotting a run this hook is attached to: bound trace columns
        (mmap-backed memoryviews are not copyable), the program, and other
        immutable structure.  Mutable hook state is *not* listed here —
        forked continuations need their own copy of it."""
        return ()

    def snapshot(self) -> "CommitHook":
        """An isolated copy of this hook for a forked continuation.

        The base implementation deep-copies the hook with everything in
        :meth:`clone_shared` aliased — correct for any hook, slow for big
        ones.  Stateful hooks on the fork fast path (the detection system)
        override this with explicit flat copies.
        """
        memo = {id(obj): obj for obj in self.clone_shared()}
        return copy.deepcopy(self, memo)


@dataclass
class CoreResult:
    """Timing outcome of one main-core run."""

    cycles: int
    instructions: int
    uops: int
    #: cycle the whole system finished (== cycles without a hook)
    system_cycles: int = 0
    branch_lookups: int = 0
    branch_mispredicts: int = 0
    l1d_misses: int = 0
    l2_misses: int = 0
    commit_stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


#: Frontend depth in cycles between fetch and dispatch (decode+rename).
FRONTEND_DEPTH = 4


class CoreRunState:
    """Every mutable local of the run loop, boxed so a run can pause.

    ``run_rows`` loads these into locals on entry and writes them back on
    exit, so boxing costs nothing on the per-row path.  The capsule holds
    plain ints/lists/dicts only — :meth:`snapshot` copies it exactly with
    flat slice/dict copies (via :meth:`OoOCore.fork`).
    """

    __slots__ = (
        "next_row",
        "int_ready", "fp_ready", "fu_pools",
        "rob_ring", "rob_head", "iq_ring", "iq_head",
        "lq_ring", "lq_head", "sq_ring", "sq_head",
        "store_forward",
        "fetch_cycle", "fetch_slots", "current_fetch_line", "icache_ready",
        "last_commit_cycle", "commit_slots", "commit_floor",
        "stall_cycles_total", "total_uops",
    )

    def restore(self, src: "CoreRunState") -> None:
        """Overwrite this capsule with an independent copy of ``src``.

        Containers are flat-copied (the capsule holds only ints, flat
        lists, and int-valued dicts), so no recursion is needed.
        """
        self.next_row = src.next_row
        self.int_ready = src.int_ready[:]
        self.fp_ready = src.fp_ready[:]
        self.fu_pools = {fu: pool[:] for fu, pool in src.fu_pools.items()}
        self.rob_ring = src.rob_ring[:]
        self.rob_head = src.rob_head
        self.iq_ring = src.iq_ring[:]
        self.iq_head = src.iq_head
        self.lq_ring = src.lq_ring[:]
        self.lq_head = src.lq_head
        self.sq_ring = src.sq_ring[:]
        self.sq_head = src.sq_head
        self.store_forward = dict(src.store_forward)
        self.fetch_cycle = src.fetch_cycle
        self.fetch_slots = src.fetch_slots
        self.current_fetch_line = src.current_fetch_line
        self.icache_ready = src.icache_ready
        self.last_commit_cycle = src.last_commit_cycle
        self.commit_slots = src.commit_slots
        self.commit_floor = src.commit_floor
        self.stall_cycles_total = src.stall_cycles_total
        self.total_uops = src.total_uops

    def snapshot(self) -> "CoreRunState":
        """An independent copy of this capsule (fork support)."""
        clone = CoreRunState()
        clone.restore(self)
        return clone


class OoOCore:
    """The 3-wide out-of-order core of Table I."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        self.core = config.main_core
        self.clock = self.core.clock()
        self.hierarchy = MemoryHierarchy(config.memory, self.clock)
        self.predictor = TournamentPredictor(config.branch)

    def start_state(self) -> CoreRunState:
        """A fresh run state positioned before row 0."""
        core = self.core
        s = CoreRunState()
        s.next_row = 0
        # register ready times: int and fp files
        s.int_ready = [0] * 32
        s.fp_ready = [0] * 32
        # functional units: next-free cycle per unit instance
        s.fu_pools = {
            FuClass.INT_ALU: [0] * core.int_alus,
            FuClass.FP_ALU: [0] * core.fp_alus,
            FuClass.MULDIV: [0] * core.muldiv_alus,
            FuClass.MEM: [0] * 2,       # one load port + one store port
            FuClass.BRANCH: [0] * core.int_alus,  # branches use int ALUs
        }
        # occupancy rings: cycle at which the slot is released
        s.rob_ring = [0] * core.rob_entries
        s.rob_head = 0
        s.iq_ring = [0] * core.iq_entries
        s.iq_head = 0
        s.lq_ring = [0] * core.lq_entries
        s.lq_head = 0
        s.sq_ring = [0] * core.sq_entries
        s.sq_head = 0
        # in-flight stores for store-to-load forwarding: addr -> data cycle
        s.store_forward = {}
        # fetch state
        s.fetch_cycle = 0        # cycle the next fetch group starts
        s.fetch_slots = 0        # instructions fetched in fetch_cycle
        s.current_fetch_line = -1
        s.icache_ready = 0
        # commit state
        s.last_commit_cycle = 0
        s.commit_slots = 0
        s.commit_floor = 0       # earliest next commit (stall injection)
        s.stall_cycles_total = 0
        s.total_uops = 0
        return s

    def fork(self, state: CoreRunState, hook: CommitHook | None = None):
        """Snapshot this mid-run (core, state, hook) into an isolated
        continuation.

        Every mutable structure — the memory hierarchy, the branch
        predictor, the run-state capsule, and the hook — is copied via
        its explicit ``snapshot()`` method (flat list/dict copies, no
        recursive deepcopy).  Configuration objects, the clock, and the
        trace columns stay shared: they are immutable for the lifetime of
        a run (mmap-backed columns could not be deep-copied anyway).
        The result is byte-identical to the deep-copy this used to do,
        which the fork-identity tests pin.
        """
        core = OoOCore.__new__(OoOCore)
        core.config = self.config
        core.core = self.core
        core.clock = self.clock
        core.hierarchy = self.hierarchy.snapshot()
        core.predictor = self.predictor.snapshot()
        forked_state = state.snapshot() if state is not None else None
        forked_hook = hook.snapshot() if hook is not None else None
        return core, forked_state, forked_hook

    def run_rows(
        self,
        trace: Trace,
        hook: CommitHook | None,
        state: CoreRunState,
        stop: int,
        record=None,
    ) -> None:
        """Advance the run over rows ``[state.next_row, stop)``.

        Does not call ``hook.begin``/``hook.finish`` — callers sequence
        those (``run`` does both; the timing splice calls ``begin`` once
        per binding and resumes ``run_rows`` from a forked state).

        If ``record`` is given it must expose five append-able columns
        (``issue``, ``commit``, ``branch``, ``l1d``, ``l2``); one entry
        per row is appended: issue/commit cycles, branch outcome (-1 no
        branch, 0 predicted, 1 mispredicted), and per-row L1D/L2 miss
        deltas.  Recording does not perturb timing.
        """
        core = self.core
        meta_table = program_meta(trace.program)
        metas = meta_table.metas
        hierarchy = self.hierarchy
        predictor = self.predictor
        mispredict_penalty = core.mispredict_penalty_cycles

        fetch_width = core.fetch_width
        commit_width = core.commit_width
        rob_size = core.rob_entries
        iq_size = core.iq_entries
        lq_size = core.lq_entries
        sq_size = core.sq_entries

        # unbox the capsule into locals for the hot loop
        int_ready = state.int_ready
        fp_ready = state.fp_ready
        fu_pools = state.fu_pools
        rob_ring = state.rob_ring
        rob_head = state.rob_head
        iq_ring = state.iq_ring
        iq_head = state.iq_head
        lq_ring = state.lq_ring
        lq_head = state.lq_head
        sq_ring = state.sq_ring
        sq_head = state.sq_head
        store_forward = state.store_forward
        fetch_cycle = state.fetch_cycle
        fetch_slots = state.fetch_slots
        line_shift = 6           # 64-byte I-cache lines
        current_fetch_line = state.current_fetch_line
        icache_ready = state.icache_ready
        last_commit_cycle = state.last_commit_cycle
        commit_slots = state.commit_slots
        commit_floor = state.commit_floor
        stall_cycles_total = state.stall_cycles_total
        total_uops = state.total_uops

        # trace columns (structure of arrays: no row objects on this path)
        pcs = trace.pcs
        takens = trace.takens
        mem_off = trace.mem_off
        mem_kind = trace.mem_kind
        mem_addr = trace.mem_addr
        final_next_pc = trace.final_next_pc
        total = len(pcs)

        if record is not None:
            rec_issue = record.issue
            rec_commit = record.commit
            rec_branch = record.branch
            rec_l1d = record.l1d
            rec_l2 = record.l2
            l1d_cache = hierarchy.l1d
            l2_cache = hierarchy.l2

        for i in range(state.next_row, stop):
            pc = pcs[i]
            meta = metas[pc]
            op = meta.op
            uops = meta.uops
            total_uops += uops
            if record is not None:
                l1d_before = l1d_cache.misses
                l2_before = l2_cache.misses
                branch_outcome = -1

            # ---- fetch -----------------------------------------------------
            line = pc_to_byte_address(pc) >> line_shift
            if line != current_fetch_line:
                icache_ready = hierarchy.access_instr(
                    pc_to_byte_address(pc), fetch_cycle)
                current_fetch_line = line
            this_fetch = max(fetch_cycle, icache_ready)
            if this_fetch > fetch_cycle:
                fetch_cycle = this_fetch
                fetch_slots = 0
            fetch_slots += 1
            if fetch_slots >= fetch_width:
                fetch_cycle += 1
                fetch_slots = 0

            # ---- dispatch ---------------------------------------------------
            dispatch = this_fetch + FRONTEND_DEPTH
            # ROB occupancy (µop-granular): note the slots this instruction
            # claims; their release times are written at commit below.
            rob_slots = []
            for _ in range(uops):
                if rob_ring[rob_head] > dispatch:
                    dispatch = rob_ring[rob_head]
                rob_slots.append(rob_head)
                rob_head = rob_head + 1 if rob_head + 1 < rob_size else 0
            # IQ occupancy
            if iq_ring[iq_head] > dispatch:
                dispatch = iq_ring[iq_head]
            # LQ/SQ occupancy
            if meta.is_load:
                if lq_ring[lq_head] > dispatch:
                    dispatch = lq_ring[lq_head]
            elif meta.is_store:
                if sq_ring[sq_head] > dispatch:
                    dispatch = sq_ring[sq_head]

            # ---- issue ------------------------------------------------------
            ready = dispatch + 1
            for is_fp, idx in meta.srcs:
                t = fp_ready[idx] if is_fp else int_ready[idx]
                if t > ready:
                    ready = t
            pool = fu_pools.get(meta.fu)
            if pool is not None and meta.fu is not FuClass.NONE:
                best = 0
                best_t = pool[0]
                for k in range(1, len(pool)):
                    if pool[k] < best_t:
                        best_t = pool[k]
                        best = k
                issue = ready if ready >= best_t else best_t
                latency = execute_latency(op)
                pool[best] = issue + (latency if op in NON_PIPELINED else 1)
            else:
                issue = ready
                latency = 1

            # ---- execute ----------------------------------------------------
            m_lo, m_hi = mem_off[i], mem_off[i + 1]
            if meta.is_load:
                done = issue
                for j in range(m_lo, m_hi):
                    if mem_kind[j] != LOAD:
                        continue
                    addr = mem_addr[j]
                    fwd = store_forward.get(addr)
                    if fwd is not None:
                        access_done = max(issue + 1, fwd)
                    else:
                        access_done = hierarchy.access_data(
                            addr, False, pc, issue + 1)
                    if access_done > done:
                        done = access_done
            elif meta.is_store:
                done = issue + 1
                for j in range(m_lo, m_hi):
                    if mem_kind[j] == STORE:
                        store_forward[mem_addr[j]] = done
                        if len(store_forward) > 2 * sq_size:
                            # retire oldest forwarding entries
                            for key in list(store_forward)[:sq_size]:
                                del store_forward[key]
            else:
                done = issue + latency

            # ---- branch resolution -------------------------------------------
            if meta.is_branch or meta.is_jump:
                mispredicted = predictor.mispredicted(
                    pc,
                    meta.is_branch,
                    meta.is_jump,
                    op is Opcode.JALR,
                    op is Opcode.JAL,
                    takens[i] == 1,
                    pcs[i + 1] if i + 1 < total else final_next_pc,
                )
                if record is not None:
                    branch_outcome = 1 if mispredicted else 0
                if mispredicted:
                    redirect = done + mispredict_penalty
                    if redirect > fetch_cycle:
                        fetch_cycle = redirect
                        fetch_slots = 0
                        current_fetch_line = -1

            # ---- commit ------------------------------------------------------
            earliest = done + 1
            if earliest < last_commit_cycle:
                earliest = last_commit_cycle
            if earliest < commit_floor:
                earliest = commit_floor
            if hook is not None:
                held = hook.pre_commit(i, earliest)
                if held > earliest:
                    stall_cycles_total += held - earliest
                    earliest = held
            if earliest == last_commit_cycle:
                commit_slots += 1
                if commit_slots > commit_width:
                    earliest += 1
                    commit_slots = 1
            else:
                commit_slots = 1
            commit_cycle = earliest
            last_commit_cycle = commit_cycle

            # release resources: write release times into the slots claimed
            # at dispatch
            for slot in rob_slots:
                rob_ring[slot] = commit_cycle + 1
            iq_ring[iq_head] = issue + 1
            iq_head = iq_head + 1 if iq_head + 1 < iq_size else 0
            if meta.is_load:
                lq_ring[lq_head] = commit_cycle + 1
                lq_head = lq_head + 1 if lq_head + 1 < lq_size else 0
            elif meta.is_store:
                sq_ring[sq_head] = commit_cycle + 1
                sq_head = sq_head + 1 if sq_head + 1 < sq_size else 0
                # drain the store to the cache hierarchy post-commit
                for j in range(m_lo, m_hi):
                    if mem_kind[j] == STORE:
                        hierarchy.access_data(mem_addr[j], True, pc,
                                              commit_cycle + 1)

            # writeback ready times
            for is_fp, idx in meta.dsts:
                if is_fp:
                    fp_ready[idx] = done
                else:
                    int_ready[idx] = done

            if hook is not None:
                pause = hook.post_commit(i, commit_cycle)
                if pause:
                    stall_cycles_total += pause
                    commit_floor = commit_cycle + pause
                    # the architectural register file / rename state must
                    # hold still while the checkpoint is copied out, so
                    # dispatch pauses with commit
                    if commit_floor > fetch_cycle:
                        fetch_cycle = commit_floor
                        fetch_slots = 0
                        current_fetch_line = -1

            if record is not None:
                rec_issue.append(issue)
                rec_commit.append(commit_cycle)
                rec_branch.append(branch_outcome)
                rec_l1d.append(l1d_cache.misses - l1d_before)
                rec_l2.append(l2_cache.misses - l2_before)

        # box the loop state back up for the next resume
        state.next_row = stop
        state.rob_head = rob_head
        state.iq_head = iq_head
        state.lq_head = lq_head
        state.sq_head = sq_head
        state.fetch_cycle = fetch_cycle
        state.fetch_slots = fetch_slots
        state.current_fetch_line = current_fetch_line
        state.icache_ready = icache_ready
        state.last_commit_cycle = last_commit_cycle
        state.commit_slots = commit_slots
        state.commit_floor = commit_floor
        state.stall_cycles_total = stall_cycles_total
        state.total_uops = total_uops

    def finish_run(
        self,
        trace: Trace,
        hook: CommitHook | None,
        state: CoreRunState,
    ) -> CoreResult:
        """Close a run whose rows have all been advanced; returns totals."""
        total_cycles = state.last_commit_cycle + 1
        system_cycles = total_cycles
        if hook is not None:
            system_cycles = hook.finish(total_cycles)
        return CoreResult(
            cycles=total_cycles,
            instructions=len(trace),
            uops=state.total_uops,
            system_cycles=system_cycles,
            branch_lookups=self.predictor.lookups,
            branch_mispredicts=(self.predictor.direction_mispredicts
                                + self.predictor.target_mispredicts),
            l1d_misses=self.hierarchy.l1d.misses,
            l2_misses=self.hierarchy.l2.misses,
            commit_stall_cycles=state.stall_cycles_total,
        )

    def run(
        self,
        trace: Trace,
        hook: CommitHook | None = None,
        record=None,
    ) -> CoreResult:
        """Simulate the committed ``trace``; returns timing totals.

        If ``hook`` is given, its pre/post-commit methods are invoked for
        every instruction in commit order (this is how the parallel error
        detection attaches to the core).
        """
        if hook is not None:
            hook.begin(trace)
        state = self.start_state()
        self.run_rows(trace, hook, state, len(trace), record=record)
        return self.finish_run(trace, hook, state)
