"""Timing models and golden timing records (ROADMAP item 2).

Fork-point injection (PR 5/6) removed the clean-execution prefix from
fault jobs; this module does the same for *timing*.  Two mechanisms:

* **Golden timing records.**  ``time_bare`` times a clean trace with the
  exact cycle model exactly once, capturing per-instruction columns
  (issue/commit cycles, branch outcome, per-row L1D/L2 miss deltas) plus
  the full :class:`CoreResult`.  Records are memoised on the trace and
  published into the trace-store envelope (schema v4), so warm campaigns
  serve clean-run timing without touching the OoO loop at all.  The
  served result is byte-identical to a fresh run by construction — it
  *is* the stored output of one.

* **The TimingModel seam.**  Fault-classification runs pick a model per
  :class:`~repro.harness.campaign.JobSpec` (folded into cache keys —
  cache schema v6):

  - ``cycle`` — the exact OoO model.  With a forked faulty trace, the
    detection system additionally splices golden timing state at a
    pre-fork snapshot and re-times only the suffix (see
    ``repro.detection.system``); records stay byte-identical because the
    same loop resumes from the same state.
  - ``interval`` — a calibrated analytical model: per-row commit
    estimates come from the golden commit column (extrapolated at the
    golden mean CPI past its end), detection-hook stalls accumulate into
    a running offset, and commit stays monotone.  Verdicts
    (detected/undetected/crashed/masked) are *exactly* those of the
    cycle model — they are functional, not timing, properties — while
    detection latencies are approximations whose orderings track the
    cycle model.  Use it for coverage-style campaigns where exact cycles
    do not change the answer.

Environment overrides (validation kill-switches, mirroring
``REPRO_FORK_INJECTION``):

* ``REPRO_TIMING_MODE=cycle|interval`` forces a model regardless of what
  the job requested;
* ``REPRO_TIMING_SPLICE=0`` disables the pre-fork timing splice (full
  re-timing), used by the identity gates to prove the splice is
  unobservable.
"""

from __future__ import annotations

import copy
import hashlib
import os
from contextlib import contextmanager
from dataclasses import asdict

from repro.common.config import SystemConfig
from repro.common.records import canonical_json
from repro.core.ooo_core import CommitHook, CoreResult, OoOCore
from repro.isa.executor import Trace

#: Forces a timing model process-wide when set (``cycle`` or ``interval``).
TIMING_MODE_ENV = "REPRO_TIMING_MODE"

#: Set to ``0`` to disable pre-fork timing splicing (full re-timing).
TIMING_SPLICE_ENV = "REPRO_TIMING_SPLICE"

#: The timing models a job may request.
TIMING_MODES = ("cycle", "interval")

_requested_mode = "cycle"


def timing_splice_enabled() -> bool:
    """Pre-fork timing splicing is on unless explicitly disabled."""
    return os.environ.get(TIMING_SPLICE_ENV, "1") != "0"


@contextmanager
def timing_mode(mode: str):
    """Request a timing model for runs inside this context.

    The campaign engine wraps job execution in this so the model travels
    with the :class:`JobSpec` rather than with call sites.  The
    ``REPRO_TIMING_MODE`` environment override still wins.
    """
    if mode not in TIMING_MODES:
        raise ValueError(f"unknown timing mode {mode!r}; expected one of "
                         f"{TIMING_MODES}")
    global _requested_mode
    previous = _requested_mode
    _requested_mode = mode
    try:
        yield
    finally:
        _requested_mode = previous


def resolve_timing_mode() -> str:
    """The model in effect: environment override, else the requested one."""
    env = os.environ.get(TIMING_MODE_ENV)
    if env:
        if env not in TIMING_MODES:
            raise ValueError(f"{TIMING_MODE_ENV}={env!r}: expected one of "
                             f"{TIMING_MODES}")
        return env
    return _requested_mode


def config_key(config: SystemConfig) -> str:
    """Stable content hash of a full system configuration.

    Keys golden timing records both in-process (``trace.timings``) and in
    trace-store v4 envelopes; also the campaign layer's config
    fingerprint, so the two can never disagree.
    """
    payload = canonical_json(asdict(config))
    return hashlib.sha256(payload.encode()).hexdigest()


class TimingColumns:
    """Append-target for :meth:`OoOCore.run_rows` recording."""

    __slots__ = ("issue", "commit", "branch", "l1d", "l2")

    def __init__(self) -> None:
        self.issue: list[int] = []
        self.commit: list[int] = []
        self.branch: list[int] = []
        self.l1d: list[int] = []
        self.l2: list[int] = []


class TimingRecord:
    """One clean trace timed once under one configuration.

    ``issue``/``commit`` are per-row cycles; ``branch`` is -1 (not a
    branch), 0 (predicted) or 1 (mispredicted); ``l1d``/``l2`` are
    per-row miss deltas.  Columns may be lists (fresh) or zero-copy
    memoryviews (served from a store envelope) — consumers index, never
    mutate.
    """

    __slots__ = ("result", "issue", "commit", "branch", "l1d", "l2")

    def __init__(self, result: CoreResult, issue, commit, branch, l1d, l2):
        self.result = result
        self.issue = issue
        self.commit = commit
        self.branch = branch
        self.l1d = l1d
        self.l2 = l2


def time_bare(trace: Trace, config: SystemConfig) -> CoreResult:
    """Exact-cycle timing of a clean (hookless) run of ``trace``.

    First call per (trace, config) runs the OoO model while recording the
    golden timing columns; the record is memoised on the trace and, when
    the trace is bound to a store envelope, published there (schema v4).
    Subsequent calls — including in later processes reading the same
    store — return the recorded :class:`CoreResult` without re-timing.
    """
    record = timing_record(trace, config)
    return copy.copy(record.result)


def timing_record(trace: Trace, config: SystemConfig) -> TimingRecord:
    """The golden timing record for ``trace`` under ``config``
    (computing, memoising and publishing it on first use)."""
    key = config_key(config)
    record = trace.timings.get(key)
    if record is None:
        columns = TimingColumns()
        result = OoOCore(config).run(trace, record=columns)
        record = TimingRecord(
            result=result,
            issue=columns.issue,
            commit=columns.commit,
            branch=columns.branch,
            l1d=columns.l1d,
            l2=columns.l2,
        )
        trace.timings[key] = record
        binding = trace.store_ref
        if binding is not None:
            store, store_key = binding
            store.put_timing(store_key, trace, key, record)
    return record


class TimingModel:
    """How a detection-system run turns a committed trace into cycles."""

    name: str

    def drive(self, trace: Trace, config: SystemConfig, hook: CommitHook,
              base: TimingRecord | None) -> CoreResult:
        raise NotImplementedError


class CycleTimingModel(TimingModel):
    """The exact OoO model (the default)."""

    name = "cycle"

    def drive(self, trace, config, hook, base=None):
        return OoOCore(config).run(trace, hook)


class IntervalTimingModel(TimingModel):
    """Calibrated analytical commit times off the golden commit column.

    Row ``i`` commits no earlier than the golden run's row-``i`` commit
    cycle plus the hook stalls accumulated so far; rows past the golden
    column's end extrapolate at the golden mean CPI.  The hook runs
    unchanged (segments, load forwarding, checker replay, checker-core
    occupancy), so everything *functional* about a detection run is
    exactly the cycle model's; only cycle counts are approximate.
    """

    name = "interval"

    def drive(self, trace, config, hook, base):
        if base is None:
            raise ValueError("interval timing needs a golden timing record")
        commit = base.commit
        n_base = len(commit)
        base_end = commit[n_base - 1] if n_base else 0
        cpi = base.result.cycles / max(1, n_base)
        total = len(trace)

        if hook is not None:
            hook.begin(trace)
        last = 0
        offset = 0
        stalls = 0
        for i in range(total):
            if i < n_base:
                estimate = commit[i] + offset
            else:
                estimate = base_end + int((i + 1 - n_base) * cpi) + offset
            earliest = estimate if estimate > last else last
            if hook is not None:
                held = hook.pre_commit(i, earliest)
                if held > earliest:
                    stalls += held - earliest
                    offset += held - earliest
                    earliest = held
            commit_cycle = earliest
            last = commit_cycle
            if hook is not None:
                pause = hook.post_commit(i, commit_cycle)
                if pause:
                    stalls += pause
                    offset += pause
        total_cycles = last + 1
        system_cycles = total_cycles
        if hook is not None:
            system_cycles = hook.finish(total_cycles)
        golden = base.result
        return CoreResult(
            cycles=total_cycles,
            instructions=total,
            uops=trace.uop_count,
            system_cycles=system_cycles,
            # micro-architectural counters are not modelled analytically;
            # carry the golden run's (documented approximation)
            branch_lookups=golden.branch_lookups,
            branch_mispredicts=golden.branch_mispredicts,
            l1d_misses=golden.l1d_misses,
            l2_misses=golden.l2_misses,
            commit_stall_cycles=stalls,
        )


_MODELS = {
    "cycle": CycleTimingModel(),
    "interval": IntervalTimingModel(),
}


def timing_model(mode: str | None = None) -> TimingModel:
    """The :class:`TimingModel` for ``mode`` (default: the resolved one)."""
    return _MODELS[mode if mode is not None else resolve_timing_mode()]
