"""Tournament branch predictor (Table I).

A faithful Alpha-21264-style tournament predictor: a local predictor
(per-PC history indexing a pattern table of 2-bit counters), a global
predictor (global history register indexing 2-bit counters), and a chooser
(2-bit counters picking between them), plus a branch target buffer and a
return address stack.  The OoO timing model charges the misprediction
penalty whenever the prediction disagrees with the committed outcome.
"""

from __future__ import annotations

from repro.common.config import BranchPredictorConfig


def _counter_update(counter: int, taken: bool) -> int:
    if taken:
        return min(counter + 1, 3)
    return max(counter - 1, 0)


class TournamentPredictor:
    """Local/global/chooser predictor with BTB and RAS."""

    __slots__ = (
        "config", "_local_history", "_local_table", "_global_table",
        "_chooser", "_global_history", "_global_mask", "_btb", "_ras",
        "lookups", "direction_mispredicts", "target_mispredicts",
    )

    def __init__(self, config: BranchPredictorConfig) -> None:
        config.validate()
        self.config = config
        self._local_history = [0] * config.local_entries
        self._local_table = [1] * (1 << config.local_history_bits)
        self._global_table = [1] * config.global_entries
        self._chooser = [1] * config.chooser_entries
        self._global_history = 0
        self._global_mask = config.global_entries - 1
        self._btb: dict[int, tuple[int, int]] = {}
        self._ras: list[int] = []
        self.lookups = 0
        self.direction_mispredicts = 0
        self.target_mispredicts = 0

    def snapshot(self) -> "TournamentPredictor":
        """Independent copy of every predictor structure (fork support);
        shares the config and the derived ``_global_mask`` scalar."""
        clone = TournamentPredictor.__new__(TournamentPredictor)
        clone.config = self.config
        clone._local_history = self._local_history[:]
        clone._local_table = self._local_table[:]
        clone._global_table = self._global_table[:]
        clone._chooser = self._chooser[:]
        clone._global_history = self._global_history
        clone._global_mask = self._global_mask
        clone._btb = dict(self._btb)
        clone._ras = self._ras[:]
        clone.lookups = self.lookups
        clone.direction_mispredicts = self.direction_mispredicts
        clone.target_mispredicts = self.target_mispredicts
        return clone

    # -- direction ---------------------------------------------------------

    def predict_direction(self, pc: int) -> bool:
        """Predicted taken/not-taken for the conditional branch at ``pc``."""
        local_idx = pc & (self.config.local_entries - 1)
        pattern_idx = self._local_history[local_idx] & (
            (1 << self.config.local_history_bits) - 1)
        global_idx = (self._global_history ^ pc) & self._global_mask
        chooser_idx = self._global_history & (self.config.chooser_entries - 1)
        use_global = self._chooser[chooser_idx] >= 2
        if use_global:
            return self._global_table[global_idx] >= 2
        return self._local_table[pattern_idx] >= 2

    def update_direction(self, pc: int, taken: bool) -> None:
        """Train all three structures with the committed outcome."""
        local_idx = pc & (self.config.local_entries - 1)
        pattern_idx = self._local_history[local_idx] & (
            (1 << self.config.local_history_bits) - 1)
        global_idx = (self._global_history ^ pc) & self._global_mask
        chooser_idx = self._global_history & (self.config.chooser_entries - 1)

        local_correct = (self._local_table[pattern_idx] >= 2) == taken
        global_correct = (self._global_table[global_idx] >= 2) == taken
        if local_correct != global_correct:
            self._chooser[chooser_idx] = _counter_update(
                self._chooser[chooser_idx], global_correct)

        self._local_table[pattern_idx] = _counter_update(
            self._local_table[pattern_idx], taken)
        self._global_table[global_idx] = _counter_update(
            self._global_table[global_idx], taken)
        self._local_history[local_idx] = (
            (self._local_history[local_idx] << 1) | int(taken))
        self._global_history = ((self._global_history << 1) | int(taken)) \
            & self._global_mask

    # -- targets -------------------------------------------------------------

    def predict_target(self, pc: int) -> int | None:
        """Direct-mapped BTB lookup; None on a miss or tag mismatch."""
        entry = self._btb.get(pc & (self.config.btb_entries - 1))
        if entry is not None and entry[0] == pc:
            return entry[1]
        return None

    def update_target(self, pc: int, target: int) -> None:
        self._btb[pc & (self.config.btb_entries - 1)] = (pc, target)

    # -- return address stack -------------------------------------------------

    def push_return(self, return_pc: int) -> None:
        self._ras.append(return_pc)
        if len(self._ras) > self.config.ras_entries:
            self._ras.pop(0)

    def predict_return(self) -> int | None:
        return self._ras[-1] if self._ras else None

    def pop_return(self) -> int | None:
        return self._ras.pop() if self._ras else None

    # -- combined interface used by the OoO model ---------------------------

    def mispredicted(self, pc: int, is_branch: bool, is_jump: bool,
                     op_is_jalr: bool, op_is_jal: bool,
                     taken: bool, actual_target: int) -> bool:
        """Predict, train, and report whether the fetch was redirected.

        A single call per committed control instruction: combines direction
        and target prediction, then updates every structure with the truth.
        """
        self.lookups += 1
        mispredict = False
        if is_branch:
            predicted_taken = self.predict_direction(pc)
            if predicted_taken != taken:
                mispredict = True
                self.direction_mispredicts += 1
            elif taken:
                predicted_target = self.predict_target(pc)
                if predicted_target != actual_target:
                    mispredict = True
                    self.target_mispredicts += 1
            self.update_direction(pc, taken)
            if taken:
                self.update_target(pc, actual_target)
        elif op_is_jalr:
            predicted = self.pop_return()
            if predicted != actual_target:
                mispredict = True
                self.target_mispredicts += 1
        elif is_jump:
            predicted_target = self.predict_target(pc)
            if predicted_target != actual_target:
                mispredict = True
                self.target_mispredicts += 1
                self.update_target(pc, actual_target)
            if op_is_jal:
                self.push_return(pc + 1)
        return mispredict
