"""Memory-system substrate: caches, DRAM, prefetcher, hierarchy, ECC."""

from repro.memory.cache import CacheModel
from repro.memory.dram import DRAMModel
from repro.memory.ecc import EccResult, EccWord, decode, encode, flip_bit
from repro.memory.hierarchy import CheckerICaches, MemoryHierarchy
from repro.memory.prefetcher import StridePrefetcher

__all__ = [
    "CacheModel",
    "CheckerICaches",
    "DRAMModel",
    "EccResult",
    "EccWord",
    "MemoryHierarchy",
    "StridePrefetcher",
    "decode",
    "encode",
    "flip_bit",
]
