"""Memory hierarchy wiring.

Two assemblies are provided:

* :class:`MemoryHierarchy` — the main core's L1I/L1D/L2/DRAM path with the
  L2 stride prefetcher (Table I).  All times are main-core cycles.
* :class:`CheckerICaches` — the checker cores' instruction path: a private
  L0 I-cache per core in front of an L1 I-cache shared by all checkers,
  which misses into the main core's L2 (paper §IV-B, Figure 4).  All times
  are checker-core cycles.  Checker cores have **no data cache**: their data
  comes from the load-store log with deterministic latency.
"""

from __future__ import annotations

from repro.common.config import CheckerConfig, MemoryConfig
from repro.common.time import Clock
from repro.memory.cache import CacheModel
from repro.memory.dram import DRAMModel
from repro.memory.prefetcher import StridePrefetcher


class MemoryHierarchy:
    """Main-core memory system timing (L1s, L2, DRAM, prefetcher)."""

    __slots__ = ("config", "l1i", "l1d", "l2", "dram", "prefetcher")

    def __init__(self, config: MemoryConfig, clock: Clock) -> None:
        config.validate()
        self.config = config
        self.l1i = CacheModel(config.l1i)
        self.l1d = CacheModel(config.l1d)
        self.l2 = CacheModel(config.l2)
        self.dram = DRAMModel(config.dram, clock)
        self.prefetcher = StridePrefetcher() if config.l2_stride_prefetcher else None

    def snapshot(self) -> "MemoryHierarchy":
        """Independent copy of every timing structure (fork support)."""
        clone = MemoryHierarchy.__new__(MemoryHierarchy)
        clone.config = self.config
        clone.l1i = self.l1i.snapshot()
        clone.l1d = self.l1d.snapshot()
        clone.l2 = self.l2.snapshot()
        clone.dram = self.dram.snapshot()
        clone.prefetcher = (
            self.prefetcher.snapshot() if self.prefetcher is not None else None)
        return clone

    def _l2_access(self, addr: int, now: int, pc: int | None) -> int:
        """Access the L2 at ``now``; returns data-ready cycle."""
        hit, when = self.l2.lookup(addr, now)
        if hit:
            ready = when
        else:
            start = when
            dram_done = self.l2.config.hit_latency_cycles + self.dram.access(
                addr, start + self.l2.config.hit_latency_cycles)
            self.l2.fill(addr, start, dram_done)
            ready = dram_done
        if self.prefetcher is not None and pc is not None:
            for pf_addr in self.prefetcher.observe(pc, addr):
                if not self.l2.probe(pf_addr):
                    pf_done = self.dram.access(pf_addr, now)
                    self.l2.install(pf_addr, pf_done)
        return ready

    def access_data(self, addr: int, is_write: bool, pc: int, now: int) -> int:
        """A load/store data access issued at ``now``; returns ready cycle.

        Stores are modelled write-allocate/write-back; the returned time for
        a store is when the line is owned (the OoO model retires stores from
        the SQ at that point).
        """
        hit, when = self.l1d.lookup(addr, now)
        if hit:
            return when
        miss_start = when
        fill_done = self._l2_access(addr, miss_start, pc)
        self.l1d.fill(addr, miss_start, fill_done)
        return max(now + self.l1d.config.hit_latency_cycles, fill_done)

    def access_instr(self, addr: int, now: int) -> int:
        """An instruction fetch issued at ``now``; returns ready cycle."""
        hit, when = self.l1i.lookup(addr, now)
        if hit:
            return when
        miss_start = when
        fill_done = self._l2_access(addr, miss_start, None)
        self.l1i.fill(addr, miss_start, fill_done)
        return max(now + self.l1i.config.hit_latency_cycles, fill_done)

    def warm_l2_line(self, addr: int) -> None:
        """Install a line into the L2 without timing (used to model the
        instruction stream already touched by the main core)."""
        self.l2.install(addr)


class CheckerICaches:
    """Instruction-fetch timing for the set of checker cores.

    One private L0 per core, one shared L1I, and a fixed latency for
    fetches that fall through to the main core's L2 (the common case for a
    fall-through is still a hit there, because the main core executed the
    same code shortly before — paper §IV-B).
    """

    __slots__ = ("config", "l0", "shared_l1i", "_l2_latency")

    def __init__(self, config: CheckerConfig) -> None:
        self.config = config
        self.l0 = [CacheModel(config.l0i) for _ in range(config.num_cores)]
        self.shared_l1i = CacheModel(config.shared_l1i)
        self._l2_latency = config.l2_fetch_latency_cycles

    def snapshot(self) -> "CheckerICaches":
        """Independent copy of the per-core L0s and the shared L1I."""
        clone = CheckerICaches.__new__(CheckerICaches)
        clone.config = self.config
        clone.l0 = [cache.snapshot() for cache in self.l0]
        clone.shared_l1i = self.shared_l1i.snapshot()
        clone._l2_latency = self._l2_latency
        return clone

    def access(self, core_id: int, addr: int, now: int) -> int:
        """Fetch ``addr`` on checker ``core_id`` at checker-cycle ``now``."""
        l0 = self.l0[core_id]
        hit, when = l0.lookup(addr, now)
        if hit:
            return when
        miss_start = when
        l1_hit, l1_when = self.shared_l1i.lookup(addr, miss_start)
        if l1_hit:
            fill_done = l1_when
        else:
            fill_done = l1_when + self._l2_latency
            self.shared_l1i.fill(addr, l1_when, fill_done)
        l0.fill(addr, miss_start, fill_done)
        return max(now + l0.config.hit_latency_cycles, fill_done)
