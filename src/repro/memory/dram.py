"""DDR3 DRAM timing model.

Models the latency components that matter at the granularity of an L2 miss:
per-bank open-row state (row-buffer hit / miss / conflict latencies from
Table I's DDR3-1600 11-11-11-28 part) and per-bank serialisation.  The
model works in main-core cycles; the hierarchy converts from the nanosecond
figures in :class:`repro.common.config.DRAMConfig` once at construction.
"""

from __future__ import annotations

from repro.common.config import DRAMConfig
from repro.common.time import Clock, ns_to_ticks


class DRAMModel:
    """Open-row, per-bank DRAM latency model."""

    __slots__ = (
        "config", "_row_hit", "_row_miss", "_row_conflict",
        "_open_rows", "_bank_free", "_bank_shift", "_row_shift",
        "row_hits", "row_misses", "row_conflicts",
    )

    def __init__(self, config: DRAMConfig, clock: Clock) -> None:
        config.validate()
        self.config = config

        def to_cycles(ns: float) -> int:
            return max(1, clock.ticks_to_cycles_ceil(ns_to_ticks(ns)))

        self._row_hit = to_cycles(config.row_hit_ns)
        self._row_miss = to_cycles(config.row_miss_ns)
        self._row_conflict = to_cycles(config.row_conflict_ns)
        self._open_rows: list[int | None] = [None] * config.banks
        self._bank_free = [0] * config.banks
        self._row_shift = config.row_bytes.bit_length() - 1
        self._bank_shift = self._row_shift
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0

    def snapshot(self) -> "DRAMModel":
        """Independent copy of the per-bank state; shares the config and
        the precomputed latency scalars."""
        clone = DRAMModel.__new__(DRAMModel)
        clone.config = self.config
        clone._row_hit = self._row_hit
        clone._row_miss = self._row_miss
        clone._row_conflict = self._row_conflict
        clone._open_rows = self._open_rows[:]
        clone._bank_free = self._bank_free[:]
        clone._row_shift = self._row_shift
        clone._bank_shift = self._bank_shift
        clone.row_hits = self.row_hits
        clone.row_misses = self.row_misses
        clone.row_conflicts = self.row_conflicts
        return clone

    def access(self, addr: int, now: int) -> int:
        """Issue an access at cycle ``now``; returns data-ready cycle."""
        row = addr >> self._row_shift
        bank = row % self.config.banks
        open_row = self._open_rows[bank]
        if open_row == row:
            latency = self._row_hit
            self.row_hits += 1
        elif open_row is None:
            latency = self._row_miss
            self.row_misses += 1
        else:
            latency = self._row_conflict
            self.row_conflicts += 1
        start = max(now, self._bank_free[bank])
        done = start + latency
        self._bank_free[bank] = done
        self._open_rows[bank] = row
        return done

    def reset_stats(self) -> None:
        self.row_hits = self.row_misses = self.row_conflicts = 0
