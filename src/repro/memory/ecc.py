"""SECDED ECC over 64-bit words.

The paper assumes (§IV-A) that caches and DRAM are ECC-protected, so the
detection scheme only has to cover the core.  This module implements the
standard (72,64) Hamming-plus-overall-parity SECDED code so the assumption
is concrete rather than hand-waved: tests inject single- and double-bit
flips into encoded words and confirm correction/detection, and the design
documents exactly where the sphere of replication ends.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

_DATA_BITS = 64
#: Hamming check bits for 64 data bits (positions 1,2,4,...,64 in the
#: 1-indexed codeword), plus one overall-parity bit for double detection.
_CHECK_BITS = 7
_CODE_BITS = _DATA_BITS + _CHECK_BITS  # 71; +1 overall parity -> 72

# Precompute the 1-indexed codeword positions that hold data bits
# (everything that is not a power of two), for 71-bit Hamming layout.
_DATA_POSITIONS = [p for p in range(1, _CODE_BITS + 1) if p & (p - 1)]
assert len(_DATA_POSITIONS) == _DATA_BITS
_CHECK_POSITIONS = [1 << i for i in range(_CHECK_BITS)]


class EccResult(enum.Enum):
    """Outcome of decoding a (72,64) SECDED codeword."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DOUBLE_ERROR = "double_error"


@dataclass(frozen=True)
class EccWord:
    """An encoded 72-bit codeword: 71-bit Hamming part + overall parity."""

    hamming: int
    parity: int


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


def encode(data: int) -> EccWord:
    """Encode a 64-bit word into a SECDED codeword."""
    if not 0 <= data < (1 << _DATA_BITS):
        raise ValueError("data out of 64-bit range")
    word = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (data >> i) & 1:
            word |= 1 << (pos - 1)
    for check in _CHECK_POSITIONS:
        parity = 0
        for pos in range(1, _CODE_BITS + 1):
            if pos & check and (word >> (pos - 1)) & 1:
                parity ^= 1
        if parity:
            word |= 1 << (check - 1)
    return EccWord(hamming=word, parity=_parity(word))


def decode(word: EccWord) -> tuple[int, EccResult]:
    """Decode a codeword; corrects single-bit errors, flags double errors.

    Returns ``(data, result)``.  On :attr:`EccResult.DOUBLE_ERROR` the data
    value is best-effort and must not be trusted.
    """
    hamming = word.hamming
    syndrome = 0
    for check in _CHECK_POSITIONS:
        parity = 0
        for pos in range(1, _CODE_BITS + 1):
            if pos & check and (hamming >> (pos - 1)) & 1:
                parity ^= 1
        if parity:
            syndrome |= check
    overall = _parity(hamming) ^ word.parity
    if syndrome == 0 and overall == 0:
        result = EccResult.CLEAN
    elif overall == 1:
        # single error: either in the hamming part (syndrome points at it)
        # or in the overall parity bit itself (syndrome == 0)
        if syndrome:
            if syndrome <= _CODE_BITS:
                hamming ^= 1 << (syndrome - 1)
        result = EccResult.CORRECTED
    else:
        # syndrome != 0 with clean overall parity: two bits flipped
        return _extract(hamming), EccResult.DOUBLE_ERROR
    return _extract(hamming), result


def _extract(hamming: int) -> int:
    data = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (hamming >> (pos - 1)) & 1:
            data |= 1 << i
    return data


def flip_bit(word: EccWord, bit: int) -> EccWord:
    """Return a copy of ``word`` with codeword bit ``bit`` flipped.

    Bits 0..70 index the Hamming part; bit 71 is the overall parity bit.
    Used by tests and the fault-injection examples.
    """
    if not 0 <= bit <= _CODE_BITS:
        raise ValueError(f"bit {bit} out of range 0..{_CODE_BITS}")
    if bit == _CODE_BITS:
        return EccWord(hamming=word.hamming, parity=word.parity ^ 1)
    return EccWord(hamming=word.hamming ^ (1 << bit), parity=word.parity)
