"""PC-indexed stride prefetcher (Table I: the L2 runs one).

Classic reference-prediction-table design: each entry tracks the last
address and stride observed for a load PC, with a 2-bit confidence counter.
Once confident, the prefetcher issues the next ``degree`` strided lines
into the L2, which converts stream-like DRAM misses (e.g. the *stream*
benchmark) into L2 hits — exactly the effect that makes memory-bound
workloads insensitive to checker frequency in the paper's Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _StrideEntry:
    last_addr: int
    stride: int
    confidence: int


class StridePrefetcher:
    """Reference prediction table keyed by instruction PC."""

    CONFIDENCE_MAX = 3
    CONFIDENCE_THRESHOLD = 2

    __slots__ = ("entries", "table_size", "degree", "issued", "useful")

    def __init__(self, table_size: int = 64, degree: int = 2) -> None:
        self.entries: dict[int, _StrideEntry] = {}
        self.table_size = table_size
        self.degree = degree
        self.issued = 0

    def snapshot(self) -> "StridePrefetcher":
        """Independent copy of the prediction table (fork support).

        Rebuilds each mutable :class:`_StrideEntry`; the unused ``useful``
        slot is deliberately left untouched (it is never assigned)."""
        clone = StridePrefetcher.__new__(StridePrefetcher)
        clone.entries = {
            pc: _StrideEntry(entry.last_addr, entry.stride, entry.confidence)
            for pc, entry in self.entries.items()
        }
        clone.table_size = self.table_size
        clone.degree = self.degree
        clone.issued = self.issued
        return clone

    def observe(self, pc: int, addr: int) -> list[int]:
        """Record a demand access; returns addresses to prefetch."""
        entry = self.entries.get(pc)
        if entry is None:
            if len(self.entries) >= self.table_size:
                self.entries.pop(next(iter(self.entries)))
            self.entries[pc] = _StrideEntry(last_addr=addr, stride=0, confidence=0)
            return []
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, self.CONFIDENCE_MAX)
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_addr = addr
        if entry.confidence >= self.CONFIDENCE_THRESHOLD and entry.stride != 0:
            prefetches = [
                addr + entry.stride * k for k in range(1, self.degree + 1)
            ]
            self.issued += len(prefetches)
            return [p for p in prefetches if p >= 0]
        return []
