"""Set-associative cache timing model.

The functional memory contents live in :class:`repro.isa.MemoryImage`; the
caches here model *timing only* (tags, LRU replacement, MSHR-limited miss
concurrency, and coalescing of misses to an already-outstanding line).
This mirrors how trace-driven simulators treat caches: a lookup returns the
cycle at which the data is available, and mutates the tag state.
"""

from __future__ import annotations

from repro.common.config import CacheConfig


class CacheModel:
    """Tags + LRU + MSHRs for one cache level.

    All times are in cycles of the clock domain the cache lives in; the
    caller converts between domains.  The cache itself does not know its
    miss penalty — the hierarchy supplies the fill time, so one model
    serves L1s, the L2, and the checker cores' instruction caches.
    """

    __slots__ = (
        "config", "_sets", "_set_shift", "_set_mask", "_line_shift",
        "_mshr_ready", "_outstanding", "hits", "misses", "mshr_stalls",
    )

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        num_sets = config.num_sets
        self._sets: list[dict[int, int]] = [dict() for _ in range(num_sets)]
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = num_sets - 1
        self._set_shift = self._line_shift
        # MSHR slots: cycle each slot frees up
        self._mshr_ready = [0] * config.mshrs
        # line -> fill-complete cycle, for miss coalescing
        self._outstanding: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.mshr_stalls = 0

    def snapshot(self) -> "CacheModel":
        """Independent copy of the tag/MSHR state; shares the config and
        the derived shift/mask scalars (immutable after construction)."""
        clone = CacheModel.__new__(CacheModel)
        clone.config = self.config
        clone._sets = [dict(ways) for ways in self._sets]
        clone._set_shift = self._set_shift
        clone._set_mask = self._set_mask
        clone._line_shift = self._line_shift
        clone._mshr_ready = self._mshr_ready[:]
        clone._outstanding = dict(self._outstanding)
        clone.hits = self.hits
        clone.misses = self.misses
        clone.mshr_stalls = self.mshr_stalls
        return clone

    def _line(self, addr: int) -> int:
        return addr >> self._line_shift

    def _set_index(self, line: int) -> int:
        return line & self._set_mask

    def probe(self, addr: int) -> bool:
        """Check for a hit without updating any state."""
        line = self._line(addr)
        return line in self._sets[self._set_index(line)]

    def lookup(self, addr: int, now: int) -> tuple[bool, int]:
        """Access the cache at cycle ``now``.

        Returns ``(hit, ready_cycle)``:

        * on a **hit**, ``ready_cycle = now + hit_latency`` and the line's
          LRU position is refreshed;
        * on a **coalesced miss** (line already being fetched), the access
          completes when the outstanding fill does;
        * on a **true miss**, returns ``(False, allocation_cycle)`` —
          the cycle the miss *starts* after acquiring an MSHR.  The caller
          must then compute the fill time from the next level and call
          :meth:`fill`.
        """
        line = self._line(addr)
        index = self._set_index(line)
        ways = self._sets[index]
        if line in ways:
            self.hits += 1
            # refresh LRU: move to most-recent by re-inserting
            del ways[line]
            ways[line] = 0
            ready = now + self.config.hit_latency_cycles
            pending = self._outstanding.get(line)
            if pending is not None and pending > ready:
                # the line is still in flight (outstanding demand fill or
                # prefetch): the access completes when the fill does
                ready = pending
            return True, ready
        pending = self._outstanding.get(line)
        if pending is not None and pending > now:
            self.hits += 1  # counted as a hit-under-miss
            return True, pending
        self.misses += 1
        # acquire the least-soon-busy MSHR slot
        slot = min(range(len(self._mshr_ready)), key=self._mshr_ready.__getitem__)
        start = self._mshr_ready[slot]
        if start > now:
            self.mshr_stalls += 1
        else:
            start = now
        return False, start

    def fill(self, addr: int, miss_start: int, fill_done: int) -> None:
        """Install the line for a miss that started at ``miss_start`` and
        whose data arrives at ``fill_done``; occupies an MSHR meanwhile."""
        line = self._line(addr)
        index = self._set_index(line)
        ways = self._sets[index]
        if line not in ways and len(ways) >= self.config.assoc:
            # evict true-LRU (first key in insertion order)
            ways.pop(next(iter(ways)))
        ways[line] = 0
        self._outstanding[line] = fill_done
        slot = min(range(len(self._mshr_ready)), key=self._mshr_ready.__getitem__)
        self._mshr_ready[slot] = fill_done
        # keep the outstanding map small
        if len(self._outstanding) > 4 * self.config.mshrs:
            self._outstanding = {
                ln: t for ln, t in self._outstanding.items() if t > miss_start
            }

    def install(self, addr: int, ready: int = 0) -> None:
        """Insert a line without an MSHR (prefetch fill)."""
        line = self._line(addr)
        index = self._set_index(line)
        ways = self._sets[index]
        if line not in ways and len(ways) >= self.config.assoc:
            ways.pop(next(iter(ways)))
        ways[line] = 0
        if ready:
            self._outstanding[line] = ready

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.mshr_stalls = 0
