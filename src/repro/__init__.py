"""repro — reproduction of "Parallel Error Detection Using Heterogeneous
Cores" (Ainsworth & Jones, DSN 2018).

A trace-driven micro-architectural simulator of the paper's scheme: a
3-wide out-of-order main core paired with twelve tiny in-order checker
cores that re-execute partitioned slices of its committed instruction
stream, validating loads, stores and register checkpoints.

Quick start::

    from repro import (
        default_config, execute_program, run_unprotected, run_with_detection,
    )
    from repro.workloads import stream

    program = stream.build(elements=500)
    trace = execute_program(program)
    config = default_config()
    base = run_unprotected(trace, config)
    protected = run_with_detection(trace, config)
    print("slowdown:", protected.main_cycles / base.cycles)
    print("mean detection delay:", protected.report.mean_delay_ns(), "ns")

See ``examples/`` for fault-injection campaigns, design-space exploration
and scheme comparison, and ``benchmarks/`` for the regeneration of every
table and figure in the paper's evaluation.
"""

from repro.common.config import SystemConfig, default_config
from repro.detection.faults import FaultInjector, FaultSite, HardFault, TransientFault
from repro.detection.system import (
    DetectionReport,
    DetectionRunResult,
    run_unprotected,
    run_with_detection,
)
from repro.isa.executor import Trace, execute_program
from repro.isa.program import Program, ProgramBuilder

__version__ = "1.0.0"

__all__ = [
    "DetectionReport",
    "DetectionRunResult",
    "FaultInjector",
    "FaultSite",
    "HardFault",
    "Program",
    "ProgramBuilder",
    "SystemConfig",
    "Trace",
    "TransientFault",
    "default_config",
    "execute_program",
    "run_unprotected",
    "run_with_detection",
    "__version__",
]
