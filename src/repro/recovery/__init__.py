"""Rollback recovery — the paper's future-work correction extension."""

from repro.recovery.rollback import (
    RecoveryOutcome,
    build_snapshots,
    detect_and_recover,
    resume_from,
)
from repro.recovery.snapshots import RecoverySnapshot, SnapshotStore

__all__ = [
    "RecoveryOutcome",
    "RecoverySnapshot",
    "SnapshotStore",
    "build_snapshots",
    "detect_and_recover",
    "resume_from",
]
