"""Rollback recovery — the paper's future-work correction extension.

The paper provides *detection* only and names checkpoint-based rollback
as its standard correction companion (§IV-F); this package implements
that loop end to end: :mod:`repro.recovery.snapshots` couples register
checkpoints with memory images that become safe to restore once every
log segment up to their boundary has validated, and
:mod:`repro.recovery.rollback` drives detect → roll back → re-execute →
re-verify using the real detection pipeline on both sides.  Campaigns
reach it through the ``recovery`` job kind (schemes with
``supports_recovery`` only), which yields
:class:`~repro.common.records.RecoveryRecord` rows.
"""

from repro.recovery.rollback import (
    RecoveryOutcome,
    build_snapshots,
    detect_and_recover,
    resume_from,
)
from repro.recovery.snapshots import RecoverySnapshot, SnapshotStore

__all__ = [
    "RecoveryOutcome",
    "RecoverySnapshot",
    "SnapshotStore",
    "build_snapshots",
    "detect_and_recover",
    "resume_from",
]
