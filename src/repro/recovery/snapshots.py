"""Recovery snapshots: verified architectural state to roll back to.

The paper provides *detection* only, and names checkpointing-based
rollback as the standard correction companion (§IV-F: "suitable
correction techniques for these circumstances include checkpointing [35],
write-ahead logging [36] and transactions [37]"), leaving full fault
tolerance as future work (§VIII).  This package implements that
extension.

A :class:`RecoverySnapshot` couples a register checkpoint with a memory
image *as of the same commit boundary*.  Because the detection scheme
deliberately lets unverified stores escape to memory (§IV-F), a snapshot
becomes **safe to restore** only once every log segment up to its
boundary has validated — the same strong-induction order the checkers
already establish.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.checkpoint import RegisterCheckpoint
from repro.isa.executor import DynInstr, STORE
from repro.isa.memory_image import MemoryImage


@dataclass
class RecoverySnapshot:
    """Registers + memory at one segment boundary (commit ``seq``)."""

    seq: int
    checkpoint: RegisterCheckpoint
    memory: MemoryImage
    #: becomes True when every check up to ``seq`` has passed
    verified: bool = False


class SnapshotStore:
    """Maintains rollback snapshots along the commit stream.

    Memory is snapshotted incrementally: we keep one evolving image and
    record, per snapshot, the *undo log* (address → previous value) of
    stores committed since, so restoring snapshot *k* replays undo
    entries backwards.  This is the write-ahead-logging flavour of the
    paper's reference [36], which costs one (addr, old value) pair per
    store instead of a full memory copy per checkpoint.
    """

    def __init__(self, initial_memory: MemoryImage,
                 start_checkpoint: RegisterCheckpoint) -> None:
        self.memory = initial_memory.copy()
        self._snapshots: list[RecoverySnapshot] = []
        self._undo: list[list[tuple[int, int]]] = []
        self._current_undo: list[tuple[int, int]] = []
        self._start = RecoverySnapshot(
            seq=0, checkpoint=start_checkpoint,
            memory=initial_memory.copy(), verified=True)

    def apply_commit(self, dyn: DynInstr) -> None:
        """Track one committed instruction's stores (undo-logged)."""
        for memop in dyn.mem:
            if memop.kind == STORE:
                self.apply_store(memop.addr, memop.value)

    def apply_store(self, addr: int, value: int) -> None:
        """Undo-log and apply one committed store (the column-iteration
        entry point: callers walk the trace's mem columns directly)."""
        self._current_undo.append((addr, self.memory.load(addr)))
        self.memory.store(addr, value)

    def take_snapshot(self, seq: int,
                      checkpoint: RegisterCheckpoint) -> RecoverySnapshot:
        """Snapshot at a segment boundary (after commit ``seq - 1``)."""
        snapshot = RecoverySnapshot(
            seq=seq, checkpoint=checkpoint, memory=self.memory.copy())
        self._snapshots.append(snapshot)
        self._undo.append(self._current_undo)
        self._current_undo = []
        return snapshot

    def mark_verified_up_to(self, seq: int) -> None:
        """All checks for commits < ``seq`` passed: snapshots at or
        before that boundary are now safe restore points."""
        for snapshot in self._snapshots:
            if snapshot.seq <= seq:
                snapshot.verified = True

    def latest_verified(self) -> RecoverySnapshot:
        """The most recent snapshot safe to restore (always exists: the
        program-entry state is verified by definition)."""
        for snapshot in reversed(self._snapshots):
            if snapshot.verified:
                return snapshot
        return self._start

    @property
    def snapshots(self) -> list[RecoverySnapshot]:
        return list(self._snapshots)

    def undo_cost_entries(self) -> int:
        """Total undo-log entries retained (write-ahead-logging cost)."""
        return sum(len(u) for u in self._undo) + len(self._current_undo)
