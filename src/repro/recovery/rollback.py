"""Rollback-and-re-execute recovery (the paper's future-work extension).

Given a detected error, recovery proceeds exactly as the lock-step
replacement deployments the paper targets would:

1. the detection system reports the first failing segment (strong
   induction identifies the earliest error once all prior checks pass);
2. execution state is **rolled back** to the latest verified snapshot at
   or before that segment's start;
3. the program **re-executes** from the snapshot (the transient fault,
   by definition, does not recur; a hard fault would trip detection
   again, which callers can observe and escalate — e.g. retire the core).

This module drives the whole loop end to end, using the real detection
pipeline for both the failing run and the verification of the re-run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.detection.system import DetectionRunResult, run_with_detection
from repro.isa.executor import Machine, STORE, Trace, execute_program
from repro.isa.program import Program
from repro.recovery.snapshots import RecoverySnapshot, SnapshotStore
from repro.detection.checkpoint import ArchStateTracker


@dataclass(frozen=True)
class RecoveryOutcome:
    """Result of one detect→rollback→re-execute cycle."""

    detected: bool
    #: commit seq rolled back to (None when nothing was detected)
    rollback_seq: int | None
    #: instructions re-executed after rollback
    replayed_instructions: int
    #: the re-run validated cleanly
    recovered: bool
    #: final architectural state matches a fault-free execution
    state_correct: bool


def build_snapshots(trace: Trace, segment_seqs: list[int]) -> SnapshotStore:
    """Construct rollback snapshots at the given commit boundaries."""
    tracker = ArchStateTracker()
    store = SnapshotStore(
        trace.program.initial_memory(),
        tracker.snapshot(trace.program.entry))
    boundaries = iter(sorted(segment_seqs))
    next_boundary = next(boundaries, None)
    pcs = trace.pcs
    dsts = trace.dsts
    mem_off = trace.mem_off
    mem_kind = trace.mem_kind
    mem_addr = trace.mem_addr
    mem_value = trace.mem_value
    for i in range(len(pcs)):
        if next_boundary is not None and i == next_boundary:
            store.take_snapshot(i, tracker.snapshot(pcs[i]))
            next_boundary = next(boundaries, None)
        for j in range(mem_off[i], mem_off[i + 1]):
            if mem_kind[j] == STORE:
                store.apply_store(mem_addr[j], mem_value[j])
        tracker.apply_dsts(dsts[i])
    return store


def resume_from(program: Program, snapshot: RecoverySnapshot,
                max_instructions: int = 20_000_000) -> Machine:
    """Re-execute ``program`` from ``snapshot`` to completion."""
    machine = Machine(program, memory=snapshot.memory.copy(),
                      pc=snapshot.checkpoint.pc)
    machine.set_registers(list(snapshot.checkpoint.xregs),
                          list(snapshot.checkpoint.fregs))
    while not machine.halted:
        if machine.instr_count >= max_instructions:
            raise RuntimeError("re-execution did not terminate")
        machine.step()
    return machine


def detect_and_recover(program: Program, faulty_trace: Trace,
                       config: SystemConfig) -> RecoveryOutcome:
    """Run detection on ``faulty_trace``; on error, roll back and re-run.

    Returns a :class:`RecoveryOutcome` whose ``state_correct`` compares
    the recovered final state against a reference fault-free execution.
    """
    result: DetectionRunResult = run_with_detection(faulty_trace, config)
    reference = execute_program(program)

    if not result.report.detected:
        clean = (faulty_trace.final_xregs == reference.final_xregs
                 and faulty_trace.final_fregs == reference.final_fregs)
        return RecoveryOutcome(
            detected=False, rollback_seq=None, replayed_instructions=0,
            recovered=clean, state_correct=clean)

    # 1. first failing segment, in strong-induction order
    position = result.report.first_error_position()
    assert position is not None
    failing_segment = position[0]

    # 2. snapshots exist at every segment boundary the detection system
    #    created; roll back to the boundary *before* the failing segment
    #    (boundaries are recomputed by replaying the builder's closure
    #    rules over the committed stream — same architectural state
    #    machine, so the indices line up with the report's)
    seg_starts = _segment_starts(faulty_trace, config)
    store = build_snapshots(faulty_trace, seg_starts)
    store.mark_verified_up_to(
        seg_starts[failing_segment] if failing_segment < len(seg_starts)
        else 0)
    snapshot = store.latest_verified()

    # 3. re-execute from the verified snapshot
    machine = resume_from(program, snapshot)
    replayed = machine.instr_count

    recovered = (machine.xregs == reference.final_xregs
                 and machine.fregs == reference.final_fregs)
    # memory must also converge on every word the reference wrote
    state_correct = recovered and all(
        machine.memory.load(addr) == value
        for addr, value in reference.memory.items())

    return RecoveryOutcome(
        detected=True, rollback_seq=snapshot.seq,
        replayed_instructions=replayed, recovered=recovered,
        state_correct=state_correct)


def _segment_starts(trace: Trace, config: SystemConfig) -> list[int]:
    """Commit seqs at which the detection system opened each segment.

    Mirrors the closure rules of :class:`repro.detection.lslog
    .SegmentBuilder` (fill, macro-op spill, timeout) over the committed
    stream — cheap to recompute and guaranteed consistent because both
    run the same architectural state machine.
    """
    capacity = config.detection.segment_entries(config.checker.num_cores)
    timeout = config.detection.instruction_timeout
    starts = [0]
    entries = 0
    instrs = 0
    mem_off = trace.mem_off
    for i in range(len(trace)):
        count = mem_off[i + 1] - mem_off[i]
        if count and entries + count > capacity:
            starts.append(i)
            entries = 0
            instrs = 0
        entries += count
        instrs += 1
        if entries >= capacity or (timeout is not None and instrs >= timeout):
            starts.append(i + 1)
            entries = 0
            instrs = 0
    return starts
