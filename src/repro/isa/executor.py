"""Architectural (functional) execution.

The :class:`Machine` implements the ISA semantics once, with pluggable
*ports* for memory, so the same code executes both roles in the paper:

* the **main core** run (:func:`execute_program`), which reads/writes the
  real memory image, optionally applies a fault model, and records the
  committed dynamic trace; and
* the **checker replay** (:mod:`repro.detection.checker`), which plugs in
  ports that consume the load-store log and validate against it.

Dispatch is **pre-decoded**: :func:`repro.isa.program.predecode` lowers
every static instruction into a flat record, and :func:`bound_handlers`
binds one specialised step closure per record (operands, fall-through
successor, and x0-drop behaviour are resolved once per program).  The
step loop is then a single indexed call per instruction — no opcode
inspection, no operand-field tests.

The committed trace is **columnar** (structure of arrays): parallel
columns for pc, writebacks, branch outcome, and a CSR-indexed block of
memory-operation columns (kind/addr/value/used_value), behind a thin
row-view accessor (:attr:`Trace.instructions`) for callers that want the
classic one-object-per-instruction shape.

Integer registers hold 64-bit unsigned bit patterns; FP registers hold
Python floats (IEEE-754 doubles).  All memory traffic is in 64-bit bit
patterns, so FP data round-trips exactly and all comparisons the detection
hardware performs are bit-exact, as they would be in silicon.
"""

from __future__ import annotations

import math
from array import array
from functools import partial
from typing import Callable, NamedTuple

from repro.common.errors import AssemblyError, ExecutionError
from repro.isa.instructions import (
    MASK64,
    NUM_FP_REGS,
    NUM_INT_REGS,
    Opcode,
    to_signed,
    uop_count,
)
from repro.isa.memory_image import MemoryImage, bits_to_float, float_to_bits
from repro.isa.program import DecodedInstr, HANDLER_OPS, Program, predecode

try:  # the vectorised column paths are optional accelerations
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

# MemOp kinds
LOAD = 0
STORE = 1
NONDET = 2


class MemOp:
    """One committed memory (or non-deterministic) operation.

    For loads, ``value`` is what the ECC-protected memory returned at
    ``addr`` — exactly what the load forwarding unit duplicates — while
    ``used_value`` is what actually reached the main core's register file
    (different only under an injected load-value fault).  For stores both
    fields equal the committed data.  For NONDET entries ``addr`` is zero
    and ``value`` is the forwarded result.
    """

    __slots__ = ("kind", "addr", "value", "used_value")

    def __init__(self, kind: int, addr: int, value: int, used_value: int | None = None):
        self.kind = kind
        self.addr = addr
        self.value = value
        self.used_value = value if used_value is None else used_value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = {LOAD: "LOAD", STORE: "STORE", NONDET: "NONDET"}[self.kind]
        return f"MemOp({kind}, addr={self.addr:#x}, value={self.value:#x})"


def _div(a: int, b: int) -> int:
    """RISC-V-style signed division: /0 gives all-ones, overflow wraps."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return MASK64
    if sa == -(1 << 63) and sb == -1:
        return a
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return quotient & MASK64


def _rem(a: int, b: int) -> int:
    """RISC-V-style signed remainder: %0 gives the dividend."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return a
    if sa == -(1 << 63) and sb == -1:
        return 0
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return remainder & MASK64


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.inf if (a > 0) == (math.copysign(1.0, b) > 0) else -math.inf
    return a / b


def _fsqrt(a: float) -> float:
    return math.sqrt(a) if a >= 0.0 else math.nan


def _f2i(a: float) -> int:
    if math.isnan(a):
        return 0
    if a >= 2.0**63:
        return (1 << 63) - 1
    if a <= -(2.0**63):
        return 1 << 63  # -2^63 as unsigned
    return int(a) & MASK64


# -- bound step handlers ------------------------------------------------------
#
# Each factory receives one DecodedInstr and returns a closure
# ``run(machine) -> (dsts, mem, taken)`` with every operand (and the
# fall-through pc) captured as a local.  ``mem`` entries are plain
# ``(kind, addr, value, used_value)`` tuples — the executor's raw wire
# format; :class:`MemOp` objects exist only in the row-view layer.
#
# x0 semantics are specialised at bind time: an integer destination of
# x0 is neither written nor recorded (architecturally invisible), which
# reproduces the old step loop's drop rule exactly.

def _make_int_rr(fn, d: DecodedInstr):
    rd, rs1, rs2, nxt = d.rd, d.rs1, d.rs2, d.pc + 1
    if rd:
        def run(m):
            x = m.xregs
            value = fn(x[rs1], x[rs2])
            x[rd] = value
            m.pc = nxt
            return ((False, rd, value),), (), None
    else:
        def run(m):
            m.pc = nxt
            return (), (), None
    return run


def _make_int_ri(fn, d: DecodedInstr):
    rd, rs1, nxt = d.rd, d.rs1, d.pc + 1
    imm = int(d.imm)
    if rd:
        def run(m):
            x = m.xregs
            value = fn(x[rs1], imm)
            x[rd] = value
            m.pc = nxt
            return ((False, rd, value),), (), None
    else:
        def run(m):
            m.pc = nxt
            return (), (), None
    return run


def _make_addi(d: DecodedInstr):
    rd, rs1, nxt = d.rd, d.rs1, d.pc + 1
    imm = int(d.imm)
    if rd:
        def run(m):
            x = m.xregs
            value = (x[rs1] + imm) & MASK64
            x[rd] = value
            m.pc = nxt
            return ((False, rd, value),), (), None
    else:
        def run(m):
            m.pc = nxt
            return (), (), None
    return run


def _make_add(d: DecodedInstr):
    rd, rs1, rs2, nxt = d.rd, d.rs1, d.rs2, d.pc + 1
    if rd:
        def run(m):
            x = m.xregs
            value = (x[rs1] + x[rs2]) & MASK64
            x[rd] = value
            m.pc = nxt
            return ((False, rd, value),), (), None
    else:
        def run(m):
            m.pc = nxt
            return (), (), None
    return run


def _make_sub(d: DecodedInstr):
    rd, rs1, rs2, nxt = d.rd, d.rs1, d.rs2, d.pc + 1
    if rd:
        def run(m):
            x = m.xregs
            value = (x[rs1] - x[rs2]) & MASK64
            x[rd] = value
            m.pc = nxt
            return ((False, rd, value),), (), None
    else:
        def run(m):
            m.pc = nxt
            return (), (), None
    return run


def _make_movi(d: DecodedInstr):
    rd, nxt = d.rd, d.pc + 1
    value = int(d.imm) & MASK64
    dsts = ((False, rd, value),) if rd else ()

    def run(m):
        if rd:
            m.xregs[rd] = value
        m.pc = nxt
        return dsts, (), None
    return run


def _make_ld(d: DecodedInstr):
    rd, rs1, nxt = d.rd, d.rs1, d.pc + 1
    imm = int(d.imm)
    if rd:
        def run(m):
            x = m.xregs
            addr, bits = m.load_port((x[rs1] + imm) & MASK64)
            x[rd] = bits
            m.pc = nxt
            return ((False, rd, bits),), ((LOAD, addr, bits, bits),), None
    else:
        def run(m):
            addr, bits = m.load_port((m.xregs[rs1] + imm) & MASK64)
            m.pc = nxt
            return (), ((LOAD, addr, bits, bits),), None
    return run


def _make_st(d: DecodedInstr):
    rs1, rs2, nxt = d.rs1, d.rs2, d.pc + 1
    imm = int(d.imm)

    def run(m):
        x = m.xregs
        addr, value = m.store_port((x[rs1] + imm) & MASK64, x[rs2])
        m.pc = nxt
        return (), ((STORE, addr, value, value),), None
    return run


def _make_fld(d: DecodedInstr):
    rd, rs1, nxt = d.rd, d.rs1, d.pc + 1
    imm = int(d.imm)

    def run(m):
        addr, bits = m.load_port((m.xregs[rs1] + imm) & MASK64)
        value = bits_to_float(bits)
        m.fregs[rd] = value
        m.pc = nxt
        return ((True, rd, value),), ((LOAD, addr, bits, bits),), None
    return run


def _make_fst(d: DecodedInstr):
    rs1, rs2, nxt = d.rs1, d.rs2, d.pc + 1
    imm = int(d.imm)

    def run(m):
        addr, bits = m.store_port((m.xregs[rs1] + imm) & MASK64,
                                  float_to_bits(m.fregs[rs2]))
        m.pc = nxt
        return (), ((STORE, addr, bits, bits),), None
    return run


def _make_ldp(d: DecodedInstr):
    rd, rd2, rs1, nxt = d.rd, d.rd2, d.rs1, d.pc + 1
    imm = int(d.imm)

    def run(m):
        x = m.xregs
        addr = (x[rs1] + imm) & MASK64
        addr2 = (addr + 8) & MASK64
        addr, bits1 = m.load_port(addr)
        addr2, bits2 = m.load_port(addr2)
        if rd:
            x[rd] = bits1
        if rd2:
            x[rd2] = bits2
        m.pc = nxt
        if rd and rd2:
            dsts = ((False, rd, bits1), (False, rd2, bits2))
        elif rd:
            dsts = ((False, rd, bits1),)
        elif rd2:
            dsts = ((False, rd2, bits2),)
        else:
            dsts = ()
        return dsts, ((LOAD, addr, bits1, bits1),
                      (LOAD, addr2, bits2, bits2)), None
    return run


def _make_stp(d: DecodedInstr):
    rs1, rs2, rs3, nxt = d.rs1, d.rs2, d.rs3, d.pc + 1
    imm = int(d.imm)

    def run(m):
        x = m.xregs
        addr = (x[rs1] + imm) & MASK64
        addr2 = (addr + 8) & MASK64
        addr, v1 = m.store_port(addr, x[rs2])
        addr2, v2 = m.store_port(addr2, x[rs3])
        m.pc = nxt
        return (), ((STORE, addr, v1, v1), (STORE, addr2, v2, v2)), None
    return run


def _make_branch(cmp, d: DecodedInstr):
    rs1, rs2, target, nxt = d.rs1, d.rs2, d.target, d.pc + 1

    def run(m):
        x = m.xregs
        if cmp(x[rs1], x[rs2]):
            m.pc = target
            return (), (), True
        m.pc = nxt
        return (), (), False
    return run


def _make_j(d: DecodedInstr):
    target = d.target

    def run(m):
        m.pc = target
        return (), (), True
    return run


def _make_jal(d: DecodedInstr):
    rd, target = d.rd, d.target
    link = (d.pc + 1) & MASK64
    dsts = ((False, rd, link),) if rd else ()

    def run(m):
        if rd:
            m.xregs[rd] = link
        m.pc = target
        return dsts, (), True
    return run


def _make_jalr(d: DecodedInstr):
    rd, rs1 = d.rd, d.rs1
    imm = int(d.imm)
    link = (d.pc + 1) & MASK64
    dsts = ((False, rd, link),) if rd else ()

    def run(m):
        x = m.xregs
        next_pc = (x[rs1] + imm) & MASK64
        if rd:
            x[rd] = link
        m.pc = next_pc
        return dsts, (), True
    return run


def _make_halt(d: DecodedInstr):
    def run(m):
        m.halted = True
        return (), (), None
    return run


def _make_nop(d: DecodedInstr):
    nxt = d.pc + 1

    def run(m):
        m.pc = nxt
        return (), (), None
    return run


def _make_nondet(op, d: DecodedInstr):
    rd, nxt = d.rd, d.pc + 1
    if rd:
        def run(m):
            value = m.nondet_port(op) & MASK64
            m.xregs[rd] = value
            m.pc = nxt
            return (((False, rd, value),),
                    ((NONDET, 0, value, value),), None)
    else:
        def run(m):
            value = m.nondet_port(op) & MASK64
            m.pc = nxt
            return (), ((NONDET, 0, value, value),), None
    return run


def _make_fp_bin(fn, d: DecodedInstr):
    rd, rs1, rs2, nxt = d.rd, d.rs1, d.rs2, d.pc + 1

    def run(m):
        f = m.fregs
        value = fn(f[rs1], f[rs2])
        f[rd] = value
        m.pc = nxt
        return ((True, rd, value),), (), None
    return run


def _make_fmadd(d: DecodedInstr):
    rd, rs1, rs2, rs3, nxt = d.rd, d.rs1, d.rs2, d.rs3, d.pc + 1

    def run(m):
        f = m.fregs
        value = f[rs1] * f[rs2] + f[rs3]
        f[rd] = value
        m.pc = nxt
        return ((True, rd, value),), (), None
    return run


def _make_fp_un(fn, d: DecodedInstr):
    rd, rs1, nxt = d.rd, d.rs1, d.pc + 1

    def run(m):
        f = m.fregs
        value = fn(f[rs1])
        f[rd] = value
        m.pc = nxt
        return ((True, rd, value),), (), None
    return run


def _make_fmovi(d: DecodedInstr):
    rd, nxt = d.rd, d.pc + 1
    value = float(d.imm)
    dsts = ((True, rd, value),)

    def run(m):
        m.fregs[rd] = value
        m.pc = nxt
        return dsts, (), None
    return run


def _make_i2f(d: DecodedInstr):
    rd, rs1, nxt = d.rd, d.rs1, d.pc + 1

    def run(m):
        value = float(to_signed(m.xregs[rs1]))
        m.fregs[rd] = value
        m.pc = nxt
        return ((True, rd, value),), (), None
    return run


def _make_f2i(d: DecodedInstr):
    rd, rs1, nxt = d.rd, d.rs1, d.pc + 1
    if rd:
        def run(m):
            value = _f2i(m.fregs[rs1])
            m.xregs[rd] = value
            m.pc = nxt
            return ((False, rd, value),), (), None
    else:
        def run(m):
            m.pc = nxt
            return (), (), None
    return run


def _make_fcmp(fn, d: DecodedInstr):
    rd, rs1, rs2, nxt = d.rd, d.rs1, d.rs2, d.pc + 1
    if rd:
        def run(m):
            f = m.fregs
            value = fn(f[rs1], f[rs2])
            m.xregs[rd] = value
            m.pc = nxt
            return ((False, rd, value),), (), None
    else:
        def run(m):
            m.pc = nxt
            return (), (), None
    return run


_FACTORIES: dict[Opcode, Callable[[DecodedInstr], Callable]] = {
    Opcode.ADD: _make_add,
    Opcode.SUB: _make_sub,
    Opcode.AND: partial(_make_int_rr, lambda a, b: a & b),
    Opcode.OR: partial(_make_int_rr, lambda a, b: a | b),
    Opcode.XOR: partial(_make_int_rr, lambda a, b: a ^ b),
    Opcode.SLL: partial(_make_int_rr, lambda a, b: (a << (b & 63)) & MASK64),
    Opcode.SRL: partial(_make_int_rr, lambda a, b: a >> (b & 63)),
    Opcode.SRA: partial(_make_int_rr,
                        lambda a, b: (to_signed(a) >> (b & 63)) & MASK64),
    Opcode.SLT: partial(_make_int_rr,
                        lambda a, b: 1 if to_signed(a) < to_signed(b) else 0),
    Opcode.SLTU: partial(_make_int_rr, lambda a, b: 1 if a < b else 0),
    Opcode.MUL: partial(_make_int_rr, lambda a, b: (a * b) & MASK64),
    Opcode.DIV: partial(_make_int_rr, _div),
    Opcode.REM: partial(_make_int_rr, _rem),
    Opcode.ADDI: _make_addi,
    Opcode.ANDI: partial(_make_int_ri, lambda a, i: a & (i & MASK64)),
    Opcode.ORI: partial(_make_int_ri, lambda a, i: a | (i & MASK64)),
    Opcode.XORI: partial(_make_int_ri, lambda a, i: a ^ (i & MASK64)),
    Opcode.SLLI: partial(_make_int_ri, lambda a, i: (a << (i & 63)) & MASK64),
    Opcode.SRLI: partial(_make_int_ri, lambda a, i: a >> (i & 63)),
    Opcode.SRAI: partial(_make_int_ri,
                         lambda a, i: (to_signed(a) >> (i & 63)) & MASK64),
    Opcode.SLTI: partial(_make_int_ri,
                         lambda a, i: 1 if to_signed(a) < i else 0),
    Opcode.MOVI: _make_movi,
    Opcode.LD: _make_ld,
    Opcode.ST: _make_st,
    Opcode.LDP: _make_ldp,
    Opcode.STP: _make_stp,
    Opcode.FLD: _make_fld,
    Opcode.FST: _make_fst,
    Opcode.FADD: partial(_make_fp_bin, lambda a, b: a + b),
    Opcode.FSUB: partial(_make_fp_bin, lambda a, b: a - b),
    Opcode.FMUL: partial(_make_fp_bin, lambda a, b: a * b),
    Opcode.FDIV: partial(_make_fp_bin, _fdiv),
    Opcode.FMIN: partial(_make_fp_bin,
                         lambda a, b: b if (math.isnan(a) or b < a) else a),
    Opcode.FMAX: partial(_make_fp_bin,
                         lambda a, b: b if (math.isnan(a) or b > a) else a),
    Opcode.FMADD: _make_fmadd,
    Opcode.FSQRT: partial(_make_fp_un, _fsqrt),
    Opcode.FNEG: partial(_make_fp_un, lambda a: -a),
    Opcode.FABS: partial(_make_fp_un, abs),
    Opcode.FMOV: partial(_make_fp_un, lambda a: a),
    Opcode.FMOVI: _make_fmovi,
    Opcode.FCVT_I2F: _make_i2f,
    Opcode.FCVT_F2I: _make_f2i,
    Opcode.FCMPLT: partial(_make_fcmp, lambda a, b: 1 if a < b else 0),
    Opcode.FCMPLE: partial(_make_fcmp, lambda a, b: 1 if a <= b else 0),
    Opcode.FCMPEQ: partial(_make_fcmp, lambda a, b: 1 if a == b else 0),
    Opcode.BEQ: partial(_make_branch, lambda a, b: a == b),
    Opcode.BNE: partial(_make_branch, lambda a, b: a != b),
    Opcode.BLT: partial(_make_branch,
                        lambda a, b: to_signed(a) < to_signed(b)),
    Opcode.BGE: partial(_make_branch,
                        lambda a, b: to_signed(a) >= to_signed(b)),
    Opcode.BLTU: partial(_make_branch, lambda a, b: a < b),
    Opcode.BGEU: partial(_make_branch, lambda a, b: a >= b),
    Opcode.J: _make_j,
    Opcode.JAL: _make_jal,
    Opcode.JALR: _make_jalr,
    Opcode.HALT: _make_halt,
    Opcode.NOP: _make_nop,
    Opcode.RDRAND: partial(_make_nondet, Opcode.RDRAND),
    Opcode.RDCYCLE: partial(_make_nondet, Opcode.RDCYCLE),
}

#: Factory table indexed by the pre-decoder's dense handler index.
_FACTORY_TABLE = tuple(_FACTORIES[op] for op in HANDLER_OPS)


def bound_handlers(program: Program) -> tuple:
    """One specialised step closure per static instruction of ``program``
    (bound once per program; every :class:`Machine` over it shares them)."""
    cached = getattr(program, "_bound_handlers", None)
    if cached is None:
        table = _FACTORY_TABLE
        cached = tuple(table[d.hidx](d) for d in predecode(program))
        object.__setattr__(program, "_bound_handlers", cached)
    return cached


def _uops_by_pc(program: Program) -> tuple[int, ...]:
    """Per-pc micro-op counts (cached on the program)."""
    cached = getattr(program, "_uops_by_pc", None)
    if cached is None:
        cached = tuple(uop_count(i.op) for i in program.instructions)
        object.__setattr__(program, "_uops_by_pc", cached)
    return cached


# -- the columnar trace -------------------------------------------------------

class DynInstr:
    """Row view over one committed instruction of a columnar :class:`Trace`.

    Materialises the classic per-instruction record shape (``seq``, ``pc``,
    ``op``, ``dsts``, ``mem``, ``taken``, ``next_pc``) on demand from the
    trace's columns; hot-path consumers iterate the columns directly and
    never build these.
    """

    __slots__ = ("_trace", "seq")

    def __init__(self, trace: "Trace", seq: int) -> None:
        self._trace = trace
        self.seq = seq

    @property
    def pc(self) -> int:
        return self._trace.pcs[self.seq]

    @property
    def op(self) -> Opcode:
        trace = self._trace
        return trace.program.instructions[trace.pcs[self.seq]].op

    @property
    def dsts(self) -> tuple:
        return self._trace.dsts[self.seq]

    @property
    def mem(self) -> tuple:
        trace = self._trace
        lo, hi = trace.mem_off[self.seq], trace.mem_off[self.seq + 1]
        return tuple(
            MemOp(trace.mem_kind[j], trace.mem_addr[j], trace.mem_value[j],
                  trace.mem_used[j])
            for j in range(lo, hi))

    @property
    def taken(self) -> bool | None:
        code = self._trace.takens[self.seq]
        return None if code < 0 else bool(code)

    @property
    def next_pc(self) -> int:
        return self._trace.next_pc_of(self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynInstr(seq={self.seq}, pc={self.pc}, op={self.op.value})"


class _RowSeq:
    """Sequence facade over a trace's rows (supports index, slice, iter)."""

    __slots__ = ("_trace",)

    def __init__(self, trace: "Trace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace.pcs)

    def __getitem__(self, index):
        trace = self._trace
        n = len(trace.pcs)
        if isinstance(index, slice):
            return [DynInstr(trace, i) for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"trace row {index} out of range 0..{n - 1}")
        return DynInstr(trace, index)

    def __iter__(self):
        trace = self._trace
        for seq in range(len(trace.pcs)):
            yield DynInstr(trace, seq)


class Trace:
    """The committed execution of a program, stored as columns.

    Structure of arrays: per-instruction columns (``pcs``, ``dsts``,
    ``takens``) are parallel and dense in commit order (``seq`` is the row
    index); memory operations live in flat CSR-indexed columns — row *i*'s
    entries are ``mem_kind/addr/value/used[mem_off[i]:mem_off[i + 1]]``.
    ``takens`` encodes -1 = not a control instruction, 0/1 = branch
    outcome; ``next_pc`` is derived (``pcs[i + 1]``, or ``final_next_pc``
    for the last row).  :attr:`instructions` is the thin row-view accessor
    for consumers that want per-instruction objects.
    """

    __slots__ = (
        "program", "pcs", "dsts", "takens",
        "mem_off", "mem_kind", "mem_addr", "mem_value", "mem_used",
        "final_next_pc", "final_xregs", "final_fregs", "memory", "halted",
        "uop_count", "load_count", "store_count", "crashed", "_rows",
        "fork_of", "fork_seq", "_keyframes", "timings", "store_ref",
    )

    def __init__(self, program: Program, *, pcs, dsts, takens,
                 mem_off, mem_kind, mem_addr, mem_value, mem_used,
                 final_next_pc: int, final_xregs: list[int],
                 final_fregs: list[float], memory: MemoryImage,
                 halted: bool, uop_count: int = 0, load_count: int = 0,
                 store_count: int = 0, crashed: bool = False) -> None:
        self.program = program
        self.pcs = pcs
        self.dsts = dsts
        self.takens = takens
        self.mem_off = mem_off
        self.mem_kind = mem_kind
        self.mem_addr = mem_addr
        self.mem_value = mem_value
        self.mem_used = mem_used
        self.final_next_pc = final_next_pc
        self.final_xregs = final_xregs
        self.final_fregs = final_fregs
        self.memory = memory
        self.halted = halted
        #: total micro-ops (macro-ops counted by their crack factor)
        self.uop_count = uop_count
        self.load_count = load_count
        self.store_count = store_count
        #: True when an injected fault made the program trap (unaligned
        #: access, runaway control flow): the trace ends at the last commit
        #: and §IV-H's held-back termination applies
        self.crashed = crashed
        #: golden trace this one was forked from (None = executed whole);
        #: rows ``[0, fork_seq)`` are spliced golden columns, the rest
        #: came from live execution — process-local metadata, never
        #: serialised (see :func:`execute_forked`)
        self.fork_of: Trace | None = None
        self.fork_seq: int = 0
        self._keyframes: "Keyframes | None" = None
        #: golden timing records by config key (see repro.core.timing);
        #: process-local memo, hydrated from store envelopes on read
        self.timings: dict = {}
        #: (store, key) binding when this trace came from / was put into a
        #: trace store — lets timing records publish into the envelope
        self.store_ref: tuple | None = None
        self._rows: _RowSeq | None = None

    def __len__(self) -> int:
        return len(self.pcs)

    @property
    def instructions(self) -> _RowSeq:
        """Row-view accessor: ``trace.instructions[i]`` is a
        :class:`DynInstr` over row *i* (columns stay the ground truth)."""
        if self._rows is None:
            self._rows = _RowSeq(self)
        return self._rows

    def next_pc_of(self, seq: int) -> int:
        """The committed successor pc of row ``seq``."""
        return (self.pcs[seq + 1] if seq + 1 < len(self.pcs)
                else self.final_next_pc)

    def keyframes(self, interval: int | None = None) -> "Keyframes":
        """The trace's state keyframes (built on first use and cached;
        traces loaded from the golden-trace store arrive with them).

        ``interval=None`` uses whatever keyframes exist — consumers like
        :func:`fork_state` work with any interval — while an explicit
        ``interval`` (the producer-side knob) rebuilds on mismatch.
        """
        kf = self._keyframes
        if kf is None or (interval is not None and kf.interval != interval):
            kf = build_keyframes(
                self, DEFAULT_KEYFRAME_INTERVAL if interval is None
                else interval)
            self._keyframes = kf
        return kf

    # -- bit-exact serialisation (the golden-trace store's wire format) ------

    def to_payload(self) -> dict:
        """JSON-serialisable column dump.

        Bit-exact by construction: every FP value (writebacks, final FP
        registers) is encoded as its IEEE-754 bit pattern, so NaN payloads
        and signed zeros survive the round trip.
        """
        dsts = [
            [[1, idx, float_to_bits(value)] if is_fp else [0, idx, value]
             for is_fp, idx, value in row]
            for row in self.dsts
        ]
        return {
            "pcs": list(self.pcs),
            "dsts": dsts,
            "takens": list(self.takens),
            "mem_off": list(self.mem_off),
            "mem_kind": list(self.mem_kind),
            "mem_addr": list(self.mem_addr),
            "mem_value": list(self.mem_value),
            "mem_used": list(self.mem_used),
            "final_next_pc": self.final_next_pc,
            "final_xregs": list(self.final_xregs),
            "final_fregs": [float_to_bits(v) for v in self.final_fregs],
            "memory": sorted(self.memory.items()),
            "halted": self.halted,
            "uop_count": self.uop_count,
            "load_count": self.load_count,
            "store_count": self.store_count,
            "crashed": self.crashed,
        }

    @classmethod
    def from_payload(cls, program: Program, payload: dict) -> "Trace":
        """Rebuild a trace over ``program`` from :meth:`to_payload` output."""
        memory = MemoryImage()
        for addr, value in payload["memory"]:
            memory.store(addr, value)
        dsts = [
            tuple((True, idx, bits_to_float(value)) if is_fp
                  else (False, idx, value)
                  for is_fp, idx, value in row)
            for row in payload["dsts"]
        ]
        return cls(
            program,
            pcs=array("Q", payload["pcs"]),
            dsts=dsts,
            takens=array("b", payload["takens"]),
            mem_off=array("Q", payload["mem_off"]),
            mem_kind=array("b", payload["mem_kind"]),
            mem_addr=array("Q", payload["mem_addr"]),
            mem_value=array("Q", payload["mem_value"]),
            mem_used=array("Q", payload["mem_used"]),
            final_next_pc=payload["final_next_pc"],
            final_xregs=list(payload["final_xregs"]),
            final_fregs=[bits_to_float(v) for v in payload["final_fregs"]],
            memory=memory,
            halted=payload["halted"],
            uop_count=payload["uop_count"],
            load_count=payload["load_count"],
            store_count=payload["store_count"],
            crashed=payload["crashed"],
        )


class Machine:
    """An architectural interpreter over a :class:`Program`.

    Ports (all optional, defaulting to direct memory access):

    ``load_port(addr) -> (addr_used, bits)``
        Perform a load; returns the address actually accessed (fault
        injection may perturb it) and the 64-bit bit pattern read.
    ``store_port(addr, value) -> (addr_used, value_used)``
        Perform a store; returns what was actually committed.
    ``nondet_port(op) -> int``
        Produce the result of RDRAND/RDCYCLE.

    The detection checker substitutes ports that read and validate the
    load-store log instead of touching memory; the fault injector wraps
    the default ports to model store-queue and AGU corruption.

    Stepping drives the program's pre-bound handler table: one indexed
    closure call per instruction (see :func:`bound_handlers`).
    """

    __slots__ = (
        "program", "memory", "xregs", "fregs", "pc", "halted",
        "instr_count", "load_port", "store_port", "nondet_port", "_steps",
    )

    def __init__(
        self,
        program: Program,
        memory: MemoryImage | None = None,
        load_port: Callable[[int], int] | None = None,
        store_port: Callable[[int, int], None] | None = None,
        nondet_port: Callable[[Opcode], int] | None = None,
        pc: int | None = None,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else program.initial_memory()
        self.xregs = [0] * NUM_INT_REGS
        self.fregs = [0.0] * NUM_FP_REGS
        self.pc = program.entry if pc is None else pc
        self.halted = False
        self.instr_count = 0
        self.load_port = load_port if load_port is not None else self._memory_load
        self.store_port = store_port if store_port is not None else self._memory_store
        self.nondet_port = nondet_port if nondet_port is not None else self._default_nondet
        self._steps = bound_handlers(program)

    def _memory_load(self, addr: int) -> tuple[int, int]:
        return addr, self.memory.load(addr)

    def _memory_store(self, addr: int, value: int) -> tuple[int, int]:
        self.memory.store(addr, value)
        return addr, value

    def _default_nondet(self, op: Opcode) -> int:
        if op is Opcode.RDCYCLE:
            return self.instr_count & MASK64
        # a cheap deterministic pseudo-random stream (RDRAND)
        x = (self.instr_count * 0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03) & MASK64
        x ^= x >> 29
        return x

    def set_registers(self, xregs: list[int], fregs: list[float]) -> None:
        """Install architectural register state (checkpoint restore)."""
        if len(xregs) != NUM_INT_REGS or len(fregs) != NUM_FP_REGS:
            raise ExecutionError("register state has wrong shape")
        self.xregs = list(xregs)
        self.xregs[0] = 0
        self.fregs = list(fregs)

    def step(self) -> tuple[tuple, tuple, bool | None]:
        """Execute one instruction.

        Returns ``(dsts, mem, taken)`` where ``dsts`` is a tuple of
        ``(is_fp, index, value)`` writebacks, ``mem`` a tuple of
        ``(kind, addr, value, used_value)`` entries, and ``taken`` the
        branch outcome (None for non-control instructions).  Advances
        ``self.pc``.
        """
        if self.halted:
            raise ExecutionError("machine is halted")
        pc = self.pc
        try:
            fn = self._steps[pc]
        except IndexError:
            raise AssemblyError(
                f"instruction fetch out of range: pc={pc}") from None
        out = fn(self)
        self.instr_count += 1
        return out


#: Default cap on executed instructions, to catch runaway programs.
DEFAULT_MAX_INSTRUCTIONS = 20_000_000


def _commit_loop(machine: Machine, fault_injector, max_instructions: int,
                 pcs, dsts_col, takens,
                 mem_off, mem_kind, mem_addr, mem_value, mem_used,
                 seq: int, uops: int, loads: int, stores: int,
                 stop_seq: int | None = None,
                 ) -> tuple[int, int, int, bool]:
    """The one commit loop shared by :func:`execute_program` and
    :func:`execute_forked`: run ``machine`` until halt or crash,
    appending every committed row to the caller's columns (which may
    already hold a spliced prefix — ``seq`` and the counters continue
    from it).  Returns the final ``(uops, loads, stores, crashed)``.

    ``stop_seq`` ends commitment (without halting or crashing) once
    ``seq`` reaches it — for callers like activation-only fault
    verdicts that provably never read the trace past that point.

    When the block-compiled fast path is enabled (see
    :mod:`repro.isa.blocks`), whole basic blocks commit through one
    generated function each; the per-instruction handler path remains
    for rows inside a fault window, blocks that would cross the commit
    limit, and trap-capable blocks while an injector is attached.
    """
    # deferred import: blocks.py generates code *against* this module
    from repro.isa.blocks import (
        MAX_BLOCK_LEN,
        STATS,
        block_exec_enabled,
        block_table,
    )

    program = machine.program
    inject = fault_injector is not None
    # last seq the injector can still act on; later rows take the plain
    # handler path (the injector would pass them through unchanged, at
    # the cost of a per-instruction wrapper) while keeping the injected
    # run's trap semantics
    inject_until = -1
    if inject:
        last = fault_injector.last_execution_seq()
        inject_until = max_instructions if last is None else last
    steps = machine._steps
    uops_table = _uops_by_pc(program)
    cells = build = runs = None
    tlen = 0
    if block_exec_enabled():
        table = block_table(program)
        cells = table.cells
        runs = table.runs
        build = table.build
        tlen = len(cells)

    pcs_append = pcs.append
    dsts_append = dsts_col.append
    takens_append = takens.append
    off_append = mem_off.append
    kind_append = mem_kind.append
    addr_append = mem_addr.append
    value_append = mem_value.append
    used_append = mem_used.append

    limit = (max_instructions if stop_seq is None
             else min(stop_seq, max_instructions))
    entries = mem_off[-1]
    crashed = False
    seq0 = seq
    block_instrs = block_calls = 0
    # with MAX_BLOCK_LEN of headroom under the limit, any block commits
    # whole — the tight loop below needs no per-block limit guard
    safe = limit - MAX_BLOCK_LEN
    while not machine.halted:
        if seq >= limit:
            if seq < max_instructions:
                break  # stop_seq reached: the caller needs nothing more
            if inject:
                # a fault sent the program into a runaway loop: §IV-J's
                # timeouts bound detection; the run ends here
                crashed = True
                break
            raise ExecutionError(
                f"{program.name}: exceeded {max_instructions} instructions "
                f"(infinite loop?)")
        pc = machine.pc
        if runs is not None and not inject and pc < tlen and seq <= safe:
            # tight fast loop: no injector and at least MAX_BLOCK_LEN of
            # headroom, so every compiled block commits whole and the
            # per-iteration guards reduce to halt/limit/bounds checks;
            # each run function returns its static (n, uops, loads,
            # stores) counts, so no per-call attribute walks either
            _s0 = seq
            while True:
                fn = runs[pc]
                if fn is None:
                    fn = build(pc).run
                dn, du, dl, ds = fn(machine, seq, pcs, dsts_col, takens,
                                    mem_off, mem_kind, mem_addr, mem_value,
                                    mem_used, safe)
                seq += dn
                uops += du
                loads += dl
                stores += ds
                block_calls += 1
                if machine.halted or seq > safe:
                    break
                pc = machine.pc
                if pc >= tlen:
                    break
            block_instrs += seq - _s0
            entries = mem_off[-1]
            continue
        if (cells is not None and pc < tlen
                and (not inject or seq > inject_until)):
            block = cells[pc]
            if block is None:
                block = build(pc)
            # a block commits whole: it must fit under the limit, and
            # with an injector attached (whose trap semantics commit
            # row by row) it must be provably trap-free
            if block.n <= limit - seq and (not inject or block.trap_free):
                block.run(machine, seq, pcs, dsts_col, takens, mem_off,
                          mem_kind, mem_addr, mem_value, mem_used)
                seq += block.n
                uops += block.uops
                loads += block.loads
                stores += block.stores
                entries = mem_off[-1]
                block_instrs += block.n
                block_calls += 1
                continue
        if inject and seq <= inject_until:
            try:
                dsts, mem, taken = fault_injector.step(machine, seq)
            except ExecutionError:
                # a corrupted value produced an illegal access or fetch:
                # the program traps; already-committed state stands and
                # the outstanding checks still run (§IV-H)
                crashed = True
                break
        else:
            try:
                fn = steps[pc]
            except IndexError:
                raise AssemblyError(
                    f"instruction fetch out of range: pc={pc}") from None
            if inject:
                # state corrupted earlier can still trap here
                try:
                    dsts, mem, taken = fn(machine)
                except ExecutionError:
                    crashed = True
                    break
            else:
                dsts, mem, taken = fn(machine)
            machine.instr_count = seq + 1

        pcs_append(pc)
        dsts_append(dsts)
        takens_append(-1 if taken is None else (1 if taken else 0))
        if mem:
            for kind, addr, value, used in mem:
                kind_append(kind)
                addr_append(addr)
                value_append(value)
                used_append(used)
                if kind == LOAD:
                    loads += 1
                elif kind == STORE:
                    stores += 1
            entries += len(mem)
        off_append(entries)
        uops += uops_table[pc]
        seq += 1

    STATS.block_instrs += block_instrs
    STATS.block_calls += block_calls
    STATS.total_instrs += seq - seq0
    return uops, loads, stores, crashed


def execute_program(
    program: Program,
    fault_injector=None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    stop_seq: int | None = None,
) -> Trace:
    """Run ``program`` to completion on the (simulated) main core.

    ``fault_injector`` is an optional :class:`repro.detection.faults.FaultInjector`
    applied at the architectural fault sites; ``None`` is the fault-free
    fast path.  ``stop_seq`` truncates commitment at that seq for
    callers that never read further (see :func:`_commit_loop`).
    Returns the committed columnar :class:`Trace`.
    """
    memory = program.initial_memory()
    machine = Machine(program, memory=memory)
    if fault_injector is not None:
        fault_injector.attach(machine)

    pcs = array("Q")
    dsts_col: list[tuple] = []
    takens = array("b")
    mem_off = array("Q", (0,))
    mem_kind = array("b")
    mem_addr = array("Q")
    mem_value = array("Q")
    mem_used = array("Q")

    uops, loads, stores, crashed = _commit_loop(
        machine, fault_injector, max_instructions,
        pcs, dsts_col, takens,
        mem_off, mem_kind, mem_addr, mem_value, mem_used,
        seq=0, uops=0, loads=0, stores=0, stop_seq=stop_seq)

    return Trace(
        program,
        pcs=pcs,
        dsts=dsts_col,
        takens=takens,
        mem_off=mem_off,
        mem_kind=mem_kind,
        mem_addr=mem_addr,
        mem_value=mem_value,
        mem_used=mem_used,
        final_next_pc=machine.pc,
        final_xregs=list(machine.xregs),
        final_fregs=list(machine.fregs),
        memory=memory,
        halted=machine.halted,
        uop_count=uops,
        load_count=loads,
        store_count=stores,
        crashed=crashed,
    )


# -- fork-point execution -----------------------------------------------------
#
# A fault job's execution is bit-identical to the golden trace up to the
# earliest injected fault, so re-executing that prefix is pure waste at
# campaign scale.  The fork path reconstructs the architectural state at
# the fork seq from the golden *columns* (no instruction execution),
# splices the golden columnar prefix into the new trace, and runs the
# live machine only from the fork seq onward.  Keyframes bound the
# column replay: every `interval` commits the golden trace snapshots the
# state *delta* since the previous keyframe, so reconstruction applies a
# few compact dicts and then replays at most `interval` rows.

#: Committed instructions between state keyframes (the knob trades
#: golden-envelope size against fork-state reconstruction work).
DEFAULT_KEYFRAME_INTERVAL = 1000


class Keyframe(NamedTuple):
    """State delta at one keyframe boundary.

    The frame describes the architectural state *before* committing row
    ``seq`` as a delta over the previous frame (or over the initial
    state for the first): registers written and words stored since then,
    plus cumulative uop/load/store counts at ``seq``.
    """

    seq: int
    xregs: dict[int, int]
    fregs: dict[int, float]
    mem: dict[int, int]
    uops: int
    loads: int
    stores: int


class Keyframes:
    """Periodic state keyframes over one committed trace."""

    __slots__ = ("interval", "frames")

    def __init__(self, interval: int, frames: tuple[Keyframe, ...]) -> None:
        self.interval = interval
        self.frames = frames

    # -- bit-exact serialisation (rides the golden-trace envelope) -----------

    def to_payload(self) -> dict:
        return {
            "interval": self.interval,
            "frames": [
                [f.seq,
                 sorted(f.xregs.items()),
                 sorted((i, float_to_bits(v)) for i, v in f.fregs.items()),
                 sorted(f.mem.items()),
                 f.uops, f.loads, f.stores]
                for f in self.frames
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Keyframes":
        frames = tuple(
            Keyframe(seq,
                     {i: v for i, v in xregs},
                     {i: bits_to_float(v) for i, v in fregs},
                     {a: v for a, v in mem},
                     uops, loads, stores)
            for seq, xregs, fregs, mem, uops, loads, stores
            in payload["frames"])
        return cls(int(payload["interval"]), frames)


#: Below this many rows the plain Python replay beats the numpy setup.
_VECTOR_MIN_ROWS = 48


def _replay_rows(trace: Trace, start: int, stop: int,
                 xregs, fregs, mem,
                 uops: int, loads: int, stores: int) -> tuple[int, int, int]:
    """Apply rows ``[start, stop)`` of ``trace``'s columns into the
    given register/memory containers (anything indexable — the register
    files of :func:`fork_state`, the delta dicts of
    :func:`build_keyframes`), returning the updated cumulative counts.
    This is the one definition of what committing a row does to
    architectural state outside the live machine.

    When the range is large enough and numpy is available, the memory
    side (store application, load/store counts) and the uop sum run as
    whole-column vector operations; register writebacks stay a ragged
    per-row walk.  Both paths produce identical state: store application
    order is preserved (``dict.update`` over entries in commit order is
    last-write-wins exactly like the per-row loop), and every value that
    lands in a container is a Python ``int``.
    """
    pcs = trace.pcs
    dsts = trace.dsts
    uops_table = _uops_by_pc(trace.program)
    if _np is not None and stop - start >= _VECTOR_MIN_ROWS:
        for seq in range(start, stop):
            for is_fp, idx, value in dsts[seq]:
                if is_fp:
                    fregs[idx] = value
                else:
                    xregs[idx] = value
        lo, hi = trace.mem_off[start], trace.mem_off[stop]
        kinds = _np.frombuffer(trace.mem_kind, dtype=_np.int8)[lo:hi]
        store_mask = kinds == STORE
        n_stores = int(store_mask.sum())
        if n_stores:
            addrs = _np.frombuffer(
                trace.mem_addr, dtype=_np.uint64)[lo:hi][store_mask]
            values = _np.frombuffer(
                trace.mem_value, dtype=_np.uint64)[lo:hi][store_mask]
            # zip of .tolist() keeps commit order → last write wins, and
            # yields Python ints (no numpy scalars leak into state)
            mem.update(zip(addrs.tolist(), values.tolist()))
        stores += n_stores
        loads += int((kinds == LOAD).sum())
        pcs_slice = _np.frombuffer(pcs, dtype=_np.uint64)[start:stop]
        uops += int(_np.asarray(uops_table, dtype=_np.int64)
                    .take(pcs_slice).sum())
        return uops, loads, stores
    mem_off = trace.mem_off
    mem_kind = trace.mem_kind
    mem_addr = trace.mem_addr
    mem_value = trace.mem_value
    for seq in range(start, stop):
        for is_fp, idx, value in dsts[seq]:
            if is_fp:
                fregs[idx] = value
            else:
                xregs[idx] = value
        for j in range(mem_off[seq], mem_off[seq + 1]):
            kind = mem_kind[j]
            if kind == STORE:
                mem[mem_addr[j]] = mem_value[j]
                stores += 1
            elif kind == LOAD:
                loads += 1
        uops += uops_table[pcs[seq]]
    return uops, loads, stores


def build_keyframes(trace: Trace,
                    interval: int = DEFAULT_KEYFRAME_INTERVAL) -> Keyframes:
    """One pass over ``trace``'s columns collecting per-interval deltas."""
    if interval < 1:
        raise ExecutionError(f"keyframe interval must be >= 1, got {interval}")
    frames: list[Keyframe] = []
    uops = loads = stores = 0
    prev = 0
    # rows after the last boundary never land in a frame: stop there
    for boundary in range(interval, len(trace.pcs), interval):
        xdelta: dict[int, int] = {}
        fdelta: dict[int, float] = {}
        mdelta: dict[int, int] = {}
        uops, loads, stores = _replay_rows(
            trace, prev, boundary, xdelta, fdelta, mdelta,
            uops, loads, stores)
        frames.append(Keyframe(boundary, xdelta, fdelta, mdelta,
                               uops, loads, stores))
        prev = boundary
    return Keyframes(interval, tuple(frames))


class ForkState(NamedTuple):
    """Architectural state before committing row ``fork_seq``."""

    xregs: list[int]
    fregs: list[float]
    memory: MemoryImage
    pc: int
    #: cumulative counts over the prefix (the spliced rows)
    uops: int
    loads: int
    stores: int


def fork_state(trace: Trace, fork_seq: int) -> ForkState:
    """Reconstruct the state at ``fork_seq`` by replaying columns.

    No instruction is executed: keyframe deltas cover the bulk of the
    prefix and the remaining (at most one interval of) rows have their
    ``dsts`` writebacks and store entries applied directly.
    """
    total = len(trace)
    if not 0 <= fork_seq <= total:
        raise ExecutionError(
            f"fork seq {fork_seq} outside 0..{total}")
    xregs = [0] * NUM_INT_REGS
    fregs = [0.0] * NUM_FP_REGS
    memory = trace.program.initial_memory()
    mem_words = memory._words
    uops = loads = stores = 0
    start = 0
    for frame in trace.keyframes().frames:
        if frame.seq > fork_seq:
            break
        for idx, value in frame.xregs.items():
            xregs[idx] = value
        for idx, value in frame.fregs.items():
            fregs[idx] = value
        mem_words.update(frame.mem)
        uops, loads, stores = frame.uops, frame.loads, frame.stores
        start = frame.seq

    uops, loads, stores = _replay_rows(
        trace, start, fork_seq, xregs, fregs, mem_words,
        uops, loads, stores)

    pc = trace.pcs[fork_seq] if fork_seq < total else trace.final_next_pc
    return ForkState(xregs, fregs, memory, pc, uops, loads, stores)


class ForkCursor:
    """Monotone fork-state producer over one golden trace.

    A batch of fault jobs against the same golden trace asks for fork
    states at many (sorted) seqs.  :func:`fork_state` rebuilds each one
    from scratch — keyframes plus up to one interval of column replay
    *per fault*.  The cursor instead keeps one reconstruction advancing
    in place: moving from the previous fork seq to the next applies only
    the rows (and keyframes) in between, so a whole batch costs one walk
    over the prefix plus per-fault state copies.

    ``state(golden, fork_seq)`` matches the ``state_source`` signature
    of :func:`execute_forked` and returns a :class:`ForkState` equal to
    ``fork_state(golden, fork_seq)`` — same values, same types — with
    fresh containers (the live machine mutates them).  Fork seqs must be
    non-decreasing; feed it faults sorted by fork seq.
    """

    __slots__ = ("golden", "_seq", "_xregs", "_fregs", "_memory",
                 "_uops", "_loads", "_stores")

    def __init__(self, golden: Trace) -> None:
        if not golden.halted or golden.crashed:
            raise ExecutionError(
                "can only fork a clean, completely executed golden trace")
        self.golden = golden
        self._seq = 0
        self._xregs = [0] * NUM_INT_REGS
        self._fregs = [0.0] * NUM_FP_REGS
        self._memory = golden.program.initial_memory()
        self._uops = self._loads = self._stores = 0

    def state(self, golden: Trace, fork_seq: int) -> ForkState:
        if golden is not self.golden:
            raise ExecutionError(
                "fork cursor is bound to a different golden trace")
        total = len(golden)
        if not 0 <= fork_seq <= total:
            raise ExecutionError(f"fork seq {fork_seq} outside 0..{total}")
        if fork_seq < self._seq:
            raise ExecutionError(
                f"fork cursor cannot rewind from {self._seq} to {fork_seq}; "
                f"sort faults by fork seq")
        xregs, fregs = self._xregs, self._fregs
        mem_words = self._memory._words
        start = self._seq
        # a keyframe delta holds each touched location's value *at* the
        # boundary, so applying it on top of any state inside the frame's
        # interval lands exactly on the boundary state — the cursor can
        # fast-forward through frames from an arbitrary mid-interval seq
        for frame in golden.keyframes().frames:
            if frame.seq <= start:
                continue
            if frame.seq > fork_seq:
                break
            for idx, value in frame.xregs.items():
                xregs[idx] = value
            for idx, value in frame.fregs.items():
                fregs[idx] = value
            mem_words.update(frame.mem)
            self._uops, self._loads, self._stores = (
                frame.uops, frame.loads, frame.stores)
            start = frame.seq
        self._uops, self._loads, self._stores = _replay_rows(
            golden, start, fork_seq, xregs, fregs, mem_words,
            self._uops, self._loads, self._stores)
        self._seq = fork_seq
        pc = golden.pcs[fork_seq] if fork_seq < total else golden.final_next_pc
        return ForkState(list(xregs), list(fregs), self._memory.copy(), pc,
                         self._uops, self._loads, self._stores)


def _column_slice(col, stop: int, typecode: str) -> array:
    """Mutable ``array`` copy of ``col[:stop]``.

    Golden columns are ``array`` objects for in-process traces but
    read-only memory-mapped views for traces loaded from the binary
    store; the commit loop appends to the spliced columns, so the fork
    path always splices into a real ``array``.
    """
    if isinstance(col, array):
        return col[:stop]
    out = array(typecode)
    out.frombytes(bytes(col[:stop]))
    return out


def execute_forked(
    golden: Trace,
    fault_injector=None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    fork_seq: int | None = None,
    state_source=None,
    stop_seq: int | None = None,
) -> Trace:
    """Re-run ``golden``'s program with faults, executing only from the
    fork point.

    The result is byte-identical to
    ``execute_program(golden.program, fault_injector)`` whenever every
    injected fault strikes at or after ``fork_seq`` — which is exactly
    how the default fork seq (the injector's earliest fault) is chosen.
    Rows before the fork are spliced golden columns; the live machine
    starts from the reconstructed fork state.  The returned trace
    carries ``fork_of``/``fork_seq`` so the detection side can verify
    pre-fork segments by column comparison instead of replay.

    ``state_source`` substitutes the fork-state producer — a callable
    with :func:`fork_state`'s signature returning an equal state, e.g.
    a batch job's shared :class:`ForkCursor` — and must be semantically
    identical to it; the default is :func:`fork_state` itself.

    ``stop_seq`` ends live execution once that seq commits, for callers
    whose verdict provably never reads the trace past it (activation-only
    schemes); the returned trace is then truncated and un-halted.
    """
    if not golden.halted or golden.crashed:
        raise ExecutionError(
            "can only fork a clean, completely executed golden trace")
    program = golden.program
    total = len(golden)
    if fork_seq is None:
        fork_seq = (fault_injector.fork_seq(total)
                    if fault_injector is not None else total)
    fork_seq = min(max(fork_seq, 0), total)

    state = (state_source if state_source is not None
             else fork_state)(golden, fork_seq)
    machine = Machine(program, memory=state.memory, pc=state.pc)
    machine.set_registers(state.xregs, state.fregs)
    machine.instr_count = fork_seq
    machine.halted = fork_seq == total
    if fault_injector is not None:
        fault_injector.attach(machine)

    # splice the golden prefix (array/list slices: bulk C-level copies)
    pcs = _column_slice(golden.pcs, fork_seq, "Q")
    dsts_col = list(golden.dsts[:fork_seq])
    takens = _column_slice(golden.takens, fork_seq, "b")
    mem_off = _column_slice(golden.mem_off, fork_seq + 1, "Q")
    entries = mem_off[-1]
    mem_kind = _column_slice(golden.mem_kind, entries, "b")
    mem_addr = _column_slice(golden.mem_addr, entries, "Q")
    mem_value = _column_slice(golden.mem_value, entries, "Q")
    mem_used = _column_slice(golden.mem_used, entries, "Q")

    uops, loads, stores, crashed = _commit_loop(
        machine, fault_injector, max_instructions,
        pcs, dsts_col, takens,
        mem_off, mem_kind, mem_addr, mem_value, mem_used,
        seq=fork_seq, uops=state.uops, loads=state.loads,
        stores=state.stores, stop_seq=stop_seq)

    trace = Trace(
        program,
        pcs=pcs,
        dsts=dsts_col,
        takens=takens,
        mem_off=mem_off,
        mem_kind=mem_kind,
        mem_addr=mem_addr,
        mem_value=mem_value,
        mem_used=mem_used,
        final_next_pc=machine.pc,
        final_xregs=list(machine.xregs),
        final_fregs=list(machine.fregs),
        memory=state.memory,
        halted=machine.halted,
        uop_count=uops,
        load_count=loads,
        store_count=stores,
        crashed=crashed,
    )
    trace.fork_of = golden
    trace.fork_seq = fork_seq
    return trace
