"""Architectural (functional) execution.

The :class:`Machine` implements the ISA semantics once, with pluggable
*ports* for memory, so the same code executes both roles in the paper:

* the **main core** run (:func:`execute_program`), which reads/writes the
  real memory image, optionally applies a fault model, and records the
  committed dynamic trace; and
* the **checker replay** (:mod:`repro.detection.checker`), which plugs in
  ports that consume the load-store log and validate against it.

Integer registers hold 64-bit unsigned bit patterns; FP registers hold
Python floats (IEEE-754 doubles).  All memory traffic is in 64-bit bit
patterns, so FP data round-trips exactly and all comparisons the detection
hardware performs are bit-exact, as they would be in silicon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ExecutionError
from repro.isa.instructions import (
    MASK64,
    NUM_FP_REGS,
    NUM_INT_REGS,
    Opcode,
    to_signed,
)
from repro.isa.memory_image import MemoryImage, bits_to_float, float_to_bits
from repro.isa.program import Program

# MemOp kinds
LOAD = 0
STORE = 1
NONDET = 2


class MemOp:
    """One committed memory (or non-deterministic) operation.

    For loads, ``value`` is what the ECC-protected memory returned at
    ``addr`` — exactly what the load forwarding unit duplicates — while
    ``used_value`` is what actually reached the main core's register file
    (different only under an injected load-value fault).  For stores both
    fields equal the committed data.  For NONDET entries ``addr`` is zero
    and ``value`` is the forwarded result.
    """

    __slots__ = ("kind", "addr", "value", "used_value")

    def __init__(self, kind: int, addr: int, value: int, used_value: int | None = None):
        self.kind = kind
        self.addr = addr
        self.value = value
        self.used_value = value if used_value is None else used_value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = {LOAD: "LOAD", STORE: "STORE", NONDET: "NONDET"}[self.kind]
        return f"MemOp({kind}, addr={self.addr:#x}, value={self.value:#x})"


class DynInstr:
    """One committed dynamic instruction in the main-core trace."""

    __slots__ = ("seq", "pc", "op", "dsts", "mem", "taken", "next_pc")

    def __init__(self, seq: int, pc: int, op: Opcode,
                 dsts: tuple, mem: tuple, taken: bool | None, next_pc: int):
        self.seq = seq
        self.pc = pc
        self.op = op
        #: tuple of (is_fp, reg_index, value) writebacks
        self.dsts = dsts
        #: tuple of MemOp
        self.mem = mem
        self.taken = taken
        self.next_pc = next_pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynInstr(seq={self.seq}, pc={self.pc}, op={self.op.value})"


@dataclass
class Trace:
    """The committed execution of a program on the main core."""

    program: Program
    instructions: list[DynInstr]
    final_xregs: list[int]
    final_fregs: list[float]
    memory: MemoryImage
    halted: bool
    #: total micro-ops (macro-ops counted by their crack factor)
    uop_count: int = 0
    load_count: int = 0
    store_count: int = 0
    #: True when an injected fault made the program trap (unaligned
    #: access, runaway control flow): the trace ends at the last commit
    #: and §IV-H's held-back termination applies
    crashed: bool = False

    def __len__(self) -> int:
        return len(self.instructions)


def _div(a: int, b: int) -> int:
    """RISC-V-style signed division: /0 gives all-ones, overflow wraps."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return MASK64
    if sa == -(1 << 63) and sb == -1:
        return a
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return quotient & MASK64


def _rem(a: int, b: int) -> int:
    """RISC-V-style signed remainder: %0 gives the dividend."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return a
    if sa == -(1 << 63) and sb == -1:
        return 0
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return remainder & MASK64


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.inf if (a > 0) == (math.copysign(1.0, b) > 0) else -math.inf
    return a / b


def _fsqrt(a: float) -> float:
    return math.sqrt(a) if a >= 0.0 else math.nan


def _f2i(a: float) -> int:
    if math.isnan(a):
        return 0
    if a >= 2.0**63:
        return (1 << 63) - 1
    if a <= -(2.0**63):
        return 1 << 63  # -2^63 as unsigned
    return int(a) & MASK64


class Machine:
    """An architectural interpreter over a :class:`Program`.

    Ports (all optional, defaulting to direct memory access):

    ``load_port(addr) -> (addr_used, bits)``
        Perform a load; returns the address actually accessed (fault
        injection may perturb it) and the 64-bit bit pattern read.
    ``store_port(addr, value) -> (addr_used, value_used)``
        Perform a store; returns what was actually committed.
    ``nondet_port(op) -> int``
        Produce the result of RDRAND/RDCYCLE.

    The detection checker substitutes ports that read and validate the
    load-store log instead of touching memory; the fault injector wraps
    the default ports to model store-queue and AGU corruption.
    """

    __slots__ = (
        "program", "memory", "xregs", "fregs", "pc", "halted",
        "instr_count", "load_port", "store_port", "nondet_port",
    )

    def __init__(
        self,
        program: Program,
        memory: MemoryImage | None = None,
        load_port: Callable[[int], int] | None = None,
        store_port: Callable[[int, int], None] | None = None,
        nondet_port: Callable[[Opcode], int] | None = None,
        pc: int | None = None,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else program.initial_memory()
        self.xregs = [0] * NUM_INT_REGS
        self.fregs = [0.0] * NUM_FP_REGS
        self.pc = program.entry if pc is None else pc
        self.halted = False
        self.instr_count = 0
        self.load_port = load_port if load_port is not None else self._memory_load
        self.store_port = store_port if store_port is not None else self._memory_store
        self.nondet_port = nondet_port if nondet_port is not None else self._default_nondet

    def _memory_load(self, addr: int) -> tuple[int, int]:
        return addr, self.memory.load(addr)

    def _memory_store(self, addr: int, value: int) -> tuple[int, int]:
        self.memory.store(addr, value)
        return addr, value

    def _default_nondet(self, op: Opcode) -> int:
        if op is Opcode.RDCYCLE:
            return self.instr_count & MASK64
        # a cheap deterministic pseudo-random stream (RDRAND)
        x = (self.instr_count * 0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03) & MASK64
        x ^= x >> 29
        return x

    def set_registers(self, xregs: list[int], fregs: list[float]) -> None:
        """Install architectural register state (checkpoint restore)."""
        if len(xregs) != NUM_INT_REGS or len(fregs) != NUM_FP_REGS:
            raise ExecutionError("register state has wrong shape")
        self.xregs = list(xregs)
        self.xregs[0] = 0
        self.fregs = list(fregs)

    def step(self) -> tuple[tuple, tuple, bool | None]:
        """Execute one instruction.

        Returns ``(dsts, mem, taken)`` where ``dsts`` is a tuple of
        ``(is_fp, index, value)`` writebacks, ``mem`` a tuple of
        :class:`MemOp`, and ``taken`` the branch outcome (None for
        non-control instructions).  Advances ``self.pc``.
        """
        if self.halted:
            raise ExecutionError("machine is halted")
        instr = self.program.fetch(self.pc)
        op = instr.op
        x = self.xregs
        f = self.fregs
        pc = self.pc
        next_pc = pc + 1
        dsts: tuple = ()
        mem: tuple = ()
        taken: bool | None = None

        if op is Opcode.ADDI:
            value = (x[instr.rs1] + instr.imm) & MASK64
            dsts = ((False, instr.rd, value),)
        elif op is Opcode.ADD:
            value = (x[instr.rs1] + x[instr.rs2]) & MASK64
            dsts = ((False, instr.rd, value),)
        elif op is Opcode.SUB:
            value = (x[instr.rs1] - x[instr.rs2]) & MASK64
            dsts = ((False, instr.rd, value),)
        elif op is Opcode.LD:
            addr = (x[instr.rs1] + instr.imm) & MASK64
            addr, bits = self.load_port(addr)
            mem = (MemOp(LOAD, addr, bits),)
            dsts = ((False, instr.rd, bits),)
        elif op is Opcode.ST:
            addr = (x[instr.rs1] + instr.imm) & MASK64
            addr, value = self.store_port(addr, x[instr.rs2])
            mem = (MemOp(STORE, addr, value),)
        elif op in _BRANCH_HANDLERS:
            taken = _BRANCH_HANDLERS[op](x[instr.rs1], x[instr.rs2])
            if taken:
                next_pc = instr.target
        elif op is Opcode.MOVI:
            dsts = ((False, instr.rd, int(instr.imm) & MASK64),)
        elif op is Opcode.FLD:
            addr = (x[instr.rs1] + instr.imm) & MASK64
            addr, bits = self.load_port(addr)
            mem = (MemOp(LOAD, addr, bits),)
            dsts = ((True, instr.rd, bits_to_float(bits)),)
        elif op is Opcode.FST:
            addr = (x[instr.rs1] + instr.imm) & MASK64
            addr, bits = self.store_port(addr, float_to_bits(f[instr.rs2]))
            mem = (MemOp(STORE, addr, bits),)
        elif op is Opcode.LDP:
            addr = (x[instr.rs1] + instr.imm) & MASK64
            addr2 = (addr + 8) & MASK64
            addr, bits1 = self.load_port(addr)
            addr2, bits2 = self.load_port(addr2)
            mem = (MemOp(LOAD, addr, bits1), MemOp(LOAD, addr2, bits2))
            dsts = ((False, instr.rd, bits1), (False, instr.rd2, bits2))
        elif op is Opcode.STP:
            addr = (x[instr.rs1] + instr.imm) & MASK64
            addr2 = (addr + 8) & MASK64
            addr, v1 = self.store_port(addr, x[instr.rs2])
            addr2, v2 = self.store_port(addr2, x[instr.rs3])
            mem = (MemOp(STORE, addr, v1), MemOp(STORE, addr2, v2))
        elif op in _INT_RR_HANDLERS:
            value = _INT_RR_HANDLERS[op](x[instr.rs1], x[instr.rs2])
            dsts = ((False, instr.rd, value),)
        elif op in _INT_RI_HANDLERS:
            value = _INT_RI_HANDLERS[op](x[instr.rs1], int(instr.imm))
            dsts = ((False, instr.rd, value),)
        elif op in _FP_BIN_HANDLERS:
            value = _FP_BIN_HANDLERS[op](f[instr.rs1], f[instr.rs2])
            dsts = ((True, instr.rd, value),)
        elif op is Opcode.FMADD:
            value = f[instr.rs1] * f[instr.rs2] + f[instr.rs3]
            dsts = ((True, instr.rd, value),)
        elif op in _FP_UN_HANDLERS:
            value = _FP_UN_HANDLERS[op](f[instr.rs1])
            dsts = ((True, instr.rd, value),)
        elif op is Opcode.FMOVI:
            dsts = ((True, instr.rd, float(instr.imm)),)
        elif op is Opcode.FCVT_I2F:
            dsts = ((True, instr.rd, float(to_signed(x[instr.rs1]))),)
        elif op is Opcode.FCVT_F2I:
            dsts = ((False, instr.rd, _f2i(f[instr.rs1])),)
        elif op in _FCMP_HANDLERS:
            value = _FCMP_HANDLERS[op](f[instr.rs1], f[instr.rs2])
            dsts = ((False, instr.rd, value),)
        elif op is Opcode.J:
            taken = True
            next_pc = instr.target
        elif op is Opcode.JAL:
            taken = True
            dsts = ((False, instr.rd, (pc + 1) & MASK64),)
            next_pc = instr.target
        elif op is Opcode.JALR:
            taken = True
            dsts = ((False, instr.rd, (pc + 1) & MASK64),)
            next_pc = (x[instr.rs1] + instr.imm) & MASK64
        elif op is Opcode.HALT:
            self.halted = True
            next_pc = pc
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.RDRAND or op is Opcode.RDCYCLE:
            value = self.nondet_port(op) & MASK64
            mem = (MemOp(NONDET, 0, value),)
            dsts = ((False, instr.rd, value),)
        else:  # pragma: no cover - the opcode table is closed
            raise ExecutionError(f"unimplemented opcode {op}")

        for is_fp, idx, value in dsts:
            if is_fp:
                f[idx] = value
            elif idx != 0:
                x[idx] = value
        # drop x0 writebacks from the record: architecturally invisible
        if dsts and not dsts[0][0] and any(not d[0] and d[1] == 0 for d in dsts):
            dsts = tuple(d for d in dsts if d[0] or d[1] != 0)

        self.pc = next_pc
        self.instr_count += 1
        return dsts, mem, taken


_BRANCH_HANDLERS = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Opcode.BGE: lambda a, b: to_signed(a) >= to_signed(b),
    Opcode.BLTU: lambda a, b: a < b,
    Opcode.BGEU: lambda a, b: a >= b,
}

_INT_RR_HANDLERS = {
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: (a << (b & 63)) & MASK64,
    Opcode.SRL: lambda a, b: a >> (b & 63),
    Opcode.SRA: lambda a, b: (to_signed(a) >> (b & 63)) & MASK64,
    Opcode.SLT: lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    Opcode.SLTU: lambda a, b: 1 if a < b else 0,
    Opcode.MUL: lambda a, b: (a * b) & MASK64,
    Opcode.DIV: _div,
    Opcode.REM: _rem,
}

_INT_RI_HANDLERS = {
    Opcode.ANDI: lambda a, i: a & (i & MASK64),
    Opcode.ORI: lambda a, i: a | (i & MASK64),
    Opcode.XORI: lambda a, i: a ^ (i & MASK64),
    Opcode.SLLI: lambda a, i: (a << (i & 63)) & MASK64,
    Opcode.SRLI: lambda a, i: a >> (i & 63),
    Opcode.SRAI: lambda a, i: (to_signed(a) >> (i & 63)) & MASK64,
    Opcode.SLTI: lambda a, i: 1 if to_signed(a) < i else 0,
}

_FP_BIN_HANDLERS = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: _fdiv,
    Opcode.FMIN: lambda a, b: b if (math.isnan(a) or b < a) else a,
    Opcode.FMAX: lambda a, b: b if (math.isnan(a) or b > a) else a,
}

_FP_UN_HANDLERS = {
    Opcode.FSQRT: _fsqrt,
    Opcode.FNEG: lambda a: -a,
    Opcode.FABS: abs,
    Opcode.FMOV: lambda a: a,
}

_FCMP_HANDLERS = {
    Opcode.FCMPLT: lambda a, b: 1 if a < b else 0,
    Opcode.FCMPLE: lambda a, b: 1 if a <= b else 0,
    Opcode.FCMPEQ: lambda a, b: 1 if a == b else 0,
}


#: Default cap on executed instructions, to catch runaway programs.
DEFAULT_MAX_INSTRUCTIONS = 20_000_000


def execute_program(
    program: Program,
    fault_injector=None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> Trace:
    """Run ``program`` to completion on the (simulated) main core.

    ``fault_injector`` is an optional :class:`repro.detection.faults.FaultInjector`
    applied at the architectural fault sites; ``None`` is the fault-free
    fast path.  Returns the committed :class:`Trace`.
    """
    memory = program.initial_memory()
    machine = Machine(program, memory=memory)
    trace: list[DynInstr] = []
    uops = loads = stores = 0
    inject = fault_injector is not None
    if inject:
        fault_injector.attach(machine)

    from repro.isa.instructions import uop_count as _uop_count

    crashed = False
    while not machine.halted:
        if machine.instr_count >= max_instructions:
            if inject:
                # a fault sent the program into a runaway loop: §IV-J's
                # timeouts bound detection; the run ends here
                crashed = True
                break
            raise ExecutionError(
                f"{program.name}: exceeded {max_instructions} instructions "
                f"(infinite loop?)")
        seq = machine.instr_count
        pc = machine.pc
        op = program.instructions[pc].op
        if inject:
            try:
                dsts, mem, taken = fault_injector.step(machine, seq)
            except ExecutionError:
                # a corrupted value produced an illegal access or fetch:
                # the program traps; already-committed state stands and
                # the outstanding checks still run (§IV-H)
                crashed = True
                break
        else:
            dsts, mem, taken = machine.step()
        record = DynInstr(seq, pc, op, dsts, mem, taken, machine.pc)
        trace.append(record)
        uops += _uop_count(op)
        for memop in mem:
            if memop.kind == LOAD:
                loads += 1
            elif memop.kind == STORE:
                stores += 1

    return Trace(
        program=program,
        instructions=trace,
        final_xregs=list(machine.xregs),
        final_fregs=list(machine.fregs),
        memory=memory,
        halted=machine.halted,
        uop_count=uops,
        load_count=loads,
        store_count=stores,
        crashed=crashed,
    )
