"""Sparse 64-bit-word data memory.

The architectural memory is a dictionary of aligned 8-byte words.  The
paper assumes caches and DRAM are ECC-protected (§IV-A), so the *contents*
of memory are always taken to be correct; faults are injected at the core
boundary (register writebacks, load/store values/addresses), never here.

Floating-point values are stored as their IEEE-754 bit patterns so that a
store followed by a load round-trips exactly — replay determinism depends
on it.
"""

from __future__ import annotations

import struct

from repro.common.errors import MemoryAccessError

WORD_BYTES = 8


def float_to_bits(value: float) -> int:
    """IEEE-754 double bit pattern of ``value`` as an unsigned 64-bit int."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits: int) -> float:
    """Double-precision value of bit pattern ``bits``."""
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


class MemoryImage:
    """Byte-addressed, 8-byte-aligned sparse word memory."""

    __slots__ = ("_words",)

    def __init__(self, initial: dict[int, int] | None = None) -> None:
        self._words: dict[int, int] = {}
        if initial:
            for addr, value in initial.items():
                self.store(addr, value)

    @staticmethod
    def _check(addr: int) -> None:
        if addr < 0:
            raise MemoryAccessError(f"negative address {addr:#x}")
        if addr % WORD_BYTES:
            raise MemoryAccessError(f"unaligned access at {addr:#x}")

    def load(self, addr: int) -> int:
        """Read the 64-bit word at ``addr`` (zero if never written)."""
        self._check(addr)
        return self._words.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        """Write the 64-bit word at ``addr``."""
        self._check(addr)
        self._words[addr] = value & ((1 << 64) - 1)

    def load_float(self, addr: int) -> float:
        return bits_to_float(self.load(addr))

    def store_float(self, addr: int, value: float) -> None:
        self.store(addr, float_to_bits(value))

    def copy(self) -> "MemoryImage":
        clone = MemoryImage()
        clone._words = dict(self._words)
        return clone

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, addr: int) -> bool:
        self._check(addr)
        return addr in self._words

    def items(self):
        """Iterate over (address, word) pairs, unordered."""
        return self._words.items()
