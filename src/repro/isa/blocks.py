"""Block-compiled execution: basic-block fusion with generated code.

The per-instruction step loop in :mod:`repro.isa.executor` pays dispatch,
commit bookkeeping, and trace-column appends once per dynamic
instruction.  This module fuses straight-line runs of instructions into
single specialised Python functions — a template JIT: for each basic
block the generator renders source text, ``compile()``s it, and
``exec``s it into a closed namespace.  The generated code

* threads register values through locals (each register is read from
  the machine's register file at most once per block and flushed back
  once at the end),
* folds constant operands (immediates become literals, ``x0`` reads
  become ``0``, ``MOVI``/``FMOVI``/link values become constants),
* performs memory/nondet port calls inline, in exactly the handler
  order, and
* appends the block's trace columns in bulk — precomputed ``pcs`` /
  ``takens`` / ``mem_kind`` tuples extended in one call each, runtime
  values gathered into single tuple displays.

Blocks end at branches, jumps, ``halt``, and the nondeterministic
reads (``RDRAND``/``RDCYCLE`` must observe an exact ``instr_count``).
The table is built lazily per entry pc: any pc control flow actually
reaches gets its own (possibly overlapping) block, so jump targets and
mid-block checker-segment starts are covered without a leader pre-pass.

Each block carries two generated variants sharing the same compute
lines:

``run(m, seq, pcs, dsts, takens, mem_off, mem_kind, mem_addr,
mem_value, mem_used)``
    the main-core executor body: commits the block's rows to the
    caller's trace columns (byte-identical to the per-instruction
    handlers) and advances ``m.instr_count``.

``replay(m, steps)``
    the checker-core body: same computation against the machine's
    (log-backed) ports, appending ``(pc, taken)`` pairs to ``steps``.
    A log-mismatch raised by a port mid-block first appends the pairs
    of the rows that completed, so the caller observes exactly the
    per-instruction replay state.

Byte-identity with the handler path is pinned by the executor test
suite across all suite workloads; ``REPRO_BLOCK_EXEC=0`` disables the
fast path entirely (both loops fall back to per-instruction handlers).
"""

from __future__ import annotations

import math
import os
import struct

from repro.common.errors import ReproError
from repro.isa.executor import (
    LOAD,
    STORE,
    _div,
    _f2i,
    _fdiv,
    _fsqrt,
    _rem,
    _uops_by_pc,
)
from repro.isa.instructions import BRANCH_OPS, MASK64, Opcode, to_signed
from repro.isa.program import HANDLER_OPS, Program, predecode

#: Kill switch: ``REPRO_BLOCK_EXEC=0`` forces the per-instruction path.
BLOCK_EXEC_ENV = "REPRO_BLOCK_EXEC"


def block_exec_enabled() -> bool:
    """Whether the block-compiled fast path is enabled (checked per
    commit-loop / checker call, so toggling the env var takes effect
    without rebuilding programs)."""
    return os.environ.get(BLOCK_EXEC_ENV, "1") != "0"


#: Cap on fused instructions per block (bounds generated-source size).
MAX_BLOCK_LEN = 256

_NONDET_OPS = frozenset({Opcode.RDRAND, Opcode.RDCYCLE})
#: Ops that end a block (control flow, halt, exact-count nondet reads).
_TERMINATORS = (frozenset(BRANCH_OPS)
                | frozenset({Opcode.J, Opcode.JAL, Opcode.JALR, Opcode.HALT})
                | _NONDET_OPS)
_MEM_OPS = frozenset({Opcode.LD, Opcode.ST, Opcode.LDP, Opcode.STP,
                      Opcode.FLD, Opcode.FST})

_M = MASK64  # rendered as a literal in generated source

# value-expression templates ({a}/{b} are integer operand exprs)
_INT_RR = {
    Opcode.ADD: "({a} + {b}) & %d" % _M,
    Opcode.SUB: "({a} - {b}) & %d" % _M,
    Opcode.AND: "{a} & {b}",
    Opcode.OR: "{a} | {b}",
    Opcode.XOR: "{a} ^ {b}",
    Opcode.SLL: "({a} << ({b} & 63)) & %d" % _M,
    Opcode.SRL: "{a} >> ({b} & 63)",
    Opcode.SRA: "(ts({a}) >> ({b} & 63)) & %d" % _M,
    Opcode.SLT: "1 if ts({a}) < ts({b}) else 0",
    Opcode.SLTU: "1 if {a} < {b} else 0",
    Opcode.MUL: "({a} * {b}) & %d" % _M,
    Opcode.DIV: "_div({a}, {b})",
    Opcode.REM: "_rem({a}, {b})",
}
_FP_RR = {
    Opcode.FADD: "{a} + {b}",
    Opcode.FSUB: "{a} - {b}",
    Opcode.FMUL: "{a} * {b}",
    Opcode.FDIV: "_fdiv({a}, {b})",
    Opcode.FMIN: "{b} if (isnan({a}) or {b} < {a}) else {a}",
    Opcode.FMAX: "{b} if (isnan({a}) or {b} > {a}) else {a}",
}
_FP_UN = {
    Opcode.FSQRT: "_fsqrt({a})",
    Opcode.FNEG: "-{a}",
    Opcode.FABS: "abs({a})",
    Opcode.FMOV: "{a}",
}
_FCMP = {
    Opcode.FCMPLT: "1 if {a} < {b} else 0",
    Opcode.FCMPLE: "1 if {a} <= {b} else 0",
    Opcode.FCMPEQ: "1 if {a} == {b} else 0",
}
_BRANCH_COND = {
    Opcode.BEQ: "{a} == {b}",
    Opcode.BNE: "{a} != {b}",
    Opcode.BLT: "ts({a}) < ts({b})",
    Opcode.BGE: "ts({a}) >= ts({b})",
    Opcode.BLTU: "{a} < {b}",
    Opcode.BGEU: "{a} >= {b}",
}

#: Closed namespace shared by every generated block function.  The
#: float<->bits conversions are inlined as pre-bound Struct methods
#: (``_ud(_pq(bits))[0]`` is bit-identical to ``bits_to_float`` minus
#: one Python-level call per conversion).
_HELPERS = {
    "ts": to_signed,
    "_div": _div,
    "_rem": _rem,
    "_fdiv": _fdiv,
    "_fsqrt": _fsqrt,
    "_f2i": _f2i,
    "_pq": struct.Struct("<Q").pack,
    "_ud": struct.Struct("<d").unpack,
    "_pd": struct.Struct("<d").pack,
    "_uq": struct.Struct("<Q").unpack,
    "isnan": math.isnan,
    "float": float,
    "abs": abs,
    "_E": (),
    "ReproError": ReproError,
    "__builtins__": {},
}


class BlockStats:
    """Process-wide dynamic-coverage counters (read by the benchmarks).

    ``block_instrs`` / ``total_instrs`` give the fraction of dynamic
    instructions that committed through compiled blocks; ``block_calls``
    yields the mean dynamic block length.
    """

    __slots__ = ("block_instrs", "block_calls", "total_instrs")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.block_instrs = 0
        self.block_calls = 0
        self.total_instrs = 0

    def coverage(self) -> float:
        return self.block_instrs / self.total_instrs if self.total_instrs else 0.0

    def mean_block_len(self) -> float:
        return self.block_instrs / self.block_calls if self.block_calls else 0.0


STATS = BlockStats()


class Block:
    """One compiled basic block."""

    __slots__ = ("leader", "n", "uops", "loads", "stores", "trap_free",
                 "run", "replay")

    def __init__(self, leader: int, n: int, uops: int, loads: int,
                 stores: int, trap_free: bool, run, replay) -> None:
        self.leader = leader
        #: dynamic instructions the block commits
        self.n = n
        #: static micro-op / load / store counts over the block's rows
        self.uops = uops
        self.loads = loads
        self.stores = stores
        #: True when no row can raise an ExecutionError (no memory port
        #: calls) — the only blocks the commit loop may run while a
        #: fault injector is attached, since a mid-block trap must not
        #: lose the already-committed prefix rows
        self.trap_free = trap_free
        self.run = run
        self.replay = replay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block(leader={self.leader}, n={self.n})"


class BlockTable:
    """Lazily compiled block table over one program.

    ``cells[pc]`` is the compiled block whose leader is ``pc`` (or None
    until first reached).  Blocks may overlap: a jump into the middle of
    a longer block simply compiles its own suffix block.
    """

    __slots__ = ("program", "cells", "runs", "_decoded", "_uops")

    def __init__(self, program: Program) -> None:
        self.program = program
        self._decoded = predecode(program)
        self._uops = _uops_by_pc(program)
        self.cells: list[Block | None] = [None] * len(self._decoded)
        #: ``runs[pc]`` is ``cells[pc].run`` — a parallel table so the
        #: commit loop's inner fast path dereferences one list
        self.runs: list = [None] * len(self._decoded)

    def build(self, pc: int) -> Block:
        block = _compile_block(self.program, self._decoded, pc, self._uops)
        self.cells[pc] = block
        self.runs[pc] = block.run
        return block


def block_table(program: Program) -> BlockTable:
    """The program's compiled-block table (cached on the program, next
    to ``bound_handlers``; programs hash by identity)."""
    cached = getattr(program, "_block_table", None)
    if cached is None:
        cached = BlockTable(program)
        object.__setattr__(program, "_block_table", cached)
    return cached


# -- code generation ----------------------------------------------------------

def _compile_block(program: Program, decoded, leader: int, uops_table) -> Block:
    rows = []
    pc = leader
    last = len(decoded) - 1
    while True:
        d = decoded[pc]
        rows.append(d)
        op = HANDLER_OPS[d.hidx]
        if op in _TERMINATORS or len(rows) >= MAX_BLOCK_LEN or pc >= last:
            break
        pc += 1
    n = len(rows)
    ops = [HANDLER_OPS[d.hidx] for d in rows]
    last_op = ops[-1]

    # liveness pre-pass: the row index of each register's final write,
    # so a writeback that survives to block end can live directly in
    # the register local (its dsts entry then references that local)
    last_wx: dict[int, int] = {}
    last_wf: dict[int, int] = {}
    for i, (op, d) in enumerate(zip(ops, rows)):
        for is_fp, reg in _row_writes(op, d):
            (last_wf if is_fp else last_wx)[reg] = i

    gen = _Emitter(last_wx, last_wf)
    dst_exprs: list[str] = []        # one dsts-column expression per row
    mem_entries: list[tuple] = []    # (kind, addr_expr, value_expr) flat
    mem_delta: list[int] = []        # cumulative entry count after row i
    taken_codes: list[int] = []      # takens column codes (branch: last)
    step_taken: list[bool] = []      # replay (pc, taken) pairs
    consts: dict[str, object] = {}

    for i, (op, d) in enumerate(zip(ops, rows)):
        if op in _NONDET_OPS and i == n - 1:
            # the port must observe this row's exact dynamic seq
            gen.line(f"m.instr_count = seq + {n - 1}", mode="exec")
        dst = _emit_row(gen, consts, i, op, d, mem_entries)
        dst_exprs.append(dst)
        mem_delta.append(len(mem_entries))
        if op in BRANCH_OPS:
            taken_codes.append(-2)  # placeholder, handled by the epilogue
            step_taken.append(False)
        elif op in (Opcode.J, Opcode.JAL, Opcode.JALR):
            taken_codes.append(1)
            step_taken.append(True)
        else:
            taken_codes.append(-1)
            step_taken.append(False)

    # build the branch condition *before* snapshot/flush so any register
    # load it introduces lands in the body snapshot (hoistable)
    d_last = rows[-1]
    branch = last_op in BRANCH_OPS
    cond = ""
    if branch:
        cond = _BRANCH_COND[last_op].format(
            a=gen.read_x(d_last.rs1), b=gen.read_x(d_last.rs2))
    #: row lines only (no flush/epilogue) — the loop-fused run variant
    #: re-assembles these inside a while loop
    body_lines = list(gen.lines)
    gen.flush()

    pcs_tuple = tuple(d.pc for d in rows)
    consts["_PCS"] = pcs_tuple
    if mem_entries:
        consts["_MK"] = tuple(kind for kind, _a, _v in mem_entries)

    # -- epilogue: successor pc, takens/steps selection ----------------------
    if branch:
        consts["_TK1"] = tuple(taken_codes[:-1]) + (1,)
        consts["_TK0"] = tuple(taken_codes[:-1]) + (0,)
        consts["_S1"] = tuple(zip(pcs_tuple, step_taken[:-1] + [True]))
        consts["_S0"] = tuple(zip(pcs_tuple, step_taken[:-1] + [False]))
        gen.line(f"if {cond}:")
        gen.line(f"    m.pc = {d_last.target}")
        gen.line("    _tk = _TK1", mode="exec")
        gen.line("    _s = _S1", mode="replay")
        gen.line("else:")
        gen.line(f"    m.pc = {d_last.pc + 1}")
        gen.line("    _tk = _TK0", mode="exec")
        gen.line("    _s = _S0", mode="replay")
        taken_extend = "_tk"
        steps_extend = "_s"
    else:
        consts["_TK"] = tuple(taken_codes)
        consts["_S"] = tuple(zip(pcs_tuple, step_taken))
        if last_op is Opcode.HALT:
            gen.line("m.halted = True")
            if n > 1:
                # the halt handler leaves pc pointing at the halt
                # instruction itself; match it when the block entered
                # at an earlier pc
                gen.line(f"m.pc = {d_last.pc}")
        elif last_op in (Opcode.J, Opcode.JAL):
            gen.line(f"m.pc = {d_last.target}")
        elif last_op is Opcode.JALR:
            gen.line(f"m.pc = {gen.jalr_pc}")
        else:  # fall-through block (incl. nondet terminators)
            gen.line(f"m.pc = {d_last.pc + 1}")
        taken_extend = "_TK"
        steps_extend = "_S"
    #: replay pairs for completed rows ahead of a mid-block log mismatch
    consts["_SP"] = tuple(zip(pcs_tuple, step_taken))

    # -- bulk column commit (exec) -------------------------------------------
    gen.line("pcs.extend(_PCS)", mode="exec")
    gen.line(f"dsts.extend(({', '.join(dst_exprs)},))", mode="exec")
    gen.line(f"takens.extend({taken_extend})", mode="exec")
    gen.line("_e = mem_off[-1]", mode="exec")
    if mem_entries:
        offs = ", ".join("_e" if delta == 0 else f"_e + {delta}"
                         for delta in mem_delta)
        gen.line(f"mem_off.extend(({offs},))", mode="exec")
        gen.line("mem_kind.extend(_MK)", mode="exec")
        addrs = ", ".join(str(a) for _k, a, _v in mem_entries)
        values = ", ".join(str(v) for _k, _a, v in mem_entries)
        gen.line(f"mem_addr.extend(({addrs},))", mode="exec")
        gen.line(f"_mv = ({values},)", mode="exec")
        gen.line("mem_value.extend(_mv)", mode="exec")
        gen.line("mem_used.extend(_mv)", mode="exec")
    else:
        gen.line(f"mem_off.extend((_e,) * {n})", mode="exec")
    gen.line(f"m.instr_count = seq + {n}", mode="exec")
    gen.line("return _BS", mode="exec")
    gen.line(f"steps.extend({steps_extend})", mode="replay")

    n_uops = sum(uops_table[d.pc] for d in rows)
    n_loads = sum(1 for kind, _a, _v in mem_entries if kind == LOAD)
    n_stores = sum(1 for kind, _a, _v in mem_entries if kind == STORE)
    #: the run variant returns its own static counts so the commit
    #: loop's fast path needs no per-call attribute walks
    consts["_BS"] = (n, n_uops, n_loads, n_stores)

    src = gen.render(program, leader)
    code = compile(src, f"<block {program.name}@{leader}>", "exec")
    ns = dict(_HELPERS)
    ns.update(consts)
    exec(code, ns)

    run = ns["__block_run__"]
    if branch and d_last.target == leader:
        # self-loop: the branch targets its own leader, so the run
        # variant iterates *inside* the generated function — registers
        # stay in locals across iterations and the caller pays dispatch
        # once per loop, not once per trip.  ``safe`` bounds the fused
        # iterations (default 0: exactly one trip, matching the plain
        # variant's contract for the near-limit/injector dispatch).
        loop_src = _render_loop_run(gen, body_lines, dst_exprs, mem_entries,
                                    mem_delta, cond, leader, d_last.pc + 1,
                                    n, n_uops, n_loads, n_stores)
        loop_code = compile(loop_src,
                            f"<block {program.name}@{leader} loop>", "exec")
        exec(loop_code, ns)
        run = ns["__block_loop_run__"]

    return Block(
        leader=leader,
        n=n,
        uops=n_uops,
        loads=n_loads,
        stores=n_stores,
        trap_free=not any(op in _MEM_OPS for op in ops),
        run=run,
        replay=ns["__block_replay__"],
    )


def _render_loop_run(gen: "_Emitter", body_lines, dst_exprs, mem_entries,
                     mem_delta, cond: str, leader: int, fall_pc: int,
                     n: int, n_uops: int, n_loads: int, n_stores: int) -> str:
    """Render the loop-fused run variant for a self-loop block.

    Register loads are hoisted above the ``while``: a load line is only
    ever emitted for a register whose first access is a read, and
    cross-iteration values live in the same locals the writes update,
    so re-loading per trip would be both redundant and (after the first
    write) wrong.  The register file is flushed once, after the loop —
    a mid-trip trap therefore leaves stale registers, which is
    unobservable: without an injector the error propagates and no trace
    is built, and the injector dispatch path always calls with the
    default ``safe=0`` (single trip, flush on every call).
    """
    out = ["def __block_loop_run__(m, seq, pcs, dsts, takens, mem_off, "
           "mem_kind, mem_addr, mem_value, mem_used, safe=0):"]
    pro = []
    if "x" in gen.needs:
        pro.append("x = m.xregs")
    if "f" in gen.needs:
        pro.append("f = m.fregs")
    if "lp" in gen.needs:
        pro.append("lp = m.load_port")
    if "sp" in gen.needs:
        pro.append("sp = m.store_port")
    if "lp" in gen.needs or "sp" in gen.needs:
        pro.append("_mw = m.memory._words")
    if "lp" in gen.needs:
        pro.append("_mg = _mw.get")
    pro.extend(t for t, mode in body_lines if mode == "load")
    pro.append("_i = 0")
    out.extend(f"    {t}" for t in pro)
    out.append("    while True:")
    body = [t for t, mode in body_lines if mode in ("both", "exec")]
    body.append(f"seq += {n}")
    body.append("_i += 1")
    body.append(f"if {cond}:")
    body.append("    _tk = _TK1")
    body.append("else:")
    body.append("    _tk = _TK0")
    body.append("pcs.extend(_PCS)")
    body.append(f"dsts.extend(({', '.join(dst_exprs)},))")
    body.append("takens.extend(_tk)")
    body.append("_e = mem_off[-1]")
    if mem_entries:
        offs = ", ".join("_e" if delta == 0 else f"_e + {delta}"
                         for delta in mem_delta)
        body.append(f"mem_off.extend(({offs},))")
        body.append("mem_kind.extend(_MK)")
        addrs = ", ".join(str(a) for _k, a, _v in mem_entries)
        values = ", ".join(str(v) for _k, _a, v in mem_entries)
        body.append(f"mem_addr.extend(({addrs},))")
        body.append(f"_mv = ({values},)")
        body.append("mem_value.extend(_mv)")
        body.append("mem_used.extend(_mv)")
    else:
        body.append(f"mem_off.extend((_e,) * {n})")
    body.append("if _tk is _TK1:")
    body.append("    if seq <= safe:")
    body.append("        continue")
    body.append(f"    m.pc = {leader}")
    body.append("else:")
    body.append(f"    m.pc = {fall_pc}")
    body.append("break")
    out.extend(f"        {t}" for t in body)
    epi = [f"x[{reg}] = x{reg}" for reg in sorted(gen.written_x)]
    epi.extend(f"f[{reg}] = f{reg}" for reg in sorted(gen.written_f))
    epi.append("m.instr_count = seq")
    epi.append(f"return (_i * {n}, _i * {n_uops}, _i * {n_loads}, "
               f"_i * {n_stores})")
    out.extend(f"    {t}" for t in epi)
    return "\n".join(out) + "\n"


def _row_writes(op: Opcode, d) -> list[tuple[bool, int]]:
    """Registers a row writes, as (is_fp, index) pairs (x0 drops)."""
    writes: list[tuple[bool, int]] = []
    if op is Opcode.LDP:
        if d.rd:
            writes.append((False, d.rd))
        if d.rd2:
            writes.append((False, d.rd2))
    elif (op in _INT_RR or op in _FCMP or op in _NONDET_OPS
          or op in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                    Opcode.SLLI, Opcode.SRLI, Opcode.SRAI, Opcode.SLTI,
                    Opcode.MOVI, Opcode.LD, Opcode.FCVT_F2I,
                    Opcode.JAL, Opcode.JALR)):
        if d.rd:
            writes.append((False, d.rd))
    elif (op in _FP_RR or op in _FP_UN
          or op in (Opcode.FMADD, Opcode.FMOVI, Opcode.FCVT_I2F, Opcode.FLD)):
        writes.append((True, d.rd))
    return writes


class _Emitter:
    """Accumulates generated lines plus register-threading state."""

    __slots__ = ("lines", "avail_x", "avail_f", "written_x", "written_f",
                 "needs", "last_wx", "last_wf", "jalr_pc")

    def __init__(self, last_wx: dict[int, int], last_wf: dict[int, int]) -> None:
        self.lines: list[tuple[str, str]] = []  # (text, mode)
        self.avail_x: set[int] = set()
        self.avail_f: set[int] = set()
        self.written_x: set[int] = set()
        self.written_f: set[int] = set()
        self.needs: set[str] = set()
        self.last_wx = last_wx
        self.last_wf = last_wf
        self.jalr_pc = ""  # local holding a JALR terminator's next pc

    def line(self, text: str, mode: str = "both") -> None:
        self.lines.append((text, mode))

    def read_x(self, reg: int) -> str:
        if reg == 0:
            return "0"
        self.needs.add("x")
        if reg not in self.avail_x:
            # tagged "load" so the loop-fused variant can hoist it out
            # of the iteration body (safe: a load line is only emitted
            # for a register whose first access is a read)
            self.line(f"x{reg} = x[{reg}]", mode="load")
            self.avail_x.add(reg)
        return f"x{reg}"

    def read_f(self, reg: int) -> str:
        self.needs.add("f")
        if reg not in self.avail_f:
            self.line(f"f{reg} = f[{reg}]", mode="load")
            self.avail_f.add(reg)
        return f"f{reg}"

    def write_x(self, row: int, reg: int, expr: str) -> str:
        """Assign ``expr`` to integer register ``reg``; returns the name
        that still holds the row's value at block end (for the dsts
        column)."""
        self.needs.add("x")
        self.avail_x.add(reg)
        self.written_x.add(reg)
        if self.last_wx.get(reg) == row:
            self.line(f"x{reg} = {expr}")
            return f"x{reg}"
        name = f"_v{row}"
        self.line(f"{name} = {expr}")
        self.line(f"x{reg} = {name}")
        return name

    def write_f(self, row: int, reg: int, expr: str) -> str:
        self.needs.add("f")
        self.avail_f.add(reg)
        self.written_f.add(reg)
        if self.last_wf.get(reg) == row:
            self.line(f"f{reg} = {expr}")
            return f"f{reg}"
        name = f"_v{row}"
        self.line(f"{name} = {expr}")
        self.line(f"f{reg} = {name}")
        return name

    def flush(self) -> None:
        """Write every modified register local back to the files."""
        for reg in sorted(self.written_x):
            self.line(f"x[{reg}] = x{reg}")
        for reg in sorted(self.written_f):
            self.line(f"f[{reg}] = f{reg}")

    def render(self, program: Program, leader: int) -> str:
        prologue = []
        if "x" in self.needs:
            prologue.append(("x = m.xregs", "both"))
        if "f" in self.needs:
            prologue.append(("f = m.fregs", "both"))
        if "lp" in self.needs:
            prologue.append(("lp = m.load_port", "both"))
        if "sp" in self.needs:
            prologue.append(("sp = m.store_port", "both"))
        if "np" in self.needs:
            prologue.append(("np = m.nondet_port", "both"))
        if "lp" in self.needs or "sp" in self.needs:
            prologue.append(("_mw = m.memory._words", "exec"))
        if "lp" in self.needs:
            prologue.append(("_mg = _mw.get", "exec"))

        all_lines = prologue + self.lines
        exec_body = [t for t, mode in all_lines
                     if mode in ("both", "exec", "load")]
        replay_body = [t for t, mode in all_lines
                       if mode in ("both", "replay", "load")]

        out = ["def __block_run__(m, seq, pcs, dsts, takens, mem_off, "
               "mem_kind, mem_addr, mem_value, mem_used, safe=0):"]
        out.extend(f"    {t}" for t in exec_body)
        out.append("")
        out.append("def __block_replay__(m, steps):")
        has_ports = "lp" in self.needs or "sp" in self.needs or "np" in self.needs
        if has_ports:
            # a port raising a log mismatch mid-block must leave the
            # caller's step list holding exactly the completed rows
            out.append("    _k = 0")
            out.append("    try:")
            out.extend(f"        {t}" for t in replay_body)
            out.append("    except ReproError:")
            out.append("        steps.extend(_SP[:_k])")
            out.append("        raise")
        else:
            out.extend(f"    {t}" for t in replay_body)
        return "\n".join(out) + "\n"


def _addr_expr(gen: _Emitter, rs1: int, imm: int) -> str:
    """Render ``(x[rs1] + imm) & MASK64``, folding the trivial cases
    (register values are invariantly 64-bit masked)."""
    if rs1 == 0:
        return str(imm & _M)
    base = gen.read_x(rs1)
    return base if imm == 0 else f"({base} + {imm}) & {_M}"


def _int_ri_expr(gen: _Emitter, op: Opcode, rs1: int, imm: int) -> str:
    a = gen.read_x(rs1)
    if op is Opcode.ADDI:
        if a == "0":
            return str(imm & _M)
        return a if imm == 0 else f"({a} + {imm}) & {_M}"
    if op is Opcode.ANDI:
        return "0" if a == "0" else f"{a} & {imm & _M}"
    if op is Opcode.ORI:
        return str(imm & _M) if a == "0" else f"{a} | {imm & _M}"
    if op is Opcode.XORI:
        return str(imm & _M) if a == "0" else f"{a} ^ {imm & _M}"
    shift = imm & 63
    if op is Opcode.SLLI:
        if a == "0":
            return "0"
        return a if shift == 0 else f"({a} << {shift}) & {_M}"
    if op is Opcode.SRLI:
        if a == "0":
            return "0"
        return a if shift == 0 else f"{a} >> {shift}"
    if op is Opcode.SRAI:
        if a == "0":
            return "0"
        return a if shift == 0 else f"(ts({a}) >> {shift}) & {_M}"
    if op is Opcode.SLTI:
        imm = int(imm)
        if a == "0":
            return "1" if 0 < imm else "0"
        return f"1 if ts({a}) < {imm} else 0"
    raise AssertionError(op)  # pragma: no cover


_INT_RI_OPS = frozenset({
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLLI, Opcode.SRLI, Opcode.SRAI, Opcode.SLTI,
})


def _emit_row(gen: _Emitter, consts: dict, i: int, op: Opcode, d,
              mem_entries: list) -> str:
    """Emit row ``i``'s compute lines; returns its dsts-column expr."""
    rd = d.rd
    if op in _INT_RR:
        if not rd:
            return "_E"
        expr = _INT_RR[op].format(a=gen.read_x(d.rs1), b=gen.read_x(d.rs2))
        name = gen.write_x(i, rd, expr)
        return f"((False, {rd}, {name}),)"
    if op in _INT_RI_OPS:
        if not rd:
            return "_E"
        name = gen.write_x(i, rd, _int_ri_expr(gen, op, d.rs1, int(d.imm)))
        return f"((False, {rd}, {name}),)"
    if op is Opcode.MOVI:
        if not rd:
            return "_E"
        value = int(d.imm) & _M
        gen.write_x(i, rd, str(value))
        return f"((False, {rd}, {value}),)"
    # Memory rows diverge between the variants.  The replay variant
    # calls the machine's (log-backed) ports.  The exec variant reads
    # and writes the memory image's word dict directly — in the commit
    # loop memory rows only run through blocks when no fault injector
    # is attached (trap_free gating), so the ports there are always the
    # machine's plain memory defaults; the misaligned-address slow path
    # still calls the real port so the genuine MemoryAccessError is
    # raised.  ``(addr + 8) & MASK`` preserves alignment, so a pair's
    # second access needs no check of its own, and every stored value
    # (register file contents, float_to_bits output) is already 64-bit
    # masked, matching MemoryImage.store exactly.
    if op is Opcode.LD:
        gen.needs.add("lp")
        addr = _addr_expr(gen, d.rs1, int(d.imm))
        gen.line(f"_k = {i}", mode="replay")
        gen.line(f"_a{i}, _t{i} = lp({addr})", mode="replay")
        gen.line(f"_a{i} = {addr}", mode="exec")
        gen.line(f"if _a{i} & 7: lp(_a{i})", mode="exec")
        gen.line(f"_t{i} = _mg(_a{i}, 0)", mode="exec")
        mem_entries.append((LOAD, f"_a{i}", f"_t{i}"))
        if not rd:
            return "_E"
        gen.write_x(i, rd, f"_t{i}")
        return f"((False, {rd}, _t{i}),)"
    if op is Opcode.ST:
        gen.needs.add("sp")
        value = gen.read_x(d.rs2)
        addr = _addr_expr(gen, d.rs1, int(d.imm))
        gen.line(f"_k = {i}", mode="replay")
        gen.line(f"_a{i}, _t{i} = sp({addr}, {value})", mode="replay")
        gen.line(f"_a{i} = {addr}", mode="exec")
        gen.line(f"if _a{i} & 7: sp(_a{i}, {value})", mode="exec")
        gen.line(f"_t{i} = {value}", mode="exec")
        gen.line(f"_mw[_a{i}] = _t{i}", mode="exec")
        mem_entries.append((STORE, f"_a{i}", f"_t{i}"))
        return "_E"
    if op is Opcode.LDP:
        gen.needs.add("lp")
        gen.line(f"_q{i} = {_addr_expr(gen, d.rs1, int(d.imm))}")
        gen.line(f"_r{i} = (_q{i} + 8) & {_M}")
        gen.line(f"_k = {i}", mode="replay")
        gen.line(f"_q{i}, _t{i} = lp(_q{i})", mode="replay")
        gen.line(f"_r{i}, _u{i} = lp(_r{i})", mode="replay")
        gen.line(f"if _q{i} & 7: lp(_q{i})", mode="exec")
        gen.line(f"_t{i} = _mg(_q{i}, 0)", mode="exec")
        gen.line(f"_u{i} = _mg(_r{i}, 0)", mode="exec")
        mem_entries.append((LOAD, f"_q{i}", f"_t{i}"))
        mem_entries.append((LOAD, f"_r{i}", f"_u{i}"))
        dsts = []
        if rd:
            gen.write_x(i, rd, f"_t{i}")
            dsts.append(f"(False, {rd}, _t{i})")
        if d.rd2:
            gen.write_x(i, d.rd2, f"_u{i}")
            dsts.append(f"(False, {d.rd2}, _u{i})")
        return f"({', '.join(dsts)},)" if dsts else "_E"
    if op is Opcode.STP:
        gen.needs.add("sp")
        v1, v2 = gen.read_x(d.rs2), gen.read_x(d.rs3)
        gen.line(f"_q{i} = {_addr_expr(gen, d.rs1, int(d.imm))}")
        gen.line(f"_r{i} = (_q{i} + 8) & {_M}")
        gen.line(f"_k = {i}", mode="replay")
        gen.line(f"_q{i}, _t{i} = sp(_q{i}, {v1})", mode="replay")
        gen.line(f"_r{i}, _u{i} = sp(_r{i}, {v2})", mode="replay")
        gen.line(f"if _q{i} & 7: sp(_q{i}, {v1})", mode="exec")
        gen.line(f"_t{i} = {v1}", mode="exec")
        gen.line(f"_mw[_q{i}] = _t{i}", mode="exec")
        gen.line(f"_u{i} = {v2}", mode="exec")
        gen.line(f"_mw[_r{i}] = _u{i}", mode="exec")
        mem_entries.append((STORE, f"_q{i}", f"_t{i}"))
        mem_entries.append((STORE, f"_r{i}", f"_u{i}"))
        return "_E"
    if op is Opcode.FLD:
        gen.needs.add("lp")
        addr = _addr_expr(gen, d.rs1, int(d.imm))
        gen.line(f"_k = {i}", mode="replay")
        gen.line(f"_a{i}, _t{i} = lp({addr})", mode="replay")
        gen.line(f"_a{i} = {addr}", mode="exec")
        gen.line(f"if _a{i} & 7: lp(_a{i})", mode="exec")
        gen.line(f"_t{i} = _mg(_a{i}, 0)", mode="exec")
        name = gen.write_f(i, rd, f"_ud(_pq(_t{i}))[0]")
        mem_entries.append((LOAD, f"_a{i}", f"_t{i}"))
        return f"((True, {rd}, {name}),)"
    if op is Opcode.FST:
        gen.needs.add("sp")
        value = gen.read_f(d.rs2)
        addr = _addr_expr(gen, d.rs1, int(d.imm))
        gen.line(f"_k = {i}", mode="replay")
        gen.line(f"_a{i}, _t{i} = sp({addr}, _uq(_pd({value}))[0])",
                 mode="replay")
        gen.line(f"_t{i} = _uq(_pd({value}))[0]", mode="exec")
        gen.line(f"_a{i} = {addr}", mode="exec")
        gen.line(f"if _a{i} & 7: sp(_a{i}, _t{i})", mode="exec")
        gen.line(f"_mw[_a{i}] = _t{i}", mode="exec")
        mem_entries.append((STORE, f"_a{i}", f"_t{i}"))
        return "_E"
    if op in _FP_RR:
        expr = _FP_RR[op].format(a=gen.read_f(d.rs1), b=gen.read_f(d.rs2))
        name = gen.write_f(i, rd, expr)
        return f"((True, {rd}, {name}),)"
    if op is Opcode.FMADD:
        expr = (f"{gen.read_f(d.rs1)} * {gen.read_f(d.rs2)}"
                f" + {gen.read_f(d.rs3)}")
        name = gen.write_f(i, rd, expr)
        return f"((True, {rd}, {name}),)"
    if op in _FP_UN:
        name = gen.write_f(i, rd, _FP_UN[op].format(a=gen.read_f(d.rs1)))
        return f"((True, {rd}, {name}),)"
    if op is Opcode.FMOVI:
        # float constants go through the namespace: source literals
        # cannot round-trip NaN payloads or infinities
        cname = f"_c{i}"
        consts[cname] = float(d.imm)
        gen.write_f(i, rd, cname)
        consts[f"_d{i}"] = ((True, rd, float(d.imm)),)
        return f"_d{i}"
    if op is Opcode.FCVT_I2F:
        name = gen.write_f(i, rd, f"float(ts({gen.read_x(d.rs1)}))")
        return f"((True, {rd}, {name}),)"
    if op is Opcode.FCVT_F2I:
        if not rd:
            return "_E"
        name = gen.write_x(i, rd, f"_f2i({gen.read_f(d.rs1)})")
        return f"((False, {rd}, {name}),)"
    if op in _FCMP:
        if not rd:
            return "_E"
        expr = _FCMP[op].format(a=gen.read_f(d.rs1), b=gen.read_f(d.rs2))
        name = gen.write_x(i, rd, expr)
        return f"((False, {rd}, {name}),)"
    if op in _NONDET_OPS:
        gen.needs.add("np")
        opname = f"_op{i}"
        consts[opname] = op
        gen.line(f"_k = {i}", mode="replay")
        gen.line(f"_t{i} = np({opname}) & {_M}")
        mem_entries.append((2, "0", f"_t{i}"))  # NONDET kind
        if not rd:
            return "_E"
        gen.write_x(i, rd, f"_t{i}")
        return f"((False, {rd}, _t{i}),)"
    if op is Opcode.JAL:
        link = (d.pc + 1) & _M
        if rd:
            gen.write_x(i, rd, str(link))
            return f"((False, {rd}, {link}),)"
        return "_E"
    if op is Opcode.JALR:
        link = (d.pc + 1) & _M
        # next pc computes before the link write (rd may alias rs1)
        gen.jalr_pc = f"_j{i}"
        gen.line(f"_j{i} = {_addr_expr(gen, d.rs1, int(d.imm))}")
        if rd:
            gen.write_x(i, rd, str(link))
            return f"((False, {rd}, {link}),)"
        return "_E"
    if op in BRANCH_OPS or op in (Opcode.J, Opcode.HALT, Opcode.NOP):
        return "_E"  # branch condition/pc handled by the epilogue
    raise AssertionError(f"unhandled opcode {op}")  # pragma: no cover
