"""Program representation, the programmatic builder, and the pre-decoder.

A :class:`Program` is an immutable list of static instructions plus an
initial data image.  Workload generators construct programs through
:class:`ProgramBuilder`, which handles labels, forward references, and data
allocation; hand-written assembly goes through :mod:`repro.isa.assembler`
which produces the same thing.

The **pre-decode pass** (:func:`predecode`) lowers every static
instruction into a flat :class:`DecodedInstr` dispatch record — a dense
handler index plus fully resolved operand slots (``None`` fields become
0, labels are already instruction indices).  The functional executor
binds one handler per record once per program, so its step loop never
re-inspects an :class:`~repro.isa.instructions.Opcode` or touches an
optional operand field again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.common.errors import AssemblyError
from repro.isa.instructions import (
    DATA_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    CONTROL_OPS,
    Instruction,
    Opcode,
)
from repro.isa.memory_image import MemoryImage, float_to_bits

# operand signature table: which fields each opcode requires.
# letters: d=rd, D=rd2, a=rs1, b=rs2, c=rs3, i=imm, t=target
# (f-prefixed opcodes use the same fields but index the FP file)
_SIGNATURES: dict[Opcode, str] = {}
for _op_name, _sig in {
    # int RR
    "ADD": "dab", "SUB": "dab", "AND": "dab", "OR": "dab", "XOR": "dab",
    "SLL": "dab", "SRL": "dab", "SRA": "dab", "SLT": "dab", "SLTU": "dab",
    "MUL": "dab", "DIV": "dab", "REM": "dab",
    # int RI
    "ADDI": "dai", "ANDI": "dai", "ORI": "dai", "XORI": "dai",
    "SLLI": "dai", "SRLI": "dai", "SRAI": "dai", "SLTI": "dai",
    "MOVI": "di",
    # memory
    "LD": "dai", "ST": "bai", "LDP": "dDai", "STP": "bcai",
    "FLD": "dai", "FST": "bai",
    # fp
    "FADD": "dab", "FSUB": "dab", "FMUL": "dab", "FDIV": "dab",
    "FMIN": "dab", "FMAX": "dab", "FMADD": "dabc",
    "FSQRT": "da", "FNEG": "da", "FABS": "da", "FMOV": "da", "FMOVI": "di",
    "FCVT_I2F": "da", "FCVT_F2I": "da",
    "FCMPLT": "dab", "FCMPLE": "dab", "FCMPEQ": "dab",
    # control
    "BEQ": "abt", "BNE": "abt", "BLT": "abt", "BGE": "abt",
    "BLTU": "abt", "BGEU": "abt",
    "J": "t", "JAL": "dt", "JALR": "dai",
    "HALT": "", "NOP": "",
    "RDRAND": "d", "RDCYCLE": "d",
}.items():
    _SIGNATURES[Opcode[_op_name]] = _sig


def signature(op: Opcode) -> str:
    """The operand signature string for ``op`` (see module source)."""
    return _SIGNATURES[op]


# -- pre-decode ---------------------------------------------------------------

#: Dense handler index per opcode: the executor's dispatch table is built
#: in exactly this order, so ``HANDLER_INDEX[op]`` names its handler.
HANDLER_OPS: tuple[Opcode, ...] = tuple(Opcode)
HANDLER_INDEX: dict[Opcode, int] = {op: i for i, op in enumerate(HANDLER_OPS)}


class DecodedInstr(NamedTuple):
    """One flat pre-decoded dispatch record.

    All operand slots are resolved integers (unused fields collapse to
    0); ``target`` is -1 when the opcode has none.  ``pc`` is the record's
    own instruction index, so handlers can be bound with their fall-through
    successor (``pc + 1``) as a constant.
    """

    hidx: int
    pc: int
    rd: int
    rs1: int
    rs2: int
    rs3: int
    rd2: int
    imm: int | float
    target: int


def predecode(program: "Program") -> tuple[DecodedInstr, ...]:
    """The flat dispatch records of ``program`` (cached on the program:
    :class:`Program` hashes by identity, so the pass runs once)."""
    cached = getattr(program, "_decoded", None)
    if cached is not None:
        return cached
    records = tuple(
        DecodedInstr(
            hidx=HANDLER_INDEX[instr.op],
            pc=pc,
            rd=instr.rd or 0,
            rs1=instr.rs1 or 0,
            rs2=instr.rs2 or 0,
            rs3=instr.rs3 or 0,
            rd2=instr.rd2 or 0,
            imm=instr.imm,
            target=-1 if instr.target is None else instr.target,
        )
        for pc, instr in enumerate(program.instructions)
    )
    object.__setattr__(program, "_decoded", records)
    return records


@dataclass(frozen=True, eq=False)
class Program:
    """An assembled program: code, labels, and initial data image.

    Programs compare and hash by identity (``eq=False``): two separately
    built programs are distinct even if structurally equal, which lets the
    timing layer cache derived metadata per program object.
    """

    name: str
    instructions: tuple[Instruction, ...]
    labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, int] = field(default_factory=dict)
    entry: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    def initial_memory(self) -> MemoryImage:
        """A fresh memory image holding the program's data segment."""
        return MemoryImage(self.data)

    def fetch(self, pc: int) -> Instruction:
        """The static instruction at instruction index ``pc``."""
        if not 0 <= pc < len(self.instructions):
            raise AssemblyError(f"instruction fetch out of range: pc={pc}")
        return self.instructions[pc]


class ProgramBuilder:
    """Constructs a :class:`Program` instruction by instruction.

    Labels may be referenced before they are defined; ``build()`` resolves
    all forward references and fails loudly on anything left dangling.

    Example::

        b = ProgramBuilder("count")
        b.emit(Opcode.MOVI, rd=1, imm=0)
        b.label("loop")
        b.emit(Opcode.ADDI, rd=1, rs1=1, imm=1)
        b.emit(Opcode.SLTI, rd=2, rs1=1, imm=10)
        b.emit(Opcode.BNE, rs1=2, rs2=0, target="loop")
        b.emit(Opcode.HALT)
        program = b.build()
    """

    def __init__(self, name: str, data_base: int = DATA_BASE) -> None:
        self.name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._pending: list[tuple[int, str]] = []  # (instr index, label)
        self._data: dict[int, int] = {}
        self._next_data = data_base

    # -- code ---------------------------------------------------------------

    def label(self, name: str) -> None:
        """Define ``name`` at the current instruction position."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def emit(
        self,
        op: Opcode,
        rd: int | None = None,
        rs1: int | None = None,
        rs2: int | None = None,
        rs3: int | None = None,
        rd2: int | None = None,
        imm: int | float = 0,
        target: int | str | None = None,
    ) -> int:
        """Append one instruction; returns its index."""
        self._check_operands(op, rd, rs1, rs2, rs3, rd2, target)
        resolved: int | None
        if isinstance(target, str):
            self._pending.append((len(self._instructions), target))
            resolved = -1  # patched in build()
        else:
            resolved = target
        self._instructions.append(
            Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3, rd2=rd2,
                        imm=imm, target=resolved)
        )
        return len(self._instructions) - 1

    def _check_operands(self, op, rd, rs1, rs2, rs3, rd2, target) -> None:
        sig = _SIGNATURES[op]
        wants = {
            "d": rd, "D": rd2, "a": rs1, "b": rs2, "c": rs3,
            "t": target,
        }
        for letter, value in wants.items():
            if letter == "i":
                continue
            needed = letter in sig
            if needed and value is None:
                raise AssemblyError(f"{op.value} requires operand '{letter}'")
            if not needed and value is not None:
                raise AssemblyError(f"{op.value} does not take operand '{letter}'")
        is_fp = op.value.startswith("F") and op not in (
            Opcode.FCVT_F2I, Opcode.FCMPLT, Opcode.FCMPLE, Opcode.FCMPEQ)
        # register ranges; FP ops index the FP file except where the
        # destination is an integer (compares, F2I) or source is (I2F, FMOVI)
        limit = NUM_FP_REGS if is_fp else NUM_INT_REGS
        for value in (rd, rd2, rs1, rs2, rs3):
            if value is not None and not 0 <= value < max(NUM_INT_REGS, NUM_FP_REGS):
                raise AssemblyError(
                    f"{op.value}: register index {value} out of range 0..{limit - 1}")

    # -- data ---------------------------------------------------------------

    def put_word(self, addr: int, value: int) -> None:
        """Place a 64-bit word in the initial data image."""
        self._data[addr] = value & ((1 << 64) - 1)

    def put_float(self, addr: int, value: float) -> None:
        self._data[addr] = float_to_bits(value)

    def alloc_words(self, count: int, values: list[int] | None = None) -> int:
        """Reserve ``count`` words in the data segment; returns base address."""
        base = self._next_data
        self._next_data += count * 8
        if values is not None:
            for offset, value in enumerate(values):
                self.put_word(base + offset * 8, value)
        return base

    def alloc_floats(self, values: list[float]) -> int:
        """Place a float array in the data segment; returns base address."""
        base = self._next_data
        self._next_data += len(values) * 8
        for offset, value in enumerate(values):
            self.put_float(base + offset * 8, value)
        return base

    # -- finish ---------------------------------------------------------------

    def build(self, entry: int | str = 0) -> Program:
        """Resolve labels and produce the immutable :class:`Program`."""
        instructions = list(self._instructions)
        for index, label in self._pending:
            if label not in self._labels:
                raise AssemblyError(f"undefined label {label!r}")
            old = instructions[index]
            instructions[index] = Instruction(
                op=old.op, rd=old.rd, rs1=old.rs1, rs2=old.rs2, rs3=old.rs3,
                rd2=old.rd2, imm=old.imm, target=self._labels[label])
        for index, instr in enumerate(instructions):
            if instr.op in CONTROL_OPS and instr.op is not Opcode.JALR:
                if instr.target is None or not 0 <= instr.target < len(instructions):
                    raise AssemblyError(
                        f"instruction {index} ({instr.op.value}) has invalid "
                        f"target {instr.target}")
        if isinstance(entry, str):
            if entry not in self._labels:
                raise AssemblyError(f"undefined entry label {entry!r}")
            entry_pc = self._labels[entry]
        else:
            entry_pc = entry
        if not instructions:
            raise AssemblyError("cannot build an empty program")
        return Program(
            name=self.name,
            instructions=tuple(instructions),
            labels=dict(self._labels),
            data=dict(self._data),
            entry=entry_pc,
        )
