"""The reproduction's instruction set.

A compact 64-bit RISC-style ISA standing in for the paper's ARMv8: enough
to express the nine evaluation workloads, with the features the detection
scheme specifically interacts with:

* **macro-ops that crack into multiple micro-ops** (``LDP``/``STP``, the
  load/store-pair instructions) — the partitioned log must never split a
  macro-op across two segments (paper §IV-D);
* **non-deterministic instructions** (``RDRAND``, ``RDCYCLE``) whose results
  must be forwarded through the load-store log for the replay to reproduce
  them (paper §IV-D);
* integer and floating-point pipelines with distinct functional units, so
  the main-core/checker-core IPC contrast that drives the evaluation is
  mechanistic rather than assumed.

Architectural state: 32 64-bit integer registers (``x0`` hard-wired to
zero), 32 double-precision FP registers, and the PC.  Instructions are a
fixed 4 bytes for I-cache purposes; the PC used throughout the simulator is
the instruction *index* into the program, with a byte address derived for
cache modelling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: 64-bit wrap mask for integer arithmetic.
MASK64 = (1 << 64) - 1

#: Byte size of one encoded instruction (for I-cache modelling).
INSTRUCTION_BYTES = 4

#: Base byte address of the code segment.
CODE_BASE = 0x0040_0000

#: Base byte address of the data segment used by the workload builders.
DATA_BASE = 0x1000_0000


class Opcode(enum.Enum):
    """Every operation in the ISA."""

    # integer ALU, register-register
    ADD = "ADD"
    SUB = "SUB"
    AND = "AND"
    OR = "OR"
    XOR = "XOR"
    SLL = "SLL"
    SRL = "SRL"
    SRA = "SRA"
    SLT = "SLT"
    SLTU = "SLTU"
    # integer ALU, register-immediate
    ADDI = "ADDI"
    ANDI = "ANDI"
    ORI = "ORI"
    XORI = "XORI"
    SLLI = "SLLI"
    SRLI = "SRLI"
    SRAI = "SRAI"
    SLTI = "SLTI"
    MOVI = "MOVI"
    # multiply / divide
    MUL = "MUL"
    DIV = "DIV"
    REM = "REM"
    # memory
    LD = "LD"
    ST = "ST"
    LDP = "LDP"  # macro-op: two load micro-ops
    STP = "STP"  # macro-op: two store micro-ops
    FLD = "FLD"
    FST = "FST"
    # floating point
    FADD = "FADD"
    FSUB = "FSUB"
    FMUL = "FMUL"
    FDIV = "FDIV"
    FSQRT = "FSQRT"
    FMIN = "FMIN"
    FMAX = "FMAX"
    FMADD = "FMADD"  # fd = fs1 * fs2 + fs3
    FNEG = "FNEG"
    FABS = "FABS"
    FMOV = "FMOV"
    FMOVI = "FMOVI"  # load FP immediate
    FCVT_I2F = "FCVT_I2F"  # fd = float(xs1)
    FCVT_F2I = "FCVT_F2I"  # xd = int(fs1)
    FCMPLT = "FCMPLT"  # xd = fs1 < fs2
    FCMPLE = "FCMPLE"
    FCMPEQ = "FCMPEQ"
    # control flow
    BEQ = "BEQ"
    BNE = "BNE"
    BLT = "BLT"
    BGE = "BGE"
    BLTU = "BLTU"
    BGEU = "BGEU"
    J = "J"
    JAL = "JAL"
    JALR = "JALR"
    HALT = "HALT"
    NOP = "NOP"
    # non-deterministic (results forwarded through the log on replay)
    RDRAND = "RDRAND"
    RDCYCLE = "RDCYCLE"


class FuClass(enum.Enum):
    """Functional-unit class, for issue contention in the timing models."""

    INT_ALU = "int_alu"
    MULDIV = "muldiv"
    FP_ALU = "fp_alu"
    MEM = "mem"
    BRANCH = "branch"
    NONE = "none"


# opcode groups used by the executor and timing models
INT_RR_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.SLT, Opcode.SLTU,
})
INT_RI_OPS = frozenset({
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLLI, Opcode.SRLI, Opcode.SRAI, Opcode.SLTI,
})
MULDIV_OPS = frozenset({Opcode.MUL, Opcode.DIV, Opcode.REM})
LOAD_OPS = frozenset({Opcode.LD, Opcode.LDP, Opcode.FLD})
STORE_OPS = frozenset({Opcode.ST, Opcode.STP, Opcode.FST})
MEM_OPS = LOAD_OPS | STORE_OPS
FP_OPS = frozenset({
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT,
    Opcode.FMIN, Opcode.FMAX, Opcode.FMADD, Opcode.FNEG, Opcode.FABS,
    Opcode.FMOV, Opcode.FMOVI, Opcode.FCVT_I2F, Opcode.FCVT_F2I,
    Opcode.FCMPLT, Opcode.FCMPLE, Opcode.FCMPEQ,
})
BRANCH_OPS = frozenset({
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU,
})
JUMP_OPS = frozenset({Opcode.J, Opcode.JAL, Opcode.JALR})
CONTROL_OPS = BRANCH_OPS | JUMP_OPS
NONDET_OPS = frozenset({Opcode.RDRAND, Opcode.RDCYCLE})

#: Micro-op counts for macro-ops; everything not listed is a single µop.
UOP_COUNTS = {Opcode.LDP: 2, Opcode.STP: 2}


def uop_count(op: Opcode) -> int:
    """Number of micro-ops the decoder cracks ``op`` into."""
    return UOP_COUNTS.get(op, 1)


def fu_class(op: Opcode) -> FuClass:
    """Functional-unit class an opcode issues to."""
    if op in MEM_OPS:
        return FuClass.MEM
    if op in MULDIV_OPS:
        return FuClass.MULDIV
    if op in FP_OPS:
        return FuClass.FP_ALU
    if op in CONTROL_OPS:
        return FuClass.BRANCH
    if op in (Opcode.HALT, Opcode.NOP):
        return FuClass.NONE
    return FuClass.INT_ALU


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Register fields are indices into the integer or FP register file
    depending on the opcode; unused fields are ``None``.  ``target`` is an
    instruction index (resolved by the assembler/builder from a label).
    ``rd2``/``rs3`` serve the pair/fused ops (``LDP`` second destination,
    ``STP`` second source, ``FMADD`` addend).
    """

    op: Opcode
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    rs3: int | None = None
    rd2: int | None = None
    imm: int | float = 0
    target: int | None = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        fields = []
        for name in ("rd", "rd2", "rs1", "rs2", "rs3"):
            value = getattr(self, name)
            if value is not None:
                fields.append(f"{name}={value}")
        if self.imm:
            fields.append(f"imm={self.imm}")
        if self.target is not None:
            fields.append(f"target={self.target}")
        return f"{self.op.value} {' '.join(fields)}"


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    return value - (1 << 64) if value >= (1 << 63) else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int to the 64-bit unsigned representation."""
    return value & MASK64


def pc_to_byte_address(pc: int) -> int:
    """Byte address of instruction index ``pc`` (for I-cache modelling)."""
    return CODE_BASE + pc * INSTRUCTION_BYTES
