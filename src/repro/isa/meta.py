"""Static per-instruction metadata for the timing models.

The timing simulators need, for every static instruction, its source and
destination registers (to build the dependence graph), its functional-unit
class and whether it touches memory.  This is static information, so it is
computed once per :class:`~repro.isa.program.Program` and cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.isa.assembler import field_space
from repro.isa.instructions import (
    BRANCH_OPS,
    FuClass,
    Instruction,
    LOAD_OPS,
    Opcode,
    STORE_OPS,
    fu_class,
    uop_count,
)
from repro.isa.program import Program, signature


@dataclass(frozen=True)
class InstrMeta:
    """Timing-relevant static facts about one instruction."""

    op: Opcode
    #: tuple of (is_fp, index) source registers (x0 excluded: always ready)
    srcs: tuple[tuple[bool, int], ...]
    #: tuple of (is_fp, index) destination registers (x0 excluded)
    dsts: tuple[tuple[bool, int], ...]
    fu: FuClass
    uops: int
    is_load: bool
    is_store: bool
    is_branch: bool
    is_jump: bool


def instr_meta(instr: Instruction) -> InstrMeta:
    """Compute the static metadata for one instruction."""
    sig = signature(instr.op)
    srcs: list[tuple[bool, int]] = []
    dsts: list[tuple[bool, int]] = []
    mapping = {"a": instr.rs1, "b": instr.rs2, "c": instr.rs3}
    for letter in sig:
        if letter in mapping and mapping[letter] is not None:
            is_fp = field_space(instr.op, letter) == "f"
            idx = mapping[letter]
            if is_fp or idx != 0:
                srcs.append((is_fp, idx))
    for letter, reg in (("d", instr.rd), ("D", instr.rd2)):
        if letter in sig and reg is not None:
            is_fp = field_space(instr.op, letter) == "f"
            if is_fp or reg != 0:
                dsts.append((is_fp, reg))
    op = instr.op
    return InstrMeta(
        op=op,
        srcs=tuple(srcs),
        dsts=tuple(dsts),
        fu=fu_class(op),
        uops=uop_count(op),
        is_load=op in LOAD_OPS,
        is_store=op in STORE_OPS,
        is_branch=op in BRANCH_OPS,
        is_jump=op in (Opcode.J, Opcode.JAL, Opcode.JALR),
    )


class ProgramMeta:
    """Per-program cache of :class:`InstrMeta`, indexed by PC."""

    __slots__ = ("metas",)

    def __init__(self, program: Program) -> None:
        self.metas = tuple(instr_meta(i) for i in program.instructions)

    def __getitem__(self, pc: int) -> InstrMeta:
        return self.metas[pc]

    def __len__(self) -> int:
        return len(self.metas)


@lru_cache(maxsize=64)
def program_meta(program: Program) -> ProgramMeta:
    """Metadata table for ``program`` (cached on program identity;
    :class:`Program` hashes by identity)."""
    return ProgramMeta(program)
