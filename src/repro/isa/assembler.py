"""A small two-pass assembler for hand-written programs.

Syntax example::

    .name vecsum
    .data
    .word  0x10000000 = 1 2 3 4
    .float 0x10000020 = 0.5 1.5
    .text
        MOVI x1, 0x10000000
        MOVI x2, 0            # running sum
        MOVI x3, 0            # index
    loop:
        LD   x4, 0(x1)
        ADD  x2, x2, x4
        ADDI x1, x1, 8
        ADDI x3, x3, 1
        SLTI x5, x3, 4
        BNE  x5, x0, loop
        HALT

Comments start with ``#`` or ``;``.  Registers are ``x0``-``x31`` (integer,
``x0`` reads as zero) and ``f0``-``f31`` (double-precision FP).  Memory
operands use the ``offset(base)`` form.  Branch targets are labels.
"""

from __future__ import annotations

import re

from repro.common.errors import AssemblyError
from repro.isa.instructions import NUM_FP_REGS, NUM_INT_REGS, Opcode
from repro.isa.program import Program, ProgramBuilder, signature

_REGISTER_RE = re.compile(r"^([xf])(\d+)$")
_MEMREF_RE = re.compile(r"^(-?(?:0[xX][0-9a-fA-F]+|\d+))\(([xf]\d+)\)$")
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def field_space(op: Opcode, letter: str) -> str:
    """Which register file ('x' or 'f') operand ``letter`` of ``op`` uses."""
    name = op.value
    if op is Opcode.FLD:
        return "f" if letter in ("d", "D") else "x"
    if op is Opcode.FST:
        return "f" if letter in ("b", "c") else "x"
    if op is Opcode.FCVT_I2F:
        return "f" if letter == "d" else "x"
    if op is Opcode.FCVT_F2I:
        return "x" if letter == "d" else "f"
    if op in (Opcode.FCMPLT, Opcode.FCMPLE, Opcode.FCMPEQ):
        return "x" if letter == "d" else "f"
    if name.startswith("F"):
        return "f"
    return "x"


def _parse_int(token: str, where: str) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"{where}: bad integer {token!r}") from exc


def _parse_imm(token: str, op: Opcode, where: str) -> int | float:
    if op is Opcode.FMOVI:
        try:
            return float(token)
        except ValueError as exc:
            raise AssemblyError(f"{where}: bad float immediate {token!r}") from exc
    return _parse_int(token, where)


def _parse_register(token: str, expected_space: str, where: str) -> int:
    match = _REGISTER_RE.match(token)
    if not match:
        raise AssemblyError(f"{where}: expected register, got {token!r}")
    space, index = match.group(1), int(match.group(2))
    if space != expected_space:
        raise AssemblyError(
            f"{where}: expected {expected_space!r}-register, got {token!r}")
    limit = NUM_INT_REGS if space == "x" else NUM_FP_REGS
    if index >= limit:
        raise AssemblyError(f"{where}: register {token!r} out of range")
    return index


def _split_operands(rest: str) -> list[str]:
    return [part.strip() for part in rest.split(",") if part.strip()] if rest else []


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    builder: ProgramBuilder | None = None
    program_name = name
    pending: list[tuple[str, int, str, str]] = []  # (kind, lineno, head, rest)
    data_directives: list[tuple[int, str, str]] = []
    in_text = True

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            head, _, rest = line.partition(" ")
            directive = head.lower()
            if directive == ".name":
                program_name = rest.strip() or program_name
            elif directive == ".data":
                in_text = False
            elif directive == ".text":
                in_text = True
            elif directive in (".word", ".float"):
                data_directives.append((lineno, directive, rest.strip()))
            else:
                raise AssemblyError(f"line {lineno}: unknown directive {head!r}")
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            pending.append(("label", lineno, label_match.group(1), ""))
            continue
        if not in_text:
            raise AssemblyError(f"line {lineno}: instruction outside .text")
        head, _, rest = line.partition(" ")
        pending.append(("instr", lineno, head.upper(), rest.strip()))

    builder = ProgramBuilder(program_name)

    for lineno, directive, rest in data_directives:
        where = f"line {lineno}"
        if "=" not in rest:
            raise AssemblyError(f"{where}: expected 'addr = values'")
        addr_part, _, values_part = rest.partition("=")
        addr = _parse_int(addr_part.strip(), where)
        tokens = values_part.split()
        if not tokens:
            raise AssemblyError(f"{where}: no values given")
        for offset, token in enumerate(tokens):
            if directive == ".word":
                builder.put_word(addr + offset * 8, _parse_int(token, where))
            else:
                try:
                    builder.put_float(addr + offset * 8, float(token))
                except ValueError as exc:
                    raise AssemblyError(f"{where}: bad float {token!r}") from exc

    for kind, lineno, head, rest in pending:
        where = f"line {lineno}"
        if kind == "label":
            try:
                builder.label(head)
            except AssemblyError as exc:
                raise AssemblyError(f"{where}: {exc}") from exc
            continue
        try:
            op = Opcode[head]
        except KeyError as exc:
            raise AssemblyError(f"{where}: unknown opcode {head!r}") from exc
        operands = _split_operands(rest)
        kwargs = _parse_operands(op, operands, where)
        try:
            builder.emit(op, **kwargs)
        except AssemblyError as exc:
            raise AssemblyError(f"{where}: {exc}") from exc

    try:
        return builder.build()
    except AssemblyError as exc:
        raise AssemblyError(f"assembly of {program_name!r} failed: {exc}") from exc


def _parse_operands(op: Opcode, operands: list[str], where: str) -> dict:
    """Map textual operands onto builder keyword arguments, per signature."""
    sig = signature(op)
    kwargs: dict = {}
    field_names = {"d": "rd", "D": "rd2", "a": "rs1", "b": "rs2", "c": "rs3"}

    # memory-reference forms end with "imm(base)" covering both 'a' and 'i'
    has_memref = "a" in sig and "i" in sig and op.value in (
        "LD", "ST", "LDP", "STP", "FLD", "FST")
    consumed_by_memref = 2 if has_memref else 0
    reg_letters = [c for c in sig if c in field_names]
    if has_memref:
        reg_letters = [c for c in reg_letters if c != "a"]
    expected = len(reg_letters) + (1 if has_memref else 0) \
        + (1 if "i" in sig and not has_memref else 0) \
        + (1 if "t" in sig else 0)
    if len(operands) != expected:
        raise AssemblyError(
            f"{where}: {op.value} expects {expected} operands, got {len(operands)}")

    cursor = 0
    for letter in reg_letters:
        kwargs[field_names[letter]] = _parse_register(
            operands[cursor], field_space(op, letter), where)
        cursor += 1
    if has_memref:
        match = _MEMREF_RE.match(operands[cursor].replace(" ", ""))
        if not match:
            raise AssemblyError(
                f"{where}: expected offset(base) operand, got {operands[cursor]!r}")
        kwargs["imm"] = _parse_int(match.group(1), where)
        kwargs["rs1"] = _parse_register(match.group(2), "x", where)
        cursor += 1
    elif "i" in sig:
        kwargs["imm"] = _parse_imm(operands[cursor], op, where)
        cursor += 1
    if "t" in sig:
        token = operands[cursor]
        if _IDENT_RE.match(token):
            kwargs["target"] = token
        else:
            kwargs["target"] = _parse_int(token, where)
        cursor += 1
    return kwargs
