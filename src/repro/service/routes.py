"""The service's route table: one declarative list, one pure matcher.

Keeping routing as data (method + path template → handler name) means
the URL surface is greppable in one place, the matcher is unit-testable
without sockets, and the server can answer 405 with a correct ``Allow``
header by scanning the same table it dispatches from.

Path templates are tuples of literal segments and ``{param}``
placeholders; a placeholder captures exactly one non-empty segment.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Route:
    method: str
    #: path template, e.g. ``("campaigns", "{id}", "status")``
    segments: tuple[str, ...]
    #: name of the ``CampaignService`` handler coroutine
    handler: str


ROUTES: tuple[Route, ...] = (
    Route("GET", ("healthz",), "health"),
    Route("GET", ("campaigns",), "list_campaigns"),
    Route("POST", ("campaigns",), "submit_campaign"),
    Route("GET", ("campaigns", "{id}", "status"), "campaign_status"),
    Route("GET", ("campaigns", "{id}", "records"), "campaign_records"),
    Route("GET", ("campaigns", "{id}", "events"), "campaign_events"),
    Route("POST", ("campaigns", "{id}", "workers"), "advertise_worker"),
    Route("GET", ("records", "{key}"), "get_record"),
)

#: Handlers that stream their response (SSE) instead of returning one
#: buffered body; the connection handler special-cases these.
STREAMING_HANDLERS = frozenset({"campaign_events"})


class MethodNotAllowed(Exception):
    """The path exists but not under this method; carries ``Allow``."""

    def __init__(self, allowed: tuple[str, ...]) -> None:
        super().__init__(f"allowed: {', '.join(allowed)}")
        self.allowed = allowed


def _segments(path: str) -> tuple[str, ...]:
    return tuple(part for part in path.strip("/").split("/") if part)


def _bind(route: Route, parts: tuple[str, ...]) -> dict[str, str] | None:
    if len(route.segments) != len(parts):
        return None
    params: dict[str, str] = {}
    for template, actual in zip(route.segments, parts):
        if template.startswith("{") and template.endswith("}"):
            params[template[1:-1]] = actual
        elif template != actual:
            return None
    return params


def match(method: str, path: str) -> tuple[str, dict[str, str]] | None:
    """Resolve ``(method, path)`` → ``(handler name, params)``.

    Returns None for an unknown path (404); raises
    :class:`MethodNotAllowed` when the path matches under a different
    method (405 + ``Allow``).
    """
    parts = _segments(path)
    allowed: list[str] = []
    for route in ROUTES:
        params = _bind(route, parts)
        if params is None:
            continue
        if route.method == method:
            return route.handler, params
        allowed.append(route.method)
    if allowed:
        raise MethodNotAllowed(tuple(dict.fromkeys(allowed)))
    return None
