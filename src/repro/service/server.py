"""The resident campaign service: an asyncio HTTP control plane.

``python -m repro serve --manifest-root DIR`` runs one
:class:`CampaignService`.  It is deliberately a *thin* layer: every unit
of state it manages is an ordinary on-disk campaign manifest under the
manifest root, created through
:meth:`~repro.harness.manifest.CampaignManifest.create` and drained
through the unchanged lease protocol — the service adds admission,
progress streaming, and record serving, never new execution semantics.
Kill it at any point and nothing is lost: manifests, leases, caches, and
failure envelopes are the ground truth, and a restarted service rescans
the root and re-admits whatever is unfinished (the same crash-resume
contract ``campaign-worker`` already obeys).

Layout on disk, one subdirectory per campaign::

    <root>/<campaign_id[:16]>/manifest.json     the ordinary manifest
    <root>/<campaign_id[:16]>/service.json      service sidecar (tenant,
                                                submission order, the
                                                normalised description)
    <root>/<campaign_id[:16]>/{cache,leases,failed,traces}/
    <root>/traces/                              shared store for grid
                                                construction

Execution: admitted campaigns drain **one at a time** in per-tenant
round-robin order (see :mod:`repro.service.admission`); the in-service
pool is ``drain_workers`` :class:`~repro.harness.orchestrator.
CampaignWorker` threads cooperating on the current campaign via leases.
One-campaign-at-a-time keeps the process-wide golden-trace store
consistent (every drain thread shares the current manifest's store) and
makes fairness observable; scale *within* a campaign comes from the
thread pool, scale *across* campaigns from external ``campaign-worker``
processes attaching to the advertised manifest paths, exactly as on any
other host.

The HTTP layer is stdlib-only (``asyncio.start_server`` + hand-rolled
HTTP/1.1, one request per connection): no framework dependency, nothing
the container does not already have.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import socket
import sys
import threading
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import AsyncIterator
from urllib.parse import parse_qs

from repro.common.records import canonical_json
from repro.harness.campaign import CACHE_SCHEMA_VERSION, RunCache
from repro.harness.manifest import CampaignManifest, ManifestError
from repro.harness.orchestrator import CampaignWorker, manifest_status
from repro.service import routes, wire
from repro.service.admission import AdmissionQueue, QueueFullError
from repro.service.wire import ApiError, WireError

#: How much of the campaign id names its directory: 16 hex chars = 64
#: bits, collision-free for any realistic number of campaigns under one
#: root while keeping paths readable in ``ls`` and worker commands.
DIR_PREFIX = 16

#: The service sidecar written next to each manifest.
SIDECAR_FILE = "service.json"

MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK", 201: "Created", 304: "Not Modified", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    429: "Too Many Requests", 500: "Internal Server Error",
}

#: Campaign lifecycle states as the service tracks them.  ``idle`` means
#: the in-service drain ran out of leasable work while the manifest is
#: still incomplete — jobs are leased to (or stranded by) external
#: workers; the manifest remains the ground truth.
ENTRY_STATES = ("queued", "running", "complete", "failed", "idle")


@dataclass
class Request:
    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def param(self, name: str, default: str | None = None) -> str | None:
        values = self.query.get(name)
        return values[0] if values else default


@dataclass
class CampaignEntry:
    """Service bookkeeping for one on-disk campaign manifest."""

    id: str
    tenant: str
    root: Path
    manifest: CampaignManifest
    meta: dict
    submitted_seq: int
    state: str = "queued"
    started_seq: int | None = None
    #: aggregated in-service drain stats (WorkerStats sums)
    drain: dict | None = None
    #: external workers that asked for attach instructions
    workers_advertised: int = 0
    error: str | None = None

    def summary(self) -> dict:
        return {
            "campaign": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "manifest": str(self.root),
            "kind": self.meta.get("kind", ""),
            "scheme": self.meta.get("scheme", ""),
            "scale": self.meta.get("scale", ""),
            "benchmarks": list(self.meta.get("benchmarks", [])),
            "jobs": len(self.manifest.unique),
            "slots": len(self.manifest.slots),
            "submitted_seq": self.submitted_seq,
            "started_seq": self.started_seq,
            "workers_advertised": self.workers_advertised,
            "drain": self.drain,
            "error": self.error,
        }


class CampaignService:
    """The control plane: admission, drain, status, records, events."""

    def __init__(self, manifest_root: str | os.PathLike,
                 cache_dir: str | os.PathLike | None = None,
                 queue_limit: int = 64,
                 drain_workers: int = 1,
                 lease_ttl: float = 300.0,
                 poll_interval: float = 0.25) -> None:
        self.manifest_root = Path(manifest_root)
        #: optional extra read-only record source for ``GET /records``
        #: (e.g. the cache of campaigns run before the service existed)
        self.extra_cache = (RunCache(cache_dir)
                            if cache_dir is not None else None)
        self.queue = AdmissionQueue(queue_limit)
        self.drain_workers = max(0, int(drain_workers))
        self.lease_ttl = float(lease_ttl)
        self.poll_interval = max(0.02, float(poll_interval))
        self.campaigns: dict[str, CampaignEntry] = {}
        self._submit_seq = itertools.count(1)
        self._start_seq = itertools.count(1)
        self._server: asyncio.AbstractServer | None = None
        self._drain_task: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._paused = False
        self._closing = False
        self._conn_tasks: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind, recover persisted campaigns, start draining; returns the
        bound port (useful with ``port=0`` in tests)."""
        self.manifest_root.mkdir(parents=True, exist_ok=True)
        # a service-level trace store so grid construction (clean trace
        # lengths for fault grids) is shared across submissions; drain
        # workers switch to each campaign's own store as they run
        from repro.harness.campaign import TRACE_STORE_DIRNAME
        from repro.workloads.suite import configure_trace_store
        configure_trace_store(self.manifest_root / TRACE_STORE_DIRNAME)
        self._wake = asyncio.Event()
        await asyncio.to_thread(self._recover)
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        if self.drain_workers > 0:
            self._drain_task = asyncio.create_task(self._drain_loop())
        bound = self._server.sockets[0].getsockname()[1]
        return bound

    async def run(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """CLI entry: start, announce, serve until cancelled."""
        bound = await self.start(host, port)
        print(f"repro serve: http://{host}:{bound}  "
              f"(manifest root {self.manifest_root}, "
              f"{self.drain_workers} drain worker(s), "
              f"queue limit {self.queue.limit})", flush=True)
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    async def stop(self) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._wake is not None:
            self._wake.set()
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except (asyncio.CancelledError, Exception):
                pass
        for task in list(self._conn_tasks):
            task.cancel()

    def pause_drain(self) -> None:
        """Stop popping new campaigns (the current one finishes)."""
        self._paused = True

    def resume_drain(self) -> None:
        self._paused = False
        if self._wake is not None:
            self._wake.set()

    # -- persistence / recovery ----------------------------------------------

    def _campaign_dir(self, cid: str) -> Path:
        return self.manifest_root / cid[:DIR_PREFIX]

    def _write_sidecar(self, entry: CampaignEntry,
                       description: dict) -> None:
        payload = {
            "campaign_id": entry.id,
            "tenant": entry.tenant,
            "submitted_seq": entry.submitted_seq,
            "meta": entry.meta,
            "description": description,
        }
        path = entry.root / SIDECAR_FILE
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(canonical_json(payload))
        os.replace(tmp, path)

    def _recover(self) -> None:
        """Rescan the root: re-register every sidecarred campaign, in
        original submission order, re-queueing the unfinished ones."""
        sidecars = []
        try:
            children = sorted(self.manifest_root.iterdir())
        except OSError:
            return
        for child in children:
            path = child / SIDECAR_FILE
            if not path.is_file():
                continue
            try:
                payload = json.loads(path.read_text())
                sidecars.append((int(payload["submitted_seq"]), payload,
                                 child))
            except (OSError, ValueError, KeyError, TypeError):
                print(f"repro serve: skipping unreadable sidecar {path}",
                      file=sys.stderr)
        recovered = 0
        for _seq, payload, child in sorted(sidecars, key=lambda t: t[0]):
            try:
                manifest = CampaignManifest.load(child)
            except ManifestError as err:
                print(f"repro serve: skipping {child}: {err}",
                      file=sys.stderr)
                continue
            cid = manifest.header["campaign_id"]
            if cid != payload.get("campaign_id") or cid in self.campaigns:
                continue
            entry = CampaignEntry(
                id=cid,
                tenant=str(payload.get("tenant", "default")),
                root=child, manifest=manifest,
                meta=dict(payload.get("meta", {})),
                submitted_seq=next(self._submit_seq))
            self.campaigns[cid] = entry
            self._refresh_state(entry, manifest_status(manifest))
            if entry.state not in ("complete", "failed"):
                try:
                    self.queue.submit(entry.tenant, cid)
                except QueueFullError:
                    entry.state = "idle"  # over-full root: drain later
                else:
                    recovered += 1
        if recovered:
            print(f"repro serve: re-admitted {recovered} unfinished "
                  f"campaign(s) from {self.manifest_root}", flush=True)

    # -- drain ---------------------------------------------------------------

    async def _drain_loop(self) -> None:
        assert self._wake is not None
        while not self._closing:
            cid = None if self._paused else self.queue.pop_next()
            if cid is None:
                self._wake.clear()
                await self._wake.wait()
                continue
            entry = self.campaigns.get(cid)
            if entry is None:
                continue
            await self._run_campaign(entry)

    async def _run_campaign(self, entry: CampaignEntry) -> None:
        entry.state = "running"
        entry.started_seq = next(self._start_seq)
        try:
            entry.drain = await asyncio.to_thread(self._drain_entry, entry)
        except Exception as err:  # noqa: BLE001 — one bad campaign must
            # not take the drain loop (and every other tenant) down
            entry.state = "failed"
            entry.error = f"{type(err).__name__}: {err}"
            traceback.print_exc()
            return
        status = await asyncio.to_thread(manifest_status, entry.manifest)
        self._refresh_state(entry, status)

    def _drain_entry(self, entry: CampaignEntry) -> dict:
        """Blocking: drive one campaign with the in-service worker pool
        (runs in a thread; all workers share the campaign's manifest and
        trace store through the ordinary lease protocol)."""
        threads = max(1, self.drain_workers)
        host = socket.gethostname()
        workers = [
            CampaignWorker(entry.manifest,
                           worker_id=f"serve-{host}-{os.getpid()}-{i}",
                           lease_ttl=self.lease_ttl)
            for i in range(threads)
        ]
        if threads == 1:
            return workers[0].run().as_dict()
        stats = [None] * threads
        runners = [threading.Thread(target=lambda i=i: stats.__setitem__(
            i, workers[i].run()), daemon=True) for i in range(threads)]
        for runner in runners:
            runner.start()
        for runner in runners:
            runner.join()
        total = {"worker": f"serve-{host}-{os.getpid()}",
                 "executed": 0, "skipped": 0, "failed": 0, "batches": 0}
        for stat in stats:
            if stat is None:
                continue
            for field_name in ("executed", "skipped", "failed", "batches"):
                total[field_name] += getattr(stat, field_name)
        return total

    @staticmethod
    def _refresh_state(entry: CampaignEntry, status: dict) -> None:
        """Fold live manifest truth back into the service state."""
        states = status["states"]
        if status["complete"]:
            entry.state = "complete"
        elif states["failed"] and not states["pending"] \
                and not states["leased"]:
            entry.state = "failed"
        elif entry.state not in ("queued", "running"):
            entry.state = "idle"

    # -- campaign resolution -------------------------------------------------

    def _resolve(self, cid: str) -> CampaignEntry:
        """Full campaign id, or any unique prefix of ≥ 8 chars."""
        entry = self.campaigns.get(cid)
        if entry is not None:
            return entry
        if len(cid) >= 8:
            hits = [e for key, e in self.campaigns.items()
                    if key.startswith(cid)]
            if len(hits) == 1:
                return hits[0]
            if len(hits) > 1:
                raise ApiError(409, f"campaign id prefix {cid!r} is "
                                    f"ambiguous ({len(hits)} matches)")
        raise ApiError(404, f"no campaign {cid!r}")

    def _record_sources(self) -> list[RunCache]:
        sources = [] if self.extra_cache is None else [self.extra_cache]
        sources.extend(
            entry.manifest.cache
            for entry in sorted(self.campaigns.values(),
                                key=lambda e: e.submitted_seq))
        return sources

    # -- handlers (return (status, payload-or-bytes, headers)) ---------------

    async def health(self, request: Request, params: dict) -> tuple:
        return 200, {
            "ok": True,
            "schema": CACHE_SCHEMA_VERSION,
            "campaigns": len(self.campaigns),
            "queue": {"depth": len(self.queue),
                      "limit": self.queue.limit,
                      "admitted": self.queue.admitted,
                      "refused": self.queue.refused},
            "drain_workers": self.drain_workers,
            "paused": self._paused,
        }, {}

    async def list_campaigns(self, request: Request, params: dict) -> tuple:
        def build() -> list[dict]:
            out = []
            for entry in sorted(self.campaigns.values(),
                                key=lambda e: e.submitted_seq):
                summary = entry.summary()
                counts = {"pending": 0, "leased": 0, "done": 0,
                          "failed": 0}
                for state in entry.manifest.job_states().values():
                    counts[state] += 1
                summary["states"] = counts
                out.append(summary)
            return out

        return 200, {"campaigns": await asyncio.to_thread(build)}, {}

    async def submit_campaign(self, request: Request, params: dict) -> tuple:
        try:
            desc = json.loads(request.body or b"null")
        except ValueError as err:
            raise WireError(f"request body is not valid JSON: {err}") \
                from None
        if not isinstance(desc, dict):
            raise WireError("campaign description must be a JSON object")
        tenant = wire.tenant_of(desc)

        grid, meta = await asyncio.to_thread(wire.build_grid, desc)
        from repro.harness.manifest import campaign_id
        keys = [spec.key() for spec in grid]
        cid = campaign_id(keys)

        existing = self.campaigns.get(cid)
        if existing is not None:
            # idempotent resubmission: same grid → same campaign
            return 200, {"campaign": cid, "created": False,
                         "service": existing.summary()}, {}
        if len(self.queue) >= self.queue.limit:
            self.queue.refused += 1
            raise ApiError(
                429, f"admission queue is full "
                     f"({self.queue.limit} pending campaigns)",
                headers={"Retry-After": "5"})

        root = self._campaign_dir(cid)
        try:
            manifest = await asyncio.to_thread(
                CampaignManifest.create, root, grid,
                meta.get("kind", ""), meta.get("scheme", ""),
                meta.get("scale", ""), meta.get("benchmarks", ()))
        except ManifestError as err:
            raise ApiError(409, str(err)) from None
        entry = CampaignEntry(
            id=cid, tenant=tenant, root=root, manifest=manifest,
            meta=meta, submitted_seq=next(self._submit_seq))
        names = meta.get("benchmarks")
        await asyncio.to_thread(
            self._write_sidecar, entry,
            wire.normalise_description(desc, names))
        self.campaigns[cid] = entry
        status = await asyncio.to_thread(manifest_status, manifest)
        self._refresh_state(entry, status)
        if entry.state not in ("complete", "failed"):
            try:
                self.queue.submit(tenant, cid)
            except QueueFullError as err:
                # materialised but over the bound (raced another submit):
                # leave it on disk unqueued; resubmission re-admits it
                del self.campaigns[cid]
                raise ApiError(429, str(err),
                               headers={"Retry-After": "5"}) from None
            if self._wake is not None:
                self._wake.set()
        return 201, {"campaign": cid, "created": True,
                     "jobs": len(manifest.unique),
                     "slots": len(manifest.slots),
                     "status_url": f"/campaigns/{cid}/status",
                     "service": entry.summary()}, {}

    async def campaign_status(self, request: Request, params: dict) -> tuple:
        entry = self._resolve(params["id"])
        status = await asyncio.to_thread(manifest_status, entry.manifest)
        self._refresh_state(entry, status)
        return 200, wire.campaign_payload(entry.summary(), status), {}

    async def campaign_records(self, request: Request,
                               params: dict) -> tuple:
        entry = self._resolve(params["id"])
        states = await asyncio.to_thread(entry.manifest.job_states)
        records = [
            {"slot": i, "key": key, "state": states[key],
             "url": f"/records/{key}"}
            for i, key in enumerate(entry.manifest.keys)
        ]
        return 200, {"campaign": entry.id, "records": records}, {}

    async def advertise_worker(self, request: Request,
                               params: dict) -> tuple:
        entry = self._resolve(params["id"])
        entry.workers_advertised += 1
        path = str(entry.root.resolve())
        return 201, {
            "campaign": entry.id,
            "manifest": path,
            # the exact attach command; the lease protocol is unchanged,
            # so any campaign-worker (any host sharing the root) works
            "argv": [sys.executable or "python", "-m", "repro",
                     "campaign-worker", "--manifest", path],
            "lease_ttl": self.lease_ttl,
            "workers_advertised": entry.workers_advertised,
        }, {}

    async def get_record(self, request: Request, params: dict) -> tuple:
        key = params["key"]
        if not wire.is_record_key(key):
            raise ApiError(404, f"{key!r} is not a record key "
                                f"(64 hex chars expected)")
        etag = RunCache.etag(key)

        def lookup() -> bytes | None:
            for cache in self._record_sources():
                data = cache.read_envelope(key)
                if data is not None:
                    return data
            return None

        envelope = await asyncio.to_thread(lookup)
        if envelope is None:
            raise ApiError(404, f"no record {key[:12]}… in any campaign "
                                f"cache")
        headers = {
            "ETag": etag,
            # content-addressed: the bytes behind a key can never change
            "Cache-Control": "max-age=31536000, immutable",
        }
        if wire.match_etag(request.header("if-none-match"), etag):
            return 304, b"", headers
        return 200, envelope, headers

    # -- events (SSE) --------------------------------------------------------

    async def campaign_events(self, request: Request,
                              params: dict) -> AsyncIterator[bytes]:
        """Server-sent progress: one ``data:`` frame per status change,
        a terminal ``event: complete``/``event: failed`` frame when the
        campaign settles, ``event: timeout`` when the window closes."""
        entry = self._resolve(params["id"])
        try:
            interval = float(request.param("interval", "") or
                             self.poll_interval)
            timeout = float(request.param("timeout", "60"))
        except ValueError:
            raise WireError("'interval' and 'timeout' must be numbers") \
                from None
        interval = min(max(interval, 0.02), 10.0)
        timeout = min(max(timeout, interval), 3600.0)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        last: str | None = None
        while True:
            status = await asyncio.to_thread(manifest_status,
                                             entry.manifest)
            self._refresh_state(entry, status)
            frame = canonical_json({
                "campaign": entry.id,
                "state": entry.state,
                "states": status["states"],
                "complete": status["complete"],
                "failures": len(status["failures"]),
            })
            if frame != last:
                yield f"data: {frame}\n\n".encode()
                last = frame
            if entry.state in ("complete", "failed"):
                yield (f"event: {entry.state}\ndata: {frame}\n\n"
                       .encode())
                return
            if loop.time() + interval > deadline:
                yield f"event: timeout\ndata: {frame}\n\n".encode()
                return
            await asyncio.sleep(interval)

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/response
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 — a handler bug must not kill
            # the accept loop; the 500 path below reports per-request
            traceback.print_exc()
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        request = await self._read_request(reader, writer)
        if request is None:
            return
        try:
            matched = routes.match(request.method, request.path)
        except routes.MethodNotAllowed as err:
            self._write_response(
                writer, 405, wire.error_body(str(err)),
                headers={"Allow": ", ".join(err.allowed)})
            return
        if matched is None:
            self._write_response(
                writer, 404,
                wire.error_body(f"no route {request.method} "
                                f"{request.path}"))
            return
        name, params = matched
        handler = getattr(self, name)
        try:
            if name in routes.STREAMING_HANDLERS:
                await self._stream(writer, handler(request, params))
                return
            status, payload, headers = await handler(request, params)
        except WireError as err:
            status, payload, headers = err.status, wire.error_body(
                str(err)), {}
        except ApiError as err:
            status, payload, headers = err.status, wire.error_body(
                err.message), err.headers
        except Exception as err:  # noqa: BLE001 — surface, don't crash
            traceback.print_exc()
            status, payload, headers = 500, wire.error_body(
                f"internal error: {type(err).__name__}"), {}
        self._write_response(writer, status, payload, headers=headers)
        await writer.drain()

    async def _stream(self, writer: asyncio.StreamWriter,
                      frames: AsyncIterator[bytes]) -> None:
        try:
            first = await frames.__anext__()
        except StopAsyncIteration:
            first = b""
        except WireError as err:
            self._write_response(writer, err.status,
                                 wire.error_body(str(err)))
            return
        except ApiError as err:
            self._write_response(writer, err.status,
                                 wire.error_body(err.message),
                                 headers=err.headers)
            return
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode())
        writer.write(first)
        await writer.drain()
        async for frame in frames:
            writer.write(frame)
            await writer.drain()

    async def _read_request(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter
                            ) -> Request | None:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            self._write_response(writer, 400,
                                 wire.error_body("malformed request line"))
            return None
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            self._write_response(writer, 400,
                                 wire.error_body("too many headers"))
            return None
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            self._write_response(writer, 400,
                                 wire.error_body("request body too large"))
            return None
        body = await reader.readexactly(length) if length else b""
        path, _sep, query = target.partition("?")
        return Request(method=method.upper(), path=path,
                       query=parse_qs(query), headers=headers, body=body)

    @staticmethod
    def _write_response(writer: asyncio.StreamWriter, status: int,
                        payload: dict | bytes,
                        headers: dict[str, str] | None = None,
                        content_type: str = "application/json") -> None:
        body = (payload if isinstance(payload, (bytes, bytearray))
                else canonical_json(payload).encode())
        if status == 304:
            body = b""
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                 f"Content-Type: {content_type}",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode())
        if body:
            writer.write(bytes(body))
