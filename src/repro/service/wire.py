"""JSON wire schemas of the campaign service.

Everything that crosses the HTTP boundary is validated here, away from
socket handling: the declarative campaign description accepted by
``POST /campaigns``, the error envelope, and the grid construction that
turns a description into :class:`~repro.harness.campaign.JobSpec`s.

The one rule that matters: :func:`build_grid` is the *same* constructor
the CLI's ``campaign`` verb uses (``repro.__main__`` delegates to it),
so a grid submitted over HTTP and the grid named by the equivalent CLI
invocation contain identical jobs with identical cache keys — the
byte-identity contract extends across the wire by construction.

A description is a JSON object with either

* a **declarative grid**: ``kind`` (one of the engine's job kinds),
  ``benchmarks`` (list of suite names, or ``"all"``), ``scheme``,
  ``trials``, ``scale``, ``seed``, ``timing`` (``cycle``/``interval``,
  fault grids only), and ``batch_size`` (fault-batch only) — mirroring
  the ``campaign`` CLI flags one for one; or
* **explicit jobs**: ``jobs``, a list of canonical
  :meth:`~repro.harness.campaign.JobSpec.describe` dicts, reconstructed
  through the same :func:`~repro.harness.manifest.spec_from_description`
  path manifest workers use.

Both forms may carry ``tenant`` (admission fairness group; defaults to
``"default"``).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.timing import TIMING_MODES
from repro.harness.campaign import JOB_KINDS, CampaignGrid

#: Validation bounds: generous next to any real sweep, small enough
#: that a fat-fingered submission cannot wedge the service building a
#: billion-job grid.
MAX_TRIALS = 100_000
MAX_BATCH_SIZE = 10_000
MAX_EXPLICIT_JOBS = 1_000_000

SCALES = ("small", "default")

#: Tenant names are path-safe tokens (they appear in logs and queues).
MAX_TENANT_LEN = 64


class WireError(ValueError):
    """A malformed or unacceptable wire payload (HTTP 400)."""

    status = 400


class ApiError(Exception):
    """A request failure with an explicit HTTP status (404, 409, 429…)."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


def error_body(message: str) -> dict:
    """The uniform error envelope every non-2xx response carries."""
    return {"error": message}


def _require_int(desc: dict, field: str, default: int,
                 lo: int, hi: int) -> int:
    value = desc.get(field, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(f"{field!r} must be an integer, "
                        f"got {type(value).__name__}")
    if not lo <= value <= hi:
        raise WireError(f"{field!r} must be in [{lo}, {hi}], got {value}")
    return value


def tenant_of(desc: dict) -> str:
    """The validated admission tenant named by a description."""
    tenant = desc.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise WireError("'tenant' must be a non-empty string")
    if len(tenant) > MAX_TENANT_LEN:
        raise WireError(f"'tenant' longer than {MAX_TENANT_LEN} chars")
    if not all(c.isalnum() or c in "-_." for c in tenant):
        raise WireError("'tenant' may only contain alphanumerics, "
                        "'-', '_', and '.'")
    return tenant


def _benchmark_names(desc: dict) -> list[str]:
    from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS

    names = desc.get("benchmarks", "all")
    if isinstance(names, str):
        if names == "all":
            return list(BENCHMARK_ORDER)
        names = [part for part in names.split(",") if part]
    if (not isinstance(names, list) or not names
            or not all(isinstance(n, str) for n in names)):
        raise WireError("'benchmarks' must be a non-empty list of suite "
                        "names, a comma-separated string, or 'all'")
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise WireError(f"unknown benchmark(s): {', '.join(unknown)}")
    return names


def _explicit_grid(jobs: object) -> tuple[CampaignGrid, dict]:
    from repro.harness.manifest import spec_from_description

    if not isinstance(jobs, list) or not jobs:
        raise WireError("'jobs' must be a non-empty list of canonical "
                        "job descriptions")
    if len(jobs) > MAX_EXPLICIT_JOBS:
        raise WireError(f"'jobs' lists {len(jobs)} jobs; the service "
                        f"accepts at most {MAX_EXPLICIT_JOBS}")
    config_memo: dict = {}
    specs = []
    for i, entry in enumerate(jobs):
        try:
            specs.append(spec_from_description(entry, config_memo))
        except (KeyError, TypeError, ValueError, AttributeError) as err:
            raise WireError(
                f"jobs[{i}] is not a canonical job description: "
                f"{type(err).__name__}: {err}") from None
    kinds = {spec.kind for spec in specs}
    schemes = {spec.scheme for spec in specs}
    scales = {spec.scale for spec in specs}
    meta = {
        "kind": kinds.pop() if len(kinds) == 1 else "",
        "scheme": schemes.pop() if len(schemes) == 1 else "",
        "scale": scales.pop() if len(scales) == 1 else "",
        "benchmarks": sorted({spec.benchmark for spec in specs}),
    }
    return CampaignGrid(tuple(specs)), meta


def build_grid(desc: dict) -> tuple[CampaignGrid, dict]:
    """A validated description → ``(grid, meta)``.

    ``meta`` carries the normalised kind/scheme/scale/benchmarks used
    for the manifest header and summaries.  Raises :class:`WireError`
    (a ``ValueError``) on anything malformed, so CLI callers can catch
    ``ValueError`` exactly as they do for grid-builder errors.
    """
    from repro.common.config import default_config
    from repro.harness.campaign import (
        detection_grid, fault_batch_grid, fault_grid, recovery_grid,
        scheme_grid)
    from repro.schemes import scheme_names

    if not isinstance(desc, dict):
        raise WireError("campaign description must be a JSON object")
    if "jobs" in desc:
        return _explicit_grid(desc["jobs"])

    kind = desc.get("kind", "fault")
    if kind not in JOB_KINDS:
        raise WireError(f"unknown job kind {kind!r}; "
                        f"one of {list(JOB_KINDS)} expected")
    scheme = desc.get("scheme", "detection")
    if scheme not in scheme_names():
        raise WireError(f"unknown scheme {scheme!r}; "
                        f"one of {list(scheme_names())} expected")
    scale = desc.get("scale", "small")
    if scale not in SCALES:
        raise WireError(f"'scale' must be one of {list(SCALES)}, "
                        f"got {scale!r}")
    names = _benchmark_names(desc)
    trials = _require_int(desc, "trials", 30, 1, MAX_TRIALS)
    seed = _require_int(desc, "seed", 0, -(2 ** 63), 2 ** 63 - 1)
    batch_size = _require_int(desc, "batch_size", 50, 1, MAX_BATCH_SIZE)
    timing = desc.get("timing", "cycle")
    if timing not in TIMING_MODES:
        raise WireError(f"'timing' must be one of {list(TIMING_MODES)}, "
                        f"got {timing!r}")
    if timing != "cycle" and kind not in ("fault", "fault-batch"):
        raise WireError(f"'timing': {timing!r} applies to fault grids "
                        f"only; kind {kind!r} always uses the cycle model")
    if kind == "fault-batch":
        from repro.schemes import get_scheme
        if not get_scheme(scheme).supports_fault_batch:
            raise WireError(
                f"scheme {scheme!r} does not support fault-batch jobs")

    if kind == "fault":
        grid = fault_grid(names, trials=trials, scale=scale, seed=seed,
                          scheme=scheme, timing=timing)
    elif kind == "fault-batch":
        grid = fault_batch_grid(names, trials=trials,
                                batch_size=batch_size, scale=scale,
                                seed=seed, scheme=scheme, timing=timing)
    elif kind == "recovery":
        grid = recovery_grid(names, trials=trials, scale=scale, seed=seed,
                             scheme=scheme)
    elif kind == "baseline":
        grid = scheme_grid(names, [scheme], scale=scale)
    else:  # detection: the paper scheme's rich fault-free runs
        grid = detection_grid(names, [default_config()], scale=scale,
                              include_baselines=False, scheme=scheme)
    meta = {"kind": kind, "scheme": scheme, "scale": scale,
            "benchmarks": names}
    return grid, meta


def campaign_payload(entry_summary: dict, status: dict | None = None) -> dict:
    """The campaign resource representation shared by list/submit/status
    responses: service bookkeeping under ``service``, live manifest
    truth at the top level when requested."""
    payload = dict(status) if status is not None else {}
    payload["service"] = entry_summary
    return payload


def is_record_key(text: str) -> bool:
    """Whether ``text`` is shaped like a content key (64 hex chars)."""
    if len(text) != 64:
        return False
    try:
        int(text, 16)
        return True
    except ValueError:
        return False


def match_etag(if_none_match: str | None, etag: str) -> bool:
    """RFC-7232 ``If-None-Match`` evaluation against one strong ETag."""
    if not if_none_match:
        return False
    if if_none_match.strip() == "*":
        return True
    candidates = [part.strip() for part in if_none_match.split(",")]
    # weak validators compare equal under the weak comparison the
    # 304-on-GET path uses
    return any(c == etag or c == f"W/{etag}" for c in candidates)


def normalise_description(desc: dict,
                          names: Sequence[str] | None = None) -> dict:
    """The canonical, defaulted form of a declarative description — what
    the service persists in its sidecar so a restart re-materialises the
    identical grid."""
    if "jobs" in desc:
        return {"jobs": desc["jobs"]}
    return {
        "kind": desc.get("kind", "fault"),
        "scheme": desc.get("scheme", "detection"),
        "scale": desc.get("scale", "small"),
        "benchmarks": list(names) if names is not None
        else desc.get("benchmarks", "all"),
        "trials": desc.get("trials", 30),
        "seed": desc.get("seed", 0),
        "batch_size": desc.get("batch_size", 50),
        "timing": desc.get("timing", "cycle"),
    }
