"""repro.service — the resident campaign-service control plane.

A stdlib-only asyncio HTTP layer over the existing manifest /
orchestrator / cache stack: declarative campaign submission, shared
one-pass status, SSE progress events, content-addressed record serving
with ETags, and worker advertisement — no new execution semantics.
Start it with ``python -m repro serve --manifest-root DIR``.
"""

from repro.service.admission import AdmissionQueue, QueueFullError
from repro.service.server import CampaignService
from repro.service.wire import ApiError, WireError, build_grid

__all__ = [
    "AdmissionQueue",
    "ApiError",
    "CampaignService",
    "QueueFullError",
    "WireError",
    "build_grid",
]
