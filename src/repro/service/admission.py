"""Multi-tenant admission: bounded queueing with per-tenant fairness.

The service admits campaigns into one :class:`AdmissionQueue` and drains
them one at a time (the drain pool's worker threads all cooperate on the
*current* campaign through the ordinary lease protocol — concurrency
across campaigns comes from external ``campaign-worker`` processes, so
the process-wide golden-trace store is never shared between campaigns).

Fairness is round-robin **across tenants**, FIFO **within a tenant**: a
tenant that floods the queue with a hundred campaigns still only gets
one turn per cycle, so a second tenant's single submission starts after
at most one campaign, not a hundred.  The queue is bounded; a submission
that would exceed the bound is refused (:class:`QueueFullError` → HTTP
429 with ``Retry-After``), which is the service's explicit backpressure
signal — clients retry, nothing is silently dropped or buffered without
bound.

The structure is intentionally not thread-safe: every mutation happens
on the service's event loop (submissions in request handlers, pops in
the drain task).  Blocking work — the campaign execution itself — is
pushed to threads *after* the pop.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator


class QueueFullError(RuntimeError):
    """The bounded admission queue cannot accept another campaign."""

    def __init__(self, limit: int) -> None:
        super().__init__(
            f"admission queue is full ({limit} pending campaigns); "
            f"retry after one drains")
        self.limit = limit


class AdmissionQueue:
    """Bounded FIFO-per-tenant, round-robin-across-tenants queue.

    Invariant: a tenant appears in the round-robin ring exactly when it
    has pending items, and at most once.  Serving a tenant moves it to
    the back of the ring, so ``pop_next`` interleaves tenants no matter
    how unbalanced their backlogs are.
    """

    def __init__(self, limit: int = 64) -> None:
        self.limit = max(1, int(limit))
        self._queues: dict[str, deque[str]] = {}
        self._ring: deque[str] = deque()
        #: total admissions/refusals, for the health endpoint
        self.admitted = 0
        self.refused = 0

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def __contains__(self, item: str) -> bool:
        return any(item in q for q in self._queues.values())

    def submit(self, tenant: str, item: str) -> None:
        """Admit ``item`` for ``tenant`` or raise :class:`QueueFullError`."""
        if len(self) >= self.limit:
            self.refused += 1
            raise QueueFullError(self.limit)
        queue = self._queues.setdefault(tenant, deque())
        queue.append(item)
        if len(queue) == 1:
            self._ring.append(tenant)
        self.admitted += 1

    def pop_next(self) -> str | None:
        """The next item under round-robin fairness, or None if empty."""
        if not self._ring:
            return None
        tenant = self._ring.popleft()
        queue = self._queues[tenant]
        item = queue.popleft()
        if queue:
            self._ring.append(tenant)
        else:
            del self._queues[tenant]
        return item

    def drop(self, item: str) -> bool:
        """Remove a pending item (a campaign cancelled or completed by
        external workers before its turn); returns whether it was found."""
        for tenant, queue in list(self._queues.items()):
            if item in queue:
                queue.remove(item)
                if not queue:
                    del self._queues[tenant]
                    self._ring.remove(tenant)
                return True
        return False

    def pending(self) -> dict[str, list[str]]:
        """Snapshot of pending items per tenant (for status payloads)."""
        return {tenant: list(queue)
                for tenant, queue in self._queues.items()}

    def tenants(self) -> Iterator[str]:
        """Tenants currently holding pending work, in ring order."""
        return iter(self._ring)
