"""Command-line interface: ``python -m repro <command>``.

Commands:

``figures [NAME ...]``
    Regenerate paper tables/figures (default: all).  Names: table1,
    table2, fig1, fig7, fig8, fig9, fig10, fig11, fig12, fig13, area,
    power.
``campaign [--benchmark NAME] [--trials N]``
    Run a fault-injection coverage campaign.
``bench NAME [--scale small|default]``
    Run one Table II benchmark under detection and print its summary.
``list``
    List available benchmarks.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import figures as fig_mod
from repro.harness.experiment import ExperimentRunner

FIGURE_COMMANDS = {
    "table1": lambda runner: fig_mod.table1(),
    "table2": lambda runner: fig_mod.table2(),
    "fig1": fig_mod.fig1_comparison,
    "fig7": fig_mod.fig7,
    "fig8": fig_mod.fig8,
    "fig9": fig_mod.fig9,
    "fig10": fig_mod.fig10,
    "fig11": fig_mod.fig11,
    "fig12": fig_mod.fig12,
    "fig13": fig_mod.fig13,
    "area": lambda runner: fig_mod.sec6b_area(),
    "power": lambda runner: fig_mod.sec6c_power(),
}


def cmd_figures(args: argparse.Namespace) -> int:
    names = args.names or list(FIGURE_COMMANDS)
    unknown = [n for n in names if n not in FIGURE_COMMANDS]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(FIGURE_COMMANDS)}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(scale=args.scale)
    for name in names:
        text, _data = FIGURE_COMMANDS[name](runner)
        print(text)
        print()
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.common.config import default_config
    from repro.common.rng import derive
    from repro.detection.faults import FaultInjector, FaultSite, TransientFault
    from repro.detection.system import run_with_detection
    from repro.isa.executor import execute_program
    from repro.workloads.suite import build_benchmark

    sites = [FaultSite.RESULT, FaultSite.LOAD_VALUE, FaultSite.LOAD_ADDR,
             FaultSite.STORE_VALUE, FaultSite.STORE_ADDR, FaultSite.BRANCH]
    config = default_config()
    program = build_benchmark(args.benchmark, "small")
    clean = execute_program(program)
    rng = derive(args.seed, "cli-campaign")
    activated = detected = 0
    for _ in range(args.trials):
        site = rng.choice(sites)
        fault = TransientFault(site, seq=rng.randrange(5, len(clean) - 5),
                               bit=rng.randrange(0, 48))
        injector = FaultInjector([fault])
        trace = execute_program(program, fault_injector=injector)
        if not injector.activations:
            continue
        activated += 1
        if run_with_detection(trace, config).report.detected:
            detected += 1
    print(f"campaign over {args.benchmark}: {args.trials} trials, "
          f"{activated} activated, {detected} detected "
          f"({100 * detected / max(1, activated):.1f}% of activated)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(scale=args.scale)
    summary = runner.summary(args.name)
    report = runner.detection(args.name).report
    print(f"benchmark: {args.name} ({args.scale})")
    print(f"  slowdown:         {summary.slowdown:.4f}")
    print(f"  mean delay:       {summary.mean_delay_ns:.0f} ns")
    print(f"  max delay:        {summary.max_delay_ns:.0f} ns")
    print(f"  segments checked: {report.segments_checked}")
    closes = {k: v for k, v in report.closes_by_reason.items() if v}
    print(f"  closes:           {closes}")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS
    for name in BENCHMARK_ORDER:
        spec = BENCHMARKS[name]
        print(f"{name:<14} {spec.source:<8} {spec.character}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    """One-line summary per benchmark: slowdown + delay statistics."""
    from repro.workloads.suite import BENCHMARK_ORDER
    runner = ExperimentRunner(scale=args.scale)
    print(f"{'benchmark':<14}{'slowdown':>10}{'mean delay':>12}"
          f"{'max delay':>12}{'segments':>10}")
    for name in BENCHMARK_ORDER:
        summary = runner.summary(name)
        report = runner.detection(name).report
        print(f"{name:<14}{summary.slowdown:>10.4f}"
              f"{summary.mean_delay_ns:>10.0f}ns"
              f"{summary.max_delay_ns:>10.0f}ns"
              f"{report.segments_checked:>10}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Parallel Error Detection Using "
                    "Heterogeneous Cores' (DSN 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate paper tables/figures")
    p_fig.add_argument("names", nargs="*",
                       help=f"which ({', '.join(FIGURE_COMMANDS)})")
    p_fig.add_argument("--scale", default="small",
                       choices=["small", "default"])
    p_fig.set_defaults(func=cmd_figures)

    p_camp = sub.add_parser("campaign", help="fault-injection campaign")
    p_camp.add_argument("--benchmark", default="bodytrack")
    p_camp.add_argument("--trials", type=int, default=30)
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.set_defaults(func=cmd_campaign)

    p_bench = sub.add_parser("bench", help="run one benchmark")
    p_bench.add_argument("name")
    p_bench.add_argument("--scale", default="small",
                         choices=["small", "default"])
    p_bench.set_defaults(func=cmd_bench)

    p_list = sub.add_parser("list", help="list benchmarks")
    p_list.set_defaults(func=cmd_list)

    p_suite = sub.add_parser("suite", help="summary over all benchmarks")
    p_suite.add_argument("--scale", default="small",
                         choices=["small", "default"])
    p_suite.set_defaults(func=cmd_suite)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
