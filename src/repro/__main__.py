"""Command-line interface: ``python -m repro <command>``.

Commands:

``figures [NAME ...]``
    Regenerate paper tables/figures (default: all).  Names: table1,
    table2, fig1, fig7, fig8, fig9, fig10, fig11, fig12, fig13, area,
    power.  ``--workers``/``--cache-dir`` parallelise and cache the
    underlying runs through the campaign engine.
``campaign [--kind baseline|detection|fault|fault-batch|recovery]
[--scheme NAME] [--benchmark NAMES] [--trials N] [--batch-size N]
[--timing cycle|interval] [--workers N] [--cache-dir DIR] [--shard K/N]
[--manifest DIR] [--json]``
    Run a campaign grid through the parallel engine under any registered
    protection scheme (``unprotected``, ``lockstep``, ``rmt``,
    ``detection``).  Identical grids are incremental: a warm cache
    directory replays every job with zero re-executions.  With
    ``--manifest DIR`` the grid is materialised as an on-disk manifest
    and driven by work-stealing workers instead of static sharding —
    other hosts can join the same run with ``campaign-worker``.
``campaign-worker --manifest DIR [--lease-ttl S] [--batch N]
[--max-attempts N] [--retry-failed]``
    Join an existing manifest as one work-stealing worker: lease pending
    jobs, execute them, write results into the shared cache, exit when
    nothing is leasable.  Safe to run any number of these concurrently.
    ``--max-attempts N`` re-leases failed jobs automatically until their
    failure envelope records N attempts (default 1: manual retry only).
``campaign-status --manifest DIR [--json] [--watch SECONDS]``
    Progress of a manifest campaign: per-state counts, per-scheme and
    per-kind progress, failure summaries.  ``--watch`` refreshes the
    (one-pass) summary periodically until the campaign settles.
``serve --manifest-root DIR [--cache-dir DIR] [--host H] [--port N]
[--queue-limit N] [--drain-workers N] [--lease-ttl S]``
    Run the resident campaign service: an HTTP control plane over the
    manifest layer.  ``POST /campaigns`` submits declarative grids,
    ``GET /campaigns/{id}/status`` and ``/events`` report progress,
    ``GET /records/{key}`` serves content-addressed result envelopes
    with ETags, and ``POST /campaigns/{id}/workers`` advertises the
    manifest path so external ``campaign-worker`` processes can attach.
``bench NAME [--scale small|default]``
    Run one Table II benchmark under detection and print its summary.
``list [--schemes]``
    List available benchmarks, or the registered protection schemes and
    their capability flags.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import figures as fig_mod
from repro.harness.campaign import JOB_KINDS
from repro.harness.experiment import ExperimentRunner
from repro.schemes import scheme_names

FIGURE_COMMANDS = {
    "table1": lambda runner: fig_mod.table1(),
    "table2": lambda runner: fig_mod.table2(),
    "fig1": fig_mod.fig1_comparison,
    "fig7": fig_mod.fig7,
    "fig8": fig_mod.fig8,
    "fig9": fig_mod.fig9,
    "fig10": fig_mod.fig10,
    "fig11": fig_mod.fig11,
    "fig12": fig_mod.fig12,
    "fig13": fig_mod.fig13,
    "area": lambda runner: fig_mod.sec6b_area(),
    "power": lambda runner: fig_mod.sec6c_power(),
}


def cmd_figures(args: argparse.Namespace) -> int:
    names = args.names or list(FIGURE_COMMANDS)
    unknown = [n for n in names if n not in FIGURE_COMMANDS]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(FIGURE_COMMANDS)}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(scale=args.scale, workers=args.workers,
                              cache_dir=args.cache_dir)
    for name in names:
        text, _data = FIGURE_COMMANDS[name](runner)
        print(text)
        print()
    return 0


def _parse_shard(text: str) -> tuple[int, int]:
    """``K/N`` → (K, N); K counts from 0."""
    try:
        index_str, count_str = text.split("/", 1)
        index, count = int(index_str), int(count_str)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like K/N (e.g. 0/4), got {text!r}")
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 0 <= K < N, got {text!r}")
    return index, count


def _build_grid(args: argparse.Namespace, names: list[str]):
    """The campaign grid named by the CLI arguments.

    Delegates to the service's wire-level constructor so a grid named
    on the command line and the same grid submitted as JSON to a
    running ``repro serve`` contain identical jobs with identical cache
    keys — one constructor, two transports."""
    from repro.service.wire import build_grid

    grid, _meta = build_grid({
        "kind": args.kind, "scheme": args.scheme, "scale": args.scale,
        "benchmarks": names, "trials": args.trials, "seed": args.seed,
        "batch_size": args.batch_size, "timing": args.timing,
    })
    return grid


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.common.records import canonical_json
    from repro.harness.campaign import CampaignEngine
    from repro.harness.orchestrator import (
        manifest_status, run_campaign, summarize_result)
    from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS

    names = (list(BENCHMARK_ORDER) if args.benchmark == "all"
             else args.benchmark.split(","))
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.manifest is not None and args.shard is not None:
        print("--shard is the static fan-out path; a manifest distributes "
              "work by leases instead (drop one of the two)",
              file=sys.stderr)
        return 2
    if args.manifest is not None and args.cache_dir is not None:
        print("a manifest campaign always uses <manifest>/cache as its "
              "shared result store; --cache-dir would be silently ignored "
              "(drop one of the two)", file=sys.stderr)
        return 2
    if args.materialize_only and args.manifest is None:
        print("--materialize-only needs --manifest DIR (there is nothing "
              "to materialise otherwise)", file=sys.stderr)
        return 2

    # install the shared golden-trace store before grid construction:
    # fault/recovery grids need each benchmark's clean trace length, so a
    # warm store makes even grid building skip functional executions
    from pathlib import Path
    from repro.harness.campaign import TRACE_STORE_DIRNAME
    from repro.workloads.suite import configure_trace_store
    if args.manifest is not None:
        configure_trace_store(Path(args.manifest) / TRACE_STORE_DIRNAME)
    elif args.cache_dir is not None:
        configure_trace_store(Path(args.cache_dir) / TRACE_STORE_DIRNAME)

    try:
        grid = _build_grid(args, names)
    except ValueError as error:
        print(f"cannot build {args.kind} grid: {error}", file=sys.stderr)
        return 2

    status = None
    if args.manifest is not None:
        from repro.harness.manifest import CampaignManifest, ManifestError
        try:
            manifest = CampaignManifest.create(
                args.manifest, grid, kind=args.kind, scheme=args.scheme,
                scale=args.scale, benchmarks=names)
        except ManifestError as error:
            print(str(error), file=sys.stderr)
            return 2
        if args.materialize_only:
            status = manifest_status(manifest)
            if args.json:
                print(canonical_json(status))
            else:
                print(f"manifest {status['campaign_id'][:12]}… materialised "
                      f"at {args.manifest}: {status['jobs']} unique jobs "
                      f"({status['states']['done']} already done) — start "
                      f"workers with: python -m repro campaign-worker "
                      f"--manifest {args.manifest}")
            return 0
        result, stats = run_campaign(
            manifest, processes=args.workers, lease_ttl=args.lease_ttl)
        status = manifest_status(manifest)
        # worker-side progress (parent + children aggregated): the merge
        # pass itself is a cache replay and executes nothing
        status["executed_this_run"] = stats.executed
    else:
        if args.shard is not None:
            index, count = args.shard
            grid = grid.shard(index, count)
        engine = CampaignEngine(workers=args.workers,
                                cache_dir=args.cache_dir)
        result = engine.run(grid)

    # one aggregation pass feeds the JSON and human paths alike
    aggregated = summarize_result(args.kind, result, names)
    summary = {"kind": args.kind, "scheme": args.scheme,
               **aggregated.summary}
    escaped = aggregated.escaped
    failed = len(status["failures"]) if status is not None else 0

    if args.json:
        payload = {"summary": summary, "records": list(result.records)}
        if status is not None:
            payload["manifest"] = status
        print(canonical_json(payload))
        # same contract as the human-readable path: escapes are failures
        return 1 if escaped or failed else 0

    if status is not None:
        print(f"{args.kind} campaign [{args.scheme}] over "
              f"{', '.join(names)} ({args.scale}): {len(result)} jobs, "
              f"{status['executed_this_run']} executed by workers this run, "
              f"{status['states']['done']} of {status['jobs']} unique done")
        print(f"  manifest: {status['campaign_id'][:12]}… "
              f"({status['states']['failed']} failed, "
              f"{status['states']['pending']} pending)")
    else:
        print(f"{args.kind} campaign [{args.scheme}] over "
              f"{', '.join(names)} ({args.scale}): {len(result)} jobs, "
              f"{result.executed} executed, {result.cached} from cache")
    if args.kind in ("baseline", "detection"):
        if summary["mean_slowdown"] is not None:
            print(f"  mean slowdown:          "
                  f"{summary['mean_slowdown']:.4f}")
        if summary["mean_detection_latency_ns"] is not None:
            print(f"  mean detection latency: "
                  f"{summary['mean_detection_latency_ns']:.0f} ns")
        return 1 if failed else 0
    print(f"  activated: {summary['activated']}  "
          f"detected: {summary['detected']} "
          f"({100 * summary['detected'] / max(1, summary['activated']):.1f}% "
          f"of activated)")
    for outcome, count in sorted(summary["outcomes"].items()):
        print(f"  {outcome:<14} {count}")
    if summary["mean_detect_latency_us"] is not None:
        print(f"  mean detection latency: "
              f"{summary['mean_detect_latency_us']:.2f} us")
    if escaped:
        print(f"WARNING: {escaped} fault(s) escaped detection (SDC)!")
    return 1 if escaped or failed else 0


def cmd_campaign_worker(args: argparse.Namespace) -> int:
    from repro.common.records import canonical_json
    from repro.harness.manifest import CampaignManifest, ManifestError
    from repro.harness.orchestrator import CampaignWorker

    try:
        manifest = CampaignManifest.load(args.manifest)
    except ManifestError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.retry_failed:
        cleared = manifest.clear_failures()
        if cleared and not args.json:
            print(f"re-queued {cleared} failed job(s)")
    worker = CampaignWorker(manifest, worker_id=args.worker_id,
                            lease_ttl=args.lease_ttl,
                            batch_size=args.batch,
                            max_attempts=args.max_attempts)
    stats = worker.run(max_jobs=args.max_jobs)
    if args.json:
        print(canonical_json(stats.as_dict()))
    else:
        print(f"worker {stats.worker}: {stats.executed} executed, "
              f"{stats.skipped} already done, {stats.failed} failed "
              f"({stats.batches} lease batches)")
    return 1 if stats.failed else 0


def _print_status(status: dict) -> None:
    states = status["states"]
    print(f"campaign {status['campaign_id'][:12]}… "
          f"[{status['kind']}/{status['scheme']}] "
          f"over {', '.join(status['benchmarks'])} ({status['scale']})")
    print(f"  jobs: {status['jobs']} unique ({status['slots']} slots)  "
          f"done {states['done']}  pending {states['pending']}  "
          f"leased {states['leased']}  failed {states['failed']}")
    for axis, groups in (("scheme", status["by_scheme"]),
                         ("kind", status["by_kind"])):
        for label, group in sorted(groups.items()):
            print(f"  {axis} {label:<12} {group['done']}/{group['jobs']} "
                  f"done" + (f", {group['failed']} failed"
                             if group["failed"] else ""))
    for failure in status["failures"]:
        print(f"  FAILED {failure['key'][:12]}… "
              f"(worker {failure['worker']}, attempt {failure['attempt']}): "
              f"{failure['error']}")
    print("complete" if status["complete"] else "in progress")


def cmd_campaign_status(args: argparse.Namespace) -> int:
    import time

    from repro.common.records import canonical_json
    from repro.harness.manifest import CampaignManifest, ManifestError
    from repro.harness.orchestrator import manifest_status

    if args.watch is not None and args.watch <= 0:
        print("--watch needs a positive number of seconds",
              file=sys.stderr)
        return 2
    try:
        manifest = CampaignManifest.load(args.manifest)
    except ManifestError as error:
        print(str(error), file=sys.stderr)
        return 2
    while True:
        status = manifest_status(manifest)
        if args.json:
            print(canonical_json(status), flush=True)
        else:
            _print_status(status)
        # settled: complete, or nothing left that could still make
        # progress (only failures remain) — watching further would spin
        settled = status["complete"] or (
            not status["states"]["pending"]
            and not status["states"]["leased"])
        if args.watch is None or settled:
            return 1 if status["failures"] else 0
        if not args.json:
            print(f"-- refreshing every {args.watch:g}s "
                  f"(ctrl-c to stop) --", flush=True)
        time.sleep(args.watch)


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import CampaignService

    service = CampaignService(args.manifest_root,
                              cache_dir=args.cache_dir,
                              queue_limit=args.queue_limit,
                              drain_workers=args.drain_workers,
                              lease_ttl=args.lease_ttl)
    try:
        asyncio.run(service.run(host=args.host, port=args.port))
    except KeyboardInterrupt:
        print("repro serve: shut down", file=sys.stderr)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(scale=args.scale)
    summary = runner.summary(args.name)
    report = runner.detection(args.name).report
    print(f"benchmark: {args.name} ({args.scale})")
    print(f"  slowdown:         {summary.slowdown:.4f}")
    print(f"  mean delay:       {summary.mean_delay_ns:.0f} ns")
    print(f"  max delay:        {summary.max_delay_ns:.0f} ns")
    print(f"  segments checked: {report.segments_checked}")
    closes = {k: v for k, v in report.closes_by_reason.items() if v}
    print(f"  closes:           {closes}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "schemes", False):
        from repro.schemes import iter_schemes
        print(f"{'scheme':<13}{'detects':>9}{'hard faults':>13}"
              f"{'recovery':>10}{'fork':>6}{'splice':>8}{'batch':>7}"
              f"  description")
        for scheme in iter_schemes():
            caps = scheme.capabilities()
            print(f"{scheme.name:<13}"
                  f"{'yes' if caps['detects_faults'] else 'no':>9}"
                  f"{'yes' if caps['covers_hard_faults'] else 'no':>13}"
                  f"{'yes' if caps['supports_recovery'] else 'no':>10}"
                  f"{'yes' if caps['supports_fork_injection'] else 'no':>6}"
                  f"{'yes' if caps['supports_timing_splice'] else 'no':>8}"
                  f"{'yes' if caps['supports_fault_batch'] else 'no':>7}"
                  f"  {scheme.description}")
        return 0
    from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS
    for name in BENCHMARK_ORDER:
        spec = BENCHMARKS[name]
        print(f"{name:<14} {spec.source:<8} {spec.character}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    """One-line summary per benchmark: slowdown + delay statistics."""
    from repro.workloads.suite import BENCHMARK_ORDER
    runner = ExperimentRunner(scale=args.scale, workers=args.workers,
                              cache_dir=args.cache_dir)
    runner.sweep([runner.default_cfg])   # one batch so workers overlap
    print(f"{'benchmark':<14}{'slowdown':>10}{'mean delay':>12}"
          f"{'max delay':>12}{'segments':>10}")
    for name in BENCHMARK_ORDER:
        summary = runner.summary(name)
        report = runner.detection(name).report
        print(f"{name:<14}{summary.slowdown:>10.4f}"
              f"{summary.mean_delay_ns:>10.0f}ns"
              f"{summary.max_delay_ns:>10.0f}ns"
              f"{report.segments_checked:>10}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Parallel Error Detection Using "
                    "Heterogeneous Cores' (DSN 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate paper tables/figures")
    p_fig.add_argument("names", nargs="*",
                       help=f"which ({', '.join(FIGURE_COMMANDS)})")
    p_fig.add_argument("--scale", default="small",
                       choices=["small", "default"])
    p_fig.add_argument("--workers", type=int, default=1,
                       help="worker processes for the underlying runs")
    p_fig.add_argument("--cache-dir", default=None,
                       help="on-disk run cache (incremental regeneration)")
    p_fig.set_defaults(func=cmd_figures)

    p_camp = sub.add_parser(
        "campaign", help="fault-injection / recovery campaign grid")
    p_camp.add_argument("--benchmark", default="bodytrack",
                        help="comma-separated benchmark names, or 'all'")
    p_camp.add_argument("--kind", default="fault",
                        choices=list(JOB_KINDS),
                        help="baseline/detection = fault-free timing; "
                             "fault = coverage; fault-batch = coverage "
                             "with whole grid cells per job; "
                             "recovery = rollback")
    p_camp.add_argument("--batch-size", type=int, default=50,
                        help="faults per fault-batch job")
    p_camp.add_argument("--scheme", default="detection",
                        choices=list(scheme_names()),
                        help="protection scheme to run the campaign under")
    p_camp.add_argument("--trials", type=int, default=30,
                        help="jobs per benchmark (fault sites cycle)")
    p_camp.add_argument("--timing", default="cycle",
                        choices=["cycle", "interval"],
                        help="timing model for fault grids: cycle = the "
                             "exact OoO model; interval = calibrated "
                             "estimate from the golden timing record")
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument("--scale", default="small",
                        choices=["small", "default"])
    p_camp.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = serial, in-process)")
    p_camp.add_argument("--cache-dir", default=None,
                        help="content-addressed on-disk result cache")
    p_camp.add_argument("--shard", type=_parse_shard, default=None,
                        metavar="K/N",
                        help="run only round-robin shard K of N "
                             "(static fan-out; superseded by --manifest)")
    p_camp.add_argument("--manifest", default=None, metavar="DIR",
                        help="materialise the grid as an on-disk manifest "
                             "and run it with work-stealing workers "
                             "(resumable; other hosts join with "
                             "campaign-worker)")
    p_camp.add_argument("--lease-ttl", type=float, default=300.0,
                        help="seconds before a crashed worker's leases "
                             "return to the pending pool")
    p_camp.add_argument("--materialize-only", action="store_true",
                        help="with --manifest: write the manifest and "
                             "exit without executing (workers join it "
                             "separately)")
    p_camp.add_argument("--json", action="store_true",
                        help="emit canonical JSON (summary + records)")
    p_camp.set_defaults(func=cmd_campaign)

    p_worker = sub.add_parser(
        "campaign-worker",
        help="join a manifest campaign as one work-stealing worker")
    p_worker.add_argument("--manifest", required=True, metavar="DIR")
    p_worker.add_argument("--lease-ttl", type=float, default=300.0,
                          help="seconds before this worker's leases expire")
    p_worker.add_argument("--batch", type=int, default=8,
                          help="jobs leased per work-stealing scan")
    p_worker.add_argument("--worker-id", default=None,
                          help="stable identity in lease/failure envelopes "
                               "(default: host-pid)")
    p_worker.add_argument("--max-jobs", type=int, default=None,
                          help="stop after claiming this many jobs")
    p_worker.add_argument("--max-attempts", type=int, default=1,
                          help="automatically re-lease failed jobs until "
                               "they have failed this many times (1 = "
                               "never retry automatically; failures carry "
                               "their attempt count)")
    p_worker.add_argument("--retry-failed", action="store_true",
                          help="re-queue previously failed jobs first "
                               "(manual, unbounded counterpart of "
                               "--max-attempts)")
    p_worker.add_argument("--json", action="store_true",
                          help="emit worker stats as canonical JSON")
    p_worker.set_defaults(func=cmd_campaign_worker)

    p_status = sub.add_parser(
        "campaign-status", help="progress of a manifest campaign")
    p_status.add_argument("--manifest", required=True, metavar="DIR")
    p_status.add_argument("--json", action="store_true",
                          help="emit the status payload as canonical JSON")
    p_status.add_argument("--watch", type=float, default=None,
                          metavar="SECONDS",
                          help="refresh the summary every SECONDS until "
                               "the campaign settles (complete, or only "
                               "failures left)")
    p_status.set_defaults(func=cmd_campaign_status)

    p_serve = sub.add_parser(
        "serve", help="resident campaign service (HTTP control plane)")
    p_serve.add_argument("--manifest-root", required=True, metavar="DIR",
                         help="directory holding one subdirectory (an "
                              "ordinary campaign manifest) per submitted "
                              "campaign")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="extra read-only record cache served by "
                              "GET /records (e.g. from pre-service runs)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="bounded admission queue: submissions over "
                              "this many pending campaigns get HTTP 429")
    p_serve.add_argument("--drain-workers", type=int, default=1,
                         help="in-service worker threads draining the "
                              "current campaign (0 = control plane only; "
                              "attach external campaign-worker processes)")
    p_serve.add_argument("--lease-ttl", type=float, default=300.0,
                         help="lease TTL for the in-service workers")
    p_serve.set_defaults(func=cmd_serve)

    p_bench = sub.add_parser("bench", help="run one benchmark")
    p_bench.add_argument("name")
    p_bench.add_argument("--scale", default="small",
                         choices=["small", "default"])
    p_bench.set_defaults(func=cmd_bench)

    p_list = sub.add_parser("list", help="list benchmarks (or schemes)")
    p_list.add_argument("--schemes", action="store_true",
                        help="list registered protection schemes with "
                             "their capability flags")
    p_list.set_defaults(func=cmd_list)

    p_suite = sub.add_parser("suite", help="summary over all benchmarks")
    p_suite.add_argument("--scale", default="small",
                         choices=["small", "default"])
    p_suite.add_argument("--workers", type=int, default=1)
    p_suite.add_argument("--cache-dir", default=None)
    p_suite.set_defaults(func=cmd_suite)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
