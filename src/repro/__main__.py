"""Command-line interface: ``python -m repro <command>``.

Commands:

``figures [NAME ...]``
    Regenerate paper tables/figures (default: all).  Names: table1,
    table2, fig1, fig7, fig8, fig9, fig10, fig11, fig12, fig13, area,
    power.  ``--workers``/``--cache-dir`` parallelise and cache the
    underlying runs through the campaign engine.
``campaign [--kind baseline|detection|fault|recovery] [--scheme NAME]
[--benchmark NAMES] [--trials N] [--workers N] [--cache-dir DIR]
[--shard K/N] [--json]``
    Run a campaign grid through the parallel engine under any registered
    protection scheme (``unprotected``, ``lockstep``, ``rmt``,
    ``detection``).  Identical grids are incremental: a warm cache
    directory replays every job with zero re-executions.
``bench NAME [--scale small|default]``
    Run one Table II benchmark under detection and print its summary.
``list [--schemes]``
    List available benchmarks, or the registered protection schemes and
    their capability flags.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import figures as fig_mod
from repro.harness.campaign import JOB_KINDS
from repro.harness.experiment import ExperimentRunner
from repro.schemes import scheme_names

FIGURE_COMMANDS = {
    "table1": lambda runner: fig_mod.table1(),
    "table2": lambda runner: fig_mod.table2(),
    "fig1": fig_mod.fig1_comparison,
    "fig7": fig_mod.fig7,
    "fig8": fig_mod.fig8,
    "fig9": fig_mod.fig9,
    "fig10": fig_mod.fig10,
    "fig11": fig_mod.fig11,
    "fig12": fig_mod.fig12,
    "fig13": fig_mod.fig13,
    "area": lambda runner: fig_mod.sec6b_area(),
    "power": lambda runner: fig_mod.sec6c_power(),
}


def cmd_figures(args: argparse.Namespace) -> int:
    names = args.names or list(FIGURE_COMMANDS)
    unknown = [n for n in names if n not in FIGURE_COMMANDS]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(FIGURE_COMMANDS)}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(scale=args.scale, workers=args.workers,
                              cache_dir=args.cache_dir)
    for name in names:
        text, _data = FIGURE_COMMANDS[name](runner)
        print(text)
        print()
    return 0


def _parse_shard(text: str) -> tuple[int, int]:
    """``K/N`` → (K, N); K counts from 0."""
    try:
        index_str, count_str = text.split("/", 1)
        index, count = int(index_str), int(count_str)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like K/N (e.g. 0/4), got {text!r}")
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 0 <= K < N, got {text!r}")
    return index, count


def _timing_summary(result, names: list[str]) -> dict:
    """Aggregate ``baseline``/``detection``-kind records (no outcomes)."""
    slowdowns, latencies = [], []
    for record in result.records:
        if record["record_type"] == "SchemeRunResult":
            slowdowns.append(record["slowdown"])
            if record["detection_latency_ns"] is not None:
                latencies.append(record["detection_latency_ns"])
        else:  # RunRecord: rich detection run, no baseline to normalise by
            delays = record["delays_ns"]
            if delays:
                latencies.append(sum(delays) / len(delays))
    return {
        "benchmarks": names,
        "jobs": len(result),
        "executed": result.executed,
        "cached": result.cached,
        "mean_slowdown": (
            sum(slowdowns) / len(slowdowns) if slowdowns else None),
        "mean_detection_latency_ns": (
            sum(latencies) / len(latencies) if latencies else None),
    }


def _coverage_summary(result, names: list[str]) -> tuple[dict, int]:
    """Aggregate ``fault``/``recovery``-kind records; returns the summary
    and the number of escaped (SDC) trials."""
    outcomes: dict[str, int] = {}
    latencies = []
    for record in result.records:
        if "outcome" in record:
            outcome = record["outcome"]
        elif not record.get("activated"):
            outcome = "not_activated"
        else:
            outcome = ("recovered" if record.get("state_correct")
                       else "not_recovered")
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        if record.get("detect_latency_us") is not None:
            latencies.append(record["detect_latency_us"])
    activated = sum(1 for r in result.records if r.get("activated"))
    detected = sum(
        1 for r in result.records
        if r.get("outcome") == "detected" or r.get("detected"))
    summary = {
        "benchmarks": names,
        "jobs": len(result),
        "executed": result.executed,
        "cached": result.cached,
        "activated": activated,
        "detected": detected,
        "outcomes": outcomes,
        "mean_detect_latency_us": (
            sum(latencies) / len(latencies) if latencies else None),
    }
    return summary, outcomes.get("escaped", 0)


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.common.config import default_config
    from repro.common.records import canonical_json
    from repro.harness.campaign import (
        CampaignEngine, detection_grid, fault_grid, recovery_grid,
        scheme_grid)
    from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS

    names = (list(BENCHMARK_ORDER) if args.benchmark == "all"
             else args.benchmark.split(","))
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    try:
        if args.kind == "fault":
            grid = fault_grid(names, trials=args.trials, scale=args.scale,
                              seed=args.seed, scheme=args.scheme)
        elif args.kind == "recovery":
            grid = recovery_grid(names, trials=args.trials, scale=args.scale,
                                 seed=args.seed, scheme=args.scheme)
        elif args.kind == "baseline":
            grid = scheme_grid(names, [args.scheme], scale=args.scale)
        else:  # detection: the paper scheme's rich fault-free runs
            grid = detection_grid(names, [default_config()], scale=args.scale,
                                  include_baselines=False, scheme=args.scheme)
    except ValueError as error:
        print(f"cannot build {args.kind} grid: {error}", file=sys.stderr)
        return 2
    if args.shard is not None:
        index, count = args.shard
        grid = grid.shard(index, count)

    engine = CampaignEngine(workers=args.workers, cache_dir=args.cache_dir)
    result = engine.run(grid)

    timing_kind = args.kind in ("baseline", "detection")
    escaped = 0
    if timing_kind:
        summary = _timing_summary(result, names)
    else:
        summary, escaped = _coverage_summary(result, names)
    summary = {"kind": args.kind, "scheme": args.scheme, **summary}

    if args.json:
        print(canonical_json({"summary": summary,
                              "records": list(result.records)}))
        # same contract as the human-readable path: escapes are failures
        return 1 if escaped else 0

    print(f"{args.kind} campaign [{args.scheme}] over {', '.join(names)} "
          f"({args.scale}): {len(result)} jobs, {result.executed} executed, "
          f"{result.cached} from cache")
    if timing_kind:
        if summary["mean_slowdown"] is not None:
            print(f"  mean slowdown:          "
                  f"{summary['mean_slowdown']:.4f}")
        if summary["mean_detection_latency_ns"] is not None:
            print(f"  mean detection latency: "
                  f"{summary['mean_detection_latency_ns']:.0f} ns")
        return 0
    print(f"  activated: {summary['activated']}  "
          f"detected: {summary['detected']} "
          f"({100 * summary['detected'] / max(1, summary['activated']):.1f}% "
          f"of activated)")
    for outcome, count in sorted(summary["outcomes"].items()):
        print(f"  {outcome:<14} {count}")
    if summary["mean_detect_latency_us"] is not None:
        print(f"  mean detection latency: "
              f"{summary['mean_detect_latency_us']:.2f} us")
    if escaped:
        print(f"WARNING: {escaped} fault(s) escaped detection (SDC)!")
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(scale=args.scale)
    summary = runner.summary(args.name)
    report = runner.detection(args.name).report
    print(f"benchmark: {args.name} ({args.scale})")
    print(f"  slowdown:         {summary.slowdown:.4f}")
    print(f"  mean delay:       {summary.mean_delay_ns:.0f} ns")
    print(f"  max delay:        {summary.max_delay_ns:.0f} ns")
    print(f"  segments checked: {report.segments_checked}")
    closes = {k: v for k, v in report.closes_by_reason.items() if v}
    print(f"  closes:           {closes}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "schemes", False):
        from repro.schemes import iter_schemes
        print(f"{'scheme':<13}{'detects':>9}{'hard faults':>13}"
              f"{'recovery':>10}  description")
        for scheme in iter_schemes():
            caps = scheme.capabilities()
            print(f"{scheme.name:<13}"
                  f"{'yes' if caps['detects_faults'] else 'no':>9}"
                  f"{'yes' if caps['covers_hard_faults'] else 'no':>13}"
                  f"{'yes' if caps['supports_recovery'] else 'no':>10}"
                  f"  {scheme.description}")
        return 0
    from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS
    for name in BENCHMARK_ORDER:
        spec = BENCHMARKS[name]
        print(f"{name:<14} {spec.source:<8} {spec.character}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    """One-line summary per benchmark: slowdown + delay statistics."""
    from repro.workloads.suite import BENCHMARK_ORDER
    runner = ExperimentRunner(scale=args.scale, workers=args.workers,
                              cache_dir=args.cache_dir)
    runner.sweep([runner.default_cfg])   # one batch so workers overlap
    print(f"{'benchmark':<14}{'slowdown':>10}{'mean delay':>12}"
          f"{'max delay':>12}{'segments':>10}")
    for name in BENCHMARK_ORDER:
        summary = runner.summary(name)
        report = runner.detection(name).report
        print(f"{name:<14}{summary.slowdown:>10.4f}"
              f"{summary.mean_delay_ns:>10.0f}ns"
              f"{summary.max_delay_ns:>10.0f}ns"
              f"{report.segments_checked:>10}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Parallel Error Detection Using "
                    "Heterogeneous Cores' (DSN 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate paper tables/figures")
    p_fig.add_argument("names", nargs="*",
                       help=f"which ({', '.join(FIGURE_COMMANDS)})")
    p_fig.add_argument("--scale", default="small",
                       choices=["small", "default"])
    p_fig.add_argument("--workers", type=int, default=1,
                       help="worker processes for the underlying runs")
    p_fig.add_argument("--cache-dir", default=None,
                       help="on-disk run cache (incremental regeneration)")
    p_fig.set_defaults(func=cmd_figures)

    p_camp = sub.add_parser(
        "campaign", help="fault-injection / recovery campaign grid")
    p_camp.add_argument("--benchmark", default="bodytrack",
                        help="comma-separated benchmark names, or 'all'")
    p_camp.add_argument("--kind", default="fault",
                        choices=list(JOB_KINDS),
                        help="baseline/detection = fault-free timing; "
                             "fault = coverage; recovery = rollback")
    p_camp.add_argument("--scheme", default="detection",
                        choices=list(scheme_names()),
                        help="protection scheme to run the campaign under")
    p_camp.add_argument("--trials", type=int, default=30,
                        help="jobs per benchmark (fault sites cycle)")
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument("--scale", default="small",
                        choices=["small", "default"])
    p_camp.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = serial, in-process)")
    p_camp.add_argument("--cache-dir", default=None,
                        help="content-addressed on-disk result cache")
    p_camp.add_argument("--shard", type=_parse_shard, default=None,
                        metavar="K/N",
                        help="run only round-robin shard K of N")
    p_camp.add_argument("--json", action="store_true",
                        help="emit canonical JSON (summary + records)")
    p_camp.set_defaults(func=cmd_campaign)

    p_bench = sub.add_parser("bench", help="run one benchmark")
    p_bench.add_argument("name")
    p_bench.add_argument("--scale", default="small",
                         choices=["small", "default"])
    p_bench.set_defaults(func=cmd_bench)

    p_list = sub.add_parser("list", help="list benchmarks (or schemes)")
    p_list.add_argument("--schemes", action="store_true",
                        help="list registered protection schemes with "
                             "their capability flags")
    p_list.set_defaults(func=cmd_list)

    p_suite = sub.add_parser("suite", help="summary over all benchmarks")
    p_suite.add_argument("--scale", default="small",
                         choices=["small", "default"])
    p_suite.add_argument("--workers", type=int, default=1)
    p_suite.add_argument("--cache-dir", default=None)
    p_suite.set_defaults(func=cmd_suite)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
