"""The unprotected baseline: the bare out-of-order core.

This is the denominator of every normalised-performance figure in the
paper, and the reference point for the area/power overhead claims of
§VI-B/C.  The comparison row itself is produced by the registered
``unprotected`` scheme (:mod:`repro.schemes.unprotected`), whose
``overheads()`` derives it from a measured run.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.core.ooo_core import CoreResult, OoOCore
from repro.isa.executor import Trace


def run_baseline(trace: Trace, config: SystemConfig) -> CoreResult:
    """Time ``trace`` on an unprotected main core (fresh caches/predictor)."""
    return OoOCore(config).run(trace)
