"""The unprotected baseline: the bare out-of-order core.

This is the denominator of every normalised-performance figure in the
paper, and the reference point for the area/power overhead claims of
§VI-B/C.  The comparison row itself is produced by the registered
``unprotected`` scheme (:mod:`repro.schemes.unprotected`), whose
``overheads()`` derives it from a measured run.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.core.ooo_core import CoreResult
from repro.core.timing import time_bare
from repro.isa.executor import Trace


def run_baseline(trace: Trace, config: SystemConfig) -> CoreResult:
    """Time ``trace`` on an unprotected main core (fresh caches/predictor).

    Served from the trace's golden timing record when one exists (the
    record *is* the stored output of this run — see
    :mod:`repro.core.timing`); recorded on first use otherwise."""
    return time_bare(trace, config)
