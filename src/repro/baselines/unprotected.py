"""The unprotected baseline: the bare out-of-order core.

This is the denominator of every normalised-performance figure in the
paper, and the reference point for the area/power overhead claims of
§VI-B/C.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.core.ooo_core import CoreResult, OoOCore
from repro.isa.executor import Trace


@dataclass(frozen=True)
class SchemeSummary:
    """Qualitative + quantitative comparison row (paper Figure 1(d))."""

    name: str
    slowdown: float
    area_overhead: float
    energy_overhead: float
    #: typical error-detection latency in nanoseconds (None = no detection)
    detection_latency_ns: float | None


def run_baseline(trace: Trace, config: SystemConfig) -> CoreResult:
    """Time ``trace`` on an unprotected main core (fresh caches/predictor)."""
    return OoOCore(config).run(trace)


def summarize(base: CoreResult) -> SchemeSummary:
    """The no-detection row of the comparison table."""
    return SchemeSummary(
        name="unprotected",
        slowdown=1.0,
        area_overhead=0.0,
        energy_overhead=0.0,
        detection_latency_ns=None,
    )
