"""Dual-core lockstep baseline (paper §II-B, §VII-A).

The industry-standard scheme (Cortex-R, IBM G5, Compaq Himalaya): the
program runs simultaneously on two identical cores, possibly with a small
fixed delay on the trailing core to decorrelate transients, and comparator
logic checks results every cycle.

Characteristics reproduced here (Figure 1(d)):

* **performance**: negligible overhead — only the (re)start skew and the
  comparator's pipeline delay;
* **detection latency**: a few cycles — the comparator sees results as
  they commit;
* **area / energy**: both ≈ doubled, the whole point of the paper's
  alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.time import ticks_to_ns
from repro.core.ooo_core import CoreResult
from repro.core.timing import time_bare
from repro.isa.executor import Trace

#: Cycles the trailing core runs behind the leading core (decorrelates
#: spatially-correlated transients; typical small fixed skew).
DEFAULT_SKEW_CYCLES = 2

#: Pipeline depth of the comparator checking committed results.
COMPARATOR_DEPTH_CYCLES = 1


@dataclass(frozen=True)
class LockstepResult:
    """Timing + overhead summary for a dual-core lockstep run."""

    core: CoreResult
    cycles: int
    slowdown_vs_unprotected: float
    detection_latency_ns: float
    area_overhead: float
    energy_overhead: float


def run_lockstep(trace: Trace, config: SystemConfig,
                 skew_cycles: int = DEFAULT_SKEW_CYCLES) -> LockstepResult:
    """Time ``trace`` under dual-core lockstep.

    Both cores execute the full program; the pair finishes when the
    trailing core does.  Energy is doubled because every instruction
    executes twice on identical hardware; area is doubled because the
    second core is a full copy.
    """
    base = time_bare(trace, config)
    cycles = base.cycles + skew_cycles + COMPARATOR_DEPTH_CYCLES
    period = config.main_core.clock().period_ticks
    detection_latency = ticks_to_ns(
        (skew_cycles + COMPARATOR_DEPTH_CYCLES) * period)
    return LockstepResult(
        core=base,
        cycles=cycles,
        slowdown_vs_unprotected=cycles / base.cycles,
        detection_latency_ns=detection_latency,
        area_overhead=1.0,    # a second identical core
        energy_overhead=1.0,  # every instruction executed twice
    )
