"""Redundant multi-threading (RMT) baseline (paper §II-B, §VII-B).

AR-SMT / CRT-style schemes run a duplicate of the program as a second
simultaneous thread on the *same* core and compare results, trading
performance for area: no second core is needed, but the two threads share
fetch/issue/commit bandwidth and window resources, and Mukherjee et al.
report ≈ 32 % performance overhead.  Because both copies execute on the
same hardware, hard faults are not covered without further tricks
(Blackjack adds another ≈ 15 %).

We model the contention mechanistically: the leading thread runs on a core
whose shared resources are split with the trailing thread — half the ROB,
IQ and LQ/SQ entries, and two-thirds of the fetch/commit bandwidth (the
trailing thread is cheaper per instruction since its loads come from the
load value queue, so the split is not 50/50).  This reproduces the key
qualitative behaviour: high-ILP compute-bound code pays heavily, while
memory-bound code hides the sharing under its stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.config import SystemConfig
from repro.common.time import ticks_to_ns
from repro.core.ooo_core import CoreResult
from repro.core.timing import time_bare
from repro.isa.executor import Trace

#: Area added by RMT support (comparator, load value queue, thread state).
RMT_AREA_OVERHEAD = 0.05

#: Energy overhead: every instruction executes twice, with small savings
#: from shared fetch and the trailing thread's LVQ hits.
RMT_ENERGY_OVERHEAD = 0.90


@dataclass(frozen=True)
class RMTResult:
    """Timing + overhead summary for a redundant-multithreading run."""

    core: CoreResult
    cycles: int
    #: cycles of the same trace on the core without the redundant thread
    base_cycles: int
    slowdown_vs_unprotected: float
    detection_latency_ns: float
    area_overhead: float
    energy_overhead: float
    covers_hard_faults: bool


def rmt_config(config: SystemConfig) -> SystemConfig:
    """The leading thread's effective share of the SMT core."""
    mc = config.main_core
    shared = replace(
        mc,
        fetch_width=max(1, (2 * mc.fetch_width) // 3),
        commit_width=max(1, (2 * mc.commit_width) // 3),
        rob_entries=max(4, mc.rob_entries // 2),
        iq_entries=max(2, mc.iq_entries // 2),
        lq_entries=max(2, mc.lq_entries // 2),
        sq_entries=max(2, mc.sq_entries // 2),
        int_alus=max(1, (2 * mc.int_alus) // 3),
        fp_alus=max(1, mc.fp_alus // 2),
        muldiv_alus=max(1, mc.muldiv_alus // 2),
    )
    return replace(config, main_core=shared)


def run_rmt(trace: Trace, config: SystemConfig) -> RMTResult:
    """Time ``trace`` under redundant multi-threading on the main core."""
    # both runs are pure functions of (trace, config): served from the
    # trace's golden timing records when present, recorded otherwise
    base = time_bare(trace, config)
    shared = time_bare(trace, rmt_config(config))
    period = config.main_core.clock().period_ticks
    # the trailing thread lags by roughly the instruction window
    detection_latency = ticks_to_ns(config.main_core.rob_entries * period)
    return RMTResult(
        core=shared,
        cycles=shared.cycles,
        base_cycles=base.cycles,
        slowdown_vs_unprotected=shared.cycles / base.cycles,
        detection_latency_ns=detection_latency,
        area_overhead=RMT_AREA_OVERHEAD,
        energy_overhead=RMT_ENERGY_OVERHEAD,
        covers_hard_faults=False,
    )
