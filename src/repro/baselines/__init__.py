"""Comparison baselines: unprotected, dual-core lockstep, RMT.

These modules hold the raw timing/overhead models; the pluggable
comparison interface over them lives in :mod:`repro.schemes`.
"""

from repro.baselines.lockstep import LockstepResult, run_lockstep
from repro.baselines.rmt import RMTResult, rmt_config, run_rmt
from repro.baselines.unprotected import run_baseline
# re-exported for backward compatibility; the record moved to the
# unified scheme API
from repro.schemes.base import SchemeSummary

__all__ = [
    "LockstepResult",
    "RMTResult",
    "SchemeSummary",
    "rmt_config",
    "run_baseline",
    "run_lockstep",
    "run_rmt",
]
