"""Comparison baselines: unprotected, dual-core lockstep, RMT."""

from repro.baselines.lockstep import LockstepResult, run_lockstep
from repro.baselines.rmt import RMTResult, rmt_config, run_rmt
from repro.baselines.unprotected import SchemeSummary, run_baseline

__all__ = [
    "LockstepResult",
    "RMTResult",
    "SchemeSummary",
    "rmt_config",
    "run_baseline",
    "run_lockstep",
    "run_rmt",
]
