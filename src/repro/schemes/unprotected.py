"""The unprotected scheme: a bare main core, no error detection.

The denominator of every normalised figure, and the control group of
fault campaigns: every activated, architecturally visible fault is a
silent data corruption here — the outcome the paper's coverage argument
exists to rule out.
"""

from __future__ import annotations

from repro.baselines.unprotected import run_baseline
from repro.common.config import SystemConfig
from repro.detection.faults import TransientFault
from repro.isa.executor import Trace
from repro.schemes.base import (
    FaultVerdict,
    ProtectionScheme,
    SchemeSummary,
    SchemeTiming,
    architecturally_masked,
)
from repro.schemes.registry import register_scheme


@register_scheme("unprotected")
class UnprotectedScheme(ProtectionScheme):
    """No redundancy, no comparator — the paper's reference point."""

    description = "bare out-of-order main core, no detection"
    detects_faults = False
    covers_hard_faults = False
    supports_recovery = False
    supports_fork_injection = True
    supports_fault_batch = True

    def time(self, trace: Trace, config: SystemConfig) -> SchemeTiming:
        core = run_baseline(trace, config)
        return SchemeTiming(
            cycles=core.cycles,
            base_cycles=core.cycles,
            instructions=core.instructions,
            system_cycles=core.system_cycles,
            detection_latency_ns=None,
        )

    def classify(self, clean: Trace, config: SystemConfig,
                 fault: TransientFault, injector, faulty: Trace,
                 interrupt_seqs: tuple[int, ...] = ()) -> FaultVerdict:
        if not injector.activations:
            return FaultVerdict(activated=False, outcome="not_activated")
        if architecturally_masked(clean, faulty):
            return FaultVerdict(activated=True, outcome="masked")
        return FaultVerdict(activated=True, outcome="escaped")

    def overheads(self, timing: SchemeTiming,
                  config: SystemConfig) -> SchemeSummary:
        # every overhead is *derived* from the measured run: the slowdown
        # is cycles over base cycles (1.0 by construction here, but the
        # division keeps the row honest if the timing model ever changes)
        return SchemeSummary(
            name=self.name,
            slowdown=timing.slowdown,
            area_overhead=0.0,
            energy_overhead=0.0,
            detection_latency_ns=timing.detection_latency_ns,
        )
