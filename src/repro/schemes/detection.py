"""The paper's heterogeneous parallel-detection scheme, as a plugin.

Wraps :mod:`repro.detection.system` (timing and fault classification)
and :mod:`repro.recovery.rollback` (the recovery extension) behind the
:class:`~repro.schemes.base.ProtectionScheme` interface.  This is the
only scheme whose ``inject`` runs the full detection pipeline — errors
surface through checker replay, never an oracle — and the only one with
``supports_recovery``.
"""

from __future__ import annotations

from repro.analysis.area import area_model
from repro.analysis.power import energy_overhead_per_run, power_model
from repro.common.config import SystemConfig
from repro.common.time import ticks_to_us
from repro.core.timing import resolve_timing_mode, timing_splice_enabled
from repro.detection.faults import (
    FaultInjector,
    FaultSite,
    TransientFault,
    system_faults,
)
from repro.detection.system import (
    prime_splice_cursor,
    run_unprotected,
    run_with_detection,
)
from repro.isa.executor import Trace
from repro.schemes.base import (
    FaultVerdict,
    ProtectionScheme,
    SchemeSummary,
    SchemeTiming,
    architecturally_masked,
    fork_injection_enabled,
)
from repro.schemes.registry import register_scheme


@register_scheme("detection")
class ParallelDetectionScheme(ProtectionScheme):
    """Heterogeneous parallel error detection (the paper's design)."""

    description = "committed load/store log replayed on small checker cores"
    detects_faults = True
    covers_hard_faults = True
    supports_recovery = True
    supports_fork_injection = True
    supports_timing_splice = True
    supports_fault_batch = True

    def time(self, trace: Trace, config: SystemConfig) -> SchemeTiming:
        # self-contained on purpose: a scheme-timing job is a pure
        # function of (trace, config), so it re-runs the unprotected
        # baseline rather than reaching into other jobs' cache entries —
        # cross-scheme sweeps stay correct under any worker/shard split
        base = run_unprotected(trace, config)
        result = run_with_detection(trace, config)
        return SchemeTiming(
            cycles=result.main_cycles,
            base_cycles=base.cycles,
            instructions=result.core.instructions,
            system_cycles=result.system_cycles,
            detection_latency_ns=result.report.mean_delay_ns(),
        )

    def inject_batch(self, trace: Trace, config: SystemConfig,
                     faults: tuple[TransientFault, ...],
                     interrupt_seqs: tuple[int, ...] = (),
                     ) -> list[FaultVerdict]:
        """Drain a cell with the timing-splice cursor pre-scheduled.

        The base batch path already sorts faults by fork seq; telling the
        cell's shared cursor those seqs up front lets it snapshot the
        golden timed prefix at each fault's *exact* boundary during its
        single monotone walk, so classification resumes each faulty run
        with zero golden re-timing.  Pure scheduling — every verdict and
        record stays byte-identical to per-fault injection.
        """
        if (self.supports_fork_injection and fork_injection_enabled()
                and timing_splice_enabled()
                and resolve_timing_mode() != "interval"
                and not interrupt_seqs):
            total = len(trace)
            seqs = [
                FaultInjector([fault]).fork_seq(total) for fault in faults
                if fault.site not in (FaultSite.CHECKPOINT,
                                      FaultSite.CHECKER)
            ]
            if seqs:
                prime_splice_cursor(trace, config, seqs)
        return super().inject_batch(trace, config, faults, interrupt_seqs)

    def classify(self, clean: Trace, config: SystemConfig,
                 fault: TransientFault, injector, faulty: Trace,
                 interrupt_seqs: tuple[int, ...] = ()) -> FaultVerdict:
        detection_side = fault.site in (FaultSite.CHECKPOINT,
                                        FaultSite.CHECKER)
        activated = bool(injector.activations) or detection_side
        if not activated:
            return FaultVerdict(activated=False, outcome="not_activated")

        side = system_faults([fault])
        # `golden=clean` anchors the interval model's base timing curve to
        # the clean trace, so interval verdicts are identical whether the
        # faulty trace came from the fork path (fork_of set) or a full
        # re-execution (fork_of None)
        run = run_with_detection(
            faulty, config,
            checkpoint_faults=side["checkpoint"] or None,
            checker_faults=side["checker"] or None,
            interrupt_seqs=list(interrupt_seqs) or None,
            golden=clean)
        if run.report.detected:
            event = run.report.first_event
            segment, entry = run.report.first_error_position()
            return FaultVerdict(
                activated=True, outcome="detected",
                detect_latency_us=ticks_to_us(
                    event.detect_tick - event.segment_close_tick),
                first_error_segment=segment, first_error_entry=entry)
        if architecturally_masked(clean, faulty):
            return FaultVerdict(activated=True, outcome="masked")
        return FaultVerdict(activated=True, outcome="escaped")

    def overheads(self, timing: SchemeTiming,
                  config: SystemConfig) -> SchemeSummary:
        slowdown = timing.slowdown
        area = area_model(config)
        power = power_model(config)
        return SchemeSummary(
            name=self.name,
            slowdown=slowdown,
            area_overhead=area.overhead_vs_core,
            energy_overhead=energy_overhead_per_run(slowdown, power.overhead),
            detection_latency_ns=timing.detection_latency_ns,
        )

    def recover(self, faulty: Trace, config: SystemConfig):
        """Detect→rollback→re-execute, returning a
        :class:`repro.recovery.rollback.RecoveryOutcome`."""
        from repro.recovery.rollback import detect_and_recover
        return detect_and_recover(faulty.program, faulty, config)
