"""Redundant multithreading as a pluggable protection scheme (§II-B).

Timing defers to :func:`repro.baselines.rmt.run_rmt` (mechanistic SMT
resource contention).  Detection: the trailing thread recomputes every
instruction and the comparator checks results as the trailing copy
commits, so an activated transient is caught roughly one instruction
window behind the leading thread.  Both copies share the same hardware,
so a *hard* fault corrupts both identically and escapes — the
``covers_hard_faults`` flag is the one capability RMT lacks.
"""

from __future__ import annotations

from repro.baselines.rmt import RMT_AREA_OVERHEAD, RMT_ENERGY_OVERHEAD, run_rmt
from repro.common.config import SystemConfig
from repro.common.time import ticks_to_us
from repro.detection.faults import TransientFault
from repro.isa.executor import Trace
from repro.schemes.base import (
    FaultVerdict,
    ProtectionScheme,
    SchemeSummary,
    SchemeTiming,
)
from repro.schemes.registry import register_scheme


@register_scheme("rmt")
class RMTScheme(ProtectionScheme):
    """AR-SMT/CRT-style redundant thread on the same core."""

    description = "redundant SMT thread on the main core, compared at commit"
    detects_faults = True
    covers_hard_faults = False
    supports_recovery = False
    supports_fork_injection = True
    supports_fault_batch = True
    # the trailing-thread verdict is pure activation: any committed
    # divergence is caught one instruction window later, so injection
    # stops at the fault
    verdict_needs_outcome = False

    def time(self, trace: Trace, config: SystemConfig) -> SchemeTiming:
        result = run_rmt(trace, config)
        return SchemeTiming(
            cycles=result.cycles,
            base_cycles=result.base_cycles,
            instructions=result.core.instructions,
            system_cycles=result.cycles,
            detection_latency_ns=result.detection_latency_ns,
        )

    def classify(self, clean: Trace, config: SystemConfig,
                 fault: TransientFault, injector, _faulty: Trace,
                 interrupt_seqs: tuple[int, ...] = ()) -> FaultVerdict:
        if not injector.activations:
            return FaultVerdict(activated=False, outcome="not_activated")
        # the trailing thread lags by roughly the instruction window; the
        # comparator catches the divergence when the redundant copy of
        # the corrupted instruction commits
        period = config.main_core.clock().period_ticks
        latency_ticks = config.main_core.rob_entries * period
        return FaultVerdict(
            activated=True, outcome="detected",
            detect_latency_us=ticks_to_us(latency_ticks))

    def overheads(self, timing: SchemeTiming,
                  config: SystemConfig) -> SchemeSummary:
        return SchemeSummary(
            name=self.name,
            slowdown=timing.slowdown,
            area_overhead=RMT_AREA_OVERHEAD,
            energy_overhead=RMT_ENERGY_OVERHEAD,
            detection_latency_ns=timing.detection_latency_ns,
        )
