"""The protection-scheme registry.

One flat name → instance table, populated at import time by the
``@register_scheme`` decorator on each scheme class.  Campaign workers
re-import :mod:`repro.schemes` when they unpickle job specs, so the
registry is identically populated in every process — a scheme name is as
stable a cache-key component as a benchmark name.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.schemes.base import ProtectionScheme

_REGISTRY: dict[str, ProtectionScheme] = {}


def register_scheme(name: str) -> Callable[[type], type]:
    """Class decorator: instantiate and register a scheme under ``name``.

    The decorated class gets its ``name`` attribute set, so the registry
    key and the scheme's self-reported name can never diverge.
    """
    def decorator(cls: type) -> type:
        if not issubclass(cls, ProtectionScheme):
            raise TypeError(
                f"{cls.__name__} must subclass ProtectionScheme")
        if name in _REGISTRY and type(_REGISTRY[name]) is not cls:
            raise ValueError(f"scheme name {name!r} already registered "
                             f"by {type(_REGISTRY[name]).__name__}")
        cls.name = name
        _REGISTRY[name] = cls()
        return cls
    return decorator


def get_scheme(name: str) -> ProtectionScheme:
    """Look up a registered scheme, or raise ``ValueError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; registered schemes: "
            f"{', '.join(scheme_names())}") from None


def scheme_names() -> tuple[str, ...]:
    """Registered scheme names, in registration order."""
    return tuple(_REGISTRY)


def iter_schemes() -> Iterator[ProtectionScheme]:
    """Registered scheme instances, in registration order."""
    return iter(_REGISTRY.values())
