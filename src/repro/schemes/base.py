"""The unified protection-scheme interface (paper Figure 1, §VII).

The paper's argument is a *comparison between protection schemes*:
unprotected, dual-core lockstep, redundant multithreading, and its own
heterogeneous parallel-detection design.  Every scheme here implements
one :class:`ProtectionScheme` interface —

* :meth:`~ProtectionScheme.time`: a fault-free timing run of a committed
  trace, returning a :class:`SchemeTiming` (protected and unprotected
  cycle counts plus the scheme's characteristic detection latency);
* :meth:`~ProtectionScheme.inject`: one fault-injection trial, returning
  a :class:`FaultVerdict` classified into the §IV-I coverage buckets;
* :meth:`~ProtectionScheme.overheads`: the Figure 1(d) comparison row
  (:class:`SchemeSummary`), derived from a *measured* timing run rather
  than hand-assembled constants;
* capability flags (``detects_faults``, ``covers_hard_faults``,
  ``supports_recovery``) that campaign grids and the CLI use to decide
  what a scheme can be asked to do.

Schemes register under a stable name via
:func:`repro.schemes.registry.register_scheme`; everything downstream
(campaign engine, figure harness, CLI) addresses them only through the
registry, so adding a scheme is one module with one decorator.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.detection.faults import FaultInjector, HardFault, TransientFault
from repro.isa.executor import (
    ForkCursor,
    Trace,
    execute_forked,
    execute_program,
)
from repro.isa.memory_image import float_to_bits

#: Environment switch for fork-point fault execution: set to ``0`` to
#: force every fault job down the full-execution path (the benchmark
#: uses this to measure the speedup; workers inherit it, so one setting
#: governs serial, pool, and manifest execution alike).
FORK_INJECTION_ENV = "REPRO_FORK_INJECTION"


def fork_injection_enabled() -> bool:
    """Whether fault jobs may use the fork-point execution path."""
    return os.environ.get(FORK_INJECTION_ENV, "1") != "0"

#: Classification buckets shared by every scheme's ``inject`` verdict
#: (mirrors ``repro.common.records.FAULT_OUTCOMES``).
VERDICT_OUTCOMES = ("not_activated", "masked", "detected", "escaped")


@dataclass(frozen=True)
class SchemeTiming:
    """A fault-free timing run of one trace under one scheme."""

    #: cycles the protected run took on the main core
    cycles: int
    #: cycles the same trace takes on a bare, unprotected main core
    base_cycles: int
    instructions: int
    #: cycle the whole system finished (checks drained, comparator idle)
    system_cycles: int
    #: the scheme's characteristic error-detection latency for this run,
    #: in nanoseconds (None = the scheme detects nothing)
    detection_latency_ns: float | None

    @property
    def slowdown(self) -> float:
        return self.cycles / self.base_cycles if self.base_cycles else 0.0


@dataclass(frozen=True)
class FaultVerdict:
    """One fault-injection trial, classified by a scheme."""

    #: the fault actually changed an architectural value
    activated: bool
    #: one of :data:`VERDICT_OUTCOMES`
    outcome: str
    #: fault-to-detection latency in microseconds (detected trials only)
    detect_latency_us: float | None = None
    #: position of the first failing check, for schemes that localise
    #: errors (the paper scheme's segment/entry indices)
    first_error_segment: int | None = None
    first_error_entry: int | None = None


@dataclass(frozen=True)
class SchemeSummary:
    """Qualitative + quantitative comparison row (paper Figure 1(d))."""

    name: str
    slowdown: float
    area_overhead: float
    energy_overhead: float
    #: typical error-detection latency in nanoseconds (None = no detection)
    detection_latency_ns: float | None


def architecturally_masked(clean: Trace, faulty: Trace) -> bool:
    """True when a fault left no architecturally visible difference.

    FP registers compare by IEEE-754 bit pattern — the comparison the
    paper's checkpoint/comparator hardware performs.  Python float
    equality would both drop NaN states (NaN != NaN on recomputation)
    and resurrect them via the identity shortcut when the fork path
    splices the golden trace's float objects, making the verdict depend
    on which execution path produced the trace.
    """
    if len(clean) != len(faulty):
        return False
    if clean.final_xregs != faulty.final_xregs:
        return False
    if [float_to_bits(v) for v in clean.final_fregs] != \
            [float_to_bits(v) for v in faulty.final_fregs]:
        return False
    clean_mem = {a: v for a, v in clean.memory.items() if v}
    faulty_mem = {a: v for a, v in faulty.memory.items() if v}
    return clean_mem == faulty_mem


class ProtectionScheme(abc.ABC):
    """One error-detection scheme, pluggable into campaigns and figures.

    Subclasses set the class attributes and implement the three methods;
    instances are stateless, so one shared instance per registry entry
    serves every worker process.
    """

    #: registry name (set by :func:`~repro.schemes.registry.register_scheme`)
    name: str = ""
    #: one-line description for ``repro list --schemes``
    description: str = ""
    #: the scheme can detect errors at all
    detects_faults: bool = False
    #: detection still works when the fault is permanent (spatial
    #: redundancy: the redundant computation runs on different hardware)
    covers_hard_faults: bool = False
    #: the scheme can drive detect→rollback→re-execute recovery
    supports_recovery: bool = False
    #: fault jobs may fork the stored golden trace at the earliest fault
    #: instead of re-executing the clean prefix (any scheme whose
    #: ``inject`` produces the faulty run with :meth:`faulty_trace`)
    supports_fork_injection: bool = False
    #: the scheme's ``classify`` re-*times* forked faulty traces through
    #: the detection pipeline, so it benefits from the pre-fork timing
    #: splice (``repro.detection.system``); schemes that classify from
    #: activations alone never time a faulty trace, and the splice (and
    #: ``REPRO_TIMING_SPLICE``) is vacuously unobservable for them
    supports_timing_splice: bool = False
    #: fault cells may run as one ``fault-batch`` job (``inject_batch``
    #: drains a whole cell against one golden trace); schemes whose
    #: classification pipeline is batch-safe — verdicts byte-identical
    #: to per-fault ``inject`` calls in any order — set this True
    supports_fault_batch: bool = False
    #: ``classify`` reads the faulty trace's architectural outcome
    #: (final state, length, crash flag).  Schemes that classify from
    #: the activation list alone — lockstep and RMT detect any committed
    #: divergence at the comparator, long before the program ends — set
    #: this False, and injection stops executing once the last fault has
    #: had its chance to strike: the discarded suffix cannot change the
    #: verdict, so the records stay byte-identical.
    verdict_needs_outcome: bool = True

    def _stop_seq(self, injector: FaultInjector) -> int | None:
        """Earliest seq injection may stop at without changing this
        scheme's verdict, or None when it must run to completion."""
        if self.verdict_needs_outcome:
            return None
        last = injector.last_execution_seq()
        return None if last is None else last + 1

    def faulty_trace(
        self, clean: Trace, fault: TransientFault | HardFault,
    ) -> tuple[FaultInjector, Trace]:
        """Produce the faulty committed trace for one injection trial.

        Uses the fork-point path — state reconstructed at the earliest
        fault, golden prefix spliced, live execution only from there —
        when the scheme supports it and :data:`FORK_INJECTION_ENV` does
        not veto it; otherwise a full re-execution.  Both paths return
        byte-identical traces and activation lists, so which one ran is
        unobservable in any record.  Schemes whose verdict never reads
        the outcome additionally stop right after the last fault seq
        (again on both paths, so the identity between them holds).
        """
        injector = FaultInjector([fault])
        stop_seq = self._stop_seq(injector)
        if self.supports_fork_injection and fork_injection_enabled():
            faulty = execute_forked(clean, injector, stop_seq=stop_seq)
        else:
            faulty = execute_program(clean.program, fault_injector=injector,
                                     stop_seq=stop_seq)
        return injector, faulty

    @abc.abstractmethod
    def time(self, trace: Trace, config: SystemConfig) -> SchemeTiming:
        """Time ``trace`` under this scheme (fault-free)."""

    def inject(self, trace: Trace, config: SystemConfig,
               fault: TransientFault,
               interrupt_seqs: tuple[int, ...] = ()) -> FaultVerdict:
        """Inject ``fault`` into a run of ``trace``'s program and classify
        the outcome.  ``trace`` is the *clean* reference execution."""
        injector, faulty = self.faulty_trace(trace, fault)
        return self.classify(trace, config, fault, injector, faulty,
                             interrupt_seqs)

    def inject_batch(self, trace: Trace, config: SystemConfig,
                     faults: tuple[TransientFault, ...],
                     interrupt_seqs: tuple[int, ...] = (),
                     ) -> list[FaultVerdict]:
        """Classify a whole grid cell of faults against one golden trace.

        The batch path amortises fork-state reconstruction: faults are
        evaluated in fork-seq order through one :class:`ForkCursor`, so
        the golden columns are replayed once *total* (each row at most
        once across the whole cell) instead of once per fault.  Verdicts
        come back in the caller's fault order and are byte-identical to
        ``[self.inject(trace, ...) for each fault]`` — the cursor is the
        same pure function of (golden, fork_seq) that ``fork_state``
        computes, and classification is shared code.
        """
        faults = list(faults)
        if not (self.supports_fork_injection and fork_injection_enabled()):
            return [self.inject(trace, config, fault, interrupt_seqs)
                    for fault in faults]
        total = len(trace)
        order = sorted(
            range(len(faults)),
            key=lambda i: FaultInjector([faults[i]]).fork_seq(total))
        cursor = ForkCursor(trace)
        verdicts: list[FaultVerdict | None] = [None] * len(faults)
        for i in order:
            injector = FaultInjector([faults[i]])
            faulty = execute_forked(trace, injector,
                                    state_source=cursor.state,
                                    stop_seq=self._stop_seq(injector))
            verdicts[i] = self.classify(trace, config, faults[i], injector,
                                        faulty, interrupt_seqs)
        return verdicts

    @abc.abstractmethod
    def classify(self, clean: Trace, config: SystemConfig,
                 fault: TransientFault, injector: FaultInjector,
                 faulty: Trace,
                 interrupt_seqs: tuple[int, ...] = ()) -> FaultVerdict:
        """Classify one injection trial given its committed faulty trace
        (produced by :meth:`faulty_trace` or the batch cursor path)."""

    @abc.abstractmethod
    def overheads(self, timing: SchemeTiming,
                  config: SystemConfig) -> SchemeSummary:
        """The Figure 1(d) row, derived from a measured ``timing`` run."""

    def recover(self, faulty: Trace, config: SystemConfig):
        """Detect→rollback→re-execute on a faulty trace (schemes with
        ``supports_recovery`` only)."""
        raise ValueError(
            f"scheme {self.name!r} does not support recovery campaigns")

    def capabilities(self) -> dict[str, bool]:
        """The capability matrix row, keyed by flag name."""
        return {
            "detects_faults": self.detects_faults,
            "covers_hard_faults": self.covers_hard_faults,
            "supports_recovery": self.supports_recovery,
            "supports_fork_injection": self.supports_fork_injection,
            "supports_timing_splice": self.supports_timing_splice,
            "supports_fault_batch": self.supports_fault_batch,
        }
