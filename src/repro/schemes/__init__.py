"""Pluggable protection schemes behind one registry.

Importing this package registers the four paper schemes:

========== ============================================= ============
name       what it models                                paper
========== ============================================= ============
unprotected bare out-of-order main core                  Figure 1(a)
lockstep    dual-core lockstep with a commit comparator  Figure 1(b)
rmt         redundant SMT thread on the main core        Figure 1(c)
detection   heterogeneous parallel error detection       Figure 1(d)
========== ============================================= ============

Consumers address schemes only by name through :func:`get_scheme`;
campaign job specs carry the name into worker processes and cache keys.
"""

from repro.schemes.base import (
    FaultVerdict,
    ProtectionScheme,
    SchemeSummary,
    SchemeTiming,
    architecturally_masked,
)
from repro.schemes.registry import (
    get_scheme,
    iter_schemes,
    register_scheme,
    scheme_names,
)

# importing the modules is what registers the schemes; the order here is
# the registry (and Figure 1) presentation order
from repro.schemes import unprotected as _unprotected
from repro.schemes import lockstep as _lockstep
from repro.schemes import rmt as _rmt
from repro.schemes import detection as _detection

DetectionScheme = _detection.ParallelDetectionScheme
LockstepScheme = _lockstep.LockstepScheme
RMTScheme = _rmt.RMTScheme
UnprotectedScheme = _unprotected.UnprotectedScheme

__all__ = [
    "DetectionScheme",
    "FaultVerdict",
    "LockstepScheme",
    "ProtectionScheme",
    "RMTScheme",
    "SchemeSummary",
    "SchemeTiming",
    "UnprotectedScheme",
    "architecturally_masked",
    "get_scheme",
    "iter_schemes",
    "register_scheme",
    "scheme_names",
]
