"""Dual-core lockstep as a pluggable protection scheme (paper §II-B).

Timing defers to :func:`repro.baselines.lockstep.run_lockstep`; the
fault model captures what a cycle-by-cycle commit comparator does: the
redundant core does not experience the transient, so any activated fault
— one that changed a committed value — diverges the two commit streams
and is caught within the skew plus the comparator depth.  That is also
why lockstep covers *hard* faults: the redundant computation runs on
physically separate hardware.
"""

from __future__ import annotations

from repro.baselines.lockstep import (
    COMPARATOR_DEPTH_CYCLES,
    DEFAULT_SKEW_CYCLES,
    run_lockstep,
)
from repro.common.config import SystemConfig
from repro.common.time import ticks_to_us
from repro.detection.faults import TransientFault
from repro.isa.executor import Trace
from repro.schemes.base import (
    FaultVerdict,
    ProtectionScheme,
    SchemeSummary,
    SchemeTiming,
)
from repro.schemes.registry import register_scheme


@register_scheme("lockstep")
class LockstepScheme(ProtectionScheme):
    """Two identical cores, compared every cycle (Cortex-R, IBM G5)."""

    description = "dual identical cores with a per-cycle commit comparator"
    detects_faults = True
    covers_hard_faults = True
    supports_recovery = False
    supports_fork_injection = True
    supports_fault_batch = True
    # the comparator verdict is pure activation: any committed divergence
    # is detected at constant latency, so injection stops at the fault
    verdict_needs_outcome = False

    def time(self, trace: Trace, config: SystemConfig) -> SchemeTiming:
        result = run_lockstep(trace, config)
        return SchemeTiming(
            cycles=result.cycles,
            base_cycles=result.core.cycles,
            instructions=result.core.instructions,
            system_cycles=result.cycles,
            detection_latency_ns=result.detection_latency_ns,
        )

    def classify(self, clean: Trace, config: SystemConfig,
                 fault: TransientFault, injector, _faulty: Trace,
                 interrupt_seqs: tuple[int, ...] = ()) -> FaultVerdict:
        if not injector.activations:
            return FaultVerdict(activated=False, outcome="not_activated")
        # an activated fault changed a committed value on exactly one of
        # the two cores; the comparator sees the divergence as soon as
        # the trailing core commits the same instruction
        period = config.main_core.clock().period_ticks
        latency_ticks = (DEFAULT_SKEW_CYCLES
                         + COMPARATOR_DEPTH_CYCLES) * period
        return FaultVerdict(
            activated=True, outcome="detected",
            detect_latency_us=ticks_to_us(latency_ticks))

    def overheads(self, timing: SchemeTiming,
                  config: SystemConfig) -> SchemeSummary:
        return SchemeSummary(
            name=self.name,
            slowdown=timing.slowdown,
            area_overhead=1.0,    # a second identical core
            energy_overhead=1.0,  # every instruction executed twice
            detection_latency_ns=timing.detection_latency_ns,
        )
