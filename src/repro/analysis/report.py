"""Plain-text table/series renderers for the benchmark harness.

Every figure-regeneration benchmark prints its data through these helpers
so the output reads like the paper's tables: one row per benchmark, one
column per parameter value, plus a geometric-mean summary row where the
paper quotes one.
"""

from __future__ import annotations

from repro.common.stats import geometric_mean


def format_table(title: str, header: list[str],
                 rows: list[list[str]]) -> str:
    """Render an aligned plain-text table."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def slowdown_table(title: str, columns: list[str],
                   data: dict[str, list[float]],
                   order: list[str]) -> str:
    """A benchmarks × configurations slowdown table with a geomean row."""
    header = ["benchmark"] + columns
    rows = [
        [name] + [f"{value:.3f}" for value in data[name]]
        for name in order if name in data
    ]
    if rows:
        means = [
            geometric_mean([data[name][i] for name in order if name in data])
            for i in range(len(columns))
        ]
        rows.append(["geomean"] + [f"{value:.3f}" for value in means])
    return format_table(title, header, rows)


def delay_table(title: str, columns: list[str],
                data: dict[str, list[float]],
                order: list[str], unit: str = "ns") -> str:
    """A benchmarks × configurations delay table."""
    header = ["benchmark"] + [f"{c} ({unit})" for c in columns]
    rows = [
        [name] + [f"{value:.0f}" for value in data[name]]
        for name in order if name in data
    ]
    return format_table(title, header, rows)


def series_block(title: str, series: dict[str, list[tuple[float, float]]],
                 x_label: str, y_label: str, points: int = 10) -> str:
    """Render density-style series compactly: a few sample points each."""
    lines = [title, "", f"  ({x_label} -> {y_label})"]
    for name, pts in series.items():
        if len(pts) > points:
            step = len(pts) // points
            pts = pts[::step][:points]
        rendered = ", ".join(f"{x:.0f}:{y:.2e}" for x, y in pts)
        lines.append(f"  {name:<14} {rendered}")
    return "\n".join(lines)
