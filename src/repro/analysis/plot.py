"""ASCII plotting for figure outputs.

The benchmark harness renders its series numerically; these helpers add a
terminal-friendly visual rendering so Figure 8's density plot and the
sweep figures read like the paper's plots without any plotting
dependency.
"""

from __future__ import annotations

_GLYPHS = " .:-=+*#%@"


def ascii_density(series: dict[str, list[tuple[float, float]]],
                  width: int | None = None,
                  x_label: str = "delay (ns)") -> str:
    """Render density series as one intensity row per benchmark.

    Each series' densities are normalised to its own peak, so every row
    shows the *shape* of its distribution (the paper's Figure 8 point)
    regardless of absolute scale.
    """
    if not series:
        return "(no data)"
    lines = []
    name_width = max(len(name) for name in series) + 2
    for name, points in series.items():
        if not points or all(d == 0 for _x, d in points):
            lines.append(f"{name:<{name_width}}(no samples)")
            continue
        peak = max(d for _x, d in points)
        row = "".join(
            _GLYPHS[min(int(d / peak * (len(_GLYPHS) - 1) + 0.5),
                        len(_GLYPHS) - 1)]
            for _x, d in points
        )
        lines.append(f"{name:<{name_width}}|{row}|")
    xs = [x for _n, pts in series.items() for x, _d in pts]
    if xs:
        lines.append(f"{'':<{name_width}} {x_label}: "
                     f"{min(xs):.0f} .. {max(xs):.0f}")
    return "\n".join(lines)


def ascii_bars(data: dict[str, float], width: int = 40,
               fmt: str = "{:.3f}") -> str:
    """Horizontal bar chart for per-benchmark scalars (e.g. slowdowns)."""
    if not data:
        return "(no data)"
    name_width = max(len(name) for name in data) + 2
    peak = max(data.values())
    lines = []
    for name, value in data.items():
        bar = "#" * max(1, int(width * value / peak)) if peak > 0 else ""
        lines.append(f"{name:<{name_width}}{fmt.format(value):>8} {bar}")
    return "\n".join(lines)
