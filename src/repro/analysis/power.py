"""Power model (paper §VI-C).

The paper sidesteps McPAT (which cannot represent cores this small) and
uses published per-MHz figures:

* Rocket/E51-class checker core: ≈ 34 µW/MHz at 40 nm;
* Cortex-A57-class main core: ≈ 800 µW/MHz at 20 nm.

Twelve checkers at 1 GHz against a 3.2 GHz main core gives the paper's
≈ 16 % power overhead, described there as an *upper bound* because the
checker figure is for the older node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig

#: Checker-core dynamic power at 40 nm, µW per MHz (paper's cited figure).
CHECKER_UW_PER_MHZ_40NM = 34.0

#: Main-core dynamic power at 20 nm, µW per MHz.
MAIN_UW_PER_MHZ_20NM = 800.0


@dataclass(frozen=True)
class PowerBreakdown:
    """Power model output, in milliwatts."""

    main_core_mw: float
    checker_cores_mw: float

    @property
    def overhead(self) -> float:
        """Detection power relative to the main core (paper: ≈16 %,
        an upper bound since the checker figure is unscaled 40 nm)."""
        return self.checker_cores_mw / self.main_core_mw

    @property
    def lockstep_overhead(self) -> float:
        """Dual-core lockstep runs a second identical core."""
        return 1.0


def power_model(config: SystemConfig) -> PowerBreakdown:
    """Evaluate the §VI-C power model for ``config``."""
    main_mw = MAIN_UW_PER_MHZ_20NM * config.main_core.freq_mhz / 1000.0
    checker_mw = (CHECKER_UW_PER_MHZ_40NM * config.checker.freq_mhz
                  * config.checker.num_cores / 1000.0)
    return PowerBreakdown(main_core_mw=main_mw, checker_cores_mw=checker_mw)


def energy_overhead_per_run(slowdown: float, power_overhead: float) -> float:
    """Energy overhead of a protected run vs. unprotected.

    Energy = power × time: the detection scheme's energy cost combines its
    added power with its (small) slowdown.
    """
    return (1.0 + power_overhead) * slowdown - 1.0
