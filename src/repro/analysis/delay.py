"""Detection-delay analytics backing Figures 8, 11 and 12.

The detection system reports per-load/store delays (commit → check) as a
:class:`repro.common.stats.Samples`; this module turns those into the
paper's presentation forms: mean/max summaries, the density series of
Figure 8, and the coverage claim ("99.9 % of all loads and stores checked
within 5000 ns").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import Samples


@dataclass(frozen=True)
class DelaySummary:
    """Scalar delay statistics for one benchmark/configuration."""

    benchmark: str
    mean_ns: float
    max_ns: float
    p999_ns: float
    fraction_within_5us: float
    samples: int


def summarize_delays(benchmark: str, delays: Samples) -> DelaySummary:
    """Reduce a delay sample set to the figures' scalar statistics."""
    return DelaySummary(
        benchmark=benchmark,
        mean_ns=delays.mean(),
        max_ns=delays.max(),
        p999_ns=delays.percentile(99.9),
        fraction_within_5us=delays.fraction_below(5000.0),
        samples=len(delays),
    )


def density_series(delays: Samples, bins: int = 50,
                   hi_ns: float = 5000.0) -> list[tuple[float, float]]:
    """Figure 8's density plot series: (delay ns, density) pairs over
    [0, hi_ns] — the paper plots to 5000 ns and notes the long thin tail
    beyond is too uncommon to show."""
    return delays.density(bins=bins, lo=0.0, hi=hi_ns)
