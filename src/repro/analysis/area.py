"""Silicon-area model (paper §VI-B).

Reproduces the paper's published-constant arithmetic:

* a Rocket/E51-class in-order core is 0.14 mm² at 40 nm, scaled by the
  node factor to 20 nm (area scales ≈ ×0.25 across those two full nodes) —
  "twelve E51-sized cores would therefore fit in approximately 0.42 mm²";
* a Cortex-A57-class out-of-order core is 2.05 mm² at 20 nm excluding
  shared caches;
* 20 nm SRAM at ≈ 1 mm² per MiB (from the ISSCC'14 density the paper
  cites), covering the added 80 KiB (instruction caches, checkpoints, load
  forwarding unit, load-store log);
* a 1 MiB single-ported L2 at ≈ 1 mm² when the shared-cache-inclusive
  figure is wanted.

Headline reproduction targets: ≈ 24 % overhead vs. the bare core,
≈ 16 % including the L2 — versus 100 % for dual-core lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig

#: Rocket core area at 40 nm, mm² (paper's cited figure).
ROCKET_AREA_MM2_40NM = 0.14

#: Area scale factor from 40 nm to 20 nm (two full nodes).
NODE_SCALE_40_TO_20 = 0.25

#: Cortex-A57 core area at 20 nm, mm², excluding shared caches.
A57_AREA_MM2_20NM = 2.05

#: 20 nm SRAM density, mm² per MiB (ISSCC'14-derived, as the paper uses
#: ~1 mm² for 1 MiB single-ported SRAM).
SRAM_MM2_PER_MIB = 1.0

#: The main core's 1 MiB L2, mm².
L2_AREA_MM2 = 1.0


@dataclass(frozen=True)
class AreaBreakdown:
    """Area model output, all in mm² at 20 nm."""

    main_core_mm2: float
    checker_cores_mm2: float
    sram_added_mm2: float
    l2_mm2: float
    added_sram_kib: float

    @property
    def detection_added_mm2(self) -> float:
        return self.checker_cores_mm2 + self.sram_added_mm2

    @property
    def overhead_vs_core(self) -> float:
        """Detection hardware relative to the bare main core (paper: ≈24 %)."""
        return self.detection_added_mm2 / self.main_core_mm2

    @property
    def overhead_vs_core_with_l2(self) -> float:
        """Relative to core + L2 (paper: ≈16 %)."""
        return self.detection_added_mm2 / (self.main_core_mm2 + self.l2_mm2)

    @property
    def lockstep_overhead_vs_core(self) -> float:
        """Dual-core lockstep doubles the core."""
        return 1.0


def added_sram_kib(config: SystemConfig) -> float:
    """SRAM the detection scheme adds, in KiB.

    Log + per-core L0 I-caches + shared checker L1I + load forwarding unit
    + checkpoint storage.  With Table I values this is the paper's 80 KiB.
    """
    ck = config.checker
    det = config.detection
    log_kib = det.log_bytes / 1024
    l0_kib = ck.num_cores * ck.l0i.size_bytes / 1024
    shared_l1i_kib = ck.shared_l1i.size_bytes / 1024
    # load forwarding unit: one (addr, value) pair per ROB entry
    lfu_kib = config.main_core.rob_entries * 16 / 1024
    # checkpoint storage: one register file copy per segment + 1
    regs = config.main_core  # 32 int + 32 fp architectural registers
    ckpt_kib = (ck.num_cores + 1) * (64 * 8) / 1024
    return log_kib + l0_kib + shared_l1i_kib + lfu_kib + ckpt_kib


def area_model(config: SystemConfig) -> AreaBreakdown:
    """Evaluate the §VI-B area model for ``config``."""
    checker_area = (config.checker.num_cores * ROCKET_AREA_MM2_40NM
                    * NODE_SCALE_40_TO_20)
    sram_kib = added_sram_kib(config)
    sram_area = (sram_kib / 1024) * SRAM_MM2_PER_MIB
    return AreaBreakdown(
        main_core_mm2=A57_AREA_MM2_20NM,
        checker_cores_mm2=checker_area,
        sram_added_mm2=sram_area,
        l2_mm2=L2_AREA_MM2,
        added_sram_kib=sram_kib,
    )
