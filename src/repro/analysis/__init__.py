"""Analysis: area/power models (§VI-B/C), delay analytics, report formatting."""

from repro.analysis.area import AreaBreakdown, added_sram_kib, area_model
from repro.analysis.delay import DelaySummary, density_series, summarize_delays
from repro.analysis.power import (
    PowerBreakdown,
    energy_overhead_per_run,
    power_model,
)
from repro.analysis.report import (
    delay_table,
    format_table,
    series_block,
    slowdown_table,
)

__all__ = [
    "AreaBreakdown",
    "DelaySummary",
    "PowerBreakdown",
    "added_sram_kib",
    "area_model",
    "delay_table",
    "density_series",
    "energy_overhead_per_run",
    "format_table",
    "power_model",
    "series_block",
    "slowdown_table",
    "summarize_delays",
]
