"""bodytrack — PARSEC's particle-filter body tracker.

Mixed integer/FP with *data-dependent branches*: per particle, load its
state, compute a likelihood weight (FP), and take different update paths
depending on whether the weight clears a threshold — the branchy,
annealing-style structure of the original's particle resampling.  The
data-dependent branches give the tournament predictor real work and the
occasional misprediction the paper's mid-pack benchmarks show.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import float_data

DEFAULT_PARTICLES = 4096


def build(iterations: int = 1600, particles: int = DEFAULT_PARTICLES,
          seed: int | None = None) -> Program:
    """Build the bodytrack kernel over ``iterations`` particle updates."""
    b = ProgramBuilder("bodytrack")
    n = particles
    state = b.alloc_floats(float_data("bt-state", n, -2.0, 2.0, seed))
    obs = b.alloc_floats(float_data("bt-obs", n, -2.0, 2.0, seed))
    weights = b.alloc_words(n)

    b.emit(Opcode.MOVI, rd=1, imm=state)
    b.emit(Opcode.MOVI, rd=2, imm=obs)
    b.emit(Opcode.MOVI, rd=3, imm=weights)
    b.emit(Opcode.MOVI, rd=4, imm=0)
    b.emit(Opcode.MOVI, rd=5, imm=iterations)
    b.emit(Opcode.MOVI, rd=6, imm=n - 1)
    b.emit(Opcode.FMOVI, rd=10, imm=1.0)
    b.emit(Opcode.FMOVI, rd=11, imm=0.75)     # acceptance threshold
    b.emit(Opcode.FMOVI, rd=12, imm=0.5)

    b.label("particle")
    b.emit(Opcode.AND, rd=7, rs1=4, rs2=6)
    b.emit(Opcode.SLLI, rd=7, rs1=7, imm=3)
    b.emit(Opcode.ADD, rd=8, rs1=1, rs2=7)
    b.emit(Opcode.FLD, rd=0, rs1=8, imm=0)    # particle state
    b.emit(Opcode.ADD, rd=9, rs1=2, rs2=7)
    b.emit(Opcode.FLD, rd=1, rs1=9, imm=0)    # observation
    # weight = 1 / (1 + (state - obs)^2)   — likelihood shape
    b.emit(Opcode.FSUB, rd=2, rs1=0, rs2=1)
    b.emit(Opcode.FMUL, rd=2, rs1=2, rs2=2)
    b.emit(Opcode.FADD, rd=2, rs1=2, rs2=10)
    b.emit(Opcode.FDIV, rd=2, rs1=10, rs2=2)
    # data-dependent branch: accepted particles get the full update path
    b.emit(Opcode.FCMPLT, rd=11, rs1=2, rs2=11)
    b.emit(Opcode.BNE, rs1=11, rs2=0, target="rejected")
    # accepted: refine state toward observation and store weight
    b.emit(Opcode.FSUB, rd=3, rs1=1, rs2=0)
    b.emit(Opcode.FMUL, rd=3, rs1=3, rs2=12)
    b.emit(Opcode.FADD, rd=0, rs1=0, rs2=3)
    b.emit(Opcode.FST, rs2=0, rs1=8, imm=0)
    b.emit(Opcode.ADD, rd=12, rs1=3, rs2=7)
    b.emit(Opcode.FST, rs2=2, rs1=12, imm=0)
    b.emit(Opcode.J, target="next")
    b.label("rejected")
    # rejected: decay the weight only
    b.emit(Opcode.FMUL, rd=2, rs1=2, rs2=12)
    b.emit(Opcode.ADD, rd=12, rs1=3, rs2=7)
    b.emit(Opcode.FST, rs2=2, rs1=12, imm=0)
    b.label("next")
    b.emit(Opcode.ADDI, rd=4, rs1=4, imm=1)
    b.emit(Opcode.BLT, rs1=4, rs2=5, target="particle")
    b.emit(Opcode.HALT)
    return b.build()
