"""randacc — HPCC RandomAccess (GUPS).

The paper's extreme *irregular memory-bound* point: random read-modify-
write updates over a table much larger than the L2, giving near-zero
temporal/spatial locality, a very low main-core IPC, and — in the paper's
results — the highest mean detection delay (log segments fill slowly, so
early entries wait a long time for their check to start).

Kernel per update, exactly as HPCC:
``idx = prng(); table[idx] ^= prng_value`` — one dependent load, one XOR,
one store, plus the xorshift index generation.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import (
    emit_counted_loop_footer,
    emit_counted_loop_header,
    emit_xorshift,
)

#: table of 2^18 words = 2 MiB, twice the L2 (Table I), as RandomAccess
#: requires the table to dwarf the caches.
DEFAULT_TABLE_WORDS_LOG2 = 18


def build(iterations: int = 4000,
          table_words_log2: int = DEFAULT_TABLE_WORDS_LOG2) -> Program:
    """Build the randacc kernel with ``iterations`` updates."""
    b = ProgramBuilder("randacc")
    table_words = 1 << table_words_log2
    table = b.alloc_words(table_words)  # zero-initialised, touched on demand

    b.emit(Opcode.MOVI, rd=1, imm=table)
    b.emit(Opcode.MOVI, rd=2, imm=0x2545F4914F6CDD1D)  # xorshift state
    b.emit(Opcode.MOVI, rd=5, imm=table_words - 1)     # index mask
    emit_counted_loop_header(b, counter_reg=3, bound_reg=4,
                             iterations=iterations, label="update")
    emit_xorshift(b, state_reg=2, tmp_reg=10)
    b.emit(Opcode.AND, rd=11, rs1=2, rs2=5)        # idx = state & mask
    b.emit(Opcode.SLLI, rd=11, rs1=11, imm=3)
    b.emit(Opcode.ADD, rd=12, rs1=1, rs2=11)       # &table[idx]
    b.emit(Opcode.LD, rd=13, rs1=12, imm=0)
    b.emit(Opcode.XOR, rd=13, rs1=13, rs2=2)       # table[idx] ^= state
    b.emit(Opcode.ST, rs2=13, rs1=12, imm=0)
    emit_counted_loop_footer(b, counter_reg=3, bound_reg=4, label="update")
    b.emit(Opcode.HALT)
    return b.build()
