"""stream — HPCC/McCalpin STREAM.

The paper's extreme *regular memory-bound* point: sequential double-
precision sweeps (COPY, SCALE, ADD, TRIAD) through arrays larger than the
caches.  On the main core this gives a low IPC limited by memory latency
and bandwidth; the checker cores see no data misses at all (their data
comes from the log), which is why stream barely degrades even at 125 MHz
checkers in Figure 9.

Footprint substitution: real STREAM is bandwidth-bound because its arrays
dwarf the LLC, so at cache-line granularity *every* line is a miss.  To
keep trace lengths tractable we stride one element per 64-byte line — the
same every-access-misses behaviour with 8× fewer instructions per line.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import float_data

#: bytes between consecutive elements: one element per cache line
ELEMENT_STRIDE = 64


def build(elements: int = 2000, array_words: int | None = None,
          seed: int | None = None) -> Program:
    """Build one pass of the four STREAM kernels over ``elements`` doubles.

    ``elements`` bounds the trace length; each element occupies its own
    cache line (see module docstring), so the per-array footprint is
    ``elements * 64`` bytes unless ``array_words`` caps it.
    """
    b = ProgramBuilder("stream")
    stride_words = ELEMENT_STRIDE // 8
    words_needed = elements * stride_words
    n = elements if array_words is None else min(elements,
                                                 array_words // stride_words)
    footprint = n * stride_words if array_words is None else array_words
    seed_values = float_data("stream-a", n, seed=seed)
    a = b.alloc_words(footprint)
    for i, value in enumerate(seed_values):
        b.put_float(a + i * ELEMENT_STRIDE, value)
    c_arr = b.alloc_words(footprint)
    bb = b.alloc_words(footprint)

    b.emit(Opcode.FMOVI, rd=8, imm=3.0)  # scalar q

    def sweep(label: str, body) -> None:
        b.emit(Opcode.MOVI, rd=1, imm=a)
        b.emit(Opcode.MOVI, rd=2, imm=bb)
        b.emit(Opcode.MOVI, rd=3, imm=c_arr)
        b.emit(Opcode.MOVI, rd=4, imm=0)
        b.emit(Opcode.MOVI, rd=5, imm=n)
        b.label(label)
        body()
        b.emit(Opcode.ADDI, rd=1, rs1=1, imm=ELEMENT_STRIDE)
        b.emit(Opcode.ADDI, rd=2, rs1=2, imm=ELEMENT_STRIDE)
        b.emit(Opcode.ADDI, rd=3, rs1=3, imm=ELEMENT_STRIDE)
        b.emit(Opcode.ADDI, rd=4, rs1=4, imm=1)
        b.emit(Opcode.BLT, rs1=4, rs2=5, target=label)

    # COPY: c[i] = a[i]
    def copy_body() -> None:
        b.emit(Opcode.FLD, rd=0, rs1=1, imm=0)
        b.emit(Opcode.FST, rs2=0, rs1=3, imm=0)
    sweep("copy", copy_body)

    # SCALE: b[i] = q * c[i]
    def scale_body() -> None:
        b.emit(Opcode.FLD, rd=0, rs1=3, imm=0)
        b.emit(Opcode.FMUL, rd=1, rs1=0, rs2=8)
        b.emit(Opcode.FST, rs2=1, rs1=2, imm=0)
    sweep("scale", scale_body)

    # ADD: c[i] = a[i] + b[i]
    def add_body() -> None:
        b.emit(Opcode.FLD, rd=0, rs1=1, imm=0)
        b.emit(Opcode.FLD, rd=1, rs1=2, imm=0)
        b.emit(Opcode.FADD, rd=2, rs1=0, rs2=1)
        b.emit(Opcode.FST, rs2=2, rs1=3, imm=0)
    sweep("add", add_body)

    # TRIAD: a[i] = b[i] + q * c[i]
    def triad_body() -> None:
        b.emit(Opcode.FLD, rd=0, rs1=2, imm=0)
        b.emit(Opcode.FLD, rd=1, rs1=3, imm=0)
        b.emit(Opcode.FMADD, rd=2, rs1=1, rs2=8, rs3=0)
        b.emit(Opcode.FST, rs2=2, rs1=1, imm=0)
    sweep("triad", triad_body)

    b.emit(Opcode.HALT)
    return b.build()
