"""freqmine — PARSEC's FP-growth frequent-itemset miner.

Integer, pointer-chasing, moderately branchy: the core of FP-growth is
walking item-prefix tree paths and bumping support counters.  The kernel
builds a random static tree (parent-pointer array), then repeatedly walks
from a pseudo-random node up to the root, incrementing each node's count
— dependent loads (each parent lookup depends on the previous), read-
modify-write stores, and a data-dependent walk length.
"""

from __future__ import annotations

from repro.common.rng import derive
from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import (
    emit_counted_loop_footer,
    emit_counted_loop_header,
    emit_xorshift,
)

DEFAULT_NODES = 8192  # two words per node: parent index, count


def build(walks: int = 1800, nodes: int = DEFAULT_NODES,
          seed: int | None = None) -> Program:
    """Build the freqmine kernel performing ``walks`` root-ward walks."""
    b = ProgramBuilder("freqmine")
    rng = derive(seed, "freqmine-tree")
    # parent[i] < i for a well-formed forest rooted at node 0
    parents = [0] + [rng.randrange(0, i) for i in range(1, nodes)]
    parent_arr = b.alloc_words(nodes, parents)
    count_arr = b.alloc_words(nodes)

    b.emit(Opcode.MOVI, rd=1, imm=parent_arr)
    b.emit(Opcode.MOVI, rd=2, imm=count_arr)
    b.emit(Opcode.MOVI, rd=5, imm=0x9E3779B97F4A7C15)  # xorshift state
    b.emit(Opcode.MOVI, rd=6, imm=nodes - 1)           # mask
    emit_counted_loop_header(b, counter_reg=3, bound_reg=4,
                             iterations=walks, label="walk")
    emit_xorshift(b, state_reg=5, tmp_reg=10)
    b.emit(Opcode.AND, rd=11, rs1=5, rs2=6)     # start node
    b.label("climb")
    b.emit(Opcode.SLLI, rd=12, rs1=11, imm=3)
    b.emit(Opcode.ADD, rd=13, rs1=2, rs2=12)
    b.emit(Opcode.LD, rd=14, rs1=13, imm=0)     # count[node]
    b.emit(Opcode.ADDI, rd=14, rs1=14, imm=1)
    b.emit(Opcode.ST, rs2=14, rs1=13, imm=0)    # count[node]++
    b.emit(Opcode.ADD, rd=13, rs1=1, rs2=12)
    b.emit(Opcode.LD, rd=11, rs1=13, imm=0)     # node = parent[node]
    b.emit(Opcode.BNE, rs1=11, rs2=0, target="climb")
    # bump the root once per walk
    b.emit(Opcode.LD, rd=14, rs1=2, imm=0)
    b.emit(Opcode.ADDI, rd=14, rs1=14, imm=1)
    b.emit(Opcode.ST, rs2=14, rs1=2, imm=0)
    emit_counted_loop_footer(b, counter_reg=3, bound_reg=4, label="walk")
    b.emit(Opcode.HALT)
    return b.build()
