"""fluidanimate — PARSEC's SPH fluid simulation.

Mixed memory/FP behaviour: per particle, load its own state and two
neighbours' states (strided but multi-stream accesses over arrays that
exceed the L1), compute pairwise-interaction FP arithmetic (distances,
kernel weights), and store updated velocity.  Sits between stream and
blackscholes on the memory/compute axis, like the original.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import float_data

DEFAULT_PARTICLES = 4096  # 3 arrays x 32 KiB


def build(iterations: int = 1500, particles: int = DEFAULT_PARTICLES,
          seed: int | None = None) -> Program:
    """Build the fluidanimate kernel over ``iterations`` particle updates."""
    b = ProgramBuilder("fluidanimate")
    n = particles
    pos_x = b.alloc_floats(float_data("fluid-x", n, 0.0, 10.0, seed))
    pos_y = b.alloc_floats(float_data("fluid-y", n, 0.0, 10.0, seed))
    vel = b.alloc_words(n)

    b.emit(Opcode.MOVI, rd=1, imm=pos_x)
    b.emit(Opcode.MOVI, rd=2, imm=pos_y)
    b.emit(Opcode.MOVI, rd=3, imm=vel)
    b.emit(Opcode.MOVI, rd=4, imm=0)          # particle index
    b.emit(Opcode.MOVI, rd=5, imm=iterations)
    b.emit(Opcode.MOVI, rd=6, imm=n - 1)      # wrap mask (n power of two)
    b.emit(Opcode.FMOVI, rd=10, imm=0.05)     # dt
    b.emit(Opcode.FMOVI, rd=11, imm=1.0)
    b.emit(Opcode.FMOVI, rd=12, imm=0.01)     # softening

    b.label("particle")
    b.emit(Opcode.AND, rd=7, rs1=4, rs2=6)    # i = iter & (n-1)
    b.emit(Opcode.SLLI, rd=7, rs1=7, imm=3)
    b.emit(Opcode.ADD, rd=8, rs1=1, rs2=7)
    b.emit(Opcode.FLD, rd=0, rs1=8, imm=0)    # x[i]
    b.emit(Opcode.ADD, rd=9, rs1=2, rs2=7)
    b.emit(Opcode.FLD, rd=1, rs1=9, imm=0)    # y[i]
    # neighbour i+1 (wrapping handled by array slack: use offset 8)
    b.emit(Opcode.FLD, rd=2, rs1=8, imm=8)    # x[i+1]
    b.emit(Opcode.FLD, rd=3, rs1=9, imm=8)    # y[i+1]
    # squared distance + softening
    b.emit(Opcode.FSUB, rd=4, rs1=0, rs2=2)
    b.emit(Opcode.FSUB, rd=5, rs1=1, rs2=3)
    b.emit(Opcode.FMUL, rd=4, rs1=4, rs2=4)
    b.emit(Opcode.FMADD, rd=4, rs1=5, rs2=5, rs3=4)
    b.emit(Opcode.FADD, rd=4, rs1=4, rs2=12)
    b.emit(Opcode.FSQRT, rd=5, rs1=4)         # distance
    b.emit(Opcode.FDIV, rd=6, rs1=11, rs2=5)  # 1/r kernel weight
    # velocity update: v[i] = (x[i]+y[i]) * w * dt
    b.emit(Opcode.FADD, rd=7, rs1=0, rs2=1)
    b.emit(Opcode.FMUL, rd=7, rs1=7, rs2=6)
    b.emit(Opcode.FMUL, rd=7, rs1=7, rs2=10)
    b.emit(Opcode.ADD, rd=10, rs1=3, rs2=7)
    b.emit(Opcode.FST, rs2=7, rs1=10, imm=0)
    b.emit(Opcode.ADDI, rd=4, rs1=4, imm=1)
    b.emit(Opcode.BLT, rs1=4, rs2=5, target="particle")
    b.emit(Opcode.HALT)
    return b.build()
