"""swaptions — PARSEC's Monte-Carlo HJM swaption pricer.

Nearly pure FP compute with *long dependency chains*: each simulated path
advances a forward rate step by step, each step depending on the last, fed
by PRNG draws.  Long serial FP chains are the worst case for the scalar
in-order checkers relative to the OoO main core, making swaptions one of
the most checker-frequency-sensitive benchmarks in Figure 9 — behaviour
this kernel reproduces.

Includes RDRAND in the path loop, exercising the paper's non-deterministic
result forwarding through the load-store log (§IV-D): the checkers must
consume the same draws the main core saw.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder

STEPS_PER_PATH = 16


def build(paths: int = 250, steps: int = STEPS_PER_PATH) -> Program:
    """Build the swaptions kernel over ``paths`` Monte-Carlo paths."""
    b = ProgramBuilder("swaptions")
    payoffs = b.alloc_words(paths)
    # per-step simulated forward-rate path (HJM stores the rate surface)
    rate_path = b.alloc_words(steps)

    b.emit(Opcode.MOVI, rd=1, imm=payoffs)
    b.emit(Opcode.MOVI, rd=2, imm=0)          # path index
    b.emit(Opcode.MOVI, rd=3, imm=paths)
    b.emit(Opcode.MOVI, rd=6, imm=steps)
    b.emit(Opcode.MOVI, rd=8, imm=0xFFFFF)    # draw mask
    b.emit(Opcode.FMOVI, rd=10, imm=0.04)     # initial rate
    b.emit(Opcode.FMOVI, rd=11, imm=0.002)    # drift
    b.emit(Opcode.FMOVI, rd=12, imm=0.0000019)  # vol scale (per draw unit)
    b.emit(Opcode.FMOVI, rd=13, imm=524288.0)   # draw midpoint (2^19)
    b.emit(Opcode.FMOVI, rd=14, imm=0.045)    # strike rate

    b.label("path")
    b.emit(Opcode.FMOV, rd=0, rs1=10)         # rate = r0
    b.emit(Opcode.MOVI, rd=5, imm=0)          # step
    b.label("step")
    # centred uniform draw from RDRAND, forwarded via the log on replay
    b.emit(Opcode.RDRAND, rd=9)
    b.emit(Opcode.AND, rd=9, rs1=9, rs2=8)
    b.emit(Opcode.FCVT_I2F, rd=1, rs1=9)
    b.emit(Opcode.FSUB, rd=1, rs1=1, rs2=13)  # draw - midpoint
    b.emit(Opcode.FMUL, rd=1, rs1=1, rs2=12)  # shock
    # rate evolves serially: rate += drift*rate + shock  (dependent chain)
    b.emit(Opcode.FMUL, rd=2, rs1=0, rs2=11)
    b.emit(Opcode.FADD, rd=2, rs1=2, rs2=1)
    b.emit(Opcode.FADD, rd=0, rs1=0, rs2=2)
    # record the evolved rate in the path surface (as HJM does)
    b.emit(Opcode.MOVI, rd=4, imm=rate_path)
    b.emit(Opcode.SLLI, rd=10, rs1=5, imm=3)
    b.emit(Opcode.ADD, rd=4, rs1=4, rs2=10)
    b.emit(Opcode.FST, rs2=0, rs1=4, imm=0)
    b.emit(Opcode.ADDI, rd=5, rs1=5, imm=1)
    b.emit(Opcode.BLT, rs1=5, rs2=6, target="step")
    # payoff = max(rate - strike, 0)
    b.emit(Opcode.FSUB, rd=3, rs1=0, rs2=14)
    b.emit(Opcode.FMOVI, rd=4, imm=0.0)
    b.emit(Opcode.FMAX, rd=3, rs1=3, rs2=4)
    b.emit(Opcode.SLLI, rd=7, rs1=2, imm=3)
    b.emit(Opcode.ADD, rd=7, rs1=1, rs2=7)
    b.emit(Opcode.FST, rs2=3, rs1=7, imm=0)
    b.emit(Opcode.ADDI, rd=2, rs1=2, imm=1)
    b.emit(Opcode.BLT, rs1=2, rs2=3, target="path")
    b.emit(Opcode.HALT)
    return b.build()
