"""Shared helpers for the workload kernels.

The nine Table II benchmarks are re-expressed as kernels in the repro ISA.
They are chosen/parameterised to sit at the same points as the originals on
the axes the evaluation cares about — memory-boundedness vs. compute-
boundedness, access regularity, FP intensity, branchiness — because those
axes drive every figure in §VI.

Register conventions used by the kernels (documentation, not enforcement):
``x1``–``x9`` addresses and loop bounds, ``x10``–``x20`` scratch,
``f0``–``f15`` FP working set.
"""

from __future__ import annotations

from repro.common.rng import derive
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder


def emit_counted_loop_header(b: ProgramBuilder, counter_reg: int,
                             bound_reg: int, iterations: int,
                             label: str) -> None:
    """Initialise ``counter = 0``, ``bound = iterations`` and open a loop
    label.  Close it with :func:`emit_counted_loop_footer`."""
    b.emit(Opcode.MOVI, rd=counter_reg, imm=0)
    b.emit(Opcode.MOVI, rd=bound_reg, imm=iterations)
    b.label(label)


def emit_counted_loop_footer(b: ProgramBuilder, counter_reg: int,
                             bound_reg: int, label: str) -> None:
    """Increment the counter and branch back while ``counter < bound``."""
    b.emit(Opcode.ADDI, rd=counter_reg, rs1=counter_reg, imm=1)
    b.emit(Opcode.BLT, rs1=counter_reg, rs2=bound_reg, target=label)


def emit_xorshift(b: ProgramBuilder, state_reg: int, tmp_reg: int) -> None:
    """One round of xorshift64 on ``state_reg`` (deterministic PRNG used by
    the irregular-access kernels; mirrors HPCC RandomAccess's LCG role)."""
    b.emit(Opcode.SLLI, rd=tmp_reg, rs1=state_reg, imm=13)
    b.emit(Opcode.XOR, rd=state_reg, rs1=state_reg, rs2=tmp_reg)
    b.emit(Opcode.SRLI, rd=tmp_reg, rs1=state_reg, imm=7)
    b.emit(Opcode.XOR, rd=state_reg, rs1=state_reg, rs2=tmp_reg)
    b.emit(Opcode.SLLI, rd=tmp_reg, rs1=state_reg, imm=17)
    b.emit(Opcode.XOR, rd=state_reg, rs1=state_reg, rs2=tmp_reg)


def float_data(seed_salt: str, count: int, lo: float = 0.1,
               hi: float = 4.0, seed: int | None = None) -> list[float]:
    """Deterministic FP initial data for a kernel's arrays."""
    rng = derive(seed, seed_salt)
    return [lo + (hi - lo) * rng.random() for _ in range(count)]


def int_data(seed_salt: str, count: int, bits: int = 32,
             seed: int | None = None) -> list[int]:
    """Deterministic integer initial data."""
    rng = derive(seed, seed_salt)
    return [rng.getrandbits(bits) for _ in range(count)]
