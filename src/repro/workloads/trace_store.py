"""The shared golden-trace store: content-addressed clean executions.

Every campaign job over a benchmark needs its *clean* committed trace —
timing jobs re-time it, fault jobs compare the faulty run against it and
re-execute its program, recovery jobs roll back to states derived from
it.  The functional execution that produces it is a pure function of the
built program, so it is worth computing exactly once per (benchmark,
scale, program-content) **across all worker processes and hosts**, not
once per process.

This module stores golden traces on disk next to the campaign run cache,
content-addressed like it::

    <root>/<key[:2]>/<key>.json      {key, schema, trace, keyframes} envelopes

where the key hashes the benchmark name, scale, the store schema, and a
**fingerprint of the built program** (opcodes, operands, data image,
entry point) — so a changed workload generator can never serve a stale
trace.  The trace payload itself is the columnar dump of
:meth:`repro.isa.executor.Trace.to_payload`, which encodes all FP values
as IEEE-754 bit patterns: a round trip through the store is bit-exact,
and a campaign fed from the store is byte-identical to one that
re-executed every clean trace.

Workers *fork* the stored trace rather than re-running it: the trace's
program (rebuilt deterministically in-process) supplies a fresh
:meth:`~repro.isa.program.Program.initial_memory` image for faulty
re-executions, and the columns themselves are immutable.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path

from repro.common.records import canonical_json
from repro.isa.executor import Keyframes, Trace
from repro.isa.memory_image import float_to_bits
from repro.isa.program import Program

#: Bump whenever the trace payload layout or execution semantics change:
#: mismatched envelopes read as misses and are re-executed, never as
#: silently stale traces.  v2: envelopes carry periodic state keyframes
#: (:class:`repro.isa.executor.Keyframes`), so a worker forking a stored
#: trace reconstructs fork-point state without a column walk over the
#: whole prefix.
TRACE_STORE_SCHEMA = 2


def program_fingerprint(program: Program) -> str:
    """Content hash of a built program (code + data image + entry).

    FP immediates hash by bit pattern so two programs differing only in
    a NaN payload or signed zero fingerprint differently.
    """
    instructions = []
    for instr in program.instructions:
        imm = instr.imm
        if isinstance(imm, float):
            imm = ["f", float_to_bits(imm)]
        instructions.append([
            instr.op.value, instr.rd, instr.rs1, instr.rs2, instr.rs3,
            instr.rd2, imm, instr.target,
        ])
    payload = {
        "entry": program.entry,
        "instructions": instructions,
        "data": sorted(program.data.items()),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class TraceStore:
    """Content-addressed on-disk store of golden (clean) traces.

    Mirrors the run cache's layout and crash discipline: canonical-JSON
    envelopes written atomically (temp file + rename), unreadable or
    mismatched files read as misses.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def key(self, benchmark: str, scale: str, program: Program) -> str:
        """The store key of one benchmark's golden trace."""
        description = {
            "schema": TRACE_STORE_SCHEMA,
            "benchmark": benchmark,
            "scale": scale,
            "program": program_fingerprint(program),
        }
        return hashlib.sha256(
            canonical_json(description).encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str, program: Program) -> Trace | None:
        """The stored golden trace for ``key``, rebuilt over ``program``
        (the in-process program object the caller already built)."""
        try:
            envelope = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (not isinstance(envelope, dict)
                or envelope.get("key") != key
                or envelope.get("schema") != TRACE_STORE_SCHEMA
                or not isinstance(envelope.get("trace"), dict)):
            self.misses += 1
            return None
        try:
            trace = Trace.from_payload(program, envelope["trace"])
            trace._keyframes = Keyframes.from_payload(envelope["keyframes"])
        except (KeyError, TypeError, ValueError, OverflowError):
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def put(self, key: str, trace: Trace) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = canonical_json({
            "key": key,
            "schema": TRACE_STORE_SCHEMA,
            "trace": trace.to_payload(),
            # fork-point jobs reconstruct state from these instead of
            # replaying the whole prefix column-by-column
            "keyframes": trace.keyframes().to_payload(),
        })
        # concurrent same-key writers (two workers racing on a cold
        # store) must not trample each other's temp files
        tmp = path.with_suffix(f".tmp.{os.getpid()}-{uuid.uuid4().hex[:8]}")
        tmp.write_text(envelope)
        os.replace(tmp, path)
        self.writes += 1
