"""The shared golden-trace store: content-addressed clean executions.

Every campaign job over a benchmark needs its *clean* committed trace —
timing jobs re-time it, fault jobs compare the faulty run against it and
re-execute its program, recovery jobs roll back to states derived from
it.  The functional execution that produces it is a pure function of the
built program, so it is worth computing exactly once per (benchmark,
scale, program-content) **across all worker processes and hosts**, not
once per process.

This module stores golden traces on disk next to the campaign run cache,
content-addressed like it::

    <root>/<key[:2]>/<key>.bin       binary columnar envelopes (schema 4)

where the key hashes the benchmark name, scale, the store schema, and a
**fingerprint of the built program** (opcodes, operands, data image,
entry point) — so a changed workload generator can never serve a stale
trace.

Schema 3/4 envelopes are **binary columnar**: one memory-mappable file per
trace holding a small JSON header (scalars, register files, a block
offset table, a CRC-32 of the data region) followed by 8-byte-aligned
fixed-width column blocks —
``pcs``/``takens``, the CSR memory block (``mem_off`` +
``mem_kind/addr/value/used``), the writeback CSR (``dst_*``), the final
memory image, and the keyframe delta tables.  All FP values are stored
as IEEE-754 bit patterns, so a round trip is bit-exact and a campaign
fed from the store is byte-identical to one that re-executed every
clean trace.  Loading maps the file read-only and exposes the numeric
columns as zero-copy memoryviews over the mapping: workers on one host
share the page cache instead of each re-parsing JSON, and whole-column
operations (checker fast path, fork-state replay) can wrap the same
bytes in numpy without copying.

Schema 4 adds optional **golden timing sections** — per-configuration
per-instruction issue/commit cycles, branch outcomes and cache-miss
deltas recorded by the OoO model's first clean run (see
``repro.core.timing``) — appended as further blocks under the same CRC.
They are strictly additive: the store *key* still hashes schema 3, so
warm v3 stores keep serving traces and are upgraded in place by
:meth:`TraceStore.put_timing`.

Envelopes from earlier schemas (the JSON era) are never converted: the
schema number is part of the store key, so old files are simply ignored
and golden traces are re-derived once under the new key.

Workers *fork* the stored trace rather than re-running it: the trace's
program (rebuilt deterministically in-process) supplies a fresh
:meth:`~repro.isa.program.Program.initial_memory` image for faulty
re-executions, and the columns themselves are immutable.
"""

from __future__ import annotations

import hashlib
import json
import logging
import mmap
import os
import struct
import sys
import time
import uuid
import zlib
from array import array
from pathlib import Path

from repro.common.records import canonical_json
from repro.core.ooo_core import CoreResult
from repro.core.timing import TimingRecord
from repro.isa.executor import Keyframe, Keyframes, Trace
from repro.isa.memory_image import MemoryImage, bits_to_float, float_to_bits
from repro.isa.program import Program

logger = logging.getLogger(__name__)

#: Bump whenever the trace payload layout or execution semantics change:
#: mismatched envelopes read as misses and are re-executed, never as
#: silently stale traces.  v2: envelopes carry periodic state keyframes
#: (:class:`repro.isa.executor.Keyframes`).  v3: binary columnar
#: envelopes (one memory-mappable ``.bin`` file per trace; zero-copy
#: column views; FP values as IEEE-754 bit patterns).  v4: envelopes may
#: additionally carry golden per-instruction *timing* sections, one per
#: system-configuration key (issue/commit cycles, branch outcome, L1D/L2
#: miss deltas, plus the run's :class:`~repro.core.ooo_core.CoreResult`
#: scalars), appended as further 8-aligned blocks in the same ``RTS3``
#: layout and covered by the same data-region CRC.
TRACE_STORE_SCHEMA = 4

#: Header schemas this reader accepts.  A v3 envelope is exactly a v4
#: envelope with no timing sections: it reads as a *trace* hit and a
#: *timing* miss, and the first published timing record upgrades the
#: file in place.
READABLE_SCHEMAS = frozenset({3, TRACE_STORE_SCHEMA})

#: Schema generation folded into store *keys* — deliberately still 3:
#: v4 is purely additive (same trace columns, same execution semantics),
#: so existing envelopes stay addressable and upgrade in place instead
#: of being orphaned by a key change.
KEY_SCHEMA = 3

#: Leading magic of a schema-3/4 envelope file.
ENVELOPE_MAGIC = b"RTS3"

#: Age (seconds) past which a stranded ``*.tmp.*`` file — a writer
#: killed between writing its temp file and the atomic rename — is
#: swept at store/cache init.  Matches the orchestrator's default lease
#: TTL: anything older cannot belong to a live, leased writer.
STALE_TEMP_TTL = 300.0


def sweep_stale_temps(root: str | os.PathLike,
                      ttl: float = STALE_TEMP_TTL) -> int:
    """Delete crash-stranded ``<root>/*/xx.tmp.suffix`` files older than
    ``ttl`` seconds, returning how many were removed.

    Atomic-write discipline (temp file + ``os.replace``) means a temp
    file's only legitimate lifetime is the instant between write and
    rename; anything old enough to outlive a lease is a leak from a
    killed writer.  Races are harmless: a concurrent sweeper or the
    original writer finishing first just makes the unlink a no-op.
    """
    root = Path(root)
    if not root.is_dir():
        return 0
    cutoff = time.time() - ttl
    swept = 0
    for tmp in root.glob("*/*.tmp.*"):
        try:
            if tmp.stat().st_mtime <= cutoff:
                tmp.unlink()
                swept += 1
        except OSError:  # vanished mid-sweep (another sweeper/writer won)
            continue
    return swept


def program_fingerprint(program: Program) -> str:
    """Content hash of a built program (code + data image + entry).

    FP immediates hash by bit pattern so two programs differing only in
    a NaN payload or signed zero fingerprint differently.
    """
    instructions = []
    for instr in program.instructions:
        imm = instr.imm
        if isinstance(imm, float):
            imm = ["f", float_to_bits(imm)]
        instructions.append([
            instr.op.value, instr.rd, instr.rs1, instr.rs2, instr.rs3,
            instr.rd2, imm, instr.target,
        ])
    payload = {
        "entry": program.entry,
        "instructions": instructions,
        "data": sorted(program.data.items()),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class _CorruptEnvelope(ValueError):
    """A present-but-unusable envelope (truncated, bad magic, garbage)."""


class _SchemaMismatch(ValueError):
    """A well-formed envelope of another schema generation (cold miss)."""


#: Column blocks of a schema-3 envelope, in file order, with their
#: ``array`` typecodes.  Every block is fixed-width and 8-byte-aligned;
#: integer widths are pinned here once (u64 data, i8 kinds/takens, u8
#: register indices) — values that do not fit fail the write loudly
#: (``OverflowError``) instead of truncating.
_BLOCKS = (
    ("pcs", "Q"), ("takens", "b"),
    ("mem_off", "Q"), ("mem_kind", "b"), ("mem_addr", "Q"),
    ("mem_value", "Q"), ("mem_used", "Q"),
    ("dst_off", "Q"), ("dst_isfp", "B"), ("dst_idx", "B"), ("dst_bits", "Q"),
    ("img_addr", "Q"), ("img_value", "Q"),
    ("kf_seq", "Q"), ("kf_uops", "Q"), ("kf_loads", "Q"), ("kf_stores", "Q"),
    ("kf_x_off", "Q"), ("kf_x_idx", "B"), ("kf_x_val", "Q"),
    ("kf_f_off", "Q"), ("kf_f_idx", "B"), ("kf_f_bits", "Q"),
    ("kf_m_off", "Q"), ("kf_m_addr", "Q"), ("kf_m_val", "Q"),
)

#: Per-configuration timing blocks of a schema-4 envelope (appended
#: after the trace blocks, one set per stored configuration key):
#: issue/commit cycles, branch outcome (-1 none / 0 predicted /
#: 1 mispredicted) and per-row L1D/L2 miss deltas (u16: a row can miss
#: at most a handful of times; wider counts fail the write loudly).
_TIMING_BLOCKS = (
    ("tm_issue", "Q"), ("tm_commit", "Q"), ("tm_branch", "b"),
    ("tm_l1d", "H"), ("tm_l2", "H"),
)

#: CoreResult scalars carried verbatim in each timing section's header.
_TIMING_RESULT_FIELDS = (
    "cycles", "instructions", "uops", "system_cycles", "branch_lookups",
    "branch_mispredicts", "l1d_misses", "l2_misses", "commit_stall_cycles",
)

_TYPECODES = dict(_BLOCKS)
_TIMING_TYPECODES = dict(_TIMING_BLOCKS)

_ITEMSIZE = {"Q": 8, "b": 1, "B": 1, "H": 2}


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _encode_envelope(key: str, trace: Trace,
                     timings: dict | None = None) -> bytes:
    """Serialise one golden trace (plus keyframes, plus any golden
    timing records keyed by configuration) as a schema-4 blob."""
    kf = trace.keyframes()
    n = len(trace)

    # writeback CSR: FP values frozen to bit patterns, int values are
    # already masked 64-bit patterns — array('Q') rejects anything else
    dst_off = array("Q", [0])
    dst_isfp = array("B")
    dst_idx = array("B")
    dst_bits = array("Q")
    total = 0
    for row in trace.dsts:
        for is_fp, idx, value in row:
            dst_isfp.append(1 if is_fp else 0)
            dst_idx.append(idx)
            dst_bits.append(float_to_bits(value) if is_fp else value)
        total += len(row)
        dst_off.append(total)

    img = sorted(trace.memory.items())

    # keyframe delta tables as CSR columns (sorted within each frame for
    # byte-stable files; delta dicts are order-insensitive on read)
    kf_seq = array("Q", (f.seq for f in kf.frames))
    kf_uops = array("Q", (f.uops for f in kf.frames))
    kf_loads = array("Q", (f.loads for f in kf.frames))
    kf_stores = array("Q", (f.stores for f in kf.frames))
    kf_x_off = array("Q", [0])
    kf_x_idx = array("B")
    kf_x_val = array("Q")
    kf_f_off = array("Q", [0])
    kf_f_idx = array("B")
    kf_f_bits = array("Q")
    kf_m_off = array("Q", [0])
    kf_m_addr = array("Q")
    kf_m_val = array("Q")
    for frame in kf.frames:
        for idx, value in sorted(frame.xregs.items()):
            kf_x_idx.append(idx)
            kf_x_val.append(value)
        kf_x_off.append(len(kf_x_idx))
        for idx, value in sorted(frame.fregs.items()):
            kf_f_idx.append(idx)
            kf_f_bits.append(float_to_bits(value))
        kf_f_off.append(len(kf_f_idx))
        for addr, value in sorted(frame.mem.items()):
            kf_m_addr.append(addr)
            kf_m_val.append(value)
        kf_m_off.append(len(kf_m_addr))

    columns = {
        "pcs": trace.pcs if isinstance(trace.pcs, array)
        else array("Q", trace.pcs),
        "takens": trace.takens if isinstance(trace.takens, array)
        else array("b", trace.takens),
        "mem_off": trace.mem_off if isinstance(trace.mem_off, array)
        else array("Q", trace.mem_off),
        "mem_kind": trace.mem_kind if isinstance(trace.mem_kind, array)
        else array("b", trace.mem_kind),
        "mem_addr": trace.mem_addr if isinstance(trace.mem_addr, array)
        else array("Q", trace.mem_addr),
        "mem_value": trace.mem_value if isinstance(trace.mem_value, array)
        else array("Q", trace.mem_value),
        "mem_used": trace.mem_used if isinstance(trace.mem_used, array)
        else array("Q", trace.mem_used),
        "dst_off": dst_off, "dst_isfp": dst_isfp, "dst_idx": dst_idx,
        "dst_bits": dst_bits,
        "img_addr": array("Q", (a for a, _ in img)),
        "img_value": array("Q", (v for _, v in img)),
        "kf_seq": kf_seq, "kf_uops": kf_uops, "kf_loads": kf_loads,
        "kf_stores": kf_stores,
        "kf_x_off": kf_x_off, "kf_x_idx": kf_x_idx, "kf_x_val": kf_x_val,
        "kf_f_off": kf_f_off, "kf_f_idx": kf_f_idx, "kf_f_bits": kf_f_bits,
        "kf_m_off": kf_m_off, "kf_m_addr": kf_m_addr, "kf_m_val": kf_m_val,
    }

    blocks: dict[str, list[int]] = {}
    blobs: list[tuple[int, bytes]] = []
    offset = 0
    for name, _code in _BLOCKS:
        col = columns[name]
        data = bytes(col)
        offset = _align8(offset)
        blocks[name] = [offset, len(col)]
        blobs.append((offset, data))
        offset += len(data)

    # golden timing sections: further 8-aligned blocks per configuration
    # key, sorted for byte-stable files
    timing_header: dict[str, dict] = {}
    for config_key in sorted(timings or ()):
        record = timings[config_key]
        section_blocks: dict[str, list[int]] = {}
        section_columns = {
            "tm_issue": record.issue, "tm_commit": record.commit,
            "tm_branch": record.branch, "tm_l1d": record.l1d,
            "tm_l2": record.l2,
        }
        for name, code in _TIMING_BLOCKS:
            col = array(code, section_columns[name])
            data = bytes(col)
            offset = _align8(offset)
            section_blocks[name] = [offset, len(col)]
            blobs.append((offset, data))
            offset += len(data)
        timing_header[config_key] = {
            "result": {field: getattr(record.result, field)
                       for field in _TIMING_RESULT_FIELDS},
            "blocks": section_blocks,
        }

    region = bytearray(_align8(offset))
    for off, data in blobs:
        region[off:off + len(data)] = data

    header = {
        "crc32": zlib.crc32(region),
        "key": key,
        "schema": TRACE_STORE_SCHEMA,
        "byteorder": sys.byteorder,
        "n": n,
        "final_next_pc": trace.final_next_pc,
        "final_xregs": list(trace.final_xregs),
        "final_fregs": [float_to_bits(v) for v in trace.final_fregs],
        "halted": trace.halted,
        "crashed": trace.crashed,
        "uop_count": trace.uop_count,
        "load_count": trace.load_count,
        "store_count": trace.store_count,
        "kf_interval": kf.interval,
        "blocks": blocks,
    }
    if timing_header:
        header["timings"] = timing_header
    header_bytes = canonical_json(header).encode()
    data_start = _align8(len(ENVELOPE_MAGIC) + 4 + len(header_bytes))
    out = bytearray(data_start)
    out[:4] = ENVELOPE_MAGIC
    struct.pack_into("<I", out, 4, len(header_bytes))
    out[8:8 + len(header_bytes)] = header_bytes
    return bytes(out) + bytes(region)


def _read_header(buf) -> tuple[dict, int]:
    """(header dict, data-region start) of one envelope buffer; raises
    :class:`_CorruptEnvelope` on anything that is not a schema-3 file."""
    view = memoryview(buf)
    if len(view) < 8 or bytes(view[:4]) != ENVELOPE_MAGIC:
        raise _CorruptEnvelope("bad envelope magic")
    (header_len,) = struct.unpack_from("<I", view, 4)
    if 8 + header_len > len(view):
        raise _CorruptEnvelope("truncated envelope header")
    try:
        header = json.loads(bytes(view[8:8 + header_len]).decode())
    except (ValueError, UnicodeDecodeError) as error:
        raise _CorruptEnvelope(f"unparseable envelope header: {error}")
    if not isinstance(header, dict):
        raise _CorruptEnvelope("envelope header is not an object")
    return header, _align8(8 + header_len)


def _decode_envelope(buf, key: str, program: Program) -> Trace:
    """Rebuild a trace (with keyframes) over ``program`` from one mapped
    schema-3 envelope.  Numeric columns come back as zero-copy
    memoryviews over ``buf``; ragged structures (writeback rows,
    keyframe deltas) are decoded eagerly into their in-process shapes.
    """
    view = memoryview(buf)
    header, data_start = _read_header(view)
    if header.get("schema") not in READABLE_SCHEMAS:
        raise _SchemaMismatch(f"envelope schema {header.get('schema')!r}")
    if header.get("key") != key:
        raise _CorruptEnvelope("envelope key does not match its path")
    if header.get("byteorder") != sys.byteorder:
        # written on a foreign-endian host: valid but unusable here —
        # treated like a miss so this worker overwrites it natively
        raise _SchemaMismatch("foreign byte order")
    if zlib.crc32(view[data_start:]) != int(header["crc32"]) & 0xFFFFFFFF:
        # structural checks below cannot see a flipped bit *inside* a
        # column — only the data-region checksum catches silent rot
        raise _CorruptEnvelope("data-region checksum mismatch")
    blocks = header["blocks"]

    def block_view(name, block_map, typecodes):
        code = typecodes[name]
        off, count = block_map[name]
        start = data_start + off
        end = start + count * _ITEMSIZE[code]
        if not 0 <= start <= end <= len(view):
            raise _CorruptEnvelope(f"block {name!r} exceeds the envelope")
        return view[start:end].cast(code)

    def column(name):
        return block_view(name, blocks, _TYPECODES)

    n = int(header["n"])
    pcs = column("pcs")
    takens = column("takens")
    mem_off = column("mem_off")
    if len(pcs) != n or len(takens) != n or len(mem_off) != n + 1:
        raise _CorruptEnvelope("row columns disagree with the header")
    entries = mem_off[n] if n >= 0 else 0
    mem_kind = column("mem_kind")
    mem_addr = column("mem_addr")
    mem_value = column("mem_value")
    mem_used = column("mem_used")
    if not (len(mem_kind) == len(mem_addr) == len(mem_value)
            == len(mem_used) == entries):
        raise _CorruptEnvelope("memory CSR columns disagree with mem_off")

    dst_off = column("dst_off").tolist()
    if len(dst_off) != n + 1:
        raise _CorruptEnvelope("writeback CSR disagrees with the header")
    dst_isfp = column("dst_isfp").tolist()
    dst_idx = column("dst_idx").tolist()
    dst_bits = column("dst_bits").tolist()
    dsts: list[tuple] = []
    for i in range(n):
        lo, hi = dst_off[i], dst_off[i + 1]
        if lo == hi:
            dsts.append(())
        else:
            dsts.append(tuple(
                (True, dst_idx[j], bits_to_float(dst_bits[j]))
                if dst_isfp[j] else (False, dst_idx[j], dst_bits[j])
                for j in range(lo, hi)))

    memory = MemoryImage()
    for addr, value in zip(column("img_addr").tolist(),
                           column("img_value").tolist()):
        memory.store(addr, value)

    trace = Trace(
        program,
        pcs=pcs,
        dsts=dsts,
        takens=takens,
        mem_off=mem_off,
        mem_kind=mem_kind,
        mem_addr=mem_addr,
        mem_value=mem_value,
        mem_used=mem_used,
        final_next_pc=int(header["final_next_pc"]),
        final_xregs=[int(v) for v in header["final_xregs"]],
        final_fregs=[bits_to_float(int(v)) for v in header["final_fregs"]],
        memory=memory,
        halted=bool(header["halted"]),
        uop_count=int(header["uop_count"]),
        load_count=int(header["load_count"]),
        store_count=int(header["store_count"]),
        crashed=bool(header["crashed"]),
    )

    kf_seq = column("kf_seq").tolist()
    kf_uops = column("kf_uops").tolist()
    kf_loads = column("kf_loads").tolist()
    kf_stores = column("kf_stores").tolist()
    kf_x_off = column("kf_x_off").tolist()
    kf_x_idx = column("kf_x_idx").tolist()
    kf_x_val = column("kf_x_val").tolist()
    kf_f_off = column("kf_f_off").tolist()
    kf_f_idx = column("kf_f_idx").tolist()
    kf_f_bits = column("kf_f_bits").tolist()
    kf_m_off = column("kf_m_off").tolist()
    kf_m_addr = column("kf_m_addr").tolist()
    kf_m_val = column("kf_m_val").tolist()
    count = len(kf_seq)
    if not (len(kf_x_off) == len(kf_f_off) == len(kf_m_off) == count + 1
            and len(kf_uops) == len(kf_loads) == len(kf_stores) == count):
        raise _CorruptEnvelope("keyframe tables disagree with each other")
    frames = []
    for k in range(count):
        frames.append(Keyframe(
            kf_seq[k],
            dict(zip(kf_x_idx[kf_x_off[k]:kf_x_off[k + 1]],
                     kf_x_val[kf_x_off[k]:kf_x_off[k + 1]])),
            {idx: bits_to_float(bits) for idx, bits in
             zip(kf_f_idx[kf_f_off[k]:kf_f_off[k + 1]],
                 kf_f_bits[kf_f_off[k]:kf_f_off[k + 1]])},
            dict(zip(kf_m_addr[kf_m_off[k]:kf_m_off[k + 1]],
                     kf_m_val[kf_m_off[k]:kf_m_off[k + 1]])),
            kf_uops[k], kf_loads[k], kf_stores[k]))
    trace._keyframes = Keyframes(int(header["kf_interval"]), tuple(frames))

    # golden timing sections (schema 4; absent on v3 envelopes, which
    # therefore read as a timing *miss*, never as corrupt)
    for config_key, section in (header.get("timings") or {}).items():
        section_blocks = section["blocks"]
        tm_issue = block_view("tm_issue", section_blocks, _TIMING_TYPECODES)
        tm_commit = block_view("tm_commit", section_blocks, _TIMING_TYPECODES)
        tm_branch = block_view("tm_branch", section_blocks, _TIMING_TYPECODES)
        tm_l1d = block_view("tm_l1d", section_blocks, _TIMING_TYPECODES)
        tm_l2 = block_view("tm_l2", section_blocks, _TIMING_TYPECODES)
        if not (len(tm_issue) == len(tm_commit) == len(tm_branch)
                == len(tm_l1d) == len(tm_l2) == n):
            raise _CorruptEnvelope("timing columns disagree with the header")
        result = {field: int(section["result"][field])
                  for field in _TIMING_RESULT_FIELDS}
        trace.timings[str(config_key)] = TimingRecord(
            result=CoreResult(**result),
            issue=tm_issue, commit=tm_commit, branch=tm_branch,
            l1d=tm_l1d, l2=tm_l2)
    return trace


class TraceStore:
    """Content-addressed on-disk store of golden (clean) traces.

    Mirrors the run cache's layout and crash discipline: binary
    envelopes written atomically (temp file + rename).  A *missing*
    envelope and an envelope from another schema generation read as
    misses; a *present-but-unusable* one (truncated, bad magic, garbage
    bytes, a failed data checksum) is counted separately as
    ``corrupt``, logged once per path,
    and overwritten by the worker's fresh execution exactly like a miss
    — a corrupt envelope can delay a campaign, never wedge it.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: present-but-unusable envelopes encountered (each also returns
        #: None from :meth:`get`, so the caller re-executes + overwrites)
        self.corrupt = 0
        self.writes = 0
        #: timing sections published into existing envelopes
        self.timing_writes = 0
        #: crash-stranded temp files removed at init
        self.stale_temps_swept = sweep_stale_temps(self.root)
        self._corrupt_logged: set[str] = set()

    def key(self, benchmark: str, scale: str, program: Program) -> str:
        """The store key of one benchmark's golden trace."""
        description = {
            "schema": KEY_SCHEMA,
            "benchmark": benchmark,
            "scale": scale,
            "program": program_fingerprint(program),
        }
        return hashlib.sha256(
            canonical_json(description).encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.bin"

    def _note_corrupt(self, path: Path, reason: str) -> None:
        self.corrupt += 1
        name = str(path)
        if name not in self._corrupt_logged:
            self._corrupt_logged.add(name)
            logger.warning(
                "corrupt golden-trace envelope %s (%s); "
                "it will be re-derived and overwritten", name, reason)

    def get(self, key: str, program: Program) -> Trace | None:
        """The stored golden trace for ``key``, rebuilt over ``program``
        (the in-process program object the caller already built).

        The envelope file is memory-mapped read-only; the returned
        trace's numeric columns are zero-copy views over that mapping
        (the mapping lives exactly as long as the views referencing it).
        """
        path = self._path(key)
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as error:
            self._note_corrupt(path, str(error))
            return None
        with handle:
            try:
                mapped = mmap.mmap(handle.fileno(), 0,
                                   access=mmap.ACCESS_READ)
            except (OSError, ValueError) as error:
                self._note_corrupt(path, str(error))
                return None
        try:
            trace = _decode_envelope(mapped, key, program)
        except _SchemaMismatch:
            self.misses += 1
            return None
        except (_CorruptEnvelope, KeyError, IndexError, TypeError,
                ValueError, OverflowError, struct.error) as error:
            self._note_corrupt(path, str(error))
            return None
        self.hits += 1
        trace.store_ref = (self, key)
        return trace

    def _write(self, key: str, envelope: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # concurrent same-key writers (two workers racing on a cold
        # store) must not trample each other's temp files
        tmp = path.with_suffix(f".tmp.{os.getpid()}-{uuid.uuid4().hex[:8]}")
        tmp.write_bytes(envelope)
        os.replace(tmp, path)

    def put(self, key: str, trace: Trace) -> None:
        self._write(key, _encode_envelope(key, trace, trace.timings))
        self.writes += 1
        trace.store_ref = (self, key)

    def put_timing(self, key: str, trace: Trace, config_key: str,
                   record) -> None:
        """Publish one golden timing record into ``key``'s envelope.

        Re-encodes the whole envelope with every timing record the trace
        carries (including ``record``) and replaces the file atomically.
        Two workers racing on different configurations last-write-win —
        the loser's section is simply re-derived and re-published by the
        next campaign that needs it, exactly like a cold store.
        """
        merged = dict(trace.timings)
        merged[config_key] = record
        self._write(key, _encode_envelope(key, trace, merged))
        self.timing_writes += 1
