"""The benchmark suite registry (paper Table II).

Each entry maps a paper benchmark to its kernel builder with two parameter
scales:

* ``small`` — a few thousand dynamic instructions, for the test suite;
* ``default`` — tens of thousands of dynamic instructions, used by the
  benchmark harness to regenerate the paper's figures in reasonable time.

Traces are cached per (name, scale): the functional execution is identical
across timing configurations, so parameter sweeps re-time the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa.executor import Trace, execute_program
from repro.isa.program import Program
from repro.workloads import (
    bitcount,
    blackscholes,
    bodytrack,
    facesim,
    fluidanimate,
    freqmine,
    randacc,
    stream,
    swaptions,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table II row."""

    name: str
    source: str
    paper_input: str
    character: str
    build_default: Callable[[], Program]
    build_small: Callable[[], Program]


BENCHMARKS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec(
            "randacc", "HPCC", "100000000", "irregular memory-bound",
            lambda: randacc.build(iterations=3500),
            lambda: randacc.build(iterations=250, table_words_log2=14),
        ),
        WorkloadSpec(
            "stream", "HPCC", "(default)", "regular memory-bound",
            lambda: stream.build(elements=2200),
            lambda: stream.build(elements=150),
        ),
        WorkloadSpec(
            "bitcount", "MiBench", "75000", "pure compute (integer)",
            lambda: bitcount.build(iterations=350),
            lambda: bitcount.build(iterations=40),
        ),
        WorkloadSpec(
            "blackscholes", "Parsec", "simsmall", "FP compute",
            lambda: blackscholes.build(options=800),
            lambda: blackscholes.build(options=60),
        ),
        WorkloadSpec(
            "fluidanimate", "Parsec", "simsmall", "mixed memory/FP",
            lambda: fluidanimate.build(iterations=1600),
            lambda: fluidanimate.build(iterations=120, particles=512),
        ),
        WorkloadSpec(
            "swaptions", "Parsec", "simsmall", "FP compute, serial chains",
            lambda: swaptions.build(paths=220),
            lambda: swaptions.build(paths=18),
        ),
        WorkloadSpec(
            "freqmine", "Parsec", "simsmall", "integer pointer-chasing",
            lambda: freqmine.build(walks=1000),
            lambda: freqmine.build(walks=130, nodes=1024),
        ),
        WorkloadSpec(
            "bodytrack", "Parsec", "simsmall", "mixed, branchy",
            lambda: bodytrack.build(iterations=1800),
            lambda: bodytrack.build(iterations=140, particles=512),
        ),
        WorkloadSpec(
            "facesim", "Parsec", "simsmall", "regular dense FP",
            lambda: facesim.build(sweeps=4),
            lambda: facesim.build(sweeps=1, dim=24),
        ),
    ]
}

#: Paper ordering for figures (Table II order).
BENCHMARK_ORDER = [
    "randacc", "stream", "bitcount", "blackscholes", "fluidanimate",
    "swaptions", "freqmine", "bodytrack", "facesim",
]

_TRACE_CACHE: dict[tuple[str, str], Trace] = {}


def build_benchmark(name: str, scale: str = "default") -> Program:
    """Build the named benchmark's program at the given scale."""
    spec = BENCHMARKS[name]
    if scale == "default":
        return spec.build_default()
    if scale == "small":
        return spec.build_small()
    raise KeyError(f"unknown scale {scale!r}; use 'default' or 'small'")


def benchmark_trace(name: str, scale: str = "default") -> Trace:
    """The committed fault-free trace of a benchmark (cached)."""
    key = (name, scale)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = execute_program(build_benchmark(name, scale))
    return _TRACE_CACHE[key]


def table2_rows() -> list[tuple[str, str, str]]:
    """Render Table II as (benchmark, source, input) rows."""
    return [
        (spec.name, spec.source, spec.paper_input)
        for name in BENCHMARK_ORDER
        for spec in [BENCHMARKS[name]]
    ]
