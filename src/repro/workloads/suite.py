"""The benchmark suite registry (paper Table II).

Each entry maps a paper benchmark to its kernel builder with two parameter
scales:

* ``small`` — a few thousand dynamic instructions, for the test suite;
* ``default`` — tens of thousands of dynamic instructions, used by the
  benchmark harness to regenerate the paper's figures in reasonable time.

Clean traces are cached at two levels.  A per-process memo keeps repeated
jobs on the same benchmark free within one worker, exactly as before.
Above it, an optional **shared golden-trace store**
(:class:`repro.workloads.trace_store.TraceStore`, installed with
:func:`configure_trace_store`) makes the clean execution itself shared
across processes and hosts: a campaign worker whose store already holds
a benchmark's golden trace *forks* it — rebuilds the program (cheap,
deterministic) and loads the stored columns — instead of re-running
``execute_program``.  The campaign engine and manifest workers configure
the store next to their run cache.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.isa.executor import Trace, execute_program
from repro.isa.program import Program
from repro.workloads.trace_store import TraceStore
from repro.workloads import (
    bitcount,
    blackscholes,
    bodytrack,
    facesim,
    fluidanimate,
    freqmine,
    randacc,
    stream,
    swaptions,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table II row."""

    name: str
    source: str
    paper_input: str
    character: str
    build_default: Callable[[], Program]
    build_small: Callable[[], Program]


BENCHMARKS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec(
            "randacc", "HPCC", "100000000", "irregular memory-bound",
            lambda: randacc.build(iterations=3500),
            lambda: randacc.build(iterations=250, table_words_log2=14),
        ),
        WorkloadSpec(
            "stream", "HPCC", "(default)", "regular memory-bound",
            lambda: stream.build(elements=2200),
            lambda: stream.build(elements=150),
        ),
        WorkloadSpec(
            "bitcount", "MiBench", "75000", "pure compute (integer)",
            lambda: bitcount.build(iterations=350),
            lambda: bitcount.build(iterations=40),
        ),
        WorkloadSpec(
            "blackscholes", "Parsec", "simsmall", "FP compute",
            lambda: blackscholes.build(options=800),
            lambda: blackscholes.build(options=60),
        ),
        WorkloadSpec(
            "fluidanimate", "Parsec", "simsmall", "mixed memory/FP",
            lambda: fluidanimate.build(iterations=1600),
            lambda: fluidanimate.build(iterations=120, particles=512),
        ),
        WorkloadSpec(
            "swaptions", "Parsec", "simsmall", "FP compute, serial chains",
            lambda: swaptions.build(paths=220),
            lambda: swaptions.build(paths=18),
        ),
        WorkloadSpec(
            "freqmine", "Parsec", "simsmall", "integer pointer-chasing",
            lambda: freqmine.build(walks=1000),
            lambda: freqmine.build(walks=130, nodes=1024),
        ),
        WorkloadSpec(
            "bodytrack", "Parsec", "simsmall", "mixed, branchy",
            lambda: bodytrack.build(iterations=1800),
            lambda: bodytrack.build(iterations=140, particles=512),
        ),
        WorkloadSpec(
            "facesim", "Parsec", "simsmall", "regular dense FP",
            lambda: facesim.build(sweeps=4),
            lambda: facesim.build(sweeps=1, dim=24),
        ),
    ]
}

#: Paper ordering for figures (Table II order).
BENCHMARK_ORDER = [
    "randacc", "stream", "bitcount", "blackscholes", "fluidanimate",
    "swaptions", "freqmine", "bodytrack", "facesim",
]

_TRACE_CACHE: dict[tuple[str, str], Trace] = {}
_PROGRAM_CACHE: dict[tuple[str, str], Program] = {}

#: The process-wide shared golden-trace store (None = per-process only).
_TRACE_STORE: TraceStore | None = None


def configure_trace_store(root: str | os.PathLike | None) -> TraceStore | None:
    """Install the process-wide golden-trace store rooted at ``root``
    (``None`` removes it).  Returns the installed store.

    Also drops the per-process trace memo when the store *changes*, so a
    process that switches campaigns (tests, long-lived drivers) cannot
    serve traces cached under another store's root.
    """
    global _TRACE_STORE
    new = TraceStore(root) if root is not None else None
    old_root = _TRACE_STORE.root if _TRACE_STORE is not None else None
    new_root = new.root if new is not None else None
    if old_root != new_root:
        _TRACE_CACHE.clear()
    _TRACE_STORE = new
    return new


def trace_store() -> TraceStore | None:
    """The currently installed golden-trace store, if any."""
    return _TRACE_STORE


def build_benchmark(name: str, scale: str = "default") -> Program:
    """Build the named benchmark's program at the given scale (a fresh
    program object every call; see :func:`benchmark_program` for the
    shared one)."""
    spec = BENCHMARKS[name]
    if scale == "default":
        return spec.build_default()
    if scale == "small":
        return spec.build_small()
    raise KeyError(f"unknown scale {scale!r}; use 'default' or 'small'")


def benchmark_program(name: str, scale: str = "default") -> Program:
    """The shared built program of a benchmark (memoised per process, so
    every job on the same benchmark shares one pre-decoded, pre-bound
    program object)."""
    key = (name, scale)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = _PROGRAM_CACHE[key] = build_benchmark(name, scale)
    return program


def benchmark_trace(name: str, scale: str = "default") -> Trace:
    """The committed fault-free trace of a benchmark.

    Resolution order: per-process memo, then the shared golden-trace
    store (bit-exact columnar envelopes), then a real execution whose
    result is published to the store for every other worker.
    """
    key = (name, scale)
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        return trace
    program = benchmark_program(name, scale)
    if _TRACE_STORE is not None:
        store_key = _TRACE_STORE.key(name, scale, program)
        trace = _TRACE_STORE.get(store_key, program)
        if trace is None:
            trace = execute_program(program)
            _TRACE_STORE.put(store_key, trace)
    else:
        trace = execute_program(program)
    _TRACE_CACHE[key] = trace
    return trace


def table2_rows() -> list[tuple[str, str, str]]:
    """Render Table II as (benchmark, source, input) rows."""
    return [
        (spec.name, spec.source, spec.paper_input)
        for name in BENCHMARK_ORDER
        for spec in [BENCHMARKS[name]]
    ]
