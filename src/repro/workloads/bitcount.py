"""bitcount — MiBench's bit-counting kernel.

The paper's extreme *compute-bound* point: almost no memory traffic, long
stretches of dependent integer ALU work.  With so few loads/stores, log
segments close on the **instruction timeout** rather than on fill, which
is exactly the behaviour Figures 10/12 probe (without the timeout its
maximum detection delay explodes — the paper reports a 250× reduction from
a 50 k timeout).

Each iteration counts the bits of a PRNG value with Kernighan's
``n &= n-1`` loop and with shift-and-mask arithmetic (two of the
original's methods); the optional ``table_lookup`` flag adds MiBench's
256-entry byte-table method, whose loads make the kernel memory-richer.
It defaults to **off** because the paper's observed bitcount behaviour —
log segments closing on the instruction timeout, and the maximum
detection delay exploding when the timeout is removed (Figure 12) —
depends on the near-total absence of loads and stores.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import (
    emit_counted_loop_footer,
    emit_counted_loop_header,
    emit_xorshift,
)

#: iterations between result stores
STORE_INTERVAL = 64


def build(iterations: int = 1200, table_lookup: bool = False) -> Program:
    """Build the bitcount kernel over ``iterations`` PRNG values."""
    b = ProgramBuilder("bitcount")
    results = b.alloc_words(max(1, iterations // STORE_INTERVAL) + 1)
    # the classic 256-entry popcount byte table (optional method)
    table = b.alloc_words(256, [bin(i).count("1") for i in range(256)])

    b.emit(Opcode.MOVI, rd=1, imm=results)
    b.emit(Opcode.MOVI, rd=2, imm=0xB5AD4ECEDA1CE2A9)  # xorshift state
    b.emit(Opcode.MOVI, rd=6, imm=0)                   # total count
    b.emit(Opcode.MOVI, rd=7, imm=STORE_INTERVAL - 1)
    emit_counted_loop_header(b, counter_reg=3, bound_reg=4,
                             iterations=iterations, label="next_value")
    emit_xorshift(b, state_reg=2, tmp_reg=10)

    # method 1: Kernighan — loop while n != 0: n &= n - 1; count++
    b.emit(Opcode.ADD, rd=11, rs1=2, rs2=0)   # n = value
    b.emit(Opcode.MOVI, rd=12, imm=0)         # count1
    b.label("kernighan")
    b.emit(Opcode.BEQ, rs1=11, rs2=0, target="kernighan_done")
    b.emit(Opcode.ADDI, rd=13, rs1=11, imm=-1)
    b.emit(Opcode.AND, rd=11, rs1=11, rs2=13)
    b.emit(Opcode.ADDI, rd=12, rs1=12, imm=1)
    b.emit(Opcode.J, target="kernighan")
    b.label("kernighan_done")

    # method 2: shift-and-mask over 8 nibble-pair steps
    b.emit(Opcode.ADD, rd=14, rs1=2, rs2=0)   # n = value
    b.emit(Opcode.MOVI, rd=15, imm=0)         # count2
    b.emit(Opcode.MOVI, rd=16, imm=8)
    b.emit(Opcode.MOVI, rd=17, imm=0)
    b.label("mask_loop")
    b.emit(Opcode.ANDI, rd=18, rs1=14, imm=0xFF)
    # lookup-free popcount of the byte via 4 shifted adds
    b.emit(Opcode.SRLI, rd=19, rs1=18, imm=1)
    b.emit(Opcode.ANDI, rd=19, rs1=19, imm=0x55)
    b.emit(Opcode.SUB, rd=18, rs1=18, rs2=19)
    b.emit(Opcode.SRLI, rd=19, rs1=18, imm=2)
    b.emit(Opcode.ANDI, rd=19, rs1=19, imm=0x33)
    b.emit(Opcode.ANDI, rd=18, rs1=18, imm=0x33)
    b.emit(Opcode.ADD, rd=18, rs1=18, rs2=19)
    b.emit(Opcode.SRLI, rd=19, rs1=18, imm=4)
    b.emit(Opcode.ADD, rd=18, rs1=18, rs2=19)
    b.emit(Opcode.ANDI, rd=18, rs1=18, imm=0x0F)
    b.emit(Opcode.ADD, rd=15, rs1=15, rs2=18)
    b.emit(Opcode.SRLI, rd=14, rs1=14, imm=8)
    b.emit(Opcode.ADDI, rd=17, rs1=17, imm=1)
    b.emit(Opcode.BLT, rs1=17, rs2=16, target="mask_loop")

    if table_lookup:
        # method 3: byte-table lookup (8 table loads per value)
        b.emit(Opcode.MOVI, rd=21, imm=table)
        b.emit(Opcode.ADD, rd=14, rs1=2, rs2=0)   # n = value
        b.emit(Opcode.MOVI, rd=22, imm=0)         # count3
        b.emit(Opcode.MOVI, rd=17, imm=0)
        b.label("table_loop")
        b.emit(Opcode.ANDI, rd=18, rs1=14, imm=0xFF)
        b.emit(Opcode.SLLI, rd=18, rs1=18, imm=3)
        b.emit(Opcode.ADD, rd=18, rs1=21, rs2=18)
        b.emit(Opcode.LD, rd=19, rs1=18, imm=0)
        b.emit(Opcode.ADD, rd=22, rs1=22, rs2=19)
        b.emit(Opcode.SRLI, rd=14, rs1=14, imm=8)
        b.emit(Opcode.ADDI, rd=17, rs1=17, imm=1)
        b.emit(Opcode.BLT, rs1=17, rs2=16, target="table_loop")
        b.emit(Opcode.ADD, rd=6, rs1=6, rs2=22)

    b.emit(Opcode.ADD, rd=6, rs1=6, rs2=12)
    b.emit(Opcode.ADD, rd=6, rs1=6, rs2=15)

    # store the running total once per STORE_INTERVAL iterations
    b.emit(Opcode.AND, rd=20, rs1=3, rs2=7)
    b.emit(Opcode.BNE, rs1=20, rs2=7, target="no_store")
    b.emit(Opcode.ST, rs2=6, rs1=1, imm=0)
    b.emit(Opcode.ADDI, rd=1, rs1=1, imm=8)
    b.label("no_store")
    emit_counted_loop_footer(b, counter_reg=3, bound_reg=4, label="next_value")
    b.emit(Opcode.HALT)
    return b.build()
