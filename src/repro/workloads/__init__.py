"""The nine Table II workload kernels and the suite registry."""

from repro.workloads import (
    bitcount,
    blackscholes,
    bodytrack,
    facesim,
    fluidanimate,
    freqmine,
    randacc,
    stream,
    swaptions,
)

__all__ = [
    "bitcount",
    "blackscholes",
    "bodytrack",
    "facesim",
    "fluidanimate",
    "freqmine",
    "randacc",
    "stream",
    "swaptions",
]
