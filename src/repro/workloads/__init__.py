"""The nine Table II workload kernels and the suite registry.

Each module re-expresses one PARSEC/HPCC/MiBench benchmark as a kernel
in the repro ISA, parameterised to sit at the original's point on the
axes §VI's evaluation sweeps care about (memory- vs. compute-bound,
access regularity, FP intensity, branchiness).  Two scales exist per
kernel: ``default`` (figure-fidelity trace lengths) and ``small``
(smoke-test sized; campaign cache keys include the scale, so the two
never mix).  :mod:`repro.workloads.suite` is the registry the campaign
engine, figure harness, and CLI resolve benchmark names through — new
workloads register there and become campaign subjects automatically.
"""

from repro.workloads import (
    bitcount,
    blackscholes,
    bodytrack,
    facesim,
    fluidanimate,
    freqmine,
    randacc,
    stream,
    swaptions,
)

__all__ = [
    "bitcount",
    "blackscholes",
    "bodytrack",
    "facesim",
    "fluidanimate",
    "freqmine",
    "randacc",
    "stream",
    "swaptions",
]
