"""blackscholes — PARSEC's option-pricing kernel.

Floating-point compute-bound with a small, regular working set: per option
a handful of loads, a long chain of FP arithmetic (the cumulative-normal-
distribution evaluation), one store.  In the paper this class of workload
is sensitive to checker-core *frequency* (Figure 9) because the checkers'
scalar pipelines must re-execute the full FP chain.

The CND is evaluated with the classic Abramowitz–Stegun-style rational
polynomial, using only the ISA's FP ops (no libm): the erf-like shape is
computed from x via 1/(1+p·x) powers — the arithmetic structure (depth and
op mix) matches the original kernel, which is what the timing model sees.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import float_data


def build(options: int = 700, seed: int | None = None) -> Program:
    """Build the blackscholes kernel pricing ``options`` options."""
    b = ProgramBuilder("blackscholes")
    spot = b.alloc_floats(float_data("bs-spot", options, 10.0, 200.0, seed))
    strike = b.alloc_floats(float_data("bs-strike", options, 10.0, 200.0, seed))
    vol = b.alloc_floats(float_data("bs-vol", options, 0.1, 0.6, seed))
    time_arr = b.alloc_floats(float_data("bs-time", options, 0.25, 2.0, seed))
    prices = b.alloc_words(options)

    b.emit(Opcode.MOVI, rd=1, imm=spot)
    b.emit(Opcode.MOVI, rd=2, imm=strike)
    b.emit(Opcode.MOVI, rd=3, imm=vol)
    b.emit(Opcode.MOVI, rd=4, imm=time_arr)
    b.emit(Opcode.MOVI, rd=5, imm=prices)
    b.emit(Opcode.MOVI, rd=6, imm=0)
    b.emit(Opcode.MOVI, rd=7, imm=options)
    # constants for the rational CND approximation
    b.emit(Opcode.FMOVI, rd=10, imm=1.0)
    b.emit(Opcode.FMOVI, rd=11, imm=0.2316419)
    b.emit(Opcode.FMOVI, rd=12, imm=0.319381530)
    b.emit(Opcode.FMOVI, rd=13, imm=-0.356563782)
    b.emit(Opcode.FMOVI, rd=14, imm=1.781477937)
    b.emit(Opcode.FMOVI, rd=15, imm=0.3989422804)  # 1/sqrt(2*pi)

    b.label("option")
    b.emit(Opcode.FLD, rd=0, rs1=1, imm=0)    # S
    b.emit(Opcode.FLD, rd=1, rs1=2, imm=0)    # K
    b.emit(Opcode.FLD, rd=2, rs1=3, imm=0)    # v
    b.emit(Opcode.FLD, rd=3, rs1=4, imm=0)    # T
    # d1 ~ (S/K - 1 + 0.5*v^2*T) / (v*sqrt(T))   [log(S/K) ~ S/K - 1]
    b.emit(Opcode.FDIV, rd=4, rs1=0, rs2=1)
    b.emit(Opcode.FSUB, rd=4, rs1=4, rs2=10)
    b.emit(Opcode.FMUL, rd=5, rs1=2, rs2=2)
    b.emit(Opcode.FMUL, rd=5, rs1=5, rs2=3)
    b.emit(Opcode.FMOVI, rd=6, imm=0.5)
    b.emit(Opcode.FMUL, rd=5, rs1=5, rs2=6)
    b.emit(Opcode.FADD, rd=4, rs1=4, rs2=5)
    b.emit(Opcode.FSQRT, rd=6, rs1=3)
    b.emit(Opcode.FMUL, rd=7, rs1=2, rs2=6)
    b.emit(Opcode.FDIV, rd=4, rs1=4, rs2=7)   # d1
    # CND(d1): t = 1/(1 + p*|d1|); poly in t; gaussian density from
    # rational approx  exp(-x^2/2) ~ 1/(1 + x^2/2 + x^4/8)
    b.emit(Opcode.FABS, rd=5, rs1=4)
    b.emit(Opcode.FMUL, rd=6, rs1=5, rs2=11)
    b.emit(Opcode.FADD, rd=6, rs1=6, rs2=10)
    b.emit(Opcode.FDIV, rd=6, rs1=10, rs2=6)  # t
    b.emit(Opcode.FMUL, rd=7, rs1=6, rs2=6)   # t^2
    b.emit(Opcode.FMUL, rd=8, rs1=7, rs2=6)   # t^3
    b.emit(Opcode.FMUL, rd=9, rs1=6, rs2=12)
    b.emit(Opcode.FMADD, rd=9, rs1=7, rs2=13, rs3=9)
    b.emit(Opcode.FMADD, rd=9, rs1=8, rs2=14, rs3=9)  # poly(t)
    b.emit(Opcode.FMUL, rd=7, rs1=5, rs2=5)   # x^2
    b.emit(Opcode.FMUL, rd=8, rs1=7, rs2=6)
    b.emit(Opcode.FMOVI, rd=6, imm=0.5)
    b.emit(Opcode.FMUL, rd=7, rs1=7, rs2=6)
    b.emit(Opcode.FADD, rd=7, rs1=7, rs2=10)  # 1 + x^2/2 (+ small term)
    b.emit(Opcode.FDIV, rd=7, rs1=10, rs2=7)  # ~exp(-x^2/2)
    b.emit(Opcode.FMUL, rd=7, rs1=7, rs2=15)  # gaussian density
    b.emit(Opcode.FMUL, rd=9, rs1=9, rs2=7)
    b.emit(Opcode.FSUB, rd=9, rs1=10, rs2=9)  # CND for x >= 0
    # price ~ S*CND - K*CND (degenerate riskless rate), kept positive
    b.emit(Opcode.FMUL, rd=8, rs1=0, rs2=9)
    b.emit(Opcode.FMUL, rd=7, rs1=1, rs2=9)
    b.emit(Opcode.FSUB, rd=8, rs1=8, rs2=7)
    b.emit(Opcode.FABS, rd=8, rs1=8)
    b.emit(Opcode.FST, rs2=8, rs1=5, imm=0)
    # advance pointers
    b.emit(Opcode.ADDI, rd=1, rs1=1, imm=8)
    b.emit(Opcode.ADDI, rd=2, rs1=2, imm=8)
    b.emit(Opcode.ADDI, rd=3, rs1=3, imm=8)
    b.emit(Opcode.ADDI, rd=4, rs1=4, imm=8)
    b.emit(Opcode.ADDI, rd=5, rs1=5, imm=8)
    b.emit(Opcode.ADDI, rd=6, rs1=6, imm=1)
    b.emit(Opcode.BLT, rs1=6, rs2=7, target="option")
    b.emit(Opcode.HALT)
    return b.build()
