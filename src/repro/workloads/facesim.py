"""facesim — PARSEC's face-dynamics FEM solver.

The inner work of facesim is regular dense linear algebra over the face
mesh's stiffness structures.  The kernel is repeated dense matrix–vector
products (the solver's dominant primitive): perfectly regular strided FP
loads, an FMADD reduction per row, one store per row.  Highly homogeneous
— the paper's Figure 8 shows facesim's detection-delay distribution as one
of the cleanest normal shapes, which this regularity reproduces.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import float_data

DEFAULT_DIM = 64


def build(sweeps: int = 10, dim: int = DEFAULT_DIM,
          seed: int | None = None) -> Program:
    """Build the facesim kernel: ``sweeps`` dense ``dim``×``dim`` matvecs."""
    b = ProgramBuilder("facesim")
    matrix = b.alloc_floats(float_data("fs-A", dim * dim, -1.0, 1.0, seed))
    vec_in = b.alloc_floats(float_data("fs-x", dim, -1.0, 1.0, seed))
    vec_out = b.alloc_words(dim)

    b.emit(Opcode.MOVI, rd=6, imm=0)          # sweep counter
    b.emit(Opcode.MOVI, rd=7, imm=sweeps)
    b.label("sweep")
    b.emit(Opcode.MOVI, rd=1, imm=matrix)     # row pointer
    b.emit(Opcode.MOVI, rd=4, imm=0)          # row index
    b.emit(Opcode.MOVI, rd=5, imm=dim)
    b.label("row")
    b.emit(Opcode.MOVI, rd=2, imm=vec_in)
    b.emit(Opcode.MOVI, rd=8, imm=0)          # column index
    b.emit(Opcode.FMOVI, rd=0, imm=0.0)       # accumulator
    b.label("col")
    b.emit(Opcode.FLD, rd=1, rs1=1, imm=0)    # A[i][j]
    b.emit(Opcode.FLD, rd=2, rs1=2, imm=0)    # x[j]
    b.emit(Opcode.FMADD, rd=0, rs1=1, rs2=2, rs3=0)
    b.emit(Opcode.ADDI, rd=1, rs1=1, imm=8)
    b.emit(Opcode.ADDI, rd=2, rs1=2, imm=8)
    b.emit(Opcode.ADDI, rd=8, rs1=8, imm=1)
    b.emit(Opcode.BLT, rs1=8, rs2=5, target="col")
    b.emit(Opcode.SLLI, rd=9, rs1=4, imm=3)
    b.emit(Opcode.MOVI, rd=10, imm=vec_out)
    b.emit(Opcode.ADD, rd=10, rs1=10, rs2=9)
    b.emit(Opcode.FST, rs2=0, rs1=10, imm=0)  # y[i]
    b.emit(Opcode.ADDI, rd=4, rs1=4, imm=1)
    b.emit(Opcode.BLT, rs1=4, rs2=5, target="row")
    b.emit(Opcode.ADDI, rd=6, rs1=6, imm=1)
    b.emit(Opcode.BLT, rs1=6, rs2=7, target="sweep")
    b.emit(Opcode.HALT)
    return b.build()
