#!/usr/bin/env python3
"""Automotive-style fault-injection campaign, run through the campaign
engine.

Safety standards such as ISO 26262 (ASIL-C/D) require quantified evidence
of diagnostic coverage.  This example builds a declarative campaign grid
over a PARSEC-style workload — transient single-bit faults at every
architecturally visible site — and hands it to the parallel
:class:`~repro.harness.campaign.CampaignEngine`, plus one permanent
(hard) functional-unit fault run directly.  It reports

* coverage: detected / (activated − architecturally masked),
* detection latency: segment-close-to-check, the figure an automotive
  integrator compares against the fault-tolerant time interval (FTTI,
  typically milliseconds — the paper argues its µs-scale delays fit
  comfortably).

Re-runs are incremental: results land in an on-disk cache, so growing
the campaign only executes the new trials.

Run:  python examples/fault_injection_campaign.py [trials-per-site] [workers]
"""

import sys

from repro import FaultInjector, FaultSite, HardFault, default_config, \
    execute_program, run_with_detection
from repro.harness.campaign import CAMPAIGN_SITES, CampaignEngine, fault_grid
from repro.isa import Opcode
from repro.workloads.suite import build_benchmark

#: every architecturally visible transient site, including the PC
SITES = CAMPAIGN_SITES + (FaultSite.PC,)


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    program = build_benchmark("bodytrack", "small")
    grid = fault_grid(["bodytrack"], trials=trials * len(SITES),
                      sites=SITES, scale="small", seed=0)
    print("workload: bodytrack")
    print(f"campaign: {len(grid)} jobs "
          f"({trials} trials x {len(SITES)} transient sites) "
          f"+ 1 hard fault, {workers} worker(s)\n")

    engine = CampaignEngine(workers=workers,
                            cache_dir=".cache/example-campaign")
    result = engine.run(grid)
    records = result.typed_records()

    header = f"{'site':<14}{'activated':>10}{'detected':>10}" \
             f"{'masked':>8}{'escaped':>9}{'mean lat':>12}"
    print(header)
    print("-" * len(header))

    totals = {"activated": 0, "detected": 0, "masked": 0, "escaped": 0}
    for site in SITES:
        rows = [r for r in records if r.site == site.value]
        activated = sum(1 for r in rows if r.activated)
        detected = sum(1 for r in rows if r.outcome == "detected")
        masked = sum(1 for r in rows if r.outcome == "masked")
        escaped = sum(1 for r in rows if r.outcome == "escaped")
        latencies = [r.detect_latency_us for r in rows
                     if r.detect_latency_us is not None]
        mean_lat = (sum(latencies) / len(latencies)) if latencies else 0.0
        print(f"{site.value:<14}{activated:>10}{detected:>10}"
              f"{masked:>8}{escaped:>9}{mean_lat:>10.2f}us")
        totals["activated"] += activated
        totals["detected"] += detected
        totals["masked"] += masked
        totals["escaped"] += escaped

    # a permanent multiplier defect: every MUL result has bit 17 stuck
    injector = FaultInjector([HardFault(Opcode.MUL, mask=1 << 17)])
    faulty = execute_program(program, fault_injector=injector)
    run = run_with_detection(faulty, default_config())
    hard_note = ("detected, "
                 f"{len(run.report.events)} failing segments"
                 if run.report.detected else
                 "not activated (workload executes no MUL)")
    print(f"{'hard MUL':<14}{'-':>10}{'-':>10}{'-':>8}{'-':>9}  {hard_note}")

    visible = totals["activated"] - totals["masked"]
    coverage = totals["detected"] / visible if visible else 1.0
    print(f"\n{result.executed} jobs executed, {result.cached} from cache")
    print(f"coverage of architecturally visible faults: "
          f"{100 * coverage:.1f}%  "
          f"({totals['detected']}/{visible}; {totals['masked']} masked, "
          f"{totals['escaped']} escaped)")
    if totals["escaped"]:
        print("WARNING: silent data corruption escaped detection!")


if __name__ == "__main__":
    main()
