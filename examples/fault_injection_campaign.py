#!/usr/bin/env python3
"""Automotive-style fault-injection campaign.

Safety standards such as ISO 26262 (ASIL-C/D) require quantified evidence
of diagnostic coverage.  This example runs a campaign over a PARSEC-style
workload: transient single-bit faults at every architecturally visible
site, plus a permanent (hard) functional-unit fault, and reports

* coverage: detected / (activated − architecturally masked),
* detection latency: commit-to-check, the figure an automotive integrator
  compares against the fault-tolerant time interval (FTTI, typically
  milliseconds — the paper argues its µs-scale delays fit comfortably).

Run:  python examples/fault_injection_campaign.py [trials-per-site]
"""

import sys

from repro import (
    FaultInjector,
    FaultSite,
    HardFault,
    TransientFault,
    default_config,
    execute_program,
    run_with_detection,
)
from repro.common.rng import derive
from repro.common.time import ticks_to_us
from repro.isa import Opcode
from repro.workloads.suite import build_benchmark

SITES = [
    FaultSite.RESULT, FaultSite.LOAD_VALUE, FaultSite.LOAD_ADDR,
    FaultSite.STORE_VALUE, FaultSite.STORE_ADDR, FaultSite.BRANCH,
    FaultSite.PC,
]


def masked(clean, faulty) -> bool:
    """Did the fault leave any architecturally visible difference?"""
    if len(clean) != len(faulty):
        return False
    if clean.final_xregs != faulty.final_xregs:
        return False
    if clean.final_fregs != faulty.final_fregs:
        return False
    return ({a: v for a, v in clean.memory.items() if v}
            == {a: v for a, v in faulty.memory.items() if v})


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    config = default_config()
    program = build_benchmark("bodytrack", "small")
    clean = execute_program(program)
    rng = derive(0, "campaign-example")

    print(f"workload: bodytrack ({len(clean)} instructions)")
    print(f"campaign: {trials} trials x {len(SITES)} transient sites "
          f"+ 1 hard fault\n")

    header = f"{'site':<14}{'activated':>10}{'detected':>10}" \
             f"{'masked':>8}{'escaped':>9}{'mean lat':>12}"
    print(header)
    print("-" * len(header))

    total_activated = total_detected = total_masked = total_escaped = 0
    for site in SITES:
        activated = detected = masked_count = escaped = 0
        latencies = []
        for _ in range(trials):
            seq = rng.randrange(10, len(clean) - 10)
            bit = rng.randrange(0, 48)
            injector = FaultInjector([TransientFault(site, seq=seq, bit=bit)])
            faulty = execute_program(program, fault_injector=injector)
            if not injector.activations:
                continue
            activated += 1
            run = run_with_detection(faulty, config)
            if run.report.detected:
                detected += 1
                event = run.report.first_event
                latencies.append(ticks_to_us(event.detect_tick))
            elif masked(clean, faulty):
                masked_count += 1
            else:
                escaped += 1
        mean_lat = (sum(latencies) / len(latencies)) if latencies else 0.0
        print(f"{site.value:<14}{activated:>10}{detected:>10}"
              f"{masked_count:>8}{escaped:>9}{mean_lat:>10.2f}us")
        total_activated += activated
        total_detected += detected
        total_masked += masked_count
        total_escaped += escaped

    # a permanent multiplier defect: every MUL result has bit 17 stuck
    injector = FaultInjector([HardFault(Opcode.MUL, mask=1 << 17)])
    faulty = execute_program(program, fault_injector=injector)
    run = run_with_detection(faulty, config)
    hard_note = ("detected, "
                 f"{len(run.report.events)} failing segments"
                 if run.report.detected else
                 "not activated (workload executes no MUL)")
    print(f"{'hard MUL':<14}{'-':>10}{'-':>10}{'-':>8}{'-':>9}  {hard_note}")

    visible = total_activated - total_masked
    coverage = total_detected / visible if visible else 1.0
    print(f"\ncoverage of architecturally visible faults: "
          f"{100 * coverage:.1f}%  "
          f"({total_detected}/{visible}; {total_masked} masked, "
          f"{total_escaped} escaped)")
    if total_escaped:
        print("WARNING: silent data corruption escaped detection!")


if __name__ == "__main__":
    main()
