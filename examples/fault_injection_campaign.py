#!/usr/bin/env python3
"""Automotive-style fault-injection campaign, orchestrated through an
on-disk manifest.

Safety standards such as ISO 26262 (ASIL-C/D) require quantified evidence
of diagnostic coverage.  This example builds a declarative campaign grid
over a PARSEC-style workload — transient single-bit faults at every
architecturally visible site — materialises it as a
:class:`~repro.harness.manifest.CampaignManifest`, and drives it with
work-stealing worker processes (:func:`~repro.harness.orchestrator.run_campaign`),
plus one permanent (hard) functional-unit fault run directly.  It reports

* coverage: detected / (activated − architecturally masked),
* detection latency: segment-close-to-check, the figure an automotive
  integrator compares against the fault-tolerant time interval (FTTI,
  typically milliseconds — the paper argues its µs-scale delays fit
  comfortably).

The manifest makes the campaign resumable and shareable: kill this
script mid-run and re-running it picks up exactly where it stopped; run
``python -m repro campaign-worker --manifest <dir>`` (the script prints
the directory) in other terminals — or on other hosts sharing it — and
they steal jobs from the same pool; ``python -m repro campaign-status
--manifest <dir>`` shows live progress.

Run:  python examples/fault_injection_campaign.py [trials-per-site] [workers]
"""

import sys

from repro import FaultInjector, FaultSite, HardFault, default_config, \
    execute_program, run_with_detection
from repro.harness.campaign import CAMPAIGN_SITES, fault_grid
from repro.harness.manifest import CampaignManifest, campaign_id
from repro.harness.orchestrator import manifest_status, run_campaign
from repro.isa import Opcode
from repro.workloads.suite import build_benchmark

#: every architecturally visible transient site, including the PC
SITES = CAMPAIGN_SITES + (FaultSite.PC,)


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    program = build_benchmark("bodytrack", "small")
    grid = fault_grid(["bodytrack"], trials=trials * len(SITES),
                      sites=SITES, scale="small", seed=0)
    print("workload: bodytrack")
    print(f"campaign: {len(grid)} jobs "
          f"({trials} trials x {len(SITES)} transient sites) "
          f"+ 1 hard fault, {workers} worker process(es)\n")

    # one directory per campaign identity: a different trial count is a
    # different grid, and manifests refuse to mix campaigns
    manifest_dir = (".cache/example-manifest/"
                    f"{campaign_id(spec.key() for spec in grid)[:12]}")
    manifest = CampaignManifest.create(
        manifest_dir, grid, kind="fault", scheme="detection",
        scale="small", benchmarks=["bodytrack"])
    print(f"manifest: {manifest_dir}  (join with: python -m repro "
          f"campaign-worker --manifest {manifest_dir})\n")
    result, _stats = run_campaign(manifest, processes=workers)
    status = manifest_status(manifest)
    records = result.typed_records()

    header = f"{'site':<14}{'activated':>10}{'detected':>10}" \
             f"{'masked':>8}{'escaped':>9}{'mean lat':>12}"
    print(header)
    print("-" * len(header))

    totals = {"activated": 0, "detected": 0, "masked": 0, "escaped": 0}
    for site in SITES:
        rows = [r for r in records if r.site == site.value]
        activated = sum(1 for r in rows if r.activated)
        detected = sum(1 for r in rows if r.outcome == "detected")
        masked = sum(1 for r in rows if r.outcome == "masked")
        escaped = sum(1 for r in rows if r.outcome == "escaped")
        latencies = [r.detect_latency_us for r in rows
                     if r.detect_latency_us is not None]
        mean_lat = (sum(latencies) / len(latencies)) if latencies else 0.0
        print(f"{site.value:<14}{activated:>10}{detected:>10}"
              f"{masked:>8}{escaped:>9}{mean_lat:>10.2f}us")
        totals["activated"] += activated
        totals["detected"] += detected
        totals["masked"] += masked
        totals["escaped"] += escaped

    # a permanent multiplier defect: every MUL result has bit 17 stuck
    injector = FaultInjector([HardFault(Opcode.MUL, mask=1 << 17)])
    faulty = execute_program(program, fault_injector=injector)
    run = run_with_detection(faulty, default_config())
    hard_note = ("detected, "
                 f"{len(run.report.events)} failing segments"
                 if run.report.detected else
                 "not activated (workload executes no MUL)")
    print(f"{'hard MUL':<14}{'-':>10}{'-':>10}{'-':>8}{'-':>9}  {hard_note}")

    visible = totals["activated"] - totals["masked"]
    coverage = totals["detected"] / visible if visible else 1.0
    print(f"\nmanifest {status['campaign_id'][:12]}…: "
          f"{status['states']['done']}/{status['jobs']} jobs done "
          f"({status['states']['failed']} failed) — "
          f"re-running this script replays from the cache")
    print(f"coverage of architecturally visible faults: "
          f"{100 * coverage:.1f}%  "
          f"({totals['detected']}/{visible}; {totals['masked']} masked, "
          f"{totals['escaped']} escaped)")
    if totals["escaped"]:
        print("WARNING: silent data corruption escaped detection!")


if __name__ == "__main__":
    main()
