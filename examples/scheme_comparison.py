#!/usr/bin/env python3
"""Compare error-detection schemes on your workload (paper Figure 1).

Times one workload under the three schemes the paper contrasts —
dual-core lockstep, redundant multithreading (RMT), and parallel error
detection on heterogeneous cores — and prints the three-way trade-off
(performance, area, energy) plus detection latency.

Run:  python examples/scheme_comparison.py [benchmark]
      (default benchmark: bodytrack; any Table II name works)
"""

import sys

from repro.analysis.area import area_model
from repro.analysis.power import energy_overhead_per_run, power_model
from repro.baselines.lockstep import run_lockstep
from repro.baselines.rmt import run_rmt
from repro.common.config import default_config
from repro.detection.system import run_unprotected, run_with_detection
from repro.workloads.suite import BENCHMARK_ORDER, benchmark_trace


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bodytrack"
    if name not in BENCHMARK_ORDER:
        raise SystemExit(f"unknown benchmark {name!r}; "
                         f"choose from {', '.join(BENCHMARK_ORDER)}")
    config = default_config()
    trace = benchmark_trace(name, "small")
    base = run_unprotected(trace, config)

    lockstep = run_lockstep(trace, config)
    rmt = run_rmt(trace, config)
    ours = run_with_detection(trace, config)
    area = area_model(config)
    power = power_model(config)
    ours_slow = ours.main_cycles / base.cycles
    ours_energy = energy_overhead_per_run(ours_slow, power.overhead)

    print(f"workload: {name} ({len(trace)} instructions, "
          f"baseline {base.cycles} cycles)\n")
    header = (f"{'scheme':<12}{'slowdown':>10}{'area ovh':>10}"
              f"{'energy ovh':>12}{'detect lat':>12}{'hard faults':>13}")
    print(header)
    print("-" * len(header))
    print(f"{'lockstep':<12}"
          f"{lockstep.slowdown_vs_unprotected:>10.3f}"
          f"{'100%':>10}{'100%':>12}"
          f"{lockstep.detection_latency_ns:>10.1f}ns"
          f"{'yes':>13}")
    print(f"{'RMT':<12}"
          f"{rmt.slowdown_vs_unprotected:>10.3f}"
          f"{100 * rmt.area_overhead:>9.0f}%"
          f"{100 * rmt.energy_overhead:>11.0f}%"
          f"{rmt.detection_latency_ns:>10.1f}ns"
          f"{'no':>13}")
    print(f"{'ours':<12}"
          f"{ours_slow:>10.3f}"
          f"{100 * area.overhead_vs_core:>9.0f}%"
          f"{100 * ours_energy:>11.0f}%"
          f"{ours.report.mean_delay_ns():>10.1f}ns"
          f"{'yes':>13}")

    print("\nreading the table (paper Figure 1d):")
    print("  lockstep buys instant detection with a duplicated core;")
    print("  RMT buys low area with a large performance hit and no hard-")
    print("  fault coverage; the heterogeneous scheme keeps all three")
    print("  overheads small by accepting microsecond-scale detection")
    print("  latency - acceptable for automotive FTTIs (milliseconds).")


if __name__ == "__main__":
    main()
