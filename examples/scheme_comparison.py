#!/usr/bin/env python3
"""Compare error-detection schemes on your workload (paper Figure 1).

Times one workload under every scheme in the protection-scheme registry
— unprotected, dual-core lockstep, redundant multithreading (RMT), and
parallel error detection on heterogeneous cores — and prints the
trade-off (performance, area, energy) plus detection latency and the
capability flags.  Everything comes from one unified interface: a
registered scheme is automatically a row in this table.

Run:  python examples/scheme_comparison.py [benchmark]
      (default benchmark: bodytrack; any Table II name works)
"""

import sys

from repro.common.config import default_config
from repro.schemes import iter_schemes
from repro.workloads.suite import BENCHMARK_ORDER, benchmark_trace


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bodytrack"
    if name not in BENCHMARK_ORDER:
        raise SystemExit(f"unknown benchmark {name!r}; "
                         f"choose from {', '.join(BENCHMARK_ORDER)}")
    config = default_config()
    trace = benchmark_trace(name, "small")

    print(f"workload: {name} ({len(trace)} instructions)\n")
    header = (f"{'scheme':<13}{'slowdown':>10}{'area ovh':>10}"
              f"{'energy ovh':>12}{'detect lat':>12}{'hard faults':>13}")
    print(header)
    print("-" * len(header))
    for scheme in iter_schemes():
        timing = scheme.time(trace, config)
        row = scheme.overheads(timing, config)
        latency = (f"{row.detection_latency_ns:>10.1f}ns"
                   if row.detection_latency_ns is not None
                   else f"{'-':>12}")
        print(f"{scheme.name:<13}"
              f"{row.slowdown:>10.3f}"
              f"{100 * row.area_overhead:>9.0f}%"
              f"{100 * row.energy_overhead:>11.0f}%"
              f"{latency}"
              f"{'yes' if scheme.covers_hard_faults else 'no':>13}")

    print("\nreading the table (paper Figure 1d):")
    print("  lockstep buys instant detection with a duplicated core;")
    print("  RMT buys low area with a large performance hit and no hard-")
    print("  fault coverage; the heterogeneous scheme keeps all three")
    print("  overheads small by accepting microsecond-scale detection")
    print("  latency - acceptable for automotive FTTIs (milliseconds).")


if __name__ == "__main__":
    main()
