#!/usr/bin/env python3
"""Full fault tolerance: detection + rollback recovery.

The DSN'18 paper provides detection and names checkpoint-based rollback
as the correction companion (its stated future work).  This example runs
the complete loop the `repro.recovery` extension implements:

1. a transient fault corrupts the main core's execution;
2. the checker cores detect it and strong induction identifies the
   first failing segment;
3. state rolls back to the latest *verified* snapshot (registers +
   undo-logged memory);
4. the program re-executes from there and completes with a final state
   identical to a fault-free run.

Run:  python examples/rollback_recovery.py
"""

from repro import (
    FaultInjector,
    FaultSite,
    TransientFault,
    default_config,
    execute_program,
)
from repro.recovery import detect_and_recover
from repro.workloads.suite import build_benchmark


def main() -> None:
    config = default_config()
    program = build_benchmark("freqmine", "small")
    clean = execute_program(program)
    print(f"workload: freqmine ({len(clean)} instructions, "
          f"{clean.store_count} stores)")

    fault = TransientFault(FaultSite.LOAD_VALUE, seq=len(clean) // 2, bit=11)
    injector = FaultInjector([fault])
    faulty = execute_program(program, fault_injector=injector)
    if not injector.activations:
        # the chosen seq was not a load; nudge until one activates
        seq = len(clean) // 2
        while not injector.activations:
            seq += 1
            injector = FaultInjector(
                [TransientFault(FaultSite.LOAD_VALUE, seq=seq, bit=11)])
            faulty = execute_program(program, fault_injector=injector)
        fault = TransientFault(FaultSite.LOAD_VALUE, seq=seq, bit=11)

    print(f"injected: load-value bit {fault.bit} flip at dynamic "
          f"instruction {fault.seq}")

    outcome = detect_and_recover(program, faulty, config)
    print(f"detected:       {outcome.detected}")
    print(f"rolled back to: commit #{outcome.rollback_seq}")
    print(f"re-executed:    {outcome.replayed_instructions} instructions "
          f"({100 * outcome.replayed_instructions / len(clean):.1f}% of "
          f"the run)")
    print(f"recovered:      {outcome.recovered}")
    print(f"state correct:  {outcome.state_correct} "
          f"(final registers AND memory match the fault-free run)")

    if outcome.state_correct:
        print("\nfull fault tolerance achieved: the corruption that had "
              "already\nescaped into memory was undone by the verified-"
              "snapshot rollback.")


if __name__ == "__main__":
    main()
