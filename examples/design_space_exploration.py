#!/usr/bin/env python3
"""Design-space exploration: pick the cheapest checker configuration.

A system architect integrating the paper's scheme must choose the number
of checker cores, their clock frequency, and the log size.  This example
sweeps the space for a target workload mix, filters configurations by a
performance budget (max slowdown) and a detection-latency budget, then
ranks the survivors by the silicon they cost (area model of §VI-B +
power model of §VI-C).

Run:  python examples/design_space_exploration.py
"""

from repro.analysis.area import area_model
from repro.analysis.power import power_model
from repro.common.config import default_config
from repro.detection.system import run_unprotected, run_with_detection
from repro.workloads.suite import benchmark_trace

WORKLOADS = ["stream", "bodytrack", "swaptions"]
SCALE = "small"

CORE_COUNTS = [3, 6, 12]
FREQUENCIES = [250.0, 500.0, 1000.0]
LOG_SIZES = [12 * 1024, 36 * 1024]

MAX_SLOWDOWN = 1.05
MAX_MEAN_DELAY_US = 4.0


def main() -> None:
    base_cfg = default_config()
    traces = {name: benchmark_trace(name, SCALE) for name in WORKLOADS}
    baselines = {
        name: run_unprotected(trace, base_cfg).cycles
        for name, trace in traces.items()
    }

    rows = []
    for cores in CORE_COUNTS:
        for freq in FREQUENCIES:
            for log_bytes in LOG_SIZES:
                cfg = (base_cfg.with_checker_cores(cores)
                       .with_checker_freq(freq)
                       .with_log(log_bytes, 5000))
                worst_slow = 0.0
                worst_delay = 0.0
                for name, trace in traces.items():
                    run = run_with_detection(trace, cfg)
                    worst_slow = max(
                        worst_slow, run.main_cycles / baselines[name])
                    worst_delay = max(
                        worst_delay, run.report.mean_delay_ns() / 1000)
                area = area_model(cfg)
                power = power_model(cfg)
                rows.append({
                    "cores": cores, "freq": freq,
                    "log_kib": log_bytes // 1024,
                    "slow": worst_slow, "delay_us": worst_delay,
                    "area": area.overhead_vs_core,
                    "power": power.overhead,
                    "ok": (worst_slow <= MAX_SLOWDOWN
                           and worst_delay <= MAX_MEAN_DELAY_US),
                })

    rows.sort(key=lambda r: (not r["ok"], r["area"] + r["power"]))
    print(f"constraints: slowdown <= {MAX_SLOWDOWN}, "
          f"mean delay <= {MAX_MEAN_DELAY_US} us "
          f"(worst case over {', '.join(WORKLOADS)})\n")
    header = (f"{'cores':>5} {'MHz':>6} {'log':>6} {'slowdown':>9} "
              f"{'delay':>8} {'area':>7} {'power':>7}  verdict")
    print(header)
    print("-" * len(header))
    for r in rows:
        verdict = "OK" if r["ok"] else "violates budget"
        print(f"{r['cores']:>5} {r['freq']:>6.0f} {r['log_kib']:>5}K "
              f"{r['slow']:>9.3f} {r['delay_us']:>6.2f}us "
              f"{100 * r['area']:>6.1f}% {100 * r['power']:>6.1f}%  {verdict}")

    best = next((r for r in rows if r["ok"]), None)
    if best:
        print(f"\ncheapest within budget: {best['cores']} cores @ "
              f"{best['freq']:.0f} MHz, {best['log_kib']} KiB log "
              f"({100 * best['area']:.1f}% area, "
              f"{100 * best['power']:.1f}% power)")
    else:
        print("\nno configuration meets the budget - relax a constraint")


if __name__ == "__main__":
    main()
