#!/usr/bin/env python3
"""Quickstart: protect a program with parallel error detection.

Builds a small program in the repro ISA, times it on the bare out-of-order
core and on the same core with the paper's detection scheme attached, then
injects a transient fault and shows the checker cores catching it.

Run:  python examples/quickstart.py
"""

from repro import (
    FaultInjector,
    FaultSite,
    TransientFault,
    default_config,
    execute_program,
    run_unprotected,
    run_with_detection,
)
from repro.isa import Opcode, ProgramBuilder


def build_program():
    """A small read-modify-write loop over an array."""
    b = ProgramBuilder("quickstart")
    data = b.alloc_words(512, list(range(512)))
    b.emit(Opcode.MOVI, rd=1, imm=data)
    b.emit(Opcode.MOVI, rd=2, imm=0)       # loop counter
    b.emit(Opcode.MOVI, rd=3, imm=3000)    # iterations
    b.label("loop")
    b.emit(Opcode.ANDI, rd=4, rs1=2, imm=511)
    b.emit(Opcode.SLLI, rd=4, rs1=4, imm=3)
    b.emit(Opcode.ADD, rd=5, rs1=1, rs2=4)
    b.emit(Opcode.LD, rd=6, rs1=5, imm=0)
    b.emit(Opcode.ADDI, rd=6, rs1=6, imm=7)
    b.emit(Opcode.ST, rs2=6, rs1=5, imm=0)
    b.emit(Opcode.ADDI, rd=2, rs1=2, imm=1)
    b.emit(Opcode.BLT, rs1=2, rs2=3, target="loop")
    b.emit(Opcode.HALT)
    return b.build()


def main() -> None:
    program = build_program()
    config = default_config()  # Table I: 3.2GHz OoO + 12x 1GHz checkers

    # --- fault-free run: what does protection cost? ------------------------
    trace = execute_program(program)
    base = run_unprotected(trace, config)
    protected = run_with_detection(trace, config)
    report = protected.report

    print(f"program: {len(trace)} instructions, "
          f"{trace.load_count} loads, {trace.store_count} stores")
    print(f"unprotected: {base.cycles} cycles (IPC {base.ipc:.2f})")
    print(f"protected:   {protected.main_cycles} cycles "
          f"(slowdown {protected.main_cycles / base.cycles:.4f})")
    print(f"segments checked: {report.segments_checked}  "
          f"closes: { {k: v for k, v in report.closes_by_reason.items() if v} }")
    print(f"detection delay: mean {report.mean_delay_ns():.0f} ns, "
          f"max {report.max_delay_ns():.0f} ns")
    print(f"false positives: {len(report.events)} (expect 0)")

    # --- now flip one bit in one ALU result --------------------------------
    # seq 8999 is the ADDI increment inside the loop body: its corrupted
    # result feeds the following store, which the checker validates
    fault = TransientFault(FaultSite.RESULT, seq=8_999, bit=13)
    injector = FaultInjector([fault])
    faulty_trace = execute_program(program, fault_injector=injector)
    result = run_with_detection(faulty_trace, config)

    print(f"\ninjected: bit {fault.bit} of the result of dynamic "
          f"instruction {fault.seq}")
    event = result.report.first_event
    if event is None:
        print("fault was NOT detected (unexpected!)")
        return
    print(f"detected: {event.error.kind.value} in segment "
          f"{event.error.segment_index}")
    print(f"  detail: {event.error.detail}")
    print(f"  checker flagged it at t={event.detect_ns / 1000:.2f} us "
          f"(segment closed at {event.segment_close_tick / 16000:.2f} us)")


if __name__ == "__main__":
    main()
