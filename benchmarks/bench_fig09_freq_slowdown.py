"""Figure 9: slowdown when varying checker-core frequency.

Paper claims: memory-bound benchmarks (randacc, stream) barely degrade
even at 125 MHz because the checkers have no data misses; compute-bound
benchmarks (swaptions, bitcount) slow down sharply below 500 MHz, up to
~4.5× at 125 MHz.
"""

from repro.harness.figures import FREQUENCIES_MHZ, fig9


def test_fig09_freq_slowdown(benchmark, emit, runner, strict):
    text, data = benchmark.pedantic(fig9, args=(runner,), rounds=1, iterations=1)
    emit("fig09_freq_slowdown", text)
    idx125 = FREQUENCIES_MHZ.index(125)
    idx1g = FREQUENCIES_MHZ.index(1000)
    # memory-bound: flat across frequency
    assert data["randacc"][idx125] < 1.10
    if strict:
        # compute-bound: large slowdown at 125 MHz, fine at 1 GHz
        for name in ("bitcount", "swaptions", "facesim"):
            assert data[name][idx125] > 1.5, f"{name} should choke at 125MHz"
            assert data[name][idx1g] < 1.10, f"{name} should keep up at 1GHz"
    # monotone: lower frequency never helps
    for name, series in data.items():
        for lo, hi in zip(series, series[1:]):
            assert lo >= hi - 1e-9, f"{name} slowdown not monotone in freq"
