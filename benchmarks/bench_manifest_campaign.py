"""Manifest-orchestrated fault campaign: the multi-worker scale path.

The other benches drive the campaign engine directly inside one process
pool.  This one exercises the orchestration layer the way a multi-host
run does: the grid is materialised as an on-disk manifest
(:mod:`repro.harness.manifest`), two independent worker processes lease
and execute jobs work-stealing style
(:func:`~repro.harness.orchestrator.run_campaign`), and the merged
result is checked byte-identical to a serial engine run of the same
grid — the resumability/idempotence contract the orchestrator promises.
"""

from repro.harness.campaign import CampaignEngine, fault_grid
from repro.harness.manifest import CampaignManifest
from repro.harness.orchestrator import manifest_status, run_campaign


def run_orchestrated(tmp_dir, trials: int = 12):
    grid = fault_grid(["bodytrack"], trials=trials, scale="small", seed=0)
    serial_json = CampaignEngine(workers=1).run(grid).records_json()
    manifest = CampaignManifest.create(
        tmp_dir, grid, kind="fault", scheme="detection",
        scale="small", benchmarks=["bodytrack"])
    result, _stats = run_campaign(manifest, processes=2)
    return manifest_status(manifest), result.records_json(), serial_json


def test_manifest_campaign(benchmark, emit, strict, tmp_path):
    status, merged_json, serial_json = benchmark.pedantic(
        run_orchestrated, args=(tmp_path / "manifest",),
        rounds=1, iterations=1)
    text = (
        "Manifest-orchestrated campaign (bodytrack, 2 worker processes)\n\n"
        f"  campaign:   {status['campaign_id'][:12]}…\n"
        f"  jobs:       {status['jobs']} unique\n"
        f"  done:       {status['states']['done']}\n"
        f"  failed:     {status['states']['failed']}\n"
        f"  merged records byte-identical to serial run: "
        f"{merged_json == serial_json}"
    )
    emit("manifest_campaign", text)
    assert status["complete"]
    assert status["states"]["failed"] == 0
    assert merged_json == serial_json
