"""Section VI-C: power-overhead model.

Paper claims: twelve 34 µW/MHz checkers at 1 GHz against an 800 µW/MHz
main core at 3.2 GHz ≈ 16 % power overhead (an upper bound, as the
checker figure is unscaled 40 nm silicon).
"""

from repro.harness.figures import sec6c_power


def test_sec6c_power(benchmark, emit):
    text, data = benchmark(sec6c_power)
    emit("sec6c_power", text)
    assert 0.10 < data["overhead"] < 0.22
    assert data["main_core_mw"] > data["checker_cores_mw"]
