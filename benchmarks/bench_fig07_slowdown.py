"""Figure 7: normalised slowdown per benchmark at Table I defaults.

Paper claim: average slowdown 1.75 %, no benchmark above 3.4 %.
Reproduction target: slowdowns near 1.0 across the suite (the shape —
which benchmarks are affected at all — matters more than the absolute
percentage, which depends on the substrate's IPC calibration).
"""

from repro.harness.figures import fig7
from repro.workloads.suite import BENCHMARK_ORDER


def test_fig07_slowdown(benchmark, emit, runner):
    text, data = benchmark.pedantic(fig7, args=(runner,), rounds=1, iterations=1)
    emit("fig07_slowdown", text)
    assert set(data) == set(BENCHMARK_ORDER)
    for name, slowdown in data.items():
        assert slowdown >= 0.999, f"{name} sped up?"
        assert slowdown < 1.15, f"{name} slowdown {slowdown} out of band"
