"""Table II: the benchmark suite — builds and functionally executes every
kernel once, verifying the whole suite is runnable."""

from repro.harness.figures import table2
from repro.isa.executor import execute_program
from repro.workloads.suite import BENCHMARK_ORDER, build_benchmark


def test_table2_suite(benchmark, emit):
    def build_and_run_all():
        text, rows = table2()
        counts = {}
        for name in BENCHMARK_ORDER:
            trace = execute_program(build_benchmark(name, "small"))
            counts[name] = len(trace)
        return text, rows, counts

    text, rows, counts = benchmark(build_and_run_all)
    extra = "\n".join(f"  {name:<14} {count} dynamic instructions (small)"
                      for name, count in counts.items())
    emit("table2_suite", text + "\n\nsmall-scale dynamic sizes:\n" + extra)
    assert len(rows) == 9
    assert all(count > 1000 for count in counts.values())
