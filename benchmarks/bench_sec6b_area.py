"""Section VI-B: area-overhead model.

Paper claims: twelve Rocket-class checkers ≈ 0.42 mm² at 20 nm, added SRAM
≈ 80 KiB ≈ 0.08 mm², for ≈ 24 % overhead vs the bare A57-class core and
≈ 16 % including the 1 MiB L2 — versus 100 % for dual-core lockstep.
"""

from repro.harness.figures import sec6b_area


def test_sec6b_area(benchmark, emit):
    text, data = benchmark(sec6b_area)
    emit("sec6b_area", text)
    assert 0.20 < data["overhead_vs_core"] < 0.30
    assert 0.12 < data["overhead_vs_core_with_l2"] < 0.20
    assert 70 < data["added_sram_kib"] < 95
