"""Figure 12: mean (a) and max (b) detection delay vs log size / timeout.

Paper claims: mean detection delay scales ≈ linearly with log size (10×
log → 10× delay); removing the timeout blows up the *max* delay for
benchmarks with long load/store-free stretches (bitcount: ~250×), while a
50 k timeout tames it at no performance cost.
"""

from repro.harness.figures import LOG_SWEEP_FIG12, fig12


def test_fig12_logsize_delay(benchmark, emit, runner, strict):
    text, data = benchmark.pedantic(fig12, args=(runner,), rounds=1,
                                    iterations=1)
    emit("fig12_logsize_delay", text)
    labels = [label for label, _b, _t in LOG_SWEEP_FIG12]
    small = labels.index("3.6KiB/500")
    default = labels.index("36KiB/5000")
    large = labels.index("360KiB/50000")
    no_timeout = labels.index("36KiB/inf")

    mean = data["mean"]
    if strict:
        for name, series in mean.items():
            # mean delay grows with log size
            assert series[small] < series[default] < series[large], name

        # the timeout bounds bitcount's max delay: removing it (36KiB/inf)
        # must inflate the max substantially vs the default
        max_delay = data["max"]
        assert max_delay["bitcount"][no_timeout] > \
            2.0 * max_delay["bitcount"][default]
