"""Extension: rollback-recovery cost (the paper's future work, measured).

The paper's detection scheme lets faulty stores escape to memory and
names checkpoint rollback as the correction companion.  This bench
measures what that costs in practice: how far execution rolls back and
how much work is re-executed, as a function of where the fault struck.
"""

from repro.common.config import default_config
from repro.common.rng import derive
from repro.detection.faults import FaultInjector, FaultSite, TransientFault
from repro.isa.executor import execute_program
from repro.recovery.rollback import detect_and_recover
from repro.workloads.suite import build_benchmark


def run_experiment(trials: int = 16):
    config = default_config()
    program = build_benchmark("freqmine", "small")
    clean = execute_program(program)
    rng = derive(0, "recovery-bench")
    rows = []
    for _ in range(trials):
        seq = rng.randrange(len(clean) // 4, len(clean) - 10)
        fault = TransientFault(FaultSite.STORE_VALUE, seq=seq, bit=5)
        injector = FaultInjector([fault])
        faulty = execute_program(program, fault_injector=injector)
        if not injector.activations:
            continue
        outcome = detect_and_recover(program, faulty, config)
        rows.append((seq, outcome))
    return len(clean), rows


def test_recovery_cost(benchmark, emit):
    total, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = ["Extension: rollback-recovery cost (freqmine)", "",
             f"  trace length: {total} instructions", ""]
    lines.append(f"  {'fault seq':>10} {'rollback seq':>13} "
                 f"{'replayed':>9} {'ok':>4}")
    for seq, outcome in rows:
        lines.append(f"  {seq:>10} {outcome.rollback_seq:>13} "
                     f"{outcome.replayed_instructions:>9} "
                     f"{'yes' if outcome.state_correct else 'NO':>4}")
    emit("recovery_cost", "\n".join(lines))

    assert rows, "no fault activated"
    for seq, outcome in rows:
        assert outcome.detected
        assert outcome.state_correct
        # rollback lands before the fault but within one segment's reach
        assert outcome.rollback_seq <= seq
        # work wasted is bounded by the distance from the last verified
        # snapshot to the end of the run
        assert outcome.replayed_instructions <= total
