"""Extension: rollback-recovery cost (the paper's future work, measured).

The paper's detection scheme lets faulty stores escape to memory and
names checkpoint rollback as the correction companion.  This bench runs
a recovery campaign grid through the campaign engine and measures what
correction costs in practice: how far execution rolls back and how much
work is re-executed, as a function of where the fault struck.
"""

from repro.harness.campaign import CampaignEngine, recovery_grid


def run_experiment(trials: int = 16):
    grid = recovery_grid(["freqmine"], trials=trials, scale="small", seed=0)
    records = CampaignEngine(workers=1).run(grid).typed_records()
    activated = [r for r in records if r.activated]
    total = records[0].trace_len if records else 0
    return total, activated


def test_recovery_cost(benchmark, emit):
    total, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = ["Extension: rollback-recovery cost (freqmine)", "",
             f"  trace length: {total} instructions", ""]
    lines.append(f"  {'fault seq':>10} {'rollback seq':>13} "
                 f"{'replayed':>9} {'ok':>4}")
    for record in rows:
        lines.append(f"  {record.seq:>10} {record.rollback_seq:>13} "
                     f"{record.replayed_instructions:>9} "
                     f"{'yes' if record.state_correct else 'NO':>4}")
    emit("recovery_cost", "\n".join(lines))

    assert rows, "no fault activated"
    for record in rows:
        assert record.detected
        assert record.state_correct
        # rollback lands before the fault but within one segment's reach
        assert record.rollback_seq <= record.seq
        # work wasted is bounded by the distance from the last verified
        # snapshot to the end of the run
        assert record.replayed_instructions <= total
