"""Campaign-service microbenchmark: status-scan and HTTP control-plane
throughput.

Two measurements, one BENCH line:

* ``scan`` — the bulk single-pass
  :meth:`~repro.harness.manifest.CampaignManifest.job_states` directory
  scan against the per-key :meth:`job_state` loop it replaced, on a
  synthetic manifest with a realistic state mix (done/failed/leased/
  pending).  Every status poll — CLI, ``--watch``, and the service's
  status/events endpoints — pays this cost, so it gates the control
  plane's polling scalability.
* ``http`` — ``GET /campaigns/{id}/status`` requests per second against
  a live ``CampaignService`` over real sockets (one tiny drained
  campaign), i.e. the full stack: socket accept, routing, bulk scan,
  canonical-JSON response.

Emits one machine-readable ``BENCH {...}`` JSON line and supports the
shared regression gate::

    python benchmarks/bench_service.py                      # measure
    python benchmarks/bench_service.py --output bench.json  # + write file
    python benchmarks/bench_service.py \
        --check benchmarks/baselines/bench_service.json --tolerance 0.40

The gate checks ``bulk_scans_per_s``, ``scan_speedup`` (bulk vs per-key
— the structural win that must not quietly disappear), and
``status_http_rps``.  Raw rates are machine-dependent; committed floors
are deliberately conservative.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.harness.campaign import TRACE_STORE_DIRNAME, fault_grid
from repro.harness.manifest import CampaignManifest
from repro.service.server import CampaignService
from repro.workloads.suite import configure_trace_store

GATED_METRICS = ("bulk_scans_per_s", "scan_speedup", "status_http_rps")


def check_against(payload: dict, baseline_path: str,
                  tolerance: float) -> int:
    """Exit status of the regression gate (0 ok, 1 regressed, 2 when the
    baseline itself is missing/unusable — see ``benchmarks/gate.py``)."""
    import importlib.util

    gate_path = Path(__file__).resolve().with_name("gate.py")
    spec = importlib.util.spec_from_file_location("bench_gate", gate_path)
    gate = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(gate)
    return gate.check_metrics(payload, baseline_path, tolerance,
                              GATED_METRICS)


def build_synthetic_manifest(root: Path, jobs: int) -> CampaignManifest:
    """A manifest with ``jobs`` unique fault jobs in a realistic state
    mix: ~50% done, ~10% failed, ~10% leased, rest pending."""
    configure_trace_store(root / TRACE_STORE_DIRNAME)
    grid = fault_grid(["stream"], trials=jobs, scale="small", seed=7)
    manifest = CampaignManifest.create(root, grid, kind="fault",
                                       scheme="detection", scale="small",
                                       benchmarks=["stream"])
    keys = [job.key for job in manifest.unique]
    for i, key in enumerate(keys):
        bucket = i % 10
        if bucket < 5:
            # synthetic done entries: state scans only test presence of
            # a valid envelope, not what the record means
            manifest.cache.put(key, {"synthetic": i})
        elif bucket < 6:
            manifest.record_failure(key, "bench", "synthetic failure")
        elif bucket < 7:
            manifest.try_lease(key, "bench", ttl=3600)
    return manifest


def time_scans(manifest: CampaignManifest, repeat: int,
               seconds: float) -> tuple[float, float]:
    """Best-of-``repeat`` scans/second for (bulk, per-key) status."""

    def rate(fn) -> float:
        best = 0.0
        for _ in range(repeat):
            count = 0
            start = time.perf_counter()
            while (elapsed := time.perf_counter() - start) < seconds:
                fn()
                count += 1
            best = max(best, count / elapsed)
        return best

    keys = [job.key for job in manifest.unique]
    bulk = rate(manifest.job_states)
    per_key = rate(lambda: {k: manifest.job_state(k) for k in keys})
    return bulk, per_key


def time_http(root: Path, repeat: int, seconds: float) -> float:
    """Status requests/second against a live service with one tiny
    drained campaign."""
    holder: dict = {}
    ready = threading.Event()
    service = CampaignService(root, drain_workers=1)

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop
        holder["port"] = loop.run_until_complete(service.start(port=0))
        ready.set()
        loop.run_forever()
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(60)
    port = holder["port"]

    def request(method: str, path: str, body: str | None = None) -> tuple:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            conn.request(method, path, body=body)
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    desc = {"kind": "baseline", "benchmarks": ["bitcount"],
            "scheme": "detection", "scale": "small"}
    status, payload = request("POST", "/campaigns", json.dumps(desc))
    assert status == 201, (status, payload)
    cid = json.loads(payload)["campaign"]
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        _status, payload = request("GET", f"/campaigns/{cid}/status")
        if json.loads(payload).get("complete"):
            break
        time.sleep(0.05)

    best = 0.0
    for _ in range(repeat):
        count = 0
        start = time.perf_counter()
        while (elapsed := time.perf_counter() - start) < seconds:
            status, _payload = request("GET", f"/campaigns/{cid}/status")
            assert status == 200
            count += 1
        best = max(best, count / elapsed)

    asyncio.run_coroutine_threadsafe(service.stop(),
                                     holder["loop"]).result(20)
    holder["loop"].call_soon_threadsafe(holder["loop"].stop)
    thread.join(timeout=20)
    return best


def run(jobs: int, repeat: int, seconds: float) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        manifest = build_synthetic_manifest(Path(tmp) / "scan", jobs)
        bulk, per_key = time_scans(manifest, repeat, seconds)
        http_rps = time_http(Path(tmp) / "svc", repeat, seconds)
    return {
        "bench": "service",
        "jobs": jobs,
        "bulk_scans_per_s": round(bulk, 2),
        "per_key_scans_per_s": round(per_key, 2),
        "scan_speedup": round(bulk / per_key, 2) if per_key else 0.0,
        "status_http_rps": round(http_rps, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=600,
                        help="unique jobs in the synthetic manifest")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions per path (best is kept)")
    parser.add_argument("--seconds", type=float, default=1.0,
                        help="timed window per repetition")
    parser.add_argument("--output", default=None,
                        help="also write the BENCH payload to this file")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against a committed baseline JSON "
                             "and exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional drop vs the baseline")
    args = parser.parse_args(argv)

    payload = run(args.jobs, args.repeat, args.seconds)
    print("BENCH " + json.dumps(payload, sort_keys=True))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
    if args.check:
        return check_against(payload, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
