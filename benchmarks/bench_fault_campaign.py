"""Fault-campaign microbenchmark: fork-point injection throughput.

Measures **fault jobs per second** through the real campaign execution
entry point (:func:`repro.harness.campaign.execute_job`) for the two
ways a fault job can produce its faulty trace:

* ``full`` — the pre-fork-path behaviour: re-execute the whole program
  with the fault injector attached (``REPRO_FORK_INJECTION=0``);
* ``forked`` — the fork-point path: reconstruct state at the earliest
  fault from the golden trace's keyframes, splice the golden columnar
  prefix, execute only from the fork seq, and let the checker verify
  pre-fork segments by column comparison;
* ``batch`` — the fork-point path amortised: the whole fault cell as a
  single ``fault-batch`` job sharing one fork cursor over one golden
  trace, so the golden columns are replayed once per cell instead of
  once per fault.

Faults are **late-trace** (drawn from the last tenth of each workload's
dynamic trace), the regime campaign grids spend most of their trials in
and where the redundant prefix work is largest.  Two schemes are
measured per workload: ``lockstep``, whose injection cost is pure
execution (the fork path's headline win), and ``detection``, the full
pipeline where the OoO timing model bounds the gain.

For the ``detection`` scheme the fork path is measured twice more:
with the **pre-fork timing splice** disabled (``REPRO_TIMING_SPLICE=0``
— every fault job re-times the whole faulty trace through the OoO
model, the pre-splice behaviour) and enabled (the golden prefix's
timing is spliced from a shared cursor and only the post-fork suffix is
re-timed).  ``splice_speedup`` is the ratio of the two, and the
``mean_detection_*`` headline metrics gate the full detection pipeline
the way ``mean_forked_fps`` gates pure execution.

Since schema 4 the ``detection`` cell is also measured through the
``fault-batch`` path (one job per cell, shared timing-splice cursor,
deepcopy-free snapshots) and ``mean_detection_batch_fps`` joins the
gated headline metrics.  Each timed path additionally reports a
per-stage wall-time breakdown (``exec_s`` ISA execution / ``timing_s``
OoO timing model / ``checker_s`` checker dispatch), informational only.

The benchmark is also an **identity gate**: forked and full runs of the
identical fault grid must produce byte-identical records — and for the
detection scheme, spliced and unspliced timing too, and batch against
per-job — both executed serially and through a manifest worker (lease →
execute → shared cache → collect).  Any divergence fails the run before
any number is printed.

Emits one machine-readable ``BENCH {...}`` JSON line and supports the
same regression gate as ``bench_executor``::

    python benchmarks/bench_fault_campaign.py
    python benchmarks/bench_fault_campaign.py --output bench.json
    python benchmarks/bench_fault_campaign.py \
        --check benchmarks/baselines/bench_fault_campaign.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

from repro.common.records import canonical_json
from repro.common.rng import derive
from repro.detection.faults import TransientFault
from repro.harness.campaign import CAMPAIGN_SITES, JobSpec, execute_job
from repro.harness.manifest import CampaignManifest
from repro.harness.orchestrator import CampaignWorker, collect
from repro.core.timing import TIMING_SPLICE_ENV
from repro.schemes.base import FORK_INJECTION_ENV
from repro.workloads.suite import benchmark_trace, configure_trace_store

#: Default measurement workloads: one memory-bound, one compute-bound.
DEFAULT_WORKLOADS = ("stream", "bitcount")

#: Schemes measured per workload (shared fault seeds, like real
#: cross-scheme coverage grids).
SCHEMES = ("lockstep", "detection")

#: Faults are drawn from the last ``LATE_WINDOW`` of the dynamic trace.
LATE_WINDOW = 0.1


def late_fault_jobs(benchmark: str, scale: str, trials: int,
                    scheme: str, seed: int = 0) -> list[JobSpec]:
    """``trials`` late-striking fault jobs with scheme-independent seeds
    (the same ``seed`` gives every scheme the identical fault set)."""
    clean_len = len(benchmark_trace(benchmark, scale))
    rng = derive(seed, f"bench-fault-campaign:{benchmark}")
    hi = clean_len - 10
    # clamp so short traces get *a* late window instead of an empty range
    lo = max(10, min(int(clean_len * (1.0 - LATE_WINDOW)), hi - 1))
    if lo >= hi:
        raise SystemExit(
            f"workload {benchmark!r} at scale {scale!r} commits only "
            f"{clean_len} instructions — too short for late-trace faults")
    jobs = []
    for trial in range(trials):
        site = CAMPAIGN_SITES[trial % len(CAMPAIGN_SITES)]
        fault = TransientFault(
            site,
            seq=rng.randrange(lo, hi),
            bit=rng.randrange(0, 48))
        jobs.append(JobSpec("fault", benchmark, scale, fault=fault,
                            scheme=scheme))
    return jobs


def _set_mode(forked: bool) -> None:
    os.environ[FORK_INJECTION_ENV] = "1" if forked else "0"


class _StageTimer:
    """Accumulated wall time per fault-pipeline stage.

    Purely observational: the wrapped entry points are timed and called
    through unchanged, so records and verdicts cannot notice the timer.
    ``checker_s`` nests inside ``timing_s`` (segment dispatch happens
    during the OoO commit walk), so the nested share is subtracted from
    the timing bucket — the three numbers partition the measured wall
    time instead of double-counting it.
    """

    def __init__(self) -> None:
        self.totals = {"exec_s": 0.0, "timing_s": 0.0, "checker_s": 0.0}
        self._nested_dispatch = 0.0

    def per_pass(self, repeat: int) -> dict[str, float]:
        return {name: round(value / repeat, 4)
                for name, value in self.totals.items()}

    def wrap_exec(self, func):
        def wrapper(*args, **kwargs):
            t0 = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                self.totals["exec_s"] += time.perf_counter() - t0
        return wrapper

    def wrap_run_rows(self, func):
        def wrapper(*args, **kwargs):
            before = self._nested_dispatch
            t0 = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                wall = time.perf_counter() - t0
                nested = self._nested_dispatch - before
                self.totals["timing_s"] += wall - nested
        return wrapper

    def wrap_dispatch(self, func):
        def wrapper(*args, **kwargs):
            t0 = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                wall = time.perf_counter() - t0
                self.totals["checker_s"] += wall
                self._nested_dispatch += wall
        return wrapper


@contextmanager
def stage_timer():
    """Patch the stage entry points for the duration of one measurement."""
    import repro.schemes.base as schemes_base
    from repro.core.ooo_core import OoOCore
    from repro.detection.system import ParallelErrorDetection

    timer = _StageTimer()
    saved = (schemes_base.execute_forked, schemes_base.execute_program,
             OoOCore.run_rows, ParallelErrorDetection._dispatch)
    schemes_base.execute_forked = timer.wrap_exec(saved[0])
    schemes_base.execute_program = timer.wrap_exec(saved[1])
    OoOCore.run_rows = timer.wrap_run_rows(saved[2])
    ParallelErrorDetection._dispatch = timer.wrap_dispatch(saved[3])
    try:
        yield timer
    finally:
        (schemes_base.execute_forked, schemes_base.execute_program,
         OoOCore.run_rows, ParallelErrorDetection._dispatch) = saved


def time_jobs(specs: list[JobSpec], repeat: int) -> tuple[float, str]:
    """Best-of-``repeat`` wall time for executing ``specs`` serially,
    plus the canonical JSON of the records (for the identity gate)."""
    best = float("inf")
    records: list[dict] = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        records = [execute_job(spec) for spec in specs]
        best = min(best, time.perf_counter() - t0)
    return best, canonical_json(records)


def manifest_records(specs: list[JobSpec], root: Path, mode: str) -> str:
    """Drive ``specs`` through a manifest worker; canonical merged JSON."""
    manifest = CampaignManifest.create(root, specs)
    CampaignWorker(manifest, worker_id=f"bench-{mode}").run()
    return collect(manifest).records_json()


def run(workloads: list[str], scale: str, trials: int, repeat: int) -> dict:
    results: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="bench-fault-campaign-") as tmp:
        tmp_path = Path(tmp)
        configure_trace_store(tmp_path / "traces")
        for name in workloads:
            benchmark_trace(name, scale)  # warm store + per-process memo
            per_scheme: dict[str, dict] = {}
            for scheme in SCHEMES:
                specs = late_fault_jobs(name, scale, trials, scheme)
                _set_mode(forked=False)
                full_s, full_json = time_jobs(specs, repeat)
                _set_mode(forked=True)
                with stage_timer() as forked_timer:
                    forked_s, forked_json = time_jobs(specs, repeat)
                if full_json != forked_json:
                    raise AssertionError(
                        f"forked records diverge from full execution "
                        f"({name}/{scheme}, serial path)")
                splice = None
                if scheme == "detection":
                    # same grid, fork path, timing splice vetoed: every
                    # job re-times the whole faulty trace (the pre-splice
                    # pipeline).  Records must not notice the difference.
                    os.environ[TIMING_SPLICE_ENV] = "0"
                    nosplice_s, nosplice_json = time_jobs(specs, repeat)
                    os.environ.pop(TIMING_SPLICE_ENV, None)
                    if nosplice_json != forked_json:
                        raise AssertionError(
                            f"timing-spliced records diverge from full "
                            f"re-timing ({name}/{scheme}, serial path)")
                    splice = {
                        "nosplice_fps": round(trials / nosplice_s, 1),
                        "splice_speedup": round(nosplice_s / forked_s, 2),
                    }
                # batch path: the same fault cell as ONE fault-batch job
                # (shared fork cursor, one golden-column sweep total);
                # its nested per-fault records must be byte-identical to
                # the per-job records above
                batch_spec = JobSpec(
                    "fault-batch", name, scale,
                    faults=tuple(spec.fault for spec in specs),
                    scheme=scheme)
                with stage_timer() as batch_timer:
                    batch_s, batch_json = time_jobs([batch_spec], repeat)
                nested = json.loads(batch_json)[0]["records"]
                if canonical_json(nested) != forked_json:
                    raise AssertionError(
                        f"batch records diverge from the per-job fault "
                        f"path ({name}/{scheme}, serial path)")
                per_scheme[scheme] = {
                    "full_fps": round(trials / full_s, 1),
                    "forked_fps": round(trials / forked_s, 1),
                    "batch_fps": round(trials / batch_s, 1),
                    "speedup": round(full_s / forked_s, 2),
                    "batch_speedup": round(full_s / batch_s, 2),
                    "stages": forked_timer.per_pass(repeat),
                    "batch_stages": batch_timer.per_pass(repeat),
                    **(splice or {}),
                }
            results[name] = per_scheme

            # manifest-worker path: same grid (plus one batch cell), one
            # worker per mode into fresh manifest directories, merged
            # records must match the serial runs byte for byte
            mixed = [spec for scheme in SCHEMES
                     for spec in late_fault_jobs(name, scale,
                                                 max(2, trials // 2), scheme)]
            mixed.append(JobSpec(
                "fault-batch", name, scale,
                faults=tuple(spec.fault for spec in mixed
                             if spec.scheme == "lockstep"),
                scheme="lockstep"))
            _set_mode(forked=False)
            via_full = manifest_records(mixed, tmp_path / f"m-full-{name}",
                                        "full")
            _set_mode(forked=True)
            via_forked = manifest_records(mixed, tmp_path / f"m-fork-{name}",
                                          "forked")
            if via_full != via_forked:
                raise AssertionError(
                    f"forked records diverge from full execution "
                    f"({name}, manifest-worker path)")
        os.environ.pop(FORK_INJECTION_ENV, None)
        configure_trace_store(None)

    # headline numbers: the execution-bound scheme, averaged over
    # workloads, plus the full detection pipeline with the timing splice
    lockstep = [results[name]["lockstep"] for name in results]
    detection = [results[name]["detection"] for name in results]
    n = len(lockstep)
    return {
        "bench": "fault_campaign",
        "schema": 4,
        "scale": scale,
        "trials": trials,
        "repeat": repeat,
        "workloads": results,
        "identical_records": True,
        "mean_full_fps": round(sum(r["full_fps"] for r in lockstep) / n, 1),
        "mean_forked_fps": round(
            sum(r["forked_fps"] for r in lockstep) / n, 1),
        "mean_batch_fps": round(
            sum(r["batch_fps"] for r in lockstep) / n, 1),
        "mean_speedup": round(sum(r["speedup"] for r in lockstep) / n, 2),
        "mean_batch_speedup": round(
            sum(r["batch_speedup"] for r in lockstep) / n, 2),
        "mean_detection_full_fps": round(
            sum(r["full_fps"] for r in detection) / n, 1),
        "mean_detection_nosplice_fps": round(
            sum(r["nosplice_fps"] for r in detection) / n, 1),
        "mean_detection_fps": round(
            sum(r["forked_fps"] for r in detection) / n, 1),
        "mean_detection_batch_fps": round(
            sum(r["batch_fps"] for r in detection) / n, 1),
        "mean_detection_speedup": round(
            sum(r["forked_fps"] / r["full_fps"] for r in detection) / n, 2),
        "mean_detection_batch_speedup": round(
            sum(r["batch_fps"] / r["full_fps"] for r in detection) / n, 2),
        "mean_splice_speedup": round(
            sum(r["splice_speedup"] for r in detection) / n, 2),
    }


def check_against(payload: dict, baseline_path: str, tolerance: float) -> int:
    """Exit status of the regression gate (0 ok, 1 regressed, 2 when the
    baseline itself is missing/unusable — see ``benchmarks/gate.py``)."""
    import importlib.util

    gate_path = Path(__file__).resolve().with_name("gate.py")
    spec = importlib.util.spec_from_file_location("bench_gate", gate_path)
    gate = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(gate)
    return gate.check_metrics(
        payload, baseline_path, tolerance,
        ("mean_forked_fps", "mean_speedup", "mean_batch_fps",
         "mean_detection_fps", "mean_detection_speedup",
         "mean_detection_batch_fps"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS),
                        help="comma-separated suite workload names")
    parser.add_argument("--scale", default="small",
                        choices=["small", "default"])
    parser.add_argument("--trials", type=int, default=12,
                        help="fault jobs per (workload, scheme) cell")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions per cell (best is kept)")
    parser.add_argument("--output", default=None,
                        help="also write the BENCH payload to this file")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against a committed baseline JSON and "
                             "exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop vs the baseline")
    args = parser.parse_args(argv)

    payload = run(args.workloads.split(","), args.scale, args.trials,
                  args.repeat)
    print("BENCH " + json.dumps(payload, sort_keys=True))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
    if args.check:
        return check_against(payload, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
