"""Figure 11: mean (a) and max (b) detection delay vs checker frequency.

Paper claims: mean delay scales ≈ inverse-linearly with checker frequency
(doubling the clock halves the delay) until the segment-fill time floors
it; max delays follow the trend less deterministically.
"""

from repro.harness.figures import FREQUENCIES_MHZ, fig11


def test_fig11_freq_delay(benchmark, emit, runner, strict):
    text, data = benchmark.pedantic(fig11, args=(runner,), rounds=1,
                                    iterations=1)
    emit("fig11_freq_delay", text)
    mean = data["mean"]
    idx125 = FREQUENCIES_MHZ.index(125)
    idx500 = FREQUENCIES_MHZ.index(500)
    idx2g = FREQUENCIES_MHZ.index(2000)
    for name, series in mean.items():
        if not strict and series[idx125] == 0.0:
            continue  # no delay samples at smoke scale
        # delay falls with frequency
        assert series[idx125] > series[idx500] > series[idx2g], name
        # near-linear region: 125 -> 500 MHz is a 4x clock; expect the
        # delay ratio to be well above 2x for every benchmark
        assert series[idx125] / series[idx500] > 2.0, name
    # max >= mean everywhere
    for name in mean:
        for m, mx in zip(mean[name], data["max"][name]):
            assert mx >= m, name
