"""Ablation: the load forwarding unit's window of vulnerability (§IV-C).

With the LFU, a load value corrupted in the main core's physical register
*after* the cache access is still logged correctly (the LFU duplicated it
at access time), so the checker recomputes with good data and catches the
corruption downstream.  Without the LFU (commit-time forwarding from the
register file), the corrupted value reaches the log too — the checker
replays with the *same wrong input* and, unless the value also feeds an
address or crosses a checkpoint in a detectable way, the error escapes.

This bench injects LOAD_VALUE faults at many points and reports the
detection rate with the LFU on vs off.
"""

from dataclasses import replace

from repro.common.config import default_config
from repro.common.rng import derive
from repro.detection.faults import FaultInjector, FaultSite, TransientFault
from repro.detection.system import run_with_detection
from repro.isa.executor import execute_program, LOAD
from repro.workloads.suite import build_benchmark


def _load_seqs(trace, count, seed_salt):
    """Pick dynamic indices of load instructions, deterministically."""
    loads = [d.seq for d in trace.instructions
             if any(m.kind == LOAD for m in d.mem)]
    rng = derive(0, seed_salt)
    rng.shuffle(loads)
    return loads[:count]


def run_campaign(lfu_enabled: bool, trials: int = 12) -> float:
    """Fraction of injected load-value faults detected."""
    cfg = default_config()
    cfg = replace(cfg, detection=replace(cfg.detection,
                                         load_forwarding_unit=lfu_enabled))
    program = build_benchmark("freqmine", "small")
    clean = execute_program(program)
    detected = 0
    for seq in _load_seqs(clean, trials, "lfu-ablation"):
        injector = FaultInjector(
            [TransientFault(FaultSite.LOAD_VALUE, seq=seq, bit=7)])
        trace = execute_program(program, fault_injector=injector)
        if not injector.activations:
            continue
        result = run_with_detection(trace, cfg)
        if result.report.detected:
            detected += 1
    return detected / trials


def test_ablation_lfu(benchmark, emit):
    def campaign():
        return run_campaign(True), run_campaign(False)

    with_lfu, without_lfu = benchmark.pedantic(campaign, rounds=1,
                                               iterations=1)
    text = (
        "Ablation: load forwarding unit (LOAD_VALUE faults)\n\n"
        f"  detection rate with LFU:    {100 * with_lfu:5.1f}%\n"
        f"  detection rate without LFU: {100 * without_lfu:5.1f}%\n\n"
        "  (without the LFU the corrupted value is forwarded into the\n"
        "   log, so the checker replays with the same wrong input)"
    )
    emit("ablation_lfu", text)
    assert with_lfu == 1.0, "LFU must close the vulnerability window"
    assert without_lfu < with_lfu, "removing the LFU must lose coverage"
