"""Table I: the experimental setup (configuration rendering)."""

from repro.harness.figures import table1


def test_table1_config(benchmark, emit):
    text, rows = benchmark(table1)
    emit("table1_config", text)
    assert any("3-wide" in v for _k, v in rows)
    assert any("12x in-order" in v.lower() or "12x" in v.lower()
               for _k, v in rows)
