"""Section VI-D: the scheme extends favourably to bigger main cores.

Paper claim: as the main core grows, single-thread performance rises
sublinearly while the checker array's throughput (and area) scales
linearly — so the *relative* area overhead of detection shrinks (or at
least does not grow) with core size.
"""

from repro.analysis.report import format_table
from repro.harness.bigger_cores import CORE_TIERS, size_tier
from repro.harness.experiment import bench_scale
from repro.workloads.suite import benchmark_trace


def run_experiment():
    trace = benchmark_trace("bodytrack", bench_scale())
    return [size_tier(trace, tier) for tier in CORE_TIERS]


def test_sec6d_bigger_cores(benchmark, emit, strict):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [r.name, str(r.width), str(r.checkers_needed),
         f"{r.slowdown:.3f}", f"{r.main_core_mm2:.2f} mm2",
         f"{r.checker_mm2:.2f} mm2", f"{100 * r.area_overhead:.1f}%"]
        for r in results
    ]
    text = format_table(
        "Section VI-D: detection overhead vs main-core aggressiveness",
        ["tier", "width", "checkers", "slowdown", "core area",
         "checker area", "overhead"], rows)
    emit("sec6d_bigger_cores", text)

    baseline, big, huge = results
    # relative area overhead must not grow with core size
    assert huge.area_overhead <= baseline.area_overhead + 1e-9
    assert big.area_overhead <= baseline.area_overhead + 1e-9
    if strict:
        # every tier meets its slowdown budget with <= 24 checkers
        assert all(r.slowdown < 1.10 for r in results)
