"""Figure 8: distribution of error-detection delays at default settings.

Paper claims: roughly normal-shaped distributions; randacc has the highest
mean (1550 ns, vs 770 ns suite average); 5000 ns covers over 99.9 % of all
loads and stores for every benchmark (the far tail reaches tens of µs).
"""

from repro.harness.figures import fig8
from repro.workloads.suite import BENCHMARK_ORDER


def test_fig08_delay_density(benchmark, emit, runner, strict):
    text, series = benchmark.pedantic(fig8, args=(runner,), rounds=1, iterations=1)
    emit("fig08_delay_density", text)
    assert set(series) == set(BENCHMARK_ORDER)
    for name, points in series.items():
        if not strict and not points:
            continue  # tiny smoke workloads may commit no loads/stores
        assert points, f"{name} produced no delay density"
        total = sum(density for _x, density in points)
        assert total > 0, f"{name} density is empty"
