"""Figure 1(d): lockstep vs RMT vs parallel error detection.

Paper claim: lockstep has large area+energy overheads, RMT has a large
performance overhead, and the heterogeneous scheme keeps all three small.
"""

from repro.harness.figures import fig1_comparison


def test_fig01_comparison(benchmark, emit, runner, strict):
    text, data = benchmark.pedantic(fig1_comparison, args=(runner,), rounds=1, iterations=1)
    emit("fig01_comparison", text)
    # lockstep: negligible slowdown, 100% area/energy
    assert data["lockstep"]["slowdown"] < 1.01
    assert data["lockstep"]["area"] == 1.0
    # RMT: significant slowdown, small area
    if strict:
        assert data["rmt"]["slowdown"] > 1.10
    assert data["rmt"]["area"] < 0.10
    # ours: all three small
    assert data["ours"]["slowdown"] < 1.10
    assert data["ours"]["area"] < 0.30
    assert data["ours"]["energy"] < 0.30
