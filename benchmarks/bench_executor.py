"""Executor microbenchmark: the perf baseline of the execution core.

Measures **committed instructions per second** for the two hot paths every
campaign job bottoms out in:

* ``execute`` — :func:`repro.isa.executor.execute_program`, the main-core
  functional run that produces the committed trace;
* ``replay`` — :class:`repro.detection.checker.SegmentChecker` replaying
  the same committed stream from its load-store-log segments (the paper's
  checker-core path; §IV-B).

Schema 2 measures each path twice — once through the block-compiled fast
path (:mod:`repro.isa.blocks`) and once with ``REPRO_BLOCK_EXEC=0``
forcing the per-instruction handlers — and reports both, plus the block
engine's dynamic coverage (fraction of committed instructions that went
through generated code) and the mean instructions committed per generated
call (self-loop fusion makes this exceed the static block length).  The
block-mode and handler-mode traces are asserted byte-identical before any
timing, so the numbers can never come from divergent executions.

Emits one machine-readable ``BENCH {...}`` JSON line so the perf
trajectory has something to hang before/after numbers off, and supports a
regression gate against a committed baseline file::

    python benchmarks/bench_executor.py                      # measure
    python benchmarks/bench_executor.py --output bench.json  # + write file
    python benchmarks/bench_executor.py \
        --check benchmarks/baselines/bench_executor.json --tolerance 0.30

The gate compares *relative* throughput: it fails (exit 1) when a gated
metric drops more than ``--tolerance`` below the baseline.  Raw ips are
machine-dependent, so the committed baseline is deliberately conservative
and the default tolerance wide (30 %); the block-vs-handler speedups are
same-process ratios and therefore much more stable than the raw numbers.
Independent of the gate, the bench itself exits 1 when block coverage
falls below :data:`MIN_BLOCK_COVERAGE` on any measured workload.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time

from repro.detection.checker import SegmentChecker
from repro.detection.checkpoint import ArchStateTracker
from repro.detection.lslog import CloseReason, LogEntry, Segment
from repro.isa.blocks import BLOCK_EXEC_ENV, STATS
from repro.isa.executor import LOAD, NONDET, STORE, execute_program
from repro.workloads.suite import build_benchmark

#: Default measurement workloads: memory-bound, compute-bound, and
#: pointer-chasing random access.
DEFAULT_WORKLOADS = ("stream", "bitcount", "randacc")

#: Instructions per hand-built log segment for the replay benchmark.
SEGMENT_INSTRUCTIONS = 200

#: Hard floor on per-workload dynamic block coverage (ISSUE 9 acceptance:
#: >= 80 % of committed instructions through generated code).
MIN_BLOCK_COVERAGE = 0.80

#: Metrics the regression gate compares against the committed baseline.
GATE_METRICS = ("mean_execute_ips", "mean_replay_ips",
                "block_speedup_execute", "block_speedup_replay",
                "block_coverage")


@contextlib.contextmanager
def block_mode(value: str):
    """Force the block-exec kill switch to ``value`` ("1" or "0")."""
    previous = os.environ.get(BLOCK_EXEC_ENV)
    os.environ[BLOCK_EXEC_ENV] = value
    try:
        yield
    finally:
        if previous is None:
            del os.environ[BLOCK_EXEC_ENV]
        else:
            os.environ[BLOCK_EXEC_ENV] = previous


def build_segments(trace) -> list[Segment]:
    """Cut the committed trace into closed segments every
    :data:`SEGMENT_INSTRUCTIONS` commits (one pass, outside the timed
    region), mirroring what the detection system's log builder produces."""
    tracker = ArchStateTracker()
    segments: list[Segment] = []
    rows = trace.instructions
    total = len(rows)
    start_seq = 0
    start = tracker.snapshot(rows[0].pc if total else trace.program.entry)
    entries: list[LogEntry] = []
    for i in range(total):
        dyn = rows[i]
        for memop in dyn.mem:
            if memop.kind == LOAD:
                entries.append(LogEntry(LOAD, memop.addr, memop.value, 0))
            elif memop.kind == STORE:
                entries.append(LogEntry(STORE, memop.addr, memop.value, 0))
            else:
                entries.append(LogEntry(NONDET, 0, memop.value, 0))
        tracker.apply(dyn)
        if (i - start_seq + 1) >= SEGMENT_INSTRUCTIONS or i == total - 1:
            end = tracker.snapshot(dyn.next_pc)
            segment = Segment(index=len(segments), slot=0,
                              start_checkpoint=start, start_seq=start_seq,
                              entries=entries)
            segment.close_reason = CloseReason.FULL
            segment.end_checkpoint = end
            segment.end_seq = i + 1
            segments.append(segment)
            start = end
            start_seq = i + 1
            entries = []
    return segments


def _time_execute(program, instructions: int, repeat: int) -> float:
    best = 0.0
    for _ in range(repeat):
        t0 = time.perf_counter()
        execute_program(program)
        elapsed = time.perf_counter() - t0
        best = max(best, instructions / elapsed)
    return best


def _time_replay(program, segments, instructions: int, repeat: int,
                 name: str) -> float:
    checker = SegmentChecker(program)
    best = 0.0
    for _ in range(repeat):
        t0 = time.perf_counter()
        for segment in segments:
            result = checker.check(segment)
            assert result.ok, (name, result.errors)
        elapsed = time.perf_counter() - t0
        best = max(best, instructions / elapsed)
    return best


def bench_workload(name: str, scale: str, repeat: int) -> dict:
    """Best-of-``repeat`` instructions/second for both paths on ``name``,
    in both block and handler modes, plus block-coverage counters."""
    program = build_benchmark(name, scale)

    with block_mode("0"):
        trace = execute_program(program)   # handler-mode reference trace
    instructions = len(trace)
    with block_mode("1"):
        block_trace = execute_program(program)   # warms the block table
    assert block_trace.to_payload() == trace.to_payload(), (
        f"{name}: block-mode trace diverges from handler-mode trace")

    segments = build_segments(trace)

    with block_mode("1"):
        STATS.reset()
        execute_ips = _time_execute(program, instructions, repeat)
        coverage = STATS.coverage()
        mean_commit = STATS.mean_block_len()
        replay_ips = _time_replay(program, segments, instructions, repeat,
                                  name)
    with block_mode("0"):
        execute_handler_ips = _time_execute(program, instructions, repeat)
        replay_handler_ips = _time_replay(program, segments, instructions,
                                          repeat, name)

    return {
        "instructions": instructions,
        "execute_ips": round(execute_ips, 1),
        "execute_handler_ips": round(execute_handler_ips, 1),
        "replay_ips": round(replay_ips, 1),
        "replay_handler_ips": round(replay_handler_ips, 1),
        "block_coverage": round(coverage, 4),
        "mean_block_commit": round(mean_commit, 2),
    }


def run(workloads: list[str], scale: str, repeat: int) -> dict:
    results = {name: bench_workload(name, scale, repeat)
               for name in workloads}
    n = len(results)

    def mean(key: str) -> float:
        return sum(r[key] for r in results.values()) / n

    mean_execute = mean("execute_ips")
    mean_replay = mean("replay_ips")
    mean_execute_handler = mean("execute_handler_ips")
    mean_replay_handler = mean("replay_handler_ips")
    return {
        "bench": "executor",
        "schema": 2,
        "scale": scale,
        "repeat": repeat,
        "workloads": results,
        "mean_execute_ips": round(mean_execute, 1),
        "mean_replay_ips": round(mean_replay, 1),
        "mean_execute_handler_ips": round(mean_execute_handler, 1),
        "mean_replay_handler_ips": round(mean_replay_handler, 1),
        "block_speedup_execute": round(mean_execute / mean_execute_handler,
                                       3),
        "block_speedup_replay": round(mean_replay / mean_replay_handler, 3),
        # gate on the *worst* workload: the acceptance bar is per-workload
        "block_coverage": round(min(r["block_coverage"]
                                    for r in results.values()), 4),
        "mean_block_commit": round(mean("mean_block_commit"), 2),
    }


def check_against(payload: dict, baseline_path: str, tolerance: float) -> int:
    """Exit status of the regression gate (0 ok, 1 regressed, 2 when the
    baseline itself is missing/unusable — see ``benchmarks/gate.py``)."""
    import importlib.util
    from pathlib import Path

    gate_path = Path(__file__).resolve().with_name("gate.py")
    spec = importlib.util.spec_from_file_location("bench_gate", gate_path)
    gate = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(gate)
    return gate.check_metrics(payload, baseline_path, tolerance,
                              GATE_METRICS)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS),
                        help="comma-separated suite workload names")
    parser.add_argument("--scale", default="small",
                        choices=["small", "default"])
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions per path (best is kept)")
    parser.add_argument("--output", default=None,
                        help="also write the BENCH payload to this file")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against a committed baseline JSON and "
                             "exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop vs the baseline")
    args = parser.parse_args(argv)

    payload = run(args.workloads.split(","), args.scale, args.repeat)
    print("BENCH " + json.dumps(payload, sort_keys=True))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
    status = 0
    if payload["block_coverage"] < MIN_BLOCK_COVERAGE:
        print(f"bench executor: block coverage {payload['block_coverage']} "
              f"below the {MIN_BLOCK_COVERAGE} floor", file=sys.stderr)
        status = 1
    if args.check:
        status = max(status, check_against(payload, args.check,
                                           args.tolerance))
    return status


if __name__ == "__main__":
    sys.exit(main())
