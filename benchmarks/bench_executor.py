"""Executor microbenchmark: the perf baseline of the execution core.

Measures **committed instructions per second** for the two hot paths every
campaign job bottoms out in:

* ``execute`` — :func:`repro.isa.executor.execute_program`, the main-core
  functional run that produces the committed trace;
* ``replay`` — :class:`repro.detection.checker.SegmentChecker` replaying
  the same committed stream from its load-store-log segments (the paper's
  checker-core path; §IV-B).

Emits one machine-readable ``BENCH {...}`` JSON line so the perf
trajectory has something to hang before/after numbers off, and supports a
regression gate against a committed baseline file::

    python benchmarks/bench_executor.py                      # measure
    python benchmarks/bench_executor.py --output bench.json  # + write file
    python benchmarks/bench_executor.py \
        --check benchmarks/baselines/bench_executor.json --tolerance 0.30

The gate compares *relative* throughput: it fails (exit 1) when either
path's mean instructions/second drops more than ``--tolerance`` below the
baseline.  Raw numbers are machine-dependent; the committed baseline is
deliberately conservative and the default tolerance wide (30 %), so the
gate catches structural regressions (an accidentally de-optimised step
loop), not runner-to-runner jitter.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.detection.checker import SegmentChecker
from repro.detection.checkpoint import ArchStateTracker
from repro.detection.lslog import CloseReason, LogEntry, Segment
from repro.isa.executor import LOAD, NONDET, STORE, execute_program
from repro.workloads.suite import build_benchmark

#: Default measurement workloads: one memory-bound, one compute-bound.
DEFAULT_WORKLOADS = ("stream", "bitcount")

#: Instructions per hand-built log segment for the replay benchmark.
SEGMENT_INSTRUCTIONS = 200


def build_segments(trace) -> list[Segment]:
    """Cut the committed trace into closed segments every
    :data:`SEGMENT_INSTRUCTIONS` commits (one pass, outside the timed
    region), mirroring what the detection system's log builder produces."""
    tracker = ArchStateTracker()
    segments: list[Segment] = []
    rows = trace.instructions
    total = len(rows)
    start_seq = 0
    start = tracker.snapshot(rows[0].pc if total else trace.program.entry)
    entries: list[LogEntry] = []
    for i in range(total):
        dyn = rows[i]
        for memop in dyn.mem:
            if memop.kind == LOAD:
                entries.append(LogEntry(LOAD, memop.addr, memop.value, 0))
            elif memop.kind == STORE:
                entries.append(LogEntry(STORE, memop.addr, memop.value, 0))
            else:
                entries.append(LogEntry(NONDET, 0, memop.value, 0))
        tracker.apply(dyn)
        if (i - start_seq + 1) >= SEGMENT_INSTRUCTIONS or i == total - 1:
            end = tracker.snapshot(dyn.next_pc)
            segment = Segment(index=len(segments), slot=0,
                              start_checkpoint=start, start_seq=start_seq,
                              entries=entries)
            segment.close_reason = CloseReason.FULL
            segment.end_checkpoint = end
            segment.end_seq = i + 1
            segments.append(segment)
            start = end
            start_seq = i + 1
            entries = []
    return segments


def bench_workload(name: str, scale: str, repeat: int) -> dict:
    """Best-of-``repeat`` instructions/second for both paths on ``name``."""
    program = build_benchmark(name, scale)
    trace = execute_program(program)   # warm-up + reference trace
    instructions = len(trace)

    execute_best = 0.0
    for _ in range(repeat):
        t0 = time.perf_counter()
        execute_program(program)
        elapsed = time.perf_counter() - t0
        execute_best = max(execute_best, instructions / elapsed)

    segments = build_segments(trace)
    checker = SegmentChecker(program)
    replay_best = 0.0
    for _ in range(repeat):
        t0 = time.perf_counter()
        for segment in segments:
            result = checker.check(segment)
            assert result.ok, (name, result.errors)
        elapsed = time.perf_counter() - t0
        replay_best = max(replay_best, instructions / elapsed)

    return {
        "instructions": instructions,
        "execute_ips": round(execute_best, 1),
        "replay_ips": round(replay_best, 1),
    }


def run(workloads: list[str], scale: str, repeat: int) -> dict:
    results = {name: bench_workload(name, scale, repeat)
               for name in workloads}
    n = len(results)
    return {
        "bench": "executor",
        "schema": 1,
        "scale": scale,
        "repeat": repeat,
        "workloads": results,
        "mean_execute_ips": round(
            sum(r["execute_ips"] for r in results.values()) / n, 1),
        "mean_replay_ips": round(
            sum(r["replay_ips"] for r in results.values()) / n, 1),
    }


def check_against(payload: dict, baseline_path: str, tolerance: float) -> int:
    """Exit status of the regression gate (0 ok, 1 regressed, 2 when the
    baseline itself is missing/unusable — see ``benchmarks/gate.py``)."""
    import importlib.util
    from pathlib import Path

    gate_path = Path(__file__).resolve().with_name("gate.py")
    spec = importlib.util.spec_from_file_location("bench_gate", gate_path)
    gate = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(gate)
    return gate.check_metrics(payload, baseline_path, tolerance,
                              ("mean_execute_ips", "mean_replay_ips"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS),
                        help="comma-separated suite workload names")
    parser.add_argument("--scale", default="small",
                        choices=["small", "default"])
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions per path (best is kept)")
    parser.add_argument("--output", default=None,
                        help="also write the BENCH payload to this file")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against a committed baseline JSON and "
                             "exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional ips drop vs the baseline")
    args = parser.parse_args(argv)

    payload = run(args.workloads.split(","), args.scale, args.repeat)
    print("BENCH " + json.dumps(payload, sort_keys=True))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
    if args.check:
        return check_against(payload, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
