"""The shared bench regression gate.

Every microbenchmark's ``--check`` path funnels through
:func:`check_metrics`, so the failure semantics live in exactly one
place: a *regressed* metric exits 1, while a **broken gate** — baseline
file missing, unparseable, or lacking a checked metric — exits 2 loudly
instead of passing vacuously.  CI treats both as failures; the distinct
status makes "the code got slower" and "the gate never ran" separable
in logs.
"""

from __future__ import annotations

import json
import sys


def load_baseline(path: str) -> dict:
    """The committed baseline payload, or a loud ``SystemExit(2)``.

    A missing or garbled baseline must never look like a passing gate:
    the common failure mode is a renamed/forgotten baseline file, which
    a vacuous pass would hide until a real regression ships.
    """
    try:
        with open(path) as handle:
            baseline = json.load(handle)
    except OSError as error:
        print(f"bench gate: cannot read baseline {path!r}: {error}",
              file=sys.stderr)
        raise SystemExit(2)
    except ValueError as error:
        print(f"bench gate: baseline {path!r} is not valid JSON: {error}",
              file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(baseline, dict):
        print(f"bench gate: baseline {path!r} is not a JSON object",
              file=sys.stderr)
        raise SystemExit(2)
    return baseline


def check_metrics(payload: dict, baseline_path: str, tolerance: float,
                  metrics: tuple[str, ...]) -> int:
    """Exit status of the regression gate: 0 ok, 1 regressed.

    Each metric's floor is ``baseline * (1 - tolerance)``; a metric
    absent from the baseline or the payload is a broken gate
    (``SystemExit(2)``), not a pass.
    """
    baseline = load_baseline(baseline_path)
    status = 0
    for metric in metrics:
        if metric not in baseline:
            print(f"bench gate: baseline {baseline_path!r} lacks metric "
                  f"{metric!r}", file=sys.stderr)
            raise SystemExit(2)
        if metric not in payload:
            print(f"bench gate: bench payload lacks metric {metric!r}",
                  file=sys.stderr)
            raise SystemExit(2)
        current = payload[metric]
        reference = baseline[metric]
        floor = reference * (1.0 - tolerance)
        verdict = "ok" if current >= floor else "REGRESSED"
        print(f"{metric}: {current:.2f} vs baseline {reference:.2f} "
              f"(floor {floor:.2f}) {verdict}")
        if current < floor:
            status = 1
    return status
