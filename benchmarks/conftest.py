"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's tables or figures and prints
it (run pytest with ``-s`` to see the tables inline; they are also written
to ``benchmarks/output/``).  A process-wide runner caches traces and
timing runs, so e.g. Figure 11 reuses Figure 9's sweep.

Set ``REPRO_BENCH_SCALE=small`` for a quick smoke pass with shrunken
workloads.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.experiment import default_runner

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def runner():
    """The shared experiment runner (trace/baseline/run caches)."""
    return default_runner()


@pytest.fixture(scope="session")
def strict():
    """Paper-shape assertions only hold at full workload sizes; the
    REPRO_BENCH_SCALE=small smoke mode checks plumbing, not shapes."""
    from repro.harness.experiment import bench_scale
    return bench_scale() != "small"


@pytest.fixture(scope="session")
def emit():
    """Persist and print a regenerated table/figure."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _emit
