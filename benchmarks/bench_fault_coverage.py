"""Fault-injection coverage campaign (§IV-I's coverage argument, measured).

The campaign grid injects transient faults at every architecturally
visible site across random dynamic instructions; the campaign engine
(:mod:`repro.harness.campaign`) executes the grid and classifies each
trial as:

* **masked** — final memory and registers match the fault-free run (the
  corrupted value died before reaching any store, address or checkpoint);
* **detected** — a checker comparison fired;
* **escaped** — architectural state differs but no check fired (silent
  data corruption).

The paper's coverage argument requires *zero escapes*: every fault that
changes architecturally visible state must be caught by a store check, a
load-address check, or a register-checkpoint validation.
"""

from repro.harness.campaign import CAMPAIGN_SITES, CampaignEngine, fault_grid


def run_campaign(trials_per_site: int = 4):
    grid = fault_grid(
        ["bodytrack"], trials=trials_per_site * len(CAMPAIGN_SITES),
        scale="small", seed=0)
    result = CampaignEngine(workers=1).run(grid)
    records = result.typed_records()
    activated = sum(1 for r in records if r.activated)
    detected = sum(1 for r in records if r.outcome == "detected")
    masked = sum(1 for r in records if r.outcome == "masked")
    escaped = sum(1 for r in records if r.outcome == "escaped")
    latencies_us = [r.detect_latency_us for r in records
                    if r.detect_latency_us is not None]
    return activated, detected, masked, escaped, latencies_us


def test_fault_coverage(benchmark, emit, strict):
    activated, detected, masked, escaped, latencies = benchmark.pedantic(
        run_campaign, rounds=1, iterations=1)
    mean_lat = sum(latencies) / len(latencies) if latencies else 0.0
    text = (
        "Fault-injection coverage campaign (bodytrack, 6 sites)\n\n"
        f"  faults activated: {activated}\n"
        f"  detected:         {detected}\n"
        f"  masked:           {masked} (architecturally invisible)\n"
        f"  escaped (SDC):    {escaped}\n"
        f"  mean check latency after segment close: {mean_lat:.2f} us"
    )
    emit("fault_coverage", text)
    assert activated > 0
    # the paper's coverage argument: no silent data corruption, ever
    assert escaped == 0, "a fault escaped detection"
    if strict:
        assert detected > 0
