"""Fault-injection coverage campaign (§IV-I's coverage argument, measured).

Injects transient faults at every architecturally visible site across
random dynamic instructions and classifies each as:

* **masked** — final memory and registers match the fault-free run (the
  corrupted value died before reaching any store, address or checkpoint);
* **detected** — a checker comparison fired;
* **escaped** — architectural state differs but no check fired (silent
  data corruption).

The paper's coverage argument requires *zero escapes*: every fault that
changes architecturally visible state must be caught by a store check, a
load-address check, or a register-checkpoint validation.
"""

from repro.common.config import default_config
from repro.common.rng import derive
from repro.common.time import ticks_to_us
from repro.detection.faults import FaultInjector, FaultSite, TransientFault
from repro.detection.system import run_with_detection
from repro.isa.executor import Trace, execute_program
from repro.workloads.suite import build_benchmark

SITES = [FaultSite.RESULT, FaultSite.LOAD_VALUE, FaultSite.LOAD_ADDR,
         FaultSite.STORE_VALUE, FaultSite.STORE_ADDR, FaultSite.BRANCH]


def architecturally_masked(clean: Trace, faulty: Trace) -> bool:
    """True when the fault left no architecturally visible difference."""
    if len(clean) != len(faulty):
        return False
    if clean.final_xregs != faulty.final_xregs:
        return False
    if clean.final_fregs != faulty.final_fregs:
        return False
    clean_mem = {a: v for a, v in clean.memory.items() if v}
    faulty_mem = {a: v for a, v in faulty.memory.items() if v}
    return clean_mem == faulty_mem


def run_campaign(trials_per_site: int = 4):
    cfg = default_config()
    program = build_benchmark("bodytrack", "small")
    clean = execute_program(program)
    rng = derive(0, "coverage-campaign")
    activated = detected = masked = escaped = 0
    latencies_us = []
    for site in SITES:
        for _ in range(trials_per_site):
            seq = rng.randrange(10, len(clean) - 10)
            bit = rng.randrange(0, 48)
            injector = FaultInjector([TransientFault(site, seq=seq, bit=bit)])
            trace = execute_program(program, fault_injector=injector)
            if not injector.activations:
                continue
            activated += 1
            result = run_with_detection(trace, cfg)
            if result.report.detected:
                detected += 1
                event = result.report.first_event
                latencies_us.append(ticks_to_us(
                    event.detect_tick - event.segment_close_tick))
            elif architecturally_masked(clean, trace):
                masked += 1
            else:
                escaped += 1
    return activated, detected, masked, escaped, latencies_us


def test_fault_coverage(benchmark, emit, strict):
    activated, detected, masked, escaped, latencies = benchmark.pedantic(
        run_campaign, rounds=1, iterations=1)
    mean_lat = sum(latencies) / len(latencies) if latencies else 0.0
    text = (
        "Fault-injection coverage campaign (bodytrack, 6 sites)\n\n"
        f"  faults activated: {activated}\n"
        f"  detected:         {detected}\n"
        f"  masked:           {masked} (architecturally invisible)\n"
        f"  escaped (SDC):    {escaped}\n"
        f"  mean check latency after segment close: {mean_lat:.2f} us"
    )
    emit("fault_coverage", text)
    assert activated > 0
    # the paper's coverage argument: no silent data corruption, ever
    assert escaped == 0, "a fault escaped detection"
    if strict:
        assert detected > 0
