"""Figure 13: slowdown across checker core count / frequency pairs.

Paper claims: N cores at frequency f perform comparably to 2N cores at
f/2; and at equal aggregate throughput, *more, slower* cores do at least
as well because only n−1 checkers are usable while the nth segment fills.
"""

from repro.harness.figures import CORE_SWEEP, fig13


def test_fig13_core_scaling(benchmark, emit, runner, strict):
    text, data = benchmark.pedantic(fig13, args=(runner,), rounds=1,
                                    iterations=1)
    emit("fig13_core_scaling", text)
    labels = [label for label, _c, _m in CORE_SWEEP]
    pairs = [
        (labels.index("3c/1GHz"), labels.index("12c/250MHz")),
        (labels.index("6c/1GHz"), labels.index("12c/500MHz")),
    ]
    for name, series in data.items():
        full = series[labels.index("12c/1GHz")]
        # the full configuration dominates every reduced one (2% slack:
        # cache/alignment noise can nudge equal-work configs either way)
        assert all(s >= full * 0.98 for s in series), name
        if not strict:
            continue
        # equal-throughput equivalence: 12 slower cores do at least as
        # well as fewer fast ones (generous 25% tolerance — the paper
        # shows "comparable", not identical)
        for few_idx, many_idx in pairs:
            assert series[many_idx] <= series[few_idx] * 1.25, (
                f"{name}: {labels[many_idx]} should be comparable to or "
                f"better than {labels[few_idx]}")
