"""Figure 10: slowdown from checkpointing alone, across log sizes and
instruction timeouts (ideal — infinitely fast — checkers).

Paper claims: the default 36 KiB log keeps checkpoint-only slowdown under
~2 %; a 10× larger log makes it negligible; a 10× smaller log costs up to
15 %; randacc is least affected (low IPC → infrequent checkpoints).
"""

from repro.harness.figures import LOG_SWEEP, fig10


def test_fig10_checkpoint_overhead(benchmark, emit, runner):
    text, data = benchmark.pedantic(fig10, args=(runner,), rounds=1,
                                    iterations=1)
    emit("fig10_checkpoint_overhead", text)
    labels = [label for label, _b, _t in LOG_SWEEP]
    small = labels.index("3.6KiB/500")
    default = labels.index("36KiB/5000")
    large = labels.index("360KiB/50000")
    for name, series in data.items():
        # more checkpointing never makes things faster
        assert series[small] >= series[default] - 1e-9, name
        assert series[default] >= series[large] - 1e-9, name
        # default log keeps checkpoint cost small
        assert series[default] < 1.06, f"{name}: {series[default]}"
    # the small log hurts at least one benchmark measurably
    assert max(series[small] for series in data.values()) > 1.01
