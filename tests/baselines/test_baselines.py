"""Tests for the comparison baselines."""

from repro.baselines.lockstep import run_lockstep
from repro.baselines.rmt import rmt_config, run_rmt
from repro.baselines.unprotected import run_baseline


class TestLockstep:
    def test_negligible_slowdown(self, rmw_trace, config):
        result = run_lockstep(rmw_trace, config)
        assert 1.0 <= result.slowdown_vs_unprotected < 1.01

    def test_doubled_area_energy(self, rmw_trace, config):
        result = run_lockstep(rmw_trace, config)
        assert result.area_overhead == 1.0
        assert result.energy_overhead == 1.0

    def test_cycles_scale_detection_latency(self, rmw_trace, config):
        result = run_lockstep(rmw_trace, config)
        # a few cycles at 3.2 GHz: single-digit nanoseconds
        assert 0 < result.detection_latency_ns < 10


def build_ilp_loop(iterations=800):
    """A loop of independent operations: ILP-rich, so sharing the core
    with a redundant thread actually costs throughput (a dependent chain
    would hide the sharing entirely)."""
    from repro.isa.instructions import Opcode
    from repro.isa.program import ProgramBuilder
    b = ProgramBuilder("ilp")
    b.emit(Opcode.MOVI, rd=30, imm=0)
    b.emit(Opcode.MOVI, rd=31, imm=iterations)
    b.label("loop")
    for i in range(9):
        b.emit(Opcode.ADDI, rd=1 + (i % 8), rs1=0, imm=i)
    b.emit(Opcode.ADDI, rd=30, rs1=30, imm=1)
    b.emit(Opcode.BLT, rs1=30, rs2=31, target="loop")
    b.emit(Opcode.HALT)
    return b.build()


class TestRMT:
    def test_meaningful_slowdown_on_ilp_code(self, config):
        from repro.isa.executor import execute_program
        trace = execute_program(build_ilp_loop())
        result = run_rmt(trace, config)
        assert result.slowdown_vs_unprotected > 1.10

    def test_memory_bound_hides_contention(self, config):
        from tests.conftest import build_rmw_loop
        from repro.isa.executor import execute_program
        ilp_trace = execute_program(build_ilp_loop())
        mem_trace = execute_program(
            build_rmw_loop(iterations=400, array_words=1 << 15))
        ilp = run_rmt(ilp_trace, config)
        mem = run_rmt(mem_trace, config)
        assert mem.slowdown_vs_unprotected < ilp.slowdown_vs_unprotected

    def test_small_area_overhead(self, rmw_trace, config):
        result = run_rmt(rmw_trace, config)
        assert result.area_overhead < 0.10

    def test_no_hard_fault_coverage(self, rmw_trace, config):
        assert not run_rmt(rmw_trace, config).covers_hard_faults

    def test_rmt_config_halves_window(self, config):
        shared = rmt_config(config).main_core
        assert shared.rob_entries == config.main_core.rob_entries // 2
        assert shared.fetch_width < config.main_core.fetch_width

    def test_detection_latency_window_scale(self, rmw_trace, config):
        result = run_rmt(rmw_trace, config)
        assert 0 < result.detection_latency_ns < 100


class TestUnprotected:
    def test_baseline_fresh_state(self, rmw_trace, config):
        a = run_baseline(rmw_trace, config)
        b = run_baseline(rmw_trace, config)
        assert a.cycles == b.cycles  # no cross-run cache pollution
