"""Tests for report formatting and delay analytics."""

import pytest

from repro.analysis.delay import density_series, summarize_delays
from repro.analysis.report import (
    delay_table,
    format_table,
    series_block,
    slowdown_table,
)
from repro.common.stats import Samples


class TestFormatTable:
    def test_alignment(self):
        text = format_table("T", ["a", "long_header"],
                            [["x", "1"], ["yy", "22"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[2]
        # all data rows have aligned columns
        assert lines[4].startswith("x ")
        assert lines[5].startswith("yy")


class TestSlowdownTable:
    def test_geomean_row(self):
        text = slowdown_table("S", ["c1"], {"a": [1.0], "b": [4.0]},
                              ["a", "b"])
        assert "geomean" in text
        assert "2.000" in text  # sqrt(1*4)

    def test_order_respected(self):
        text = slowdown_table("S", ["c1"], {"a": [1.0], "b": [2.0]},
                              ["b", "a"])
        assert text.index("b ") < text.index("a ")

    def test_missing_benchmarks_skipped(self):
        text = slowdown_table("S", ["c1"], {"a": [1.0]}, ["a", "zz"])
        assert "zz" not in text


class TestDelayTable:
    def test_unit_in_header(self):
        text = delay_table("D", ["100MHz"], {"a": [123.4]}, ["a"])
        assert "100MHz (ns)" in text
        assert "123" in text


class TestSeriesBlock:
    def test_subsampling(self):
        series = {"x": [(float(i), 0.1) for i in range(100)]}
        text = series_block("B", series, "t", "d", points=5)
        assert text.count(":") <= 6


class TestDelaySummary:
    def test_summary_fields(self):
        s = Samples()
        s.extend([100.0] * 999 + [9999.0])
        summary = summarize_delays("bench", s)
        assert summary.mean_ns == pytest.approx(109.9, rel=0.01)
        assert summary.max_ns == 9999.0
        assert summary.fraction_within_5us == pytest.approx(0.999)
        assert summary.samples == 1000

    def test_density_series_range(self):
        s = Samples()
        s.extend([100.0, 200.0, 300.0])
        pts = density_series(s, bins=10, hi_ns=1000.0)
        assert len(pts) == 10
        assert all(0 <= x <= 1000 for x, _d in pts)
