"""Tests for the ASCII plot renderers."""

from repro.analysis.plot import ascii_bars, ascii_density


class TestAsciiDensity:
    def test_shapes_rendered(self):
        series = {
            "flat": [(float(i), 1.0) for i in range(10)],
            "peaked": [(float(i), 1.0 if i == 5 else 0.1)
                       for i in range(10)],
        }
        text = ascii_density(series)
        assert "flat" in text and "peaked" in text
        assert "@" in text  # peak glyph appears
        assert "delay (ns)" in text

    def test_empty_series(self):
        assert "(no data)" in ascii_density({})

    def test_zero_density_row(self):
        text = ascii_density({"empty": [(0.0, 0.0), (1.0, 0.0)]})
        assert "(no samples)" in text

    def test_peak_normalised_per_row(self):
        series = {
            "small": [(0.0, 0.001), (1.0, 0.0005)],
            "large": [(0.0, 100.0), (1.0, 50.0)],
        }
        lines = ascii_density(series).splitlines()
        # identical shapes despite 10^5 scale difference
        small_row = next(l for l in lines if l.startswith("small"))
        large_row = next(l for l in lines if l.startswith("large"))
        assert small_row.split("|")[1] == large_row.split("|")[1]


class TestAsciiBars:
    def test_bars_proportional(self):
        text = ascii_bars({"a": 1.0, "b": 2.0}, width=10)
        a_bar = text.splitlines()[0].count("#")
        b_bar = text.splitlines()[1].count("#")
        assert b_bar == 2 * a_bar

    def test_empty(self):
        assert "(no data)" in ascii_bars({})

    def test_minimum_one_glyph(self):
        text = ascii_bars({"tiny": 0.001, "huge": 100.0}, width=10)
        assert "#" in text.splitlines()[0]
