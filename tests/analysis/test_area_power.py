"""Tests for the §VI-B/C area and power models."""

import pytest

from repro.analysis.area import added_sram_kib, area_model
from repro.analysis.power import (
    energy_overhead_per_run,
    power_model,
)
from repro.common.config import default_config


class TestArea:
    def test_paper_headline_numbers(self):
        a = area_model(default_config())
        assert a.overhead_vs_core == pytest.approx(0.244, abs=0.02)
        assert a.overhead_vs_core_with_l2 == pytest.approx(0.164, abs=0.02)

    def test_twelve_rocket_cores(self):
        a = area_model(default_config())
        assert a.checker_cores_mm2 == pytest.approx(0.42, abs=0.01)

    def test_sram_near_80kib(self):
        kib = added_sram_kib(default_config())
        assert 75 <= kib <= 90

    def test_sram_scales_with_log(self):
        cfg = default_config()
        big = added_sram_kib(cfg.with_log(360 * 1024, 5000))
        small = added_sram_kib(cfg)
        assert big - small == pytest.approx(324, abs=1)  # +324 KiB of log

    def test_fewer_cores_less_area(self):
        cfg = default_config()
        a12 = area_model(cfg)
        a3 = area_model(cfg.with_checker_cores(3))
        assert a3.detection_added_mm2 < a12.detection_added_mm2

    def test_lockstep_reference(self):
        assert area_model(default_config()).lockstep_overhead_vs_core == 1.0


class TestPower:
    def test_paper_headline_number(self):
        p = power_model(default_config())
        assert p.overhead == pytest.approx(0.159, abs=0.01)

    def test_scales_with_frequency(self):
        cfg = default_config()
        full = power_model(cfg)
        half = power_model(cfg.with_checker_freq(500.0))
        assert half.overhead == pytest.approx(full.overhead / 2, rel=0.01)

    def test_scales_with_cores(self):
        cfg = default_config()
        full = power_model(cfg)
        quarter = power_model(cfg.with_checker_cores(3))
        assert quarter.overhead == pytest.approx(full.overhead / 4, rel=0.01)

    def test_energy_combines_power_and_time(self):
        # 16% extra power, no slowdown -> 16% extra energy
        assert energy_overhead_per_run(1.0, 0.16) == pytest.approx(0.16)
        # slowdown compounds
        assert energy_overhead_per_run(1.10, 0.16) > 0.16

    def test_lockstep_reference(self):
        assert power_model(default_config()).lockstep_overhead == 1.0
