"""Cross-validation of workload numerics against numpy references.

The kernels are not just timing proxies — their arithmetic is real, and
the checker replays depend on it being deterministic and correct.  These
tests recompute each kernel's output with numpy/plain Python and compare
against the values the simulated program left in memory.
"""

import numpy as np
from repro.isa.executor import execute_program
from repro.isa.memory_image import bits_to_float
from repro.workloads import facesim, freqmine, randacc, stream
from repro.workloads.common import float_data
from repro.common.rng import derive


class TestFacesim:
    def test_matvec_matches_numpy(self):
        dim = 16
        program = facesim.build(sweeps=1, dim=dim)
        trace = execute_program(program)
        matrix = np.array(float_data("fs-A", dim * dim, -1.0, 1.0,
                                     None)).reshape(dim, dim)
        vec = np.array(float_data("fs-x", dim, -1.0, 1.0, None))
        expected = matrix @ vec
        # vec_out sits after the matrix and input vector in the data
        # segment: matrix (dim*dim words), vec_in (dim words)
        from repro.isa.instructions import DATA_BASE
        out_base = DATA_BASE + (dim * dim + dim) * 8
        got = np.array([
            bits_to_float(trace.memory.load(out_base + 8 * i))
            for i in range(dim)
        ])
        np.testing.assert_allclose(got, expected, rtol=1e-12)


class TestStream:
    def test_triad_values(self):
        n = 32
        program = stream.build(elements=n)
        trace = execute_program(program)
        a = np.array(float_data("stream-a", n, seed=None))
        q = 3.0
        # reference: copy c=a; scale b=q*c; add c=a+b; triad a=b+q*c
        c = a.copy()
        b = q * c
        c = a + b
        a_final = b + q * c
        from repro.isa.instructions import DATA_BASE
        stride = stream.ELEMENT_STRIDE
        got_a = np.array([
            bits_to_float(trace.memory.load(DATA_BASE + i * stride))
            for i in range(n)
        ])
        np.testing.assert_allclose(got_a, a_final, rtol=1e-12)


class TestRandacc:
    def test_xor_updates_match_reference(self):
        iterations, log2 = 64, 10
        program = randacc.build(iterations=iterations, table_words_log2=log2)
        trace = execute_program(program)
        # reference xorshift64 identical to the emitted instruction
        # sequence
        mask64 = (1 << 64) - 1
        state = 0x2545F4914F6CDD1D
        table = {}
        for _ in range(iterations):
            state = (state ^ (state << 13)) & mask64
            state ^= state >> 7
            state = (state ^ (state << 17)) & mask64
            idx = state & ((1 << log2) - 1)
            table[idx] = table.get(idx, 0) ^ state
        from repro.isa.instructions import DATA_BASE
        for idx, value in table.items():
            assert trace.memory.load(DATA_BASE + idx * 8) == value


class TestFreqmine:
    def test_counts_match_reference_walks(self):
        walks, nodes = 40, 256
        program = freqmine.build(walks=walks, nodes=nodes)
        trace = execute_program(program)
        rng = derive(None, "freqmine-tree")
        parents = [0] + [rng.randrange(0, i) for i in range(1, nodes)]
        mask64 = (1 << 64) - 1
        state = 0x9E3779B97F4A7C15
        counts = [0] * nodes
        for _ in range(walks):
            state = (state ^ (state << 13)) & mask64
            state ^= state >> 7
            state = (state ^ (state << 17)) & mask64
            node = state & (nodes - 1)
            while node != 0:
                counts[node] += 1
                node = parents[node]
            counts[0] += 1
        from repro.isa.instructions import DATA_BASE
        count_base = DATA_BASE + nodes * 8
        for i in range(nodes):
            assert trace.memory.load(count_base + i * 8) == counts[i], i

    def test_total_count_conservation(self):
        walks = 25
        program = freqmine.build(walks=walks, nodes=128)
        trace = execute_program(program)
        # every walk increments the root exactly once
        from repro.isa.instructions import DATA_BASE
        root_count = trace.memory.load(DATA_BASE + 128 * 8)
        assert root_count == walks
