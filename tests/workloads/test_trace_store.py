"""Tests for the shared content-addressed golden-trace store."""

import json

import pytest

import repro.workloads.suite as suite
from repro.isa.executor import execute_program
from repro.isa.memory_image import float_to_bits
from repro.workloads.suite import (
    benchmark_program,
    benchmark_trace,
    build_benchmark,
    configure_trace_store,
)
from repro.workloads.trace_store import (
    TRACE_STORE_SCHEMA,
    TraceStore,
    program_fingerprint,
)

from tests.conftest import build_rmw_loop


@pytest.fixture(autouse=True)
def isolated_store():
    """Every test starts and ends without a process-wide store, and with
    an empty per-process trace memo (other modules may have warmed it)."""
    configure_trace_store(None)
    suite._TRACE_CACHE.clear()
    yield
    configure_trace_store(None)
    suite._TRACE_CACHE.clear()


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        a = build_benchmark("stream", "small")
        b = build_benchmark("stream", "small")
        assert a is not b
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_differs_with_program_content(self):
        assert program_fingerprint(build_rmw_loop(iterations=10)) != \
            program_fingerprint(build_rmw_loop(iterations=11))

    def test_differs_with_data_image(self):
        a = build_rmw_loop(array_words=8)
        b = build_rmw_loop(array_words=16)
        assert program_fingerprint(a) != program_fingerprint(b)


class TestTraceStore:
    def test_put_get_round_trip_bit_exact(self, tmp_path):
        store = TraceStore(tmp_path)
        program = build_benchmark("blackscholes", "small")
        trace = execute_program(program)
        key = store.key("blackscholes", "small", program)
        store.put(key, trace)
        loaded = store.get(key, program)
        assert loaded is not None
        assert list(loaded.pcs) == list(trace.pcs)
        assert loaded.dsts == trace.dsts
        assert loaded.final_xregs == trace.final_xregs
        assert [float_to_bits(v) for v in loaded.final_fregs] == \
            [float_to_bits(v) for v in trace.final_fregs]
        assert dict(loaded.memory.items()) == dict(trace.memory.items())
        assert (loaded.uop_count, loaded.load_count, loaded.store_count,
                loaded.halted, loaded.crashed, loaded.final_next_pc) == \
            (trace.uop_count, trace.load_count, trace.store_count,
             trace.halted, trace.crashed, trace.final_next_pc)

    def test_envelope_carries_keyframes(self, tmp_path):
        """A loaded golden trace arrives with its state keyframes, so a
        fork-point job never rebuilds them with a full column walk."""
        store = TraceStore(tmp_path)
        program = build_benchmark("stream", "small")
        trace = execute_program(program)
        key = store.key("stream", "small", program)
        store.put(key, trace)
        loaded = store.get(key, program)
        assert loaded._keyframes is not None
        assert loaded.keyframes() is loaded._keyframes
        original = trace.keyframes()
        assert [f.seq for f in loaded._keyframes.frames] == \
            [f.seq for f in original.frames]
        assert loaded._keyframes.to_payload() == original.to_payload()

    def test_keyframeless_envelope_reads_as_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        program = build_rmw_loop(iterations=5)
        key = store.key("rmw", "small", program)
        store.put(key, execute_program(program))
        path = store._path(key)
        envelope = json.loads(path.read_text())
        del envelope["keyframes"]
        path.write_text(json.dumps(envelope))
        assert store.get(key, program) is None

    def test_miss_on_empty_store(self, tmp_path):
        store = TraceStore(tmp_path)
        program = build_benchmark("stream", "small")
        assert store.get(store.key("stream", "small", program),
                         program) is None
        assert store.misses == 1

    def test_corrupt_envelope_reads_as_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        program = build_rmw_loop(iterations=5)
        key = store.key("rmw", "small", program)
        store.put(key, execute_program(program))
        path = store._path(key)
        path.write_text("{not json")
        assert store.get(key, program) is None

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        program = build_rmw_loop(iterations=5)
        key = store.key("rmw", "small", program)
        store.put(key, execute_program(program))
        path = store._path(key)
        envelope = json.loads(path.read_text())
        envelope["schema"] = TRACE_STORE_SCHEMA + 1
        path.write_text(json.dumps(envelope))
        assert store.get(key, program) is None

    def test_key_binds_program_content(self, tmp_path):
        store = TraceStore(tmp_path)
        a = build_rmw_loop(iterations=5)
        b = build_rmw_loop(iterations=6)
        assert store.key("x", "small", a) != store.key("x", "small", b)


class TestSuiteWiring:
    def test_benchmark_trace_publishes_to_store(self, tmp_path):
        store = configure_trace_store(tmp_path / "traces")
        trace = benchmark_trace("stream", "small")
        assert store.writes == 1
        assert len(trace) > 0
        # the in-process memo serves repeats without touching the store
        assert benchmark_trace("stream", "small") is trace
        assert store.hits == 0

    def test_fresh_process_forks_stored_trace(self, tmp_path, monkeypatch):
        """With a warm store, a worker that lost its memo (a fresh
        process) must load the golden trace instead of re-executing."""
        root = tmp_path / "traces"
        configure_trace_store(root)
        original = benchmark_trace("stream", "small")
        # simulate a fresh worker: same store, empty memo, and a tripwire
        # that fails the test if the clean execution re-runs
        configure_trace_store(None)
        store = configure_trace_store(root)

        def tripwire(program, *args, **kwargs):
            raise AssertionError("clean trace was re-executed")

        monkeypatch.setattr(suite, "execute_program", tripwire)
        forked = benchmark_trace("stream", "small")
        assert store.hits == 1
        assert forked is not original
        assert list(forked.pcs) == list(original.pcs)
        assert forked.final_xregs == original.final_xregs
        # the forked trace rides the in-process shared program object
        assert forked.program is benchmark_program("stream", "small")

    def test_store_swap_drops_process_memo(self, tmp_path):
        configure_trace_store(tmp_path / "a")
        first = benchmark_trace("stream", "small")
        configure_trace_store(tmp_path / "b")
        second = benchmark_trace("stream", "small")
        assert first is not second
        assert list(first.pcs) == list(second.pcs)
