"""Tests for the shared content-addressed golden-trace store."""

import json
import os
import struct
import time

import pytest

import repro.workloads.suite as suite
from repro.isa.executor import execute_program
from repro.isa.instructions import MASK64, Opcode
from repro.isa.memory_image import float_to_bits
from repro.isa.program import ProgramBuilder
from repro.workloads.suite import (
    benchmark_program,
    benchmark_trace,
    build_benchmark,
    configure_trace_store,
)
from repro.workloads.trace_store import (
    ENVELOPE_MAGIC,
    STALE_TEMP_TTL,
    TRACE_STORE_SCHEMA,
    TraceStore,
    program_fingerprint,
    sweep_stale_temps,
)

from tests.conftest import build_rmw_loop


@pytest.fixture(autouse=True)
def isolated_store():
    """Every test starts and ends without a process-wide store, and with
    an empty per-process trace memo (other modules may have warmed it)."""
    configure_trace_store(None)
    suite._TRACE_CACHE.clear()
    yield
    configure_trace_store(None)
    suite._TRACE_CACHE.clear()


def read_header(path):
    """The decoded JSON header of a binary envelope."""
    buf = path.read_bytes()
    (header_len,) = struct.unpack_from("<I", buf, 4)
    return json.loads(buf[8:8 + header_len])


def replace_header(path, header):
    """Rewrite a binary envelope with ``header`` verbatim (block offsets
    are relative to the header's end, so resizing it is safe)."""
    buf = path.read_bytes()
    (header_len,) = struct.unpack_from("<I", buf, 4)
    data_start = (8 + header_len + 7) & ~7
    header_bytes = json.dumps(header).encode()
    new_start = (8 + len(header_bytes) + 7) & ~7
    out = bytearray(new_start + len(buf) - data_start)
    out[:4] = buf[:4]
    struct.pack_into("<I", out, 4, len(header_bytes))
    out[8:8 + len(header_bytes)] = header_bytes
    out[new_start:] = buf[data_start:]
    path.write_bytes(bytes(out))


def patch_header(path, **changes):
    """Rewrite a binary envelope with a modified header."""
    header = read_header(path)
    header.update(changes)
    replace_header(path, header)


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        a = build_benchmark("stream", "small")
        b = build_benchmark("stream", "small")
        assert a is not b
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_differs_with_program_content(self):
        assert program_fingerprint(build_rmw_loop(iterations=10)) != \
            program_fingerprint(build_rmw_loop(iterations=11))

    def test_differs_with_data_image(self):
        a = build_rmw_loop(array_words=8)
        b = build_rmw_loop(array_words=16)
        assert program_fingerprint(a) != program_fingerprint(b)


class TestTraceStore:
    def test_put_get_round_trip_bit_exact(self, tmp_path):
        store = TraceStore(tmp_path)
        program = build_benchmark("blackscholes", "small")
        trace = execute_program(program)
        key = store.key("blackscholes", "small", program)
        store.put(key, trace)
        loaded = store.get(key, program)
        assert loaded is not None
        assert list(loaded.pcs) == list(trace.pcs)
        assert loaded.dsts == trace.dsts
        assert loaded.final_xregs == trace.final_xregs
        assert [float_to_bits(v) for v in loaded.final_fregs] == \
            [float_to_bits(v) for v in trace.final_fregs]
        assert dict(loaded.memory.items()) == dict(trace.memory.items())
        assert (loaded.uop_count, loaded.load_count, loaded.store_count,
                loaded.halted, loaded.crashed, loaded.final_next_pc) == \
            (trace.uop_count, trace.load_count, trace.store_count,
             trace.halted, trace.crashed, trace.final_next_pc)

    def test_envelope_is_binary_columnar(self, tmp_path):
        """Schema-3 envelopes are single binary files, magic-led, with
        zero-copy memoryview columns on load."""
        store = TraceStore(tmp_path)
        program = build_benchmark("stream", "small")
        trace = execute_program(program)
        key = store.key("stream", "small", program)
        store.put(key, trace)
        path = store._path(key)
        assert path.suffix == ".bin"
        assert path.read_bytes()[:4] == ENVELOPE_MAGIC
        loaded = store.get(key, program)
        assert isinstance(loaded.pcs, memoryview)
        assert isinstance(loaded.mem_addr, memoryview)
        # column views index as plain Python ints
        assert loaded.pcs[0] == trace.pcs[0]

    def test_envelope_carries_keyframes(self, tmp_path):
        """A loaded golden trace arrives with its state keyframes, so a
        fork-point job never rebuilds them with a full column walk."""
        store = TraceStore(tmp_path)
        program = build_benchmark("stream", "small")
        trace = execute_program(program)
        key = store.key("stream", "small", program)
        store.put(key, trace)
        loaded = store.get(key, program)
        assert loaded._keyframes is not None
        assert loaded.keyframes() is loaded._keyframes
        original = trace.keyframes()
        assert [f.seq for f in loaded._keyframes.frames] == \
            [f.seq for f in original.frames]
        assert loaded._keyframes.to_payload() == original.to_payload()

    def test_miss_on_empty_store(self, tmp_path):
        store = TraceStore(tmp_path)
        program = build_benchmark("stream", "small")
        assert store.get(store.key("stream", "small", program),
                         program) is None
        assert store.misses == 1
        assert store.corrupt == 0

    def test_corrupt_envelope_counted_logged_and_overwritten(
            self, tmp_path, caplog):
        """A present-but-garbage envelope is *not* a miss: it counts as
        corrupt, warns once per path, and a fresh put overwrites it."""
        store = TraceStore(tmp_path)
        program = build_rmw_loop(iterations=5)
        trace = execute_program(program)
        key = store.key("rmw", "small", program)
        store.put(key, trace)
        path = store._path(key)
        path.write_text("{not json")
        with caplog.at_level("WARNING", logger="repro.workloads.trace_store"):
            assert store.get(key, program) is None
            assert store.get(key, program) is None
        assert store.corrupt == 2
        assert store.misses == 0
        warnings = [r for r in caplog.records
                    if "corrupt golden-trace envelope" in r.message]
        assert len(warnings) == 1, "corrupt envelopes are logged once"
        # the worker's re-derived trace overwrites the corrupt file
        store.put(key, trace)
        assert store.get(key, program) is not None

    def test_truncated_envelope_reads_as_corrupt(self, tmp_path):
        store = TraceStore(tmp_path)
        program = build_rmw_loop(iterations=5)
        key = store.key("rmw", "small", program)
        store.put(key, execute_program(program))
        path = store._path(key)
        path.write_bytes(path.read_bytes()[:100])
        assert store.get(key, program) is None
        assert store.corrupt == 1

    def test_bit_flip_in_column_data_reads_as_corrupt(self, tmp_path):
        """A flipped bit *inside* a column block leaves the envelope
        structurally valid — only the data-region checksum can refuse
        to serve the silently wrong golden trace."""
        store = TraceStore(tmp_path)
        program = build_rmw_loop(iterations=5)
        key = store.key("rmw", "small", program)
        store.put(key, execute_program(program))
        path = store._path(key)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get(key, program) is None
        assert store.corrupt == 1
        assert store.misses == 0

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        """Another schema generation is a *cold miss*, not corruption:
        the envelope is fine, it just belongs to an older store."""
        store = TraceStore(tmp_path)
        program = build_rmw_loop(iterations=5)
        key = store.key("rmw", "small", program)
        store.put(key, execute_program(program))
        patch_header(store._path(key), schema=TRACE_STORE_SCHEMA + 1)
        assert store.get(key, program) is None
        assert store.misses == 1
        assert store.corrupt == 0

    def test_key_mismatch_reads_as_corrupt(self, tmp_path):
        store = TraceStore(tmp_path)
        program = build_rmw_loop(iterations=5)
        key = store.key("rmw", "small", program)
        store.put(key, execute_program(program))
        patch_header(store._path(key), key="0" * 64)
        assert store.get(key, program) is None
        assert store.corrupt == 1

    def test_key_binds_program_content(self, tmp_path):
        store = TraceStore(tmp_path)
        a = build_rmw_loop(iterations=5)
        b = build_rmw_loop(iterations=6)
        assert store.key("x", "small", a) != store.key("x", "small", b)


class TestIntegerWidths:
    """Pin the integer-width properties the fixed-width columns freeze."""

    def test_negative_immediates_round_trip(self, tmp_path):
        """Negative MOVI/ADDI immediates commit as masked 64-bit
        patterns, which the u64 columns carry bit-exactly."""
        b = ProgramBuilder("negimm")
        b.emit(Opcode.MOVI, rd=1, imm=-5)
        b.emit(Opcode.ADDI, rd=2, rs1=1, imm=-123)
        b.emit(Opcode.HALT)
        program = b.build()
        trace = execute_program(program)
        assert trace.final_xregs[1] == (-5) & MASK64
        store = TraceStore(tmp_path)
        key = store.key("negimm", "small", program)
        store.put(key, trace)
        loaded = store.get(key, program)
        assert loaded.dsts == trace.dsts
        assert loaded.final_xregs == trace.final_xregs

    def test_high_addresses_round_trip(self, tmp_path):
        """Addresses at and above 2^31 (and up to 2^63) survive the
        binary memory CSR and the final-image columns."""
        hi_addr = (1 << 33) + 8
        b = ProgramBuilder("hiaddr")
        b.emit(Opcode.MOVI, rd=1, imm=hi_addr)
        b.emit(Opcode.MOVI, rd=2, imm=0xDEAD)
        b.emit(Opcode.ST, rs2=2, rs1=1, imm=0)
        b.emit(Opcode.LD, rd=3, rs1=1, imm=0)
        b.emit(Opcode.ST, rs2=2, rs1=1, imm=(1 << 30))
        b.emit(Opcode.HALT)
        program = b.build()
        trace = execute_program(program)
        assert max(trace.mem_addr) >= (1 << 33)
        store = TraceStore(tmp_path)
        key = store.key("hiaddr", "small", program)
        store.put(key, trace)
        loaded = store.get(key, program)
        assert list(loaded.mem_addr) == list(trace.mem_addr)
        assert dict(loaded.memory.items()) == dict(trace.memory.items())
        assert loaded.final_xregs[3] == 0xDEAD

    def test_mem_off_monotone_over_memoryless_rows(self, tmp_path):
        """Rows with no memory operations repeat the previous offset:
        the CSR stays monotone (non-decreasing) and round-trips."""
        b = ProgramBuilder("gaps")
        b.emit(Opcode.MOVI, rd=1, imm=64)
        b.emit(Opcode.MOVI, rd=2, imm=1)
        b.emit(Opcode.ST, rs2=2, rs1=1, imm=0)
        b.emit(Opcode.ADDI, rd=2, rs1=2, imm=1)   # no memory traffic
        b.emit(Opcode.ADDI, rd=2, rs1=2, imm=1)   # no memory traffic
        b.emit(Opcode.ST, rs2=2, rs1=1, imm=8)
        b.emit(Opcode.HALT)
        program = b.build()
        trace = execute_program(program)
        offs = list(trace.mem_off)
        assert len(offs) == len(trace) + 1
        assert all(a <= b for a, b in zip(offs, offs[1:]))
        assert offs != sorted(set(offs)), "memoryless rows repeat offsets"
        store = TraceStore(tmp_path)
        key = store.key("gaps", "small", program)
        store.put(key, trace)
        loaded = store.get(key, program)
        assert list(loaded.mem_off) == offs
        lo, hi = loaded.mem_off[3], loaded.mem_off[4]
        assert lo == hi, "HALT-adjacent ALU row stays empty"

    def test_out_of_range_value_fails_loudly(self, tmp_path):
        """A value that cannot fit its fixed-width column must raise at
        write time, never truncate silently into a wrong-but-valid
        envelope."""
        program = build_rmw_loop(iterations=3)
        store = TraceStore(tmp_path)
        key = store.key("rmw", "small", program)
        bad = execute_program(program)
        bad.dsts[0] = ((False, 1, -1),)  # bypasses commit masking
        with pytest.raises(OverflowError):
            store.put(key, bad)


class TestTimingSections:
    """Schema-4 envelopes carry golden per-configuration timing columns
    alongside the trace: bit-exact over mmap round trips, readable-but-
    timing-missing on v3 envelopes, corrupt on in-block rot."""

    @staticmethod
    def stored(tmp_path, benchmark="stream"):
        from repro.common.config import default_config
        from repro.core.timing import config_key, timing_record

        store = TraceStore(tmp_path)
        program = build_benchmark(benchmark, "small")
        trace = execute_program(program)
        key = store.key(benchmark, "small", program)
        store.put(key, trace)
        config = default_config()
        record = timing_record(trace, config)
        return store, program, trace, key, config_key(config), record

    def test_timing_round_trip_bit_exact(self, tmp_path):
        store, program, trace, key, ck, record = self.stored(tmp_path)
        assert store.timing_writes == 1
        loaded = store.get(key, program)
        assert ck in loaded.timings
        got = loaded.timings[ck]
        assert list(got.issue) == list(record.issue)
        assert list(got.commit) == list(record.commit)
        assert list(got.branch) == list(record.branch)
        assert list(got.l1d) == list(record.l1d)
        assert list(got.l2) == list(record.l2)
        assert got.result == record.result
        assert len(got.commit) == len(loaded)

    def test_warm_store_serves_timing_without_rerun(self, tmp_path,
                                                    monkeypatch):
        """A fresh worker reading a warm envelope must serve cached
        timing instead of re-running the OoO model."""
        from repro.common.config import default_config
        from repro.core.ooo_core import OoOCore
        from repro.core.timing import time_bare

        store, program, trace, key, ck, record = self.stored(tmp_path)
        fresh = TraceStore(tmp_path)
        loaded = fresh.get(key, program)

        def tripwire(self, *args, **kwargs):
            raise AssertionError("golden timing was re-derived")

        monkeypatch.setattr(OoOCore, "run", tripwire)
        monkeypatch.setattr(OoOCore, "run_rows", tripwire)
        served = time_bare(loaded, default_config())
        assert served == record.result

    def test_time_bare_warm_equals_cold(self, tmp_path):
        from repro.common.config import default_config
        from repro.core.timing import time_bare

        store, program, trace, key, ck, record = self.stored(tmp_path)
        cold = time_bare(execute_program(program), default_config())
        warm = time_bare(TraceStore(tmp_path).get(key, program),
                         default_config())
        assert cold == warm == record.result

    def test_v3_envelope_reads_as_timing_miss_not_corrupt(self, tmp_path):
        """Pre-timing envelopes stay readable (keys are shared across
        schemas 3 and 4): the trace loads fine, timing is simply cold."""
        store, program, trace, key, ck, record = self.stored(tmp_path)
        header = read_header(store._path(key))
        assert header["schema"] == TRACE_STORE_SCHEMA == 4
        header.pop("timings")
        header["schema"] = 3
        replace_header(store._path(key), header)
        reopened = TraceStore(tmp_path)
        loaded = reopened.get(key, program)
        assert loaded is not None
        assert loaded.timings == {}
        assert reopened.corrupt == 0

    def test_bit_flip_in_timing_block_reads_as_corrupt(self, tmp_path):
        """Timing blocks live inside the CRC-covered data region: a
        flipped bit there must refuse the whole envelope, never serve
        silently wrong golden timing."""
        store, program, trace, key, ck, record = self.stored(tmp_path)
        path = store._path(key)
        buf = bytearray(path.read_bytes())
        (header_len,) = struct.unpack_from("<I", buf, 4)
        header = json.loads(bytes(buf[8:8 + header_len]))
        data_start = (8 + header_len + 7) & ~7
        offset, count = header["timings"][ck]["blocks"]["tm_commit"]
        buf[data_start + offset + (count // 2) * 8] ^= 0x10
        path.write_bytes(bytes(buf))
        reopened = TraceStore(tmp_path)
        assert reopened.get(key, program) is None
        assert reopened.corrupt == 1
        assert reopened.misses == 0

    def test_timing_block_length_mismatch_reads_as_corrupt(self, tmp_path):
        store, program, trace, key, ck, record = self.stored(tmp_path)
        header = read_header(store._path(key))
        header["timings"][ck]["blocks"]["tm_issue"][1] -= 1
        replace_header(store._path(key), header)
        reopened = TraceStore(tmp_path)
        assert reopened.get(key, program) is None
        assert reopened.corrupt == 1

    def test_put_timing_preserves_other_sections(self, tmp_path):
        """Records for a second configuration merge with, not replace,
        the first configuration's section."""
        from dataclasses import replace as dc_replace

        from repro.common.config import default_config
        from repro.core.timing import config_key, timing_record

        store, program, trace, key, ck, record = self.stored(tmp_path)
        cfg = default_config()
        other = dc_replace(cfg, main_core=dc_replace(cfg.main_core,
                                                     rob_entries=48))
        timing_record(trace, other)
        assert store.timing_writes == 2
        loaded = TraceStore(tmp_path).get(key, program)
        assert set(loaded.timings) == {ck, config_key(other)}
        assert loaded.timings[ck].result == record.result

    def test_oversized_miss_delta_fails_loudly(self, tmp_path):
        """Per-row miss deltas are u16 columns: a count that cannot fit
        must raise at write time, never truncate silently."""
        from repro.core.timing import TimingRecord

        store = TraceStore(tmp_path)
        program = build_rmw_loop(iterations=3)
        trace = execute_program(program)
        key = store.key("rmw", "small", program)
        store.put(key, trace)
        n = len(trace)
        good = TraceStore(tmp_path).get(key, program)
        record = TimingRecord(
            result=None, issue=[0] * n, commit=list(range(n)),
            branch=[-1] * n, l1d=[0] * n, l2=[0] * n)
        record.l1d[0] = 1 << 16  # cannot fit a u16 column
        from repro.core.ooo_core import CoreResult
        record.result = CoreResult(
            cycles=n, instructions=n, uops=n, system_cycles=n,
            branch_lookups=0, branch_mispredicts=0, l1d_misses=0,
            l2_misses=0, commit_stall_cycles=0)
        with pytest.raises(OverflowError):
            store.put_timing(key, good, "cfg", record)


class TestStaleTempSweep:
    def test_init_sweeps_only_stale_temps(self, tmp_path):
        store = TraceStore(tmp_path)
        program = build_rmw_loop(iterations=3)
        key = store.key("rmw", "small", program)
        store.put(key, execute_program(program))
        bucket = store._path(key).parent
        stale = bucket / f"{key}.tmp.999-deadbeef"
        stale.write_bytes(b"partial write from a killed worker")
        old = time.time() - STALE_TEMP_TTL - 60
        os.utime(stale, (old, old))
        fresh = bucket / f"{key}.tmp.999-cafecafe"
        fresh.write_bytes(b"in-flight write")
        reopened = TraceStore(tmp_path)
        assert reopened.stale_temps_swept == 1
        assert not stale.exists()
        assert fresh.exists(), "fresh temps belong to live writers"
        assert store._path(key).exists(), "real envelopes are untouched"
        assert reopened.get(key, program) is not None

    def test_sweep_helper_handles_missing_root(self, tmp_path):
        assert sweep_stale_temps(tmp_path / "never-created") == 0


class TestSuiteWiring:
    def test_benchmark_trace_publishes_to_store(self, tmp_path):
        store = configure_trace_store(tmp_path / "traces")
        trace = benchmark_trace("stream", "small")
        assert store.writes == 1
        assert len(trace) > 0
        # the in-process memo serves repeats without touching the store
        assert benchmark_trace("stream", "small") is trace
        assert store.hits == 0

    def test_fresh_process_forks_stored_trace(self, tmp_path, monkeypatch):
        """With a warm store, a worker that lost its memo (a fresh
        process) must load the golden trace instead of re-executing."""
        root = tmp_path / "traces"
        configure_trace_store(root)
        original = benchmark_trace("stream", "small")
        # simulate a fresh worker: same store, empty memo, and a tripwire
        # that fails the test if the clean execution re-runs
        configure_trace_store(None)
        store = configure_trace_store(root)

        def tripwire(program, *args, **kwargs):
            raise AssertionError("clean trace was re-executed")

        monkeypatch.setattr(suite, "execute_program", tripwire)
        forked = benchmark_trace("stream", "small")
        assert store.hits == 1
        assert forked is not original
        assert list(forked.pcs) == list(original.pcs)
        assert forked.final_xregs == original.final_xregs
        # the forked trace rides the in-process shared program object
        assert forked.program is benchmark_program("stream", "small")

    def test_store_swap_drops_process_memo(self, tmp_path):
        configure_trace_store(tmp_path / "a")
        first = benchmark_trace("stream", "small")
        configure_trace_store(tmp_path / "b")
        second = benchmark_trace("stream", "small")
        assert first is not second
        assert list(first.pcs) == list(second.pcs)
