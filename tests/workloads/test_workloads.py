"""Tests for the Table II workload kernels."""

import pytest

from repro.isa.executor import execute_program
from repro.workloads.suite import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    benchmark_trace,
    build_benchmark,
    table2_rows,
)


class TestRegistry:
    def test_all_nine_present(self):
        assert len(BENCHMARK_ORDER) == 9
        assert set(BENCHMARK_ORDER) == set(BENCHMARKS)

    def test_table2_rows(self):
        rows = table2_rows()
        assert len(rows) == 9
        sources = {source for _n, source, _i in rows}
        assert sources == {"HPCC", "MiBench", "Parsec"}

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            build_benchmark("stream", "huge")

    def test_trace_cache_returns_same_object(self):
        a = benchmark_trace("stream", "small")
        b = benchmark_trace("stream", "small")
        assert a is b


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
class TestEveryKernel:
    def test_builds_and_halts(self, name):
        trace = benchmark_trace(name, "small")
        assert trace.halted
        assert len(trace) > 1000

    def test_deterministic(self, name):
        program = build_benchmark(name, "small")
        t1 = execute_program(program)
        t2 = execute_program(program)
        assert t1.final_xregs == t2.final_xregs
        assert t1.final_fregs == t2.final_fregs
        assert len(t1) == len(t2)


class TestCharacters:
    """Each kernel must sit at its paper-assigned point on the
    memory-bound/compute-bound axis — the evaluation depends on it."""

    @staticmethod
    def memop_rate(name):
        trace = benchmark_trace(name, "small")
        return (trace.load_count + trace.store_count) / len(trace)

    def test_randacc_memory_heavy(self):
        assert self.memop_rate("randacc") > 0.10

    def test_stream_memory_heavy(self):
        assert self.memop_rate("stream") > 0.25

    def test_bitcount_memory_silent(self):
        assert self.memop_rate("bitcount") < 0.01

    def test_swaptions_stores_only_path(self):
        trace = benchmark_trace("swaptions", "small")
        assert trace.load_count == 0
        assert trace.store_count > 0

    def test_facesim_load_dominated(self):
        trace = benchmark_trace("facesim", "small")
        assert trace.load_count > 10 * trace.store_count

    def test_freqmine_mixed(self):
        rate = self.memop_rate("freqmine")
        assert 0.1 < rate < 0.5

    def test_swaptions_exercises_nondet_forwarding(self):
        """swaptions uses RDRAND: the log must forward non-deterministic
        results (paper §IV-D)."""
        trace = benchmark_trace("swaptions", "small")
        from repro.isa.executor import NONDET
        nondet = sum(1 for d in trace.instructions
                     for m in d.mem if m.kind == NONDET)
        assert nondet > 100

    def test_bodytrack_branchy(self):
        """bodytrack's accept/reject split must exercise both paths."""
        trace = benchmark_trace("bodytrack", "small")
        from repro.isa.instructions import Opcode
        outcomes = {d.taken for d in trace.instructions
                    if d.op is Opcode.BNE}
        assert outcomes == {True, False}

    def test_randacc_irregular_addresses(self):
        trace = benchmark_trace("randacc", "small")
        addrs = [m.addr for d in trace.instructions for m in d.mem][:64]
        strides = {b - a for a, b in zip(addrs, addrs[1:])}
        assert len(strides) > 16  # no dominant stride

    def test_stream_regular_addresses(self):
        trace = benchmark_trace("stream", "small")
        from repro.isa.executor import LOAD
        loads = [m.addr for d in trace.instructions
                 for m in d.mem if m.kind == LOAD]
        strides = [b - a for a, b in zip(loads[:40], loads[1:41])]
        # one dominant stride (the sweep)
        assert max(strides.count(s) for s in set(strides)) > len(strides) // 2


class TestScales:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_default_larger_than_small(self, name):
        small = benchmark_trace(name, "small")
        # default builds are big; just verify the builders differ without
        # executing the full-size trace again here (the harness does)
        default_program = build_benchmark(name, "default")
        small_program = build_benchmark(name, "small")
        assert len(default_program.data) >= 0  # structural smoke
        assert small.halted
