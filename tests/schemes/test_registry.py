"""Tests for the unified protection-scheme API and its registry."""

import pytest

from repro.common.config import default_config
from repro.common.records import (
    SchemeRunResult,
    record_from_dict,
    record_from_json,
    record_to_dict,
    record_to_json,
)
from repro.harness.campaign import (
    CampaignEngine,
    JobSpec,
    execute_job,
    fault_grid,
    recovery_grid,
    scheme_grid,
)
from repro.schemes import (
    ProtectionScheme,
    get_scheme,
    iter_schemes,
    register_scheme,
    scheme_names,
)

ALL_SCHEMES = ("unprotected", "lockstep", "rmt", "detection")


@pytest.fixture(scope="module")
def cfg():
    return default_config()


class TestRegistry:
    def test_all_four_registered(self):
        assert scheme_names() == ALL_SCHEMES

    def test_unknown_scheme_value_error(self):
        with pytest.raises(ValueError, match="unknown scheme 'mystery'"):
            get_scheme("mystery")

    def test_unknown_scheme_in_job(self, cfg):
        spec = JobSpec("baseline", "stream", "small", cfg, scheme="bogus")
        with pytest.raises(ValueError, match="unknown scheme"):
            execute_job(spec)

    def test_unknown_scheme_in_grid(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            scheme_grid(["stream"], ["nope"])
        with pytest.raises(ValueError, match="unknown scheme"):
            fault_grid(["stream"], trials=2, scale="small", scheme="nope")

    def test_lookup_matches_iteration(self):
        for scheme in iter_schemes():
            assert get_scheme(scheme.name) is scheme

    def test_register_requires_subclass(self):
        with pytest.raises(TypeError, match="must subclass"):
            register_scheme("rogue")(object)

    def test_duplicate_name_rejected(self):
        class Impostor(ProtectionScheme):
            def time(self, trace, config):
                raise NotImplementedError

            def inject(self, trace, config, fault, interrupt_seqs=()):
                raise NotImplementedError

            def overheads(self, timing, config):
                raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            register_scheme("lockstep")(Impostor)


class TestCapabilities:
    def test_capability_matrix(self):
        expected = {
            "unprotected": (False, False, False),
            "lockstep": (True, True, False),
            "rmt": (True, False, False),
            "detection": (True, True, True),
        }
        for name, (detects, hard, recovery) in expected.items():
            scheme = get_scheme(name)
            assert scheme.detects_faults is detects
            assert scheme.covers_hard_faults is hard
            assert scheme.supports_recovery is recovery

    def test_recover_gated_by_capability(self, cfg):
        for scheme in iter_schemes():
            if not scheme.supports_recovery:
                with pytest.raises(ValueError, match="does not support"):
                    scheme.recover(None, cfg)


class TestJobSpecScheme:
    def test_default_scheme_per_kind(self, cfg):
        assert JobSpec("baseline", "stream", "small", cfg).scheme \
            == "unprotected"
        for kind in ("detection", "fault", "recovery"):
            assert JobSpec(kind, "stream", "small", cfg).scheme == "detection"

    def test_scheme_folded_into_cache_key(self, cfg):
        keys = {JobSpec("baseline", "stream", "small", cfg, scheme=s).key()
                for s in ALL_SCHEMES}
        assert len(keys) == len(ALL_SCHEMES)

    def test_explicit_default_scheme_shares_key(self, cfg):
        implicit = JobSpec("fault", "stream", "small", cfg)
        explicit = JobSpec("fault", "stream", "small", cfg,
                           scheme="detection")
        assert implicit == explicit and implicit.key() == explicit.key()


class TestSchemeRunResults:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_record_round_trips(self, cfg, scheme):
        """Every registered scheme's timing job produces a
        SchemeRunResult that survives the dict and JSON round-trips."""
        payload = execute_job(
            JobSpec("baseline", "stream", "small", cfg, scheme=scheme))
        record = record_from_dict(payload)
        assert isinstance(record, SchemeRunResult)
        assert record.scheme == scheme
        assert record.cycles >= record.base_cycles > 0
        assert record.slowdown >= 1.0
        assert record_from_dict(record_to_dict(record)) == record
        assert record_from_json(record_to_json(record)) == record

    def test_overheads_derived_from_measured_run(self, cfg):
        """The unprotected row is computed from the run it summarises,
        not returned as constants (the old ``summarize()`` bug)."""
        from repro.schemes.base import SchemeTiming
        scheme = get_scheme("unprotected")
        timing = SchemeTiming(cycles=1100, base_cycles=1000,
                              instructions=900, system_cycles=1100,
                              detection_latency_ns=None)
        row = scheme.overheads(timing, cfg)
        assert row.slowdown == pytest.approx(1.1)
        assert row.area_overhead == 0.0 and row.energy_overhead == 0.0
        assert row.detection_latency_ns is None


class TestCrossSchemeCampaigns:
    @pytest.mark.parametrize("scheme", ["lockstep", "rmt"])
    def test_fault_campaign_produces_coverage_records(self, scheme):
        """Acceptance: lockstep/RMT fault campaigns flow through the
        same grid/engine path as the paper scheme."""
        grid = fault_grid(["stream"], trials=6, scale="small", seed=2,
                          scheme=scheme)
        records = CampaignEngine(workers=1).run(grid).typed_records()
        assert len(records) == 6
        for record in records:
            assert record.scheme == scheme
            assert record.outcome in ("not_activated", "detected")
            if record.activated:
                assert record.outcome == "detected"
                assert record.detect_latency_us is not None

    def test_same_seed_gives_identical_faults_across_schemes(self):
        grids = {s: fault_grid(["stream"], trials=6, scale="small", seed=2,
                               scheme=s)
                 for s in ("detection", "lockstep")}
        faults = {s: [job.fault for job in g] for s, g in grids.items()}
        assert faults["detection"] == faults["lockstep"]

    def test_unprotected_never_detects(self):
        grid = fault_grid(["stream"], trials=6, scale="small", seed=2,
                          scheme="unprotected")
        records = CampaignEngine(workers=1).run(grid).typed_records()
        for record in records:
            assert record.outcome in ("not_activated", "masked", "escaped")

    def test_lockstep_latency_below_detection(self):
        """The paper's Figure 1 ordering: lockstep detects in cycles,
        the parallel scheme in microseconds."""
        grid_ls = fault_grid(["stream"], trials=6, scale="small", seed=2,
                             scheme="lockstep")
        grid_det = fault_grid(["stream"], trials=6, scale="small", seed=2,
                              scheme="detection")
        engine = CampaignEngine(workers=1)

        def latencies(grid):
            return [r.detect_latency_us
                    for r in engine.run(grid).typed_records()
                    if r.detect_latency_us is not None]
        ls, det = latencies(grid_ls), latencies(grid_det)
        assert ls and det
        assert max(ls) < min(det)

    def test_recovery_grid_rejects_non_recovery_scheme(self):
        with pytest.raises(ValueError, match="does not support recovery"):
            recovery_grid(["stream"], trials=2, scale="small",
                          scheme="lockstep")


class TestDeterminismPerScheme:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_serial_parallel_warm_cache_identical(self, tmp_path, scheme):
        """The ISSUE's cache contract, per scheme: 1 worker, N workers,
        and a warm on-disk cache produce byte-identical records."""
        grid = fault_grid(["stream"], trials=4, scale="small", seed=5,
                          scheme=scheme)
        serial = CampaignEngine(workers=1).run(grid)
        parallel = CampaignEngine(workers=2).run(grid)
        assert serial.keys == parallel.keys
        assert serial.records_json() == parallel.records_json()

        cold = CampaignEngine(workers=2, cache_dir=tmp_path).run(grid)
        warm = CampaignEngine(workers=2, cache_dir=tmp_path).run(grid)
        assert warm.executed == 0 and warm.cached == len(grid)
        assert cold.records_json() == serial.records_json()
        assert warm.records_json() == serial.records_json()
        assert warm.keys == serial.keys