"""Timing-identity pins for the pre-fork timing splice and interval mode.

The timing splice is a pure optimisation: a detection-scheme fault job
that splices the golden prefix's timing and re-times only the post-fork
suffix must produce records byte-identical to re-timing the whole
faulty trace — cycles, delay statistics, and coverage verdicts alike —
over the serial and manifest-worker paths, mirroring the fork/full
execution identity pins of ``test_fork_injection``.

Interval mode is *not* an identity: it is a calibrated estimator.  Its
contract is weaker and pinned here too: functional verdicts match the
cycle model exactly, and detection-latency *orderings* agree.
"""

from __future__ import annotations

import pytest

from repro.common.config import default_config
from repro.common.records import canonical_json
from repro.core.timing import (
    TIMING_MODE_ENV,
    TIMING_SPLICE_ENV,
    resolve_timing_mode,
    timing_splice_enabled,
)
from repro.detection.faults import FaultInjector, FaultSite, TransientFault
from repro.detection.system import _TimingSpliceCursor, run_with_detection
from repro.harness.campaign import JobSpec, execute_job, fault_grid
from repro.harness.manifest import CampaignManifest
from repro.harness.orchestrator import CampaignWorker, collect
from repro.isa.executor import execute_forked
from repro.schemes import get_scheme, scheme_names
from repro.schemes.base import FORK_INJECTION_ENV
from repro.workloads.suite import (
    BENCHMARK_ORDER,
    benchmark_trace,
    configure_trace_store,
)

SUITE = tuple(BENCHMARK_ORDER)


@pytest.fixture()
def splice_modes(monkeypatch):
    """runner(fn) -> (unspliced, spliced): ``fn`` once per splice mode,
    both on the fork path (the splice needs fork metadata to engage)."""
    def runner(fn):
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        monkeypatch.setenv(TIMING_SPLICE_ENV, "0")
        unspliced = fn()
        monkeypatch.setenv(TIMING_SPLICE_ENV, "1")
        spliced = fn()
        return unspliced, spliced
    return runner


def late_spec(scheme: str, benchmark: str, offset: int = 120,
              site=FaultSite.RESULT, timing: str = "cycle") -> JobSpec:
    clean_len = len(benchmark_trace(benchmark, "small"))
    fault = TransientFault(site, seq=clean_len - offset, bit=4)
    return JobSpec("fault", benchmark, "small", fault=fault, scheme=scheme,
                   timing=timing)


class TestEnvironmentSwitches:
    def test_splice_default_enabled(self, monkeypatch):
        monkeypatch.delenv(TIMING_SPLICE_ENV, raising=False)
        assert timing_splice_enabled()
        monkeypatch.setenv(TIMING_SPLICE_ENV, "0")
        assert not timing_splice_enabled()

    def test_mode_env_overrides_job_mode(self, monkeypatch):
        """REPRO_TIMING_MODE wins over the spec's timing field, exactly
        as REPRO_FORK_INJECTION=0 vetoes fork-capable schemes: one env
        setting forces a whole campaign onto the cycle model."""
        monkeypatch.delenv(TIMING_MODE_ENV, raising=False)
        assert resolve_timing_mode() == "cycle"
        monkeypatch.setenv(TIMING_MODE_ENV, "interval")
        assert resolve_timing_mode() == "interval"

    def test_every_scheme_declares_splice_support(self):
        for name in scheme_names():
            caps = get_scheme(name).capabilities()
            assert "supports_timing_splice" in caps
        # only the detection scheme re-times faulty traces; the others
        # classify from activations and the splice is vacuous for them
        assert get_scheme("detection").supports_timing_splice
        assert not get_scheme("lockstep").supports_timing_splice
        assert not get_scheme("rmt").supports_timing_splice


class TestSpliceRecordIdentity:
    """Spliced timing is byte-unobservable in every campaign record."""

    @pytest.mark.parametrize("workload", SUITE)
    def test_detection_fault_job_byte_identical(self, workload,
                                                splice_modes):
        spec = late_spec("detection", workload)
        unspliced, spliced = splice_modes(lambda: execute_job(spec))
        assert canonical_json(unspliced) == canonical_json(spliced)

    @pytest.mark.parametrize("workload", SUITE)
    def test_spliced_equals_full_reexecution(self, workload, monkeypatch):
        """The strongest identity: splice on + fork on versus the
        original full path (no fork, no splice, whole-trace timing)."""
        spec = late_spec("detection", workload)
        monkeypatch.setenv(FORK_INJECTION_ENV, "0")
        monkeypatch.setenv(TIMING_SPLICE_ENV, "0")
        full = execute_job(spec)
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        monkeypatch.setenv(TIMING_SPLICE_ENV, "1")
        spliced = execute_job(spec)
        assert canonical_json(full) == canonical_json(spliced)

    @pytest.mark.parametrize("site", [FaultSite.BRANCH, FaultSite.LOAD_ADDR,
                                      FaultSite.STORE_VALUE])
    def test_other_sites_byte_identical(self, site, splice_modes):
        spec = late_spec("detection", "stream", site=site)
        unspliced, spliced = splice_modes(lambda: execute_job(spec))
        assert canonical_json(unspliced) == canonical_json(spliced)

    @pytest.mark.parametrize("scheme", ["lockstep", "rmt"])
    def test_non_timing_schemes_unaffected(self, scheme, splice_modes):
        """Lockstep/RMT never time a faulty trace: the splice switch
        must be vacuously unobservable for them."""
        spec = late_spec(scheme, "bitcount")
        unspliced, spliced = splice_modes(lambda: execute_job(spec))
        assert canonical_json(unspliced) == canonical_json(spliced)

    def test_batch_job_byte_identical(self, splice_modes):
        clean_len = len(benchmark_trace("stream", "small"))
        faults = tuple(
            TransientFault(site, seq=clean_len - off, bit=3)
            for site, off in [(FaultSite.RESULT, 40),
                              (FaultSite.BRANCH, 500),
                              (FaultSite.STORE_ADDR, 90)])
        spec = JobSpec("fault-batch", "stream", "small", faults=faults,
                       scheme="detection")
        unspliced, spliced = splice_modes(lambda: execute_job(spec))
        assert canonical_json(unspliced) == canonical_json(spliced)

    def test_manifest_worker_path_byte_identical(self, tmp_path,
                                                 monkeypatch):
        """Same grid through lease-driven manifest workers, one manifest
        per splice mode: merged records must match byte for byte."""
        specs = [late_spec("detection", name, offset=off)
                 for name in ("stream", "bitcount") for off in (60, 400)]
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        merged = {}
        try:
            for mode in ("0", "1"):
                monkeypatch.setenv(TIMING_SPLICE_ENV, mode)
                manifest = CampaignManifest.create(tmp_path / f"m{mode}",
                                                   specs)
                stats = CampaignWorker(manifest,
                                       worker_id=f"w{mode}").run()
                assert stats.failed == 0
                merged[mode] = collect(manifest).records_json()
        finally:
            configure_trace_store(None)
        assert merged["0"] == merged["1"]


class TestSpliceReportIdentity:
    """Beyond records: the raw detection report is identical too."""

    def _run(self, faulty, golden):
        return run_with_detection(faulty, default_config(), golden=golden)

    def test_full_report_identical(self, splice_modes):
        golden = benchmark_trace("bitcount", "small")
        fault = TransientFault(FaultSite.RESULT, seq=len(golden) - 90, bit=7)
        faulty = execute_forked(golden, FaultInjector([fault]))
        unspliced, spliced = splice_modes(lambda: self._run(faulty, golden))
        assert unspliced.main_cycles == spliced.main_cycles
        assert unspliced.system_cycles == spliced.system_cycles
        a, b = unspliced.report, spliced.report
        assert a.delays_ns.values == b.delays_ns.values
        assert a.events == b.events
        assert (a.segments_checked, a.entries_checked, a.checkpoints_taken,
                a.closes_by_reason, a.checker_busy_ticks,
                a.log_full_stall_cycles, a.checkpoint_stall_cycles,
                a.all_checks_done_tick) == \
            (b.segments_checked, b.entries_checked, b.checkpoints_taken,
             b.closes_by_reason, b.checker_busy_ticks,
             b.log_full_stall_cycles, b.checkpoint_stall_cycles,
             b.all_checks_done_tick)

    def test_splice_actually_engages(self, monkeypatch):
        golden = benchmark_trace("stream", "small")
        fault = TransientFault(FaultSite.RESULT, seq=len(golden) - 50, bit=2)
        faulty = execute_forked(golden, FaultInjector([fault]))
        hits = []
        original = _TimingSpliceCursor.bundle

        def spy(self, fork_seq):
            hits.append(fork_seq)
            return original(self, fork_seq)

        monkeypatch.setattr(_TimingSpliceCursor, "bundle", spy)
        monkeypatch.setenv(TIMING_SPLICE_ENV, "1")
        self._run(faulty, golden)
        assert hits == [faulty.fork_seq]

    def test_splice_veto_bypasses_cursor(self, monkeypatch):
        golden = benchmark_trace("stream", "small")
        fault = TransientFault(FaultSite.RESULT, seq=len(golden) - 50, bit=2)
        faulty = execute_forked(golden, FaultInjector([fault]))

        def bomb(self, fork_seq):
            raise AssertionError("splice cursor used despite veto")

        monkeypatch.setattr(_TimingSpliceCursor, "bundle", bomb)
        monkeypatch.setenv(TIMING_SPLICE_ENV, "0")
        self._run(faulty, golden)

    def test_side_channel_faults_disable_splice(self, monkeypatch):
        """Checkpoint/checker faults perturb the hook itself, so those
        runs must stay on the full timing path (and still detect)."""
        golden = benchmark_trace("bitcount", "small")
        fault = TransientFault(FaultSite.CHECKPOINT, seq=2, reg="x3", bit=5)

        def bomb(self, fork_seq):
            raise AssertionError("splice despite checkpoint fault")

        monkeypatch.setattr(_TimingSpliceCursor, "bundle", bomb)
        monkeypatch.setenv(TIMING_SPLICE_ENV, "1")
        forked = execute_forked(golden, FaultInjector([fault]))
        result = run_with_detection(forked, default_config(),
                                    checkpoint_faults=[fault],
                                    golden=golden)
        assert result.report.detected


class TestIntervalMode:
    """The interval estimator's contract: exact functional verdicts,
    concordant detection-latency orderings."""

    @staticmethod
    def records_for(benchmark: str, timing: str) -> list[dict]:
        grid = fault_grid([benchmark], trials=6, seed=7, timing=timing)
        return [execute_job(spec) for spec in grid.jobs]

    @pytest.mark.parametrize("workload", SUITE)
    def test_verdicts_match_cycle_model(self, workload, monkeypatch):
        monkeypatch.delenv(TIMING_MODE_ENV, raising=False)
        cycle = self.records_for(workload, "cycle")
        interval = self.records_for(workload, "interval")
        assert [r["outcome"] for r in cycle] == \
            [r["outcome"] for r in interval]
        assert [r["activated"] for r in cycle] == \
            [r["activated"] for r in interval]
        assert [(r["site"], r["seq"], r["bit"]) for r in cycle] == \
            [(r["site"], r["seq"], r["bit"]) for r in interval]

    @pytest.mark.parametrize("workload", SUITE)
    def test_latency_orderings_concordant(self, workload, monkeypatch):
        """For every pair of detected faults whose cycle-model latencies
        clearly differ (>10%), the interval model must order them the
        same way."""
        monkeypatch.delenv(TIMING_MODE_ENV, raising=False)
        cycle = self.records_for(workload, "cycle")
        interval = self.records_for(workload, "interval")
        pairs = [(c["detect_latency_us"], i["detect_latency_us"])
                 for c, i in zip(cycle, interval)
                 if c["outcome"] == "detected"]
        assert all(i is not None for _, i in pairs)
        discordant = [
            (a, b)
            for idx, (ac, ai) in enumerate(pairs)
            for (bc, bi) in pairs[idx + 1:]
            for a, b in [((ac, ai), (bc, bi))]
            if abs(ac - bc) > 0.10 * max(ac, bc) and (ac < bc) != (ai < bi)
        ]
        assert discordant == []

    def test_env_forces_cycle_model(self, monkeypatch):
        """REPRO_TIMING_MODE=cycle makes an interval-mode job produce
        the cycle model's exact record, mirroring REPRO_FORK_INJECTION=0
        — the cache key still carries the requested mode, the physics
        obeys the environment."""
        cycle_spec = late_spec("detection", "stream", timing="cycle")
        interval_spec = late_spec("detection", "stream", timing="interval")
        assert cycle_spec.key() != interval_spec.key()
        monkeypatch.delenv(TIMING_MODE_ENV, raising=False)
        reference = execute_job(cycle_spec)
        monkeypatch.setenv(TIMING_MODE_ENV, "cycle")
        forced = execute_job(interval_spec)
        assert canonical_json(forced) == canonical_json(reference)

    def test_interval_identical_across_fork_modes(self, monkeypatch):
        """Interval estimates anchor on the clean golden timing curve,
        so the verdict cannot depend on which execution path produced
        the faulty trace."""
        spec = late_spec("detection", "bitcount", timing="interval")
        monkeypatch.setenv(FORK_INJECTION_ENV, "0")
        full = execute_job(spec)
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        forked = execute_job(spec)
        assert canonical_json(full) == canonical_json(forked)

    def test_activation_only_schemes_mode_invariant(self, monkeypatch):
        monkeypatch.delenv(TIMING_MODE_ENV, raising=False)
        for timing in ("cycle", "interval"):
            spec = late_spec("lockstep", "stream", timing=timing)
            record = execute_job(spec)
            assert record["outcome"] in ("detected", "masked",
                                         "not_activated", "escaped")
        cycle = execute_job(late_spec("lockstep", "stream", timing="cycle"))
        interval = execute_job(
            late_spec("lockstep", "stream", timing="interval"))
        assert canonical_json(cycle) == canonical_json(interval)

    def test_unknown_timing_rejected(self):
        with pytest.raises(ValueError, match="unknown timing mode"):
            JobSpec("fault", "stream", timing="approximate")
