"""Detection-scheme fault batches: snapshots, scheduling, capability.

Three contracts pinned here:

* **Snapshot identity** — :meth:`OoOCore.fork` now clones the (core,
  run-state, hook) bundle through explicit ``snapshot()/restore()``
  methods instead of ``copy.deepcopy``; a fork resumed to completion
  must match the deepcopy fork field for field, report for report.
* **Batch scheduling** — a detection fault-batch cell pre-registers its
  sorted fork seqs on the cell's shared timing-splice cursor
  (:func:`prime_splice_cursor`), which snapshots at each *exact* seq;
  the cursor registry is a capped LRU (``REPRO_SPLICE_CURSORS``) and
  retained planned snapshots are bounded.  None of it may be visible in
  records: batch equals per-job under every kill-switch combination,
  serially and through a manifest worker.
* **Capability gating** — ``supports_fault_batch`` governs
  ``fault-batch`` grids end to end (grid builder, wire, executor, CLI).
"""

from __future__ import annotations

import copy

import pytest

from repro.common.config import default_config
from repro.common.records import canonical_json
from repro.core.ooo_core import OoOCore
from repro.core.timing import TIMING_SPLICE_ENV
from repro.detection.faults import FaultSite, TransientFault
from repro.detection.system import (
    _SPLICE_CURSORS,
    SPLICE_CURSOR_ENV,
    SPLICE_PLANNED_SNAPSHOT_CAP,
    ParallelErrorDetection,
    _splice_cursor,
    prime_splice_cursor,
    splice_cursor_cap,
)
from repro.harness.campaign import JobSpec, execute_job, fault_batch_grid
from repro.harness.manifest import CampaignManifest
from repro.harness.orchestrator import CampaignWorker, collect
from repro.isa.blocks import BLOCK_EXEC_ENV
from repro.schemes import get_scheme, scheme_names
from repro.schemes.base import FORK_INJECTION_ENV
from repro.schemes.detection import ParallelDetectionScheme
from repro.service.wire import WireError, build_grid
from repro.workloads.suite import (
    BENCHMARK_ORDER,
    benchmark_trace,
    configure_trace_store,
)


@pytest.fixture()
def cursor_registry():
    """An empty cursor registry for the test, restored afterwards."""
    saved = dict(_SPLICE_CURSORS)
    _SPLICE_CURSORS.clear()
    yield _SPLICE_CURSORS
    _SPLICE_CURSORS.clear()
    _SPLICE_CURSORS.update(saved)


def detection_cell(benchmark: str = "stream") -> JobSpec:
    clean_len = len(benchmark_trace(benchmark, "small"))
    # unsorted seqs, mixed sites, a shared fork seq, and a checker-side
    # fault (which must bypass the splice cursor even inside a batch)
    faults = (
        TransientFault(FaultSite.RESULT, seq=clean_len - 60, bit=4),
        TransientFault(FaultSite.BRANCH, seq=clean_len - 300, bit=0),
        TransientFault(FaultSite.STORE_VALUE, seq=clean_len - 60, bit=9),
        TransientFault(FaultSite.CHECKER, seq=clean_len - 150, bit=2),
        TransientFault(FaultSite.LOAD_ADDR, seq=clean_len - 450, bit=12),
    )
    return JobSpec("fault-batch", benchmark, "small", faults=faults,
                   scheme="detection")


class TestSnapshotForkIdentity:
    """fork() without deepcopy reproduces the deepcopy fork exactly."""

    @staticmethod
    def _deepcopy_fork(core, state, hook):
        """The pre-snapshot fork implementation, verbatim."""
        cfg = core.config
        shared = [cfg, cfg.main_core, cfg.branch, cfg.memory, cfg.checker,
                  cfg.detection, core.core, core.clock]
        if hook is not None:
            shared.extend(hook.clone_shared())
        memo = {id(obj): obj for obj in shared}
        return copy.deepcopy((core, state, hook), memo)

    @pytest.mark.parametrize("workload", ["stream", "bitcount"])
    def test_resumed_fork_matches_deepcopy_fork(self, workload):
        golden = benchmark_trace(workload, "small")
        config = default_config()
        mid = len(golden) // 2

        def finish(bundle):
            core, state, hook = bundle
            core.run_rows(golden, hook, state, len(golden))
            return core.finish_run(golden, hook, state), hook.report

        core = OoOCore(config)
        hook = ParallelErrorDetection(config, golden.program)
        hook.begin(golden)
        state = core.start_state()
        core.run_rows(golden, hook, state, mid)

        via_deepcopy = self._deepcopy_fork(core, state, hook)
        via_snapshot = core.fork(state, hook)
        result_a, report_a = finish(via_deepcopy)
        result_b, report_b = finish(via_snapshot)

        assert result_a == result_b
        assert report_a.delays_ns.values == report_b.delays_ns.values
        assert report_a.events == report_b.events
        assert (report_a.segments_checked, report_a.entries_checked,
                report_a.checkpoints_taken, report_a.closes_by_reason,
                report_a.checker_busy_ticks, report_a.log_full_stall_cycles,
                report_a.checkpoint_stall_cycles,
                report_a.all_checks_done_tick) == \
            (report_b.segments_checked, report_b.entries_checked,
             report_b.checkpoints_taken, report_b.closes_by_reason,
             report_b.checker_busy_ticks, report_b.log_full_stall_cycles,
             report_b.checkpoint_stall_cycles,
             report_b.all_checks_done_tick)

    def test_fork_shares_immutable_state(self):
        """Config, program metadata, and the clock stay shared — only
        mutable run state is copied."""
        golden = benchmark_trace("stream", "small")
        config = default_config()
        core = OoOCore(config)
        hook = ParallelErrorDetection(config, golden.program)
        hook.begin(golden)
        state = core.start_state()
        core.run_rows(golden, hook, state, 64)
        fcore, fstate, fhook = core.fork(state, hook)
        assert fcore.config is core.config
        assert fcore.core is core.core
        assert fcore.clock is core.clock
        assert fhook.config is hook.config
        assert fcore.hierarchy is not core.hierarchy
        assert fstate is not state
        assert fhook.report is not hook.report


class TestCursorRegistry:
    """The splice-cursor registry is a capped LRU with planned bounds."""

    def test_default_cap(self, monkeypatch):
        monkeypatch.delenv(SPLICE_CURSOR_ENV, raising=False)
        assert splice_cursor_cap() == 4

    def test_env_overrides_cap(self, monkeypatch):
        monkeypatch.setenv(SPLICE_CURSOR_ENV, "2")
        assert splice_cursor_cap() == 2
        monkeypatch.setenv(SPLICE_CURSOR_ENV, "nonsense")
        assert splice_cursor_cap() == 4
        monkeypatch.setenv(SPLICE_CURSOR_ENV, "0")
        assert splice_cursor_cap() == 4

    def test_lru_eviction_past_cap(self, cursor_registry, monkeypatch):
        monkeypatch.delenv(SPLICE_CURSOR_ENV, raising=False)
        config = default_config()
        goldens = [benchmark_trace(name, "small")
                   for name in BENCHMARK_ORDER[:5]]
        cursors = [_splice_cursor(golden, config) for golden in goldens]
        assert len(cursor_registry) == 4
        # the first golden was the least recently used: evicted
        assert _splice_cursor(goldens[0], config) is not cursors[0]
        # goldens[1] fell out while re-admitting goldens[0]; touching
        # goldens[2] then admitting a fresh trace must evict goldens[3],
        # not the just-touched entry
        assert _splice_cursor(goldens[2], config) is cursors[2]
        _splice_cursor(goldens[1], config)
        assert _splice_cursor(goldens[2], config) is cursors[2]
        assert _splice_cursor(goldens[3], config) is not cursors[3]

    def test_smaller_cap_evicts_immediately(self, cursor_registry,
                                            monkeypatch):
        monkeypatch.setenv(SPLICE_CURSOR_ENV, "1")
        config = default_config()
        a = benchmark_trace("stream", "small")
        b = benchmark_trace("bitcount", "small")
        first = _splice_cursor(a, config)
        _splice_cursor(b, config)
        assert len(cursor_registry) == 1
        assert _splice_cursor(a, config) is not first

    def test_planned_boundaries_are_exact(self, cursor_registry):
        golden = benchmark_trace("stream", "small")
        config = default_config()
        seqs = [len(golden) - 37, len(golden) - 11]
        prime_splice_cursor(golden, config, seqs)
        cursor = _splice_cursor(golden, config)
        for seq in sorted(seqs):
            _, state, _ = cursor.bundle(seq)
            assert state.next_row == seq
        # an unplanned seq still rounds down to the interval boundary
        unplanned = len(golden) - 23
        _, state, _ = cursor.bundle(unplanned)
        assert state.next_row == unplanned - unplanned % cursor.interval

    def test_rewind_serves_already_passed_seqs(self, cursor_registry):
        """Planning seqs the live walk has passed re-times only the
        stretch from the retained snapshot below — still exact."""
        golden = benchmark_trace("bitcount", "small")
        config = default_config()
        cursor = _splice_cursor(golden, config)
        cursor.bundle(len(golden))  # drive the frontier to the end
        seq = len(golden) - 77
        prime_splice_cursor(golden, config, [seq])
        _, state, _ = cursor.bundle(seq)
        assert state.next_row == seq

    def test_repeated_cell_replays_from_snapshots(self, cursor_registry,
                                                  monkeypatch):
        """Re-planning an already-drained cell is pure cache: no golden
        row is re-timed (the warm path campaign repeats rely on)."""
        golden = benchmark_trace("stream", "small")
        config = default_config()
        seqs = [len(golden) - off for off in (19, 63, 141)]
        prime_splice_cursor(golden, config, seqs)
        cursor = _splice_cursor(golden, config)
        for seq in sorted(seqs):
            cursor.bundle(seq)

        def bomb(*args, **kwargs):
            raise AssertionError("golden rows re-timed on a warm cell")

        monkeypatch.setattr(OoOCore, "run_rows", bomb)
        prime_splice_cursor(golden, config, seqs)
        for seq in sorted(seqs):
            _, state, _ = cursor.bundle(seq)
            assert state.next_row == seq

    def test_planned_snapshots_bounded(self, cursor_registry):
        golden = benchmark_trace("stream", "small")
        config = default_config()
        interval = _splice_cursor(golden, config).interval
        seqs = [s for s in range(1, len(golden))
                if s % interval][:SPLICE_PLANNED_SNAPSHOT_CAP + 40]
        assert len(seqs) > SPLICE_PLANNED_SNAPSHOT_CAP
        prime_splice_cursor(golden, config, seqs)
        cursor = _splice_cursor(golden, config)
        for seq in seqs:
            cursor.bundle(seq)
        assert len(cursor._planned) <= SPLICE_PLANNED_SNAPSHOT_CAP + 1
        planned_live = [b for b in cursor._snapshots if b % interval]
        assert len(planned_live) <= SPLICE_PLANNED_SNAPSHOT_CAP + 1


class TestDetectionBatchKillSwitches:
    """Batch vs per-job byte-identity must hold with each fast path
    disabled — the acceptance pin for the batch machinery."""

    @staticmethod
    def per_job_records(spec: JobSpec) -> list[dict]:
        return [execute_job(JobSpec("fault", spec.benchmark, spec.scale,
                                    fault=fault, scheme=spec.scheme))
                for fault in spec.faults]

    @pytest.mark.parametrize("env,value", [
        (TIMING_SPLICE_ENV, "0"),
        (BLOCK_EXEC_ENV, "0"),
    ])
    def test_batch_identity_under_kill_switch(self, env, value,
                                              monkeypatch):
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        spec = detection_cell()
        reference = execute_job(spec)
        monkeypatch.setenv(env, value)
        killed = execute_job(spec)
        assert canonical_json(killed) == canonical_json(reference)
        assert canonical_json(list(killed["records"])) == \
            canonical_json(self.per_job_records(spec))

    def test_batch_manifest_worker_byte_identical(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        spec = detection_cell("bitcount")
        serial = execute_job(spec)
        manifest = CampaignManifest.create(tmp_path / "m", [spec])
        try:
            stats = CampaignWorker(manifest, worker_id="w").run()
            merged = collect(manifest)
        finally:
            configure_trace_store(None)
        assert stats.executed == 1 and stats.failed == 0
        assert merged.records_json() == canonical_json([serial])


class TestBatchCapability:
    def test_every_scheme_declares_batch_support(self):
        for name in scheme_names():
            caps = get_scheme(name).capabilities()
            assert "supports_fault_batch" in caps
        assert get_scheme("detection").supports_fault_batch

    def test_grid_builder_rejects_unsupported_scheme(self, monkeypatch):
        monkeypatch.setattr(ParallelDetectionScheme,
                            "supports_fault_batch", False)
        with pytest.raises(ValueError,
                           match="does not support fault-batch"):
            fault_batch_grid(["stream"], trials=2, batch_size=2,
                             scheme="detection")

    def test_wire_rejects_unsupported_scheme(self, monkeypatch):
        monkeypatch.setattr(ParallelDetectionScheme,
                            "supports_fault_batch", False)
        with pytest.raises(WireError, match="does not support fault-batch"):
            build_grid({"kind": "fault-batch", "scheme": "detection",
                        "benchmarks": ["stream"], "trials": 2})

    def test_executor_rejects_unsupported_scheme(self, monkeypatch):
        """A manifest-delivered spec re-checks the capability at
        execution time, not only at grid construction."""
        monkeypatch.setattr(ParallelDetectionScheme,
                            "supports_fault_batch", False)
        clean_len = len(benchmark_trace("stream", "small"))
        spec = JobSpec(
            "fault-batch", "stream", "small",
            faults=(TransientFault(FaultSite.RESULT, seq=clean_len - 33,
                                   bit=1),),
            scheme="detection")
        with pytest.raises(ValueError,
                           match="does not support fault-batch"):
            execute_job(spec)

    def test_cli_lists_batch_column(self, capsys):
        from repro.__main__ import main

        assert main(["list", "--schemes"]) == 0
        out = capsys.readouterr().out
        header = next(line for line in out.splitlines() if "batch" in line)
        assert "batch" in header
        for name in ("detection", "lockstep", "rmt", "unprotected"):
            row = next(line for line in out.splitlines()
                       if line.strip().startswith(name))
            assert " yes" in row
