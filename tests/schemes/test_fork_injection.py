"""Fork-point fault injection through the scheme/campaign layers.

Every record a campaign can produce must be byte-identical whether a
fault job re-executed the whole program or forked the golden trace at
the earliest fault — the fork path is a pure optimisation, unobservable
in any output.
"""

from __future__ import annotations

import pytest

from repro.common.config import default_config
from repro.common.records import canonical_json
from repro.detection.checker import SegmentChecker
from repro.detection.faults import FaultInjector, FaultSite, TransientFault
from repro.detection.system import run_with_detection
from repro.harness.campaign import JobSpec, execute_job
from repro.harness.manifest import CampaignManifest
from repro.harness.orchestrator import CampaignWorker, collect
from repro.isa.executor import execute_forked, execute_program
from repro.schemes import get_scheme, scheme_names
from repro.schemes.base import FORK_INJECTION_ENV, fork_injection_enabled
from repro.workloads.suite import benchmark_trace, configure_trace_store


@pytest.fixture()
def fork_modes(monkeypatch):
    """Returns a runner(fn) -> (full, forked) executing ``fn`` once per
    injection mode via the environment switch."""
    def runner(fn):
        monkeypatch.setenv(FORK_INJECTION_ENV, "0")
        full = fn()
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        forked = fn()
        return full, forked
    return runner


def late_spec(kind: str, scheme: str, site=FaultSite.RESULT,
              benchmark: str = "stream", offset: int = 120) -> JobSpec:
    clean_len = len(benchmark_trace(benchmark, "small"))
    fault = TransientFault(site, seq=clean_len - offset, bit=4)
    return JobSpec(kind, benchmark, "small", fault=fault, scheme=scheme)


class TestEnvironmentSwitch:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv(FORK_INJECTION_ENV, raising=False)
        assert fork_injection_enabled()
        monkeypatch.setenv(FORK_INJECTION_ENV, "0")
        assert not fork_injection_enabled()

    def test_every_scheme_declares_fork_support(self):
        for name in scheme_names():
            caps = get_scheme(name).capabilities()
            assert "supports_fork_injection" in caps

    def test_helper_obeys_flag_and_env(self, monkeypatch):
        clean = benchmark_trace("stream", "small")
        fault = TransientFault(FaultSite.RESULT, seq=len(clean) - 50, bit=2)
        scheme = get_scheme("lockstep")
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        _, forked = scheme.faulty_trace(clean, fault)
        assert forked.fork_of is clean
        monkeypatch.setenv(FORK_INJECTION_ENV, "0")
        _, full = scheme.faulty_trace(clean, fault)
        assert full.fork_of is None


class TestCoverageRecordIdentity:
    @pytest.mark.parametrize("scheme", ["detection", "lockstep", "rmt",
                                        "unprotected"])
    def test_fault_job_byte_identical(self, scheme, fork_modes):
        spec = late_spec("fault", scheme)
        full, forked = fork_modes(lambda: execute_job(spec))
        assert canonical_json(full) == canonical_json(forked)

    @pytest.mark.parametrize("site", [FaultSite.STORE_ADDR,
                                      FaultSite.BRANCH,
                                      FaultSite.CHECKPOINT,
                                      FaultSite.CHECKER])
    def test_detection_scheme_sites_byte_identical(self, site, fork_modes):
        spec = late_spec("fault", "detection", site=site)
        full, forked = fork_modes(lambda: execute_job(spec))
        assert canonical_json(full) == canonical_json(forked)

    def test_recovery_job_byte_identical(self, fork_modes):
        spec = late_spec("recovery", "detection", site=FaultSite.STORE_VALUE,
                         offset=300)
        full, forked = fork_modes(lambda: execute_job(spec))
        assert canonical_json(full) == canonical_json(forked)


class TestFaultBatchIdentity:
    """The ``fault-batch`` executor is a pure batching of the per-fault
    path: same verdicts, byte-identical records, in the caller's order —
    whatever order the shared fork cursor actually evaluates in."""

    SCHEMES = ["detection", "lockstep", "rmt", "unprotected"]

    @staticmethod
    def cell(scheme: str, benchmark: str = "stream") -> JobSpec:
        clean_len = len(benchmark_trace(benchmark, "small"))
        # deliberately unsorted seqs, mixed sites, and two faults sharing
        # a fork seq: the batch path must order by fork seq internally
        # yet answer (and record) in this order
        faults = (
            TransientFault(FaultSite.RESULT, seq=clean_len - 40, bit=4),
            TransientFault(FaultSite.BRANCH, seq=clean_len - 200, bit=0),
            TransientFault(FaultSite.STORE_VALUE, seq=clean_len - 40, bit=9),
            TransientFault(FaultSite.LOAD_ADDR, seq=clean_len - 500, bit=12),
            TransientFault(FaultSite.PC, seq=clean_len - 90, bit=1),
        )
        return JobSpec("fault-batch", benchmark, "small", faults=faults,
                       scheme=scheme)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_inject_batch_equals_per_fault_inject(self, scheme, monkeypatch):
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        spec = self.cell(scheme)
        obj = get_scheme(scheme)
        clean = benchmark_trace("stream", "small")
        config = default_config()
        batch = obj.inject_batch(clean, config, spec.faults)
        assert batch == [obj.inject(clean, config, fault)
                         for fault in spec.faults]

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_batch_records_byte_identical_to_fault_jobs(self, scheme,
                                                        fork_modes):
        spec = self.cell(scheme)
        full, forked = fork_modes(lambda: execute_job(spec))
        assert canonical_json(full) == canonical_json(forked)
        per_job = [execute_job(JobSpec("fault", spec.benchmark, spec.scale,
                                       fault=fault, scheme=scheme))
                   for fault in spec.faults]
        assert canonical_json(list(forked["records"])) == \
            canonical_json(per_job)

    def test_empty_cell_rejected(self):
        spec = JobSpec("fault-batch", "stream", "small", faults=(),
                       scheme="lockstep")
        with pytest.raises(ValueError, match="empty fault cell"):
            execute_job(spec)

    def test_activation_only_truncation_invisible(self, monkeypatch):
        """Lockstep classifies from the activation list alone, so
        injection stops right after the last fault seq; forcing it to
        run every trial to completion must give identical verdicts."""
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        clean = benchmark_trace("stream", "small")
        config = default_config()
        obj = get_scheme("lockstep")
        faults = self.cell("lockstep").faults
        truncated = [obj.inject(clean, config, fault) for fault in faults]
        monkeypatch.setattr(type(obj), "verdict_needs_outcome", True)
        complete = [obj.inject(clean, config, fault) for fault in faults]
        assert truncated == complete

    def test_batch_job_survives_manifest_worker(self, tmp_path, monkeypatch):
        """A fault-batch job must round-trip the manifest (describe →
        JSON → spec) and produce the same bytes through a lease-driven
        worker as a direct serial execution."""
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        spec = self.cell("lockstep")
        serial = execute_job(spec)
        manifest = CampaignManifest.create(tmp_path / "m", [spec])
        try:
            stats = CampaignWorker(manifest, worker_id="w").run()
            merged = collect(manifest)
        finally:
            configure_trace_store(None)
        assert stats.executed == 1 and stats.failed == 0
        assert merged.records_json() == canonical_json([serial])


class TestNaNStateMasking:
    def test_nan_fp_state_verdict_identical_across_paths(self, monkeypatch):
        """A computed NaN in final FP state must not flip the masked
        verdict between paths: the fork splice aliases the golden
        trace's float objects (list equality's identity shortcut says
        NaN == NaN), a full re-execution builds fresh NaNs (NaN != NaN)
        — architecturally_masked therefore compares by bit pattern."""
        from repro.isa.program import ProgramBuilder
        from repro.isa.instructions import Opcode

        b = ProgramBuilder("nanstate")
        b.emit(Opcode.FMOVI, rd=1, imm=1.0)
        b.emit(Opcode.FMOVI, rd=2, imm=0.0)
        b.emit(Opcode.FDIV, rd=3, rs1=1, rs2=2)    # inf
        b.emit(Opcode.FSUB, rd=4, rs1=3, rs2=3)    # inf - inf = NaN
        b.emit(Opcode.MOVI, rd=5, imm=1)           # seq 4: fault strikes
        b.emit(Opcode.MOVI, rd=5, imm=2)           # effect overwritten
        b.emit(Opcode.HALT)
        golden = execute_program(b.build())
        fault = TransientFault(FaultSite.RESULT, seq=4, bit=0)
        scheme = get_scheme("unprotected")
        config = default_config()

        monkeypatch.setenv(FORK_INJECTION_ENV, "0")
        full = scheme.inject(golden, config, fault)
        monkeypatch.setenv(FORK_INJECTION_ENV, "1")
        forked = scheme.inject(golden, config, fault)
        assert full == forked
        # identical NaN bit patterns are architecturally invisible
        assert full.outcome == "masked"


class TestDetectionReportIdentity:
    def _reports(self, fault, config=None):
        golden = benchmark_trace("bitcount", "small")
        config = config or default_config()
        full = run_with_detection(
            execute_program(golden.program,
                            fault_injector=FaultInjector([fault])),
            config)
        forked = run_with_detection(
            execute_forked(golden, FaultInjector([fault])), config)
        return full, forked

    def test_full_report_identical(self):
        golden = benchmark_trace("bitcount", "small")
        fault = TransientFault(FaultSite.RESULT, seq=len(golden) - 90, bit=7)
        full, forked = self._reports(fault)
        assert full.main_cycles == forked.main_cycles
        assert full.system_cycles == forked.system_cycles
        a, b = full.report, forked.report
        assert a.delays_ns.values == b.delays_ns.values
        assert a.events == b.events
        assert (a.segments_checked, a.entries_checked, a.checkpoints_taken,
                a.closes_by_reason, a.checker_busy_ticks,
                a.log_full_stall_cycles, a.checkpoint_stall_cycles,
                a.all_checks_done_tick) == \
            (b.segments_checked, b.entries_checked, b.checkpoints_taken,
             b.closes_by_reason, b.checker_busy_ticks,
             b.log_full_stall_cycles, b.checkpoint_stall_cycles,
             b.all_checks_done_tick)

    def test_fast_path_actually_engages(self, monkeypatch):
        # splice off: this test pins the full re-timing path, where every
        # pre-fork segment must be checked columnar (with the splice on, a
        # warm cursor already checked them during its one golden walk)
        from repro.core.timing import TIMING_SPLICE_ENV
        monkeypatch.setenv(TIMING_SPLICE_ENV, "0")
        golden = benchmark_trace("bitcount", "small")
        fault = TransientFault(FaultSite.RESULT, seq=len(golden) - 90, bit=7)
        hits = []
        original = SegmentChecker._check_columnar

        def spy(self, segment):
            result = original(self, segment)
            hits.append(result is not None)
            return result

        monkeypatch.setattr(SegmentChecker, "_check_columnar", spy)
        run_with_detection(
            execute_forked(golden, FaultInjector([fault])), default_config())
        assert hits and all(hits), \
            "pre-fork segments must take the columnar fast path"

    def test_full_execution_never_uses_fast_path(self, monkeypatch):
        golden = benchmark_trace("bitcount", "small")
        fault = TransientFault(FaultSite.RESULT, seq=len(golden) - 90, bit=7)

        def bomb(self, segment):
            raise AssertionError("fast path without fork metadata")

        monkeypatch.setattr(SegmentChecker, "_check_columnar", bomb)
        run_with_detection(
            execute_program(golden.program,
                            fault_injector=FaultInjector([fault])),
            default_config())

    def test_checkpoint_fault_disables_fast_path(self, monkeypatch):
        """A corrupted checkpoint is only caught by the register
        comparison the fast path elides — fork runs carrying checkpoint
        faults must stay on full replay, and still detect."""
        golden = benchmark_trace("bitcount", "small")
        fault = TransientFault(FaultSite.CHECKPOINT, seq=2, reg="x3", bit=5)

        def bomb(self, segment):
            raise AssertionError("fast path despite checkpoint fault")

        monkeypatch.setattr(SegmentChecker, "_check_columnar", bomb)
        forked = execute_forked(golden, FaultInjector([fault]))
        result = run_with_detection(forked, default_config(),
                                    checkpoint_faults=[fault])
        assert result.report.detected


class TestCheckerFastPathEquivalence:
    def test_fast_result_equals_replay_result(self):
        """The columnar fast path must return the same CheckResult the
        replay path computes for the same clean pre-fork segment."""
        golden = benchmark_trace("stream", "small")
        fault = TransientFault(FaultSite.RESULT, seq=len(golden) - 30, bit=3)
        forked = execute_forked(golden, FaultInjector([fault]))
        hook_segments = []

        original = SegmentChecker.check

        def capture(self, segment):
            hook_segments.append(segment)
            return original(self, segment)

        import unittest.mock as mock
        with mock.patch.object(SegmentChecker, "check", capture):
            run_with_detection(forked, default_config())
        pre_fork = [s for s in hook_segments
                    if s.end_seq is not None and s.end_seq <= forked.fork_seq]
        assert pre_fork, "late fault leaves plenty of pre-fork segments"

        fast = SegmentChecker(golden.program)
        fast.bind_fork(forked, golden, forked.fork_seq)
        plain = SegmentChecker(golden.program)
        for segment in pre_fork:
            a = fast.check(segment)
            b = plain.check(segment)
            assert a.ok and b.ok
            assert a.steps == b.steps
            assert a.entries_checked == b.entries_checked
            assert a.instructions_executed == b.instructions_executed
            assert a.errors == b.errors == []
