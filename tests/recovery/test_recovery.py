"""Tests for the rollback-recovery extension (paper future work)."""

import pytest

from repro.common.config import default_config
from repro.detection.checkpoint import ArchStateTracker
from repro.detection.faults import FaultInjector, FaultSite, TransientFault
from repro.isa.executor import execute_program
from repro.recovery.rollback import (
    build_snapshots,
    detect_and_recover,
    resume_from,
    _segment_starts,
)
from repro.recovery.snapshots import SnapshotStore

from tests.conftest import build_rmw_loop


@pytest.fixture(scope="module")
def program():
    return build_rmw_loop(iterations=400)


@pytest.fixture(scope="module")
def clean(program):
    return execute_program(program)


class TestSnapshotStore:
    def test_undo_logged_memory_evolves(self, clean):
        tracker = ArchStateTracker()
        store = SnapshotStore(clean.program.initial_memory(),
                              tracker.snapshot(0))
        for dyn in clean.instructions:
            store.apply_commit(dyn)
        # the evolving image equals the final architectural memory
        for addr, value in clean.memory.items():
            assert store.memory.load(addr) == value

    def test_snapshot_isolated_from_future_stores(self, clean):
        tracker = ArchStateTracker()
        store = SnapshotStore(clean.program.initial_memory(),
                              tracker.snapshot(0))
        n = 120
        for dyn in clean.instructions[:n]:
            store.apply_commit(dyn)
            tracker.apply(dyn)
        snap = store.take_snapshot(n, tracker.snapshot(
            clean.instructions[n - 1].next_pc))
        frozen = {a: v for a, v in snap.memory.items()}
        for dyn in clean.instructions[n:]:
            store.apply_commit(dyn)
        assert {a: v for a, v in snap.memory.items()} == frozen

    def test_verification_ordering(self, clean):
        tracker = ArchStateTracker()
        store = SnapshotStore(clean.program.initial_memory(),
                              tracker.snapshot(0))
        s1 = store.take_snapshot(100, tracker.snapshot(0))
        s2 = store.take_snapshot(200, tracker.snapshot(0))
        assert not s1.verified and not s2.verified
        store.mark_verified_up_to(150)
        assert s1.verified and not s2.verified
        assert store.latest_verified() is s1

    def test_entry_state_always_verified(self, clean):
        tracker = ArchStateTracker()
        store = SnapshotStore(clean.program.initial_memory(),
                              tracker.snapshot(0))
        assert store.latest_verified().verified
        assert store.latest_verified().seq == 0

    def test_undo_cost_counts_stores(self, clean):
        tracker = ArchStateTracker()
        store = SnapshotStore(clean.program.initial_memory(),
                              tracker.snapshot(0))
        for dyn in clean.instructions:
            store.apply_commit(dyn)
        assert store.undo_cost_entries() == clean.store_count


class TestResume:
    def test_resume_from_midpoint_matches(self, program, clean):
        starts = _segment_starts(clean, default_config())
        store = build_snapshots(clean, starts)
        store.mark_verified_up_to(starts[len(starts) // 2])
        snapshot = store.latest_verified()
        machine = resume_from(program, snapshot)
        assert machine.xregs == clean.final_xregs
        assert machine.fregs == clean.final_fregs
        for addr, value in clean.memory.items():
            assert machine.memory.load(addr) == value


class TestDetectAndRecover:
    def test_transient_fault_recovered(self, program):
        fault = TransientFault(FaultSite.STORE_VALUE,
                               seq=3 + 8 * 200 + 5, bit=4)
        injector = FaultInjector([fault])
        faulty = execute_program(program, fault_injector=injector)
        outcome = detect_and_recover(program, faulty, default_config())
        assert outcome.detected
        assert outcome.recovered
        assert outcome.state_correct
        assert outcome.rollback_seq is not None
        assert outcome.replayed_instructions > 0

    def test_rollback_point_is_before_fault(self, program):
        fault_seq = 3 + 8 * 200 + 5
        fault = TransientFault(FaultSite.STORE_VALUE, seq=fault_seq, bit=4)
        injector = FaultInjector([fault])
        faulty = execute_program(program, fault_injector=injector)
        outcome = detect_and_recover(program, faulty, default_config())
        assert outcome.rollback_seq <= fault_seq

    def test_fault_free_run_reports_clean(self, program, clean):
        outcome = detect_and_recover(program, clean, default_config())
        assert not outcome.detected
        assert outcome.recovered
        assert outcome.state_correct
        assert outcome.replayed_instructions == 0

    def test_result_fault_recovered(self, program):
        fault = TransientFault(FaultSite.RESULT, seq=3 + 8 * 150 + 4, bit=9)
        injector = FaultInjector([fault])
        faulty = execute_program(program, fault_injector=injector)
        outcome = detect_and_recover(program, faulty, default_config())
        assert outcome.detected
        assert outcome.state_correct

    def test_early_fault_rolls_to_entry(self, program):
        fault = TransientFault(FaultSite.STORE_VALUE, seq=3 + 5, bit=4)
        injector = FaultInjector([fault])
        faulty = execute_program(program, fault_injector=injector)
        outcome = detect_and_recover(program, faulty, default_config())
        assert outcome.detected
        assert outcome.rollback_seq == 0  # first segment: entry snapshot
        assert outcome.state_correct


class TestSegmentStartsConsistency:
    def test_matches_detection_segment_count(self, clean):
        from repro.detection.system import run_with_detection
        config = default_config()
        report = run_with_detection(clean, config).report
        starts = _segment_starts(clean, config)
        # builder opens one segment per close (+ the initial one); the
        # final partial segment closes at termination
        assert len(starts) == report.segments_checked
