"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.config import default_config
from repro.isa.executor import execute_program
from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder


def build_rmw_loop(iterations: int = 400, array_words: int = 64,
                   name: str = "rmw") -> Program:
    """A small read-modify-write loop: the workhorse test program.

    Per iteration: index arithmetic, one load, one add, one store, one
    backward branch — exercises every detection path (loads, stores,
    checkpoints) with a short, predictable body.
    """
    b = ProgramBuilder(name)
    data = b.alloc_words(array_words, list(range(array_words)))
    b.emit(Opcode.MOVI, rd=1, imm=data)
    b.emit(Opcode.MOVI, rd=2, imm=0)
    b.emit(Opcode.MOVI, rd=3, imm=iterations)
    b.label("loop")
    b.emit(Opcode.ANDI, rd=4, rs1=2, imm=array_words - 1)
    b.emit(Opcode.SLLI, rd=4, rs1=4, imm=3)
    b.emit(Opcode.ADD, rd=5, rs1=1, rs2=4)
    b.emit(Opcode.LD, rd=6, rs1=5, imm=0)
    b.emit(Opcode.ADDI, rd=6, rs1=6, imm=1)
    b.emit(Opcode.ST, rs2=6, rs1=5, imm=0)
    b.emit(Opcode.ADDI, rd=2, rs1=2, imm=1)
    b.emit(Opcode.BLT, rs1=2, rs2=3, target="loop")
    b.emit(Opcode.HALT)
    return b.build()


def build_alu_loop(iterations: int = 600, name: str = "alu") -> Program:
    """A compute-only loop (no loads/stores except one final store):
    exercises timeout-driven segment closure."""
    b = ProgramBuilder(name)
    out = b.alloc_words(1)
    b.emit(Opcode.MOVI, rd=1, imm=1)
    b.emit(Opcode.MOVI, rd=2, imm=0)
    b.emit(Opcode.MOVI, rd=3, imm=iterations)
    b.label("loop")
    b.emit(Opcode.ADD, rd=1, rs1=1, rs2=1)
    b.emit(Opcode.XORI, rd=1, rs1=1, imm=0x5A5A)
    b.emit(Opcode.SRLI, rd=4, rs1=1, imm=3)
    b.emit(Opcode.ADD, rd=1, rs1=1, rs2=4)
    b.emit(Opcode.ADDI, rd=2, rs1=2, imm=1)
    b.emit(Opcode.BLT, rs1=2, rs2=3, target="loop")
    b.emit(Opcode.MOVI, rd=5, imm=out)
    b.emit(Opcode.ST, rs2=1, rs1=5, imm=0)
    b.emit(Opcode.HALT)
    return b.build()


@pytest.fixture(scope="session")
def config():
    return default_config()


@pytest.fixture(scope="session")
def rmw_program():
    return build_rmw_loop()


@pytest.fixture(scope="session")
def rmw_trace(rmw_program):
    return execute_program(rmw_program)


@pytest.fixture(scope="session")
def alu_program():
    return build_alu_loop()


@pytest.fixture(scope="session")
def alu_trace(alu_program):
    return execute_program(alu_program)
