"""Behavioural tests for the in-order checker-core timing model."""

from repro.common.config import CheckerConfig
from repro.core.inorder_core import (
    CHECKPOINT_COMPARE_CYCLES,
    InOrderCoreModel,
    TAKEN_BRANCH_PENALTY,
)
from repro.isa.instructions import Opcode
from repro.isa.meta import program_meta
from repro.isa.program import ProgramBuilder
from repro.memory.hierarchy import CheckerICaches


def model(core_id=0):
    cfg = CheckerConfig()
    return InOrderCoreModel(cfg, CheckerICaches(cfg), core_id)


def straightline_steps(ops, reps=1):
    b = ProgramBuilder("t")
    for op, kwargs in ops:
        b.emit(op, **kwargs)
    b.emit(Opcode.HALT)
    p = b.build()
    steps = [(i, False) for i in range(len(ops))] * reps
    return steps, program_meta(p)


class TestScalarPipeline:
    def test_independent_ops_one_per_cycle(self):
        ops = [(Opcode.ADDI, dict(rd=1 + (i % 8), rs1=0, imm=i))
               for i in range(64)]
        steps, metas = straightline_steps(ops)
        # warm the icache with a first run, measure the second
        m = model()
        m.run_segment(steps, metas)
        timing = m.run_segment(steps, metas, start_cycle=10_000)
        body = timing.total_cycles - CHECKPOINT_COMPARE_CYCLES
        assert body <= len(steps) + 8  # ~1 IPC once warm

    def test_dependent_long_latency_interlocks(self):
        dep = [(Opcode.MUL, dict(rd=1, rs1=1, rs2=1)) for _ in range(32)]
        ind = [(Opcode.MUL, dict(rd=1 + (i % 8), rs1=9, rs2=10))
               for i in range(32)]
        dep_steps, dep_metas = straightline_steps(dep)
        ind_steps, ind_metas = straightline_steps(ind)
        m1, m2 = model(), model()
        m1.run_segment(dep_steps, dep_metas)
        m2.run_segment(ind_steps, ind_metas)
        t_dep = m1.run_segment(dep_steps, dep_metas, start_cycle=10_000)
        t_ind = m2.run_segment(ind_steps, ind_metas, start_cycle=10_000)
        # dependent MULs stall ~3 cycles each; independent ones pipeline
        assert t_dep.total_cycles > 1.8 * t_ind.total_cycles

    def test_non_pipelined_div_blocks(self):
        divs = [(Opcode.DIV, dict(rd=1 + (i % 8), rs1=9, rs2=10))
                for i in range(16)]
        steps, metas = straightline_steps(divs)
        m = model()
        m.run_segment(steps, metas)
        t = m.run_segment(steps, metas, start_cycle=10_000)
        body = t.total_cycles - CHECKPOINT_COMPARE_CYCLES
        assert body >= 16 * 12  # divider occupies the pipe


class TestLogReads:
    def test_loads_are_single_cycle(self):
        """Checker loads come from the log, not a cache — a load-heavy
        segment should run at ~1 instruction per cycle."""
        loads = [(Opcode.LD, dict(rd=1 + (i % 8), rs1=9, imm=8 * i))
                 for i in range(64)]
        steps, metas = straightline_steps(loads)
        m = model()
        m.run_segment(steps, metas)
        t = m.run_segment(steps, metas, start_cycle=10_000)
        body = t.total_cycles - CHECKPOINT_COMPARE_CYCLES
        assert body <= len(steps) + 8

    def test_entry_check_cycles_per_memop(self):
        ops = [(Opcode.LD, dict(rd=1, rs1=9, imm=0)),
               (Opcode.ST, dict(rs2=1, rs1=9, imm=8)),
               (Opcode.LDP, dict(rd=2, rd2=3, rs1=9, imm=16))]
        steps, metas = straightline_steps(ops)
        t = model().run_segment(steps, metas)
        # LD -> 1 entry, ST -> 1 entry, LDP -> 2 entries
        assert len(t.entry_check_cycles) == 4
        assert t.entry_check_cycles == sorted(t.entry_check_cycles)

    def test_nondet_produces_entry(self):
        ops = [(Opcode.RDRAND, dict(rd=1))]
        steps, metas = straightline_steps(ops)
        t = model().run_segment(steps, metas)
        assert len(t.entry_check_cycles) == 1


class TestBranches:
    def test_taken_branch_penalty(self):
        b = ProgramBuilder("t")
        b.emit(Opcode.ADDI, rd=1, rs1=1, imm=1)      # pc 0
        b.emit(Opcode.BNE, rs1=1, rs2=0, target=0)   # pc 1
        b.emit(Opcode.HALT)
        metas = program_meta(b.build())
        n = 32
        taken_steps = [(0, False), (1, True)] * n
        untaken_steps = [(0, False), (1, False)] * n
        m1, m2 = model(), model()
        m1.run_segment(taken_steps, metas)
        m2.run_segment(untaken_steps, metas)
        t_taken = m1.run_segment(taken_steps, metas, start_cycle=10_000)
        t_untaken = m2.run_segment(untaken_steps, metas, start_cycle=10_000)
        assert (t_taken.total_cycles
                >= t_untaken.total_cycles + n * TAKEN_BRANCH_PENALTY - 8)


class TestSegmentCost:
    def test_checkpoint_compare_included(self):
        steps, metas = straightline_steps([(Opcode.NOP, {})])
        t = model().run_segment(steps, metas)
        assert t.total_cycles >= CHECKPOINT_COMPARE_CYCLES

    def test_empty_segment(self):
        steps, metas = straightline_steps([(Opcode.NOP, {})])
        t = model().run_segment([], metas)
        assert t.total_cycles == CHECKPOINT_COMPARE_CYCLES
        assert t.entry_check_cycles == []

    def test_absolute_time_domain(self):
        """Runs at a later start_cycle must report *relative* cycles."""
        ops = [(Opcode.ADDI, dict(rd=1, rs1=1, imm=1)) for _ in range(16)]
        steps, metas = straightline_steps(ops)
        m = model()
        first = m.run_segment(steps, metas, start_cycle=0)
        second = m.run_segment(steps, metas, start_cycle=50_000)
        # both totals are segment-relative and of similar magnitude
        assert abs(first.total_cycles - second.total_cycles) < 64
