"""Tests for the functional-unit latency table."""

from repro.core.latencies import NON_PIPELINED, execute_latency
from repro.isa.instructions import Opcode


def test_simple_ops_single_cycle():
    for op in (Opcode.ADD, Opcode.ADDI, Opcode.XOR, Opcode.MOVI, Opcode.NOP):
        assert execute_latency(op) == 1


def test_long_latency_ops():
    assert execute_latency(Opcode.MUL) > 1
    assert execute_latency(Opcode.DIV) > execute_latency(Opcode.MUL)
    assert execute_latency(Opcode.FDIV) > execute_latency(Opcode.FMUL)
    assert execute_latency(Opcode.FSQRT) >= execute_latency(Opcode.FDIV)


def test_non_pipelined_are_dividers():
    assert Opcode.DIV in NON_PIPELINED
    assert Opcode.FDIV in NON_PIPELINED
    assert Opcode.FSQRT in NON_PIPELINED
    assert Opcode.ADD not in NON_PIPELINED


def test_every_opcode_has_a_latency():
    for op in Opcode:
        assert execute_latency(op) >= 1
