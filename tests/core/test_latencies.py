"""Tests for the functional-unit latency table."""

from repro.common.config import default_config
from repro.core.latencies import NON_PIPELINED, execute_latency
from repro.core.ooo_core import OoOCore
from repro.isa.executor import execute_program
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder


def test_simple_ops_single_cycle():
    for op in (Opcode.ADD, Opcode.ADDI, Opcode.XOR, Opcode.MOVI, Opcode.NOP):
        assert execute_latency(op) == 1


def test_long_latency_ops():
    assert execute_latency(Opcode.MUL) > 1
    assert execute_latency(Opcode.DIV) > execute_latency(Opcode.MUL)
    assert execute_latency(Opcode.FDIV) > execute_latency(Opcode.FMUL)
    assert execute_latency(Opcode.FSQRT) >= execute_latency(Opcode.FDIV)


def test_non_pipelined_are_dividers():
    assert Opcode.DIV in NON_PIPELINED
    assert Opcode.FDIV in NON_PIPELINED
    assert Opcode.FSQRT in NON_PIPELINED
    assert Opcode.ADD not in NON_PIPELINED


def test_every_opcode_has_a_latency():
    for op in Opcode:
        assert execute_latency(op) >= 1


class TestLatencyThroughCoreResult:
    """The table is an implementation detail; what the repo actually
    promises is the *timed* effect. Pin it through CoreResult: two loops
    identical except for one opcode must differ in cycles by (at least)
    the per-iteration latency gap times the trip count."""

    @staticmethod
    def _chain_loop(op, iterations=200, depth=6):
        b = ProgramBuilder("lat")
        b.emit(Opcode.MOVI, rd=30, imm=0)
        b.emit(Opcode.MOVI, rd=31, imm=iterations)
        b.emit(Opcode.MOVI, rd=1, imm=3)
        b.label("loop")
        for _ in range(depth):
            b.emit(op, rd=1, rs1=1, rs2=1)
        b.emit(Opcode.ADDI, rd=30, rs1=30, imm=1)
        b.emit(Opcode.BLT, rs1=30, rs2=31, target="loop")
        b.emit(Opcode.HALT)
        return b.build()

    def _cycles(self, op, iterations=200, depth=6):
        trace = execute_program(self._chain_loop(op, iterations, depth))
        return OoOCore(default_config()).run(trace).cycles

    def test_mul_chain_pays_latency_gap(self):
        # marginal cost of 100 extra iterations cancels warm-up and the
        # loop epilogue: in steady state each iteration costs exactly
        # depth * execute_latency(op) on a dependent chain
        depth, extra = 6, 100
        for op in (Opcode.ADD, Opcode.MUL):
            marginal = (self._cycles(op, 200, depth)
                        - self._cycles(op, 100, depth))
            assert marginal == depth * execute_latency(op) * extra

    def test_non_pipelined_div_serialises(self):
        # a dependent DIV chain must cost at least latency * chain length
        iterations, depth = 50, 4
        div = self._cycles(Opcode.DIV, iterations, depth)
        assert div >= execute_latency(Opcode.DIV) * depth * iterations
