"""Behavioural tests for the out-of-order core timing model."""

from repro.common.config import default_config
from repro.core.ooo_core import CommitHook, OoOCore
from repro.isa.executor import execute_program
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder

from tests.conftest import build_alu_loop, build_rmw_loop


def time_program(program, config=None):
    cfg = config or default_config()
    trace = execute_program(program)
    return OoOCore(cfg).run(trace), trace


def straightline(ops):
    """Build a program from a list of (op, kwargs) with a HALT appended."""
    b = ProgramBuilder("t")
    for op, kwargs in ops:
        b.emit(op, **kwargs)
    b.emit(Opcode.HALT)
    return b.build()


def loop_of(body_ops, iterations=300):
    """A counted loop around ``body_ops`` — keeps the I-cache warm so the
    test measures the backend, not cold code misses."""
    b = ProgramBuilder("t")
    b.emit(Opcode.MOVI, rd=30, imm=0)
    b.emit(Opcode.MOVI, rd=31, imm=iterations)
    b.label("loop")
    for op, kwargs in body_ops:
        b.emit(op, **kwargs)
    b.emit(Opcode.ADDI, rd=30, rs1=30, imm=1)
    b.emit(Opcode.BLT, rs1=30, rs2=31, target="loop")
    b.emit(Opcode.HALT)
    return b.build()


class TestILP:
    def test_independent_beats_dependent(self):
        independent = loop_of(
            [(Opcode.ADDI, dict(rd=1 + (i % 8), rs1=0, imm=i))
             for i in range(8)])
        dependent = loop_of(
            [(Opcode.ADDI, dict(rd=1, rs1=1, imm=1)) for i in range(8)])
        ind, _ = time_program(independent)
        dep, _ = time_program(dependent)
        assert ind.cycles < dep.cycles
        assert ind.ipc > 1.5       # 3-wide core on independent work
        assert dep.ipc <= 1.3      # serial 8-deep chain dominates the body

    def test_fetch_width_bounds_ipc(self):
        result, _ = time_program(loop_of(
            [(Opcode.ADDI, dict(rd=1 + (i % 8), rs1=0, imm=i))
             for i in range(9)]))
        assert result.ipc <= 3.0 + 1e-9

    def test_long_latency_chain(self):
        muls = loop_of([(Opcode.MUL, dict(rd=1, rs1=1, rs2=1))
                        for _ in range(6)])
        adds = loop_of([(Opcode.ADD, dict(rd=1, rs1=1, rs2=1))
                        for _ in range(6)])
        mul_result, _ = time_program(muls)
        add_result, _ = time_program(adds)
        # dependent MULs pay the 3-cycle latency each
        assert mul_result.cycles > 1.8 * add_result.cycles


class TestMemoryBehaviour:
    def test_cache_misses_slow_execution(self):
        small = build_rmw_loop(iterations=500, array_words=64)
        # 2^16 words = 512 KiB: misses L1 constantly
        big = build_rmw_loop(iterations=500, array_words=1 << 16)
        fast, _ = time_program(small)
        slow, _ = time_program(big)
        assert slow.cycles > fast.cycles
        assert slow.l1d_misses > fast.l1d_misses

    def test_store_load_forwarding(self):
        b = ProgramBuilder("fwd")
        b.emit(Opcode.MOVI, rd=1, imm=0x100000)
        b.emit(Opcode.MOVI, rd=30, imm=0)
        b.emit(Opcode.MOVI, rd=31, imm=300)
        b.label("loop")
        for i in range(4):
            b.emit(Opcode.ST, rs2=1, rs1=1, imm=i * 8)
            b.emit(Opcode.LD, rd=2, rs1=1, imm=i * 8)
        b.emit(Opcode.ADDI, rd=30, rs1=30, imm=1)
        b.emit(Opcode.BLT, rs1=30, rs2=31, target="loop")
        b.emit(Opcode.HALT)
        result, _ = time_program(b.build())
        # forwarded loads avoid the cache path: high IPC despite ld/st pairs
        assert result.ipc > 0.9


class TestBranches:
    def test_predictable_loop_few_mispredicts(self):
        result, trace = time_program(build_alu_loop(iterations=800))
        branches = sum(1 for d in trace.instructions
                       if d.op is Opcode.BLT)
        assert result.branch_mispredicts < 0.05 * branches

    def test_random_branches_mispredict(self):
        b = ProgramBuilder("rand")
        b.emit(Opcode.MOVI, rd=1, imm=0x9E3779B97F4A7C15)
        b.emit(Opcode.MOVI, rd=2, imm=0)
        b.emit(Opcode.MOVI, rd=3, imm=500)
        b.label("loop")
        # xorshift, branch on low bit: essentially random direction
        b.emit(Opcode.SLLI, rd=4, rs1=1, imm=13)
        b.emit(Opcode.XOR, rd=1, rs1=1, rs2=4)
        b.emit(Opcode.SRLI, rd=4, rs1=1, imm=7)
        b.emit(Opcode.XOR, rd=1, rs1=1, rs2=4)
        b.emit(Opcode.ANDI, rd=5, rs1=1, imm=1)
        b.emit(Opcode.BEQ, rs1=5, rs2=0, target="skip")
        b.emit(Opcode.ADDI, rd=6, rs1=6, imm=1)
        b.label("skip")
        b.emit(Opcode.ADDI, rd=2, rs1=2, imm=1)
        b.emit(Opcode.BLT, rs1=2, rs2=3, target="loop")
        b.emit(Opcode.HALT)
        result, trace = time_program(b.build())
        # the data-dependent BEQ is unpredictable: expect many mispredicts
        assert result.branch_mispredicts > 100


class TestDeterminism:
    def test_same_trace_same_cycles(self, rmw_trace, config):
        a = OoOCore(config).run(rmw_trace)
        b = OoOCore(config).run(rmw_trace)
        assert a.cycles == b.cycles
        assert a.branch_mispredicts == b.branch_mispredicts


class TestCommitHook:
    def test_pre_commit_stall_applies(self, rmw_trace, config):
        class Delay(CommitHook):
            def pre_commit(self, instr, earliest):
                return earliest + 2  # stall every instruction

        base = OoOCore(config).run(rmw_trace)
        stalled = OoOCore(config).run(rmw_trace, hook=Delay())
        # commits are now spaced >= 2 cycles apart (stalls overlap with
        # whatever latency the instruction already had)
        assert stalled.cycles >= 2 * len(rmw_trace.instructions)
        assert stalled.cycles > base.cycles
        assert stalled.commit_stall_cycles > 0

    def test_post_commit_pause_applies(self, rmw_trace, config):
        class Pause(CommitHook):
            def __init__(self):
                self.count = 0

            def post_commit(self, instr, cycle):
                self.count += 1
                return 100 if self.count % 500 == 0 else 0

        base = OoOCore(config).run(rmw_trace)
        paused = OoOCore(config).run(rmw_trace, hook=Pause())
        assert paused.cycles > base.cycles

    def test_finish_sets_system_cycles(self, rmw_trace, config):
        class Hold(CommitHook):
            def finish(self, last):
                return last + 12345

        result = OoOCore(config).run(rmw_trace, hook=Hold())
        assert result.system_cycles == result.cycles + 12345

    def test_no_hook_system_equals_core(self, rmw_trace, config):
        result = OoOCore(config).run(rmw_trace)
        assert result.system_cycles == result.cycles


class TestResultFields:
    def test_counts(self, rmw_trace, config):
        result = OoOCore(config).run(rmw_trace)
        assert result.instructions == len(rmw_trace.instructions)
        assert result.uops >= result.instructions
        assert result.cycles > 0
        assert 0 < result.ipc <= 3.0


class TestResumableRun:
    """``run()`` must equal the decomposed start_state/run_rows/finish_run
    sequence, and a fork mid-run must continue to the same CoreResult —
    everything asserted through CoreResult, never core internals."""

    def test_decomposed_run_equals_run(self, rmw_trace, config):
        whole = OoOCore(config).run(rmw_trace)
        core = OoOCore(config)
        state = core.start_state()
        core.run_rows(rmw_trace, None, state, len(rmw_trace))
        assert core.finish_run(rmw_trace, None, state) == whole

    def test_segmented_run_rows_equals_run(self, rmw_trace, config):
        whole = OoOCore(config).run(rmw_trace)
        core = OoOCore(config)
        state = core.start_state()
        n = len(rmw_trace)
        for stop in (n // 3, 2 * n // 3, n):
            core.run_rows(rmw_trace, None, state, stop)
        assert core.finish_run(rmw_trace, None, state) == whole

    def test_fork_continues_identically(self, rmw_trace, config):
        whole = OoOCore(config).run(rmw_trace)
        core = OoOCore(config)
        state = core.start_state()
        core.run_rows(rmw_trace, None, state, len(rmw_trace) // 2)
        fcore, fstate, fhook = core.fork(state, None)
        # the original continues; so does the fork — same result twice
        core.run_rows(rmw_trace, None, state, len(rmw_trace))
        original = core.finish_run(rmw_trace, None, state)
        fcore.run_rows(rmw_trace, fhook, fstate, len(rmw_trace))
        forked = fcore.finish_run(rmw_trace, fhook, fstate)
        assert original == whole
        assert forked == whole

    def test_recording_columns_consistent(self, rmw_trace, config):
        from repro.core.timing import TimingColumns

        record = TimingColumns()
        core = OoOCore(config)
        state = core.start_state()
        core.run_rows(rmw_trace, None, state, len(rmw_trace), record=record)
        result = core.finish_run(rmw_trace, None, state)
        n = len(rmw_trace)
        assert len(record.issue) == len(record.commit) == n
        assert len(record.branch) == len(record.l1d) == len(record.l2) == n
        # commits are program-ordered and the last one closes the run
        assert all(a <= b for a, b in
                   zip(record.commit, record.commit[1:]))
        assert record.commit[-1] == result.cycles - 1
        # per-row deltas reconcile with the aggregate counters
        assert sum(record.l1d) == result.l1d_misses
        assert sum(record.l2) == result.l2_misses
        assert sum(1 for b in record.branch if b >= 0) == \
            result.branch_lookups
        assert sum(1 for b in record.branch if b == 1) == \
            result.branch_mispredicts


class TestKnownTracePin:
    """Regression pin: the full CoreResult of one known suite trace.

    Any change to the timing model's physics shows up here first;
    an intended change updates these constants deliberately."""

    def test_stream_small_cycle_counts(self):
        from repro.workloads.suite import benchmark_trace

        result = OoOCore(default_config()).run(
            benchmark_trace("stream", "small"))
        assert result.cycles == 14208
        assert result.instructions == 4972
        assert result.uops == 4972
        assert result.system_cycles == 14208
        assert result.branch_lookups == 600
        assert result.branch_mispredicts == 19
        assert result.l1d_misses == 450
        assert result.l2_misses == 14
        assert result.commit_stall_cycles == 0
