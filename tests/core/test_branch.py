"""Tests for the tournament branch predictor."""

from repro.common.config import BranchPredictorConfig
from repro.core.branch import TournamentPredictor


def predictor():
    return TournamentPredictor(BranchPredictorConfig())


class TestDirection:
    def test_learns_always_taken(self):
        p = predictor()
        pc = 0x10
        # needs enough updates for the local history register to saturate
        # (all-ones) so a stable pattern-table entry accumulates training
        for _ in range(32):
            p.update_direction(pc, True)
        assert p.predict_direction(pc)

    def test_learns_always_not_taken(self):
        p = predictor()
        pc = 0x10
        for _ in range(8):
            p.update_direction(pc, False)
        assert not p.predict_direction(pc)

    def test_learns_loop_pattern(self):
        """A loop taken 7 times then exiting once: after warmup, the
        predictor should be right most of the time."""
        p = predictor()
        pc = 0x20
        correct = total = 0
        for _iteration in range(40):
            for k in range(8):
                taken = k != 7
                if p.predict_direction(pc) == taken:
                    correct += 1
                total += 1
                p.update_direction(pc, taken)
        assert correct / total > 0.8

    def test_alternating_pattern_local_history(self):
        p = predictor()
        pc = 0x30
        # warm up on strict alternation
        last = False
        for i in range(64):
            p.update_direction(pc, i % 2 == 0)
        correct = 0
        for i in range(64, 96):
            taken = i % 2 == 0
            if p.predict_direction(pc) == taken:
                correct += 1
            p.update_direction(pc, taken)
        assert correct > 28  # local history nails alternation


class TestTargets:
    def test_btb_miss_then_hit(self):
        p = predictor()
        assert p.predict_target(0x100) is None
        p.update_target(0x100, 0x500)
        assert p.predict_target(0x100) == 0x500

    def test_btb_conflict_eviction(self):
        p = predictor()
        cfg = BranchPredictorConfig()
        p.update_target(0x100, 0x500)
        p.update_target(0x100 + cfg.btb_entries, 0x900)  # same index
        assert p.predict_target(0x100) is None
        assert p.predict_target(0x100 + cfg.btb_entries) == 0x900


class TestRAS:
    def test_push_pop(self):
        p = predictor()
        p.push_return(10)
        p.push_return(20)
        assert p.predict_return() == 20
        assert p.pop_return() == 20
        assert p.pop_return() == 10
        assert p.pop_return() is None

    def test_overflow_drops_oldest(self):
        p = predictor()
        cfg = BranchPredictorConfig()
        for i in range(cfg.ras_entries + 4):
            p.push_return(i)
        # stack holds the most recent ras_entries returns
        for i in reversed(range(4, cfg.ras_entries + 4)):
            assert p.pop_return() == i
        assert p.pop_return() is None


class TestCombinedInterface:
    def test_counts_mispredicts(self):
        p = predictor()
        pc = 0x40
        # cold predictor + taken branch: direction or target mispredict
        assert p.mispredicted(pc, True, False, False, False, True, 0x99)
        # train it thoroughly (history must saturate)
        for _ in range(32):
            p.mispredicted(pc, True, False, False, False, True, 0x99)
        assert not p.mispredicted(pc, True, False, False, False, True, 0x99)

    def test_call_return_pairs_predict(self):
        p = predictor()
        # JAL at 10 -> 100, JALR returns to 11
        p.mispredicted(10, False, True, False, True, True, 100)
        assert not p.mispredicted(100, False, True, True, False, True, 11)

    def test_unmatched_return_mispredicts(self):
        p = predictor()
        assert p.mispredicted(100, False, True, True, False, True, 11)

    def test_jump_btb_learns(self):
        p = predictor()
        assert p.mispredicted(50, False, True, False, False, True, 200)
        assert not p.mispredicted(50, False, True, False, False, True, 200)
