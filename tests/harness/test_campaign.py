"""Tests for the parallel campaign engine and its on-disk run cache."""

import json

import pytest

from repro.common.config import default_config
from repro.detection.faults import FaultSite, TransientFault
from repro.harness.campaign import (
    CACHE_SCHEMA_VERSION,
    CampaignEngine,
    JobSpec,
    RunCache,
    config_fingerprint,
    detection_grid,
    execute_job,
    fault_batch_grid,
    fault_grid,
    recovery_grid,
)


@pytest.fixture(scope="module")
def cfg():
    return default_config()


class TestKeys:
    def test_fingerprint_stable(self, cfg):
        assert config_fingerprint(cfg) == config_fingerprint(default_config())

    def test_fingerprint_tracks_knobs(self, cfg):
        assert (config_fingerprint(cfg)
                != config_fingerprint(cfg.with_checker_freq(500.0)))
        assert (config_fingerprint(cfg)
                != config_fingerprint(cfg.with_log(36 * 1024, None)))

    def test_equal_specs_share_key(self, cfg):
        a = JobSpec("detection", "stream", "small", cfg)
        b = JobSpec("detection", "stream", "small", default_config())
        assert a == b and a.key() == b.key()

    def test_key_separates_dimensions(self, cfg):
        base = JobSpec("detection", "stream", "small", cfg)
        assert base.key() != JobSpec("baseline", "stream", "small", cfg).key()
        assert base.key() != JobSpec("detection", "randacc", "small", cfg).key()
        assert base.key() != JobSpec("detection", "stream", "default", cfg).key()
        assert base.key() != JobSpec(
            "detection", "stream", "small",
            cfg.with_checker_cores(6)).key()

    def test_fault_in_key(self, cfg):
        fault = TransientFault(FaultSite.STORE_VALUE, seq=100, bit=3)
        other = TransientFault(FaultSite.STORE_VALUE, seq=101, bit=3)
        assert (JobSpec("fault", "stream", "small", cfg, fault=fault).key()
                != JobSpec("fault", "stream", "small", cfg, fault=other).key())

    def test_describe_is_json_safe(self, cfg):
        fault = TransientFault(FaultSite.BRANCH, seq=7)
        spec = JobSpec("fault", "stream", "small", cfg, fault=fault,
                       interrupt_seqs=(10, 20))
        json.dumps(spec.describe())  # must not raise


class TestRunCache:
    def test_roundtrip(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert cache.hits == 1 and cache.writes == 1

    def test_miss_on_absent(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get("cd" * 32) is None
        assert cache.misses == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"x": 1})
        cache._path(key).write_text("{ not json")
        assert cache.get(key) is None

    @pytest.mark.parametrize("body", ["null", "[]", "7", '"x"',
                                      '{"key": null}'])
    def test_valid_json_wrong_shape_reads_as_miss(self, tmp_path, body):
        cache = RunCache(tmp_path)
        key = "23" * 32
        cache._path(key).parent.mkdir(parents=True, exist_ok=True)
        cache._path(key).write_text(body)
        assert cache.get(key) is None

    def test_envelope_missing_record_reads_as_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        key = "45" * 32
        cache.put(key, {"x": 1})
        envelope = json.loads(cache._path(key).read_text())
        del envelope["record"]
        cache._path(key).write_text(json.dumps(envelope))
        assert cache.get(key) is None

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        key = "01" * 32
        cache.put(key, {"x": 1})
        envelope = json.loads(cache._path(key).read_text())
        envelope["schema"] = CACHE_SCHEMA_VERSION + 1
        cache._path(key).write_text(json.dumps(envelope))
        assert cache.get(key) is None


class TestGrids:
    def test_fault_grid_deterministic(self):
        a = fault_grid(["stream"], trials=8, scale="small", seed=3)
        b = fault_grid(["stream"], trials=8, scale="small", seed=3)
        assert tuple(a) == tuple(b)
        c = fault_grid(["stream"], trials=8, scale="small", seed=4)
        assert tuple(a) != tuple(c)

    def test_fault_grid_cycles_sites(self):
        grid = fault_grid(["stream"], trials=12, scale="small")
        sites = {job.fault.site for job in grid}
        assert len(sites) == 6

    def test_shards_partition(self):
        grid = fault_grid(["stream"], trials=9, scale="small")
        pieces = [grid.shard(i, 4).jobs for i in range(4)]
        assert sum(len(p) for p in pieces) == len(grid)
        assert set().union(*[set(p) for p in pieces]) == set(grid.jobs)

    def test_shard_bounds(self):
        grid = fault_grid(["stream"], trials=2, scale="small")
        with pytest.raises(ValueError):
            grid.shard(2, 2)

    def test_detection_grid_shape(self, cfg):
        grid = detection_grid(["stream", "bitcount"],
                              [cfg, cfg.with_checker_freq(500.0)])
        kinds = [job.kind for job in grid]
        assert kinds.count("baseline") == 2
        assert kinds.count("detection") == 4

    def test_recovery_grid_fault_window(self):
        grid = recovery_grid(["stream"], trials=4, scale="small")
        for job in grid:
            assert job.kind == "recovery"
            assert job.fault.site is FaultSite.STORE_VALUE

    def test_fault_batch_grid_draws_same_fault_stream(self):
        """Batching must not change which faults a campaign injects:
        the batched grid's cells concatenate to exactly the unbatched
        grid's faults, same seed, fault for fault."""
        grid = fault_grid(["stream", "bitcount"], trials=7, seed=3)
        batched = fault_batch_grid(["stream", "bitcount"], trials=7,
                                   batch_size=3, seed=3)
        assert [f for job in batched for f in job.faults] == \
            [job.fault for job in grid]
        assert all(job.kind == "fault-batch" for job in batched)
        assert [len(job.faults) for job in batched] == [3, 3, 1, 3, 3, 1]

    def test_fault_batch_grid_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch size"):
            fault_batch_grid(["stream"], trials=4, batch_size=0)


class TestExecuteJob:
    def test_unknown_kind(self, cfg):
        with pytest.raises(ValueError, match="unknown job kind"):
            execute_job(JobSpec("mystery", "stream", "small", cfg))

    def test_detection_record_fields(self, cfg):
        record = execute_job(JobSpec("detection", "stream", "small", cfg))
        assert record["record_type"] == "RunRecord"
        assert record["main_cycles"] > 0
        assert record["segments_checked"] > 0
        assert not record["detected"]

    def test_baseline_vs_detection_slowdown(self, cfg):
        base = execute_job(JobSpec("baseline", "stream", "small", cfg))
        det = execute_job(JobSpec("detection", "stream", "small", cfg))
        assert det["main_cycles"] >= base["cycles"]


class TestEngine:
    def test_memoises_within_process(self, cfg):
        engine = CampaignEngine(workers=1)
        spec = JobSpec("detection", "stream", "small", cfg)
        first = engine.run([spec])
        second = engine.run([spec])
        assert first.executed == 1 and second.executed == 0
        assert second.cached == 1
        assert first.records == second.records

    def test_deduplicates_submission(self, cfg):
        engine = CampaignEngine(workers=1)
        spec = JobSpec("baseline", "stream", "small", cfg)
        result = engine.run([spec, spec, spec])
        assert result.executed == 1
        # duplicate slots count as cached: the summary always sums up
        assert result.cached == 2
        assert result.executed + result.cached == len(result)
        assert len(result.records) == 3
        assert result.records[0] == result.records[2]

    def test_campaign_determinism_across_workers_and_cache(self, cfg, tmp_path):
        """The ISSUE's determinism contract: 1 worker, N workers, and a
        warm on-disk cache must produce byte-identical result records."""
        grid = fault_grid(["stream"], trials=8, scale="small", seed=1)

        serial = CampaignEngine(workers=1).run(grid)
        parallel = CampaignEngine(workers=3).run(grid)
        assert serial.records_json() == parallel.records_json()
        assert serial.executed == parallel.executed == len(grid)

        cold = CampaignEngine(workers=2, cache_dir=tmp_path).run(grid)
        assert cold.records_json() == serial.records_json()
        warm_engine = CampaignEngine(workers=2, cache_dir=tmp_path)
        warm = warm_engine.run(grid)
        assert warm.executed == 0
        assert warm.cached == len(grid)
        assert warm.records_json() == serial.records_json()

    def test_cache_persists_across_engines(self, cfg, tmp_path):
        spec = JobSpec("detection", "bitcount", "small", cfg)
        a = CampaignEngine(workers=1, cache_dir=tmp_path).run([spec])
        b = CampaignEngine(workers=1, cache_dir=tmp_path).run([spec])
        assert a.executed == 1 and b.executed == 0
        assert a.records == b.records

    def test_fault_jobs_classify(self, cfg):
        grid = fault_grid(["stream"], trials=6, scale="small", seed=0)
        records = CampaignEngine(workers=1).run(grid).typed_records()
        assert len(records) == 6
        for record in records:
            assert record.outcome in (
                "not_activated", "masked", "detected", "escaped")
            # the paper's coverage argument: nothing escapes
            assert record.outcome != "escaped"
            if record.outcome == "detected":
                assert record.detect_latency_us is not None
                assert record.first_error_segment is not None
