"""Tests for the §VI-D bigger-cores experiment."""

import pytest

from repro.harness.bigger_cores import (
    CORE_TIERS,
    main_core_area_mm2,
    size_tier,
    tier_config,
)
from repro.workloads.suite import benchmark_trace


class TestTierConfigs:
    def test_tiers_validate(self):
        for tier in CORE_TIERS:
            cfg = tier_config(tier, 12)
            assert cfg.main_core.fetch_width == tier[1]

    def test_log_scales_with_checkers(self):
        small = tier_config(CORE_TIERS[0], 6)
        big = tier_config(CORE_TIERS[0], 24)
        # per-checker segment size constant
        assert small.detection.segment_entries(6) == \
            big.detection.segment_entries(24)

    def test_area_quadratic_in_width(self):
        assert main_core_area_mm2(6) == pytest.approx(
            4 * main_core_area_mm2(3))


class TestSizing:
    def test_sizing_meets_budget(self):
        trace = benchmark_trace("stream", "small")
        result = size_tier(trace, CORE_TIERS[0], max_slowdown=1.20)
        assert result.checkers_needed in (6, 12, 18, 24)
        assert result.slowdown <= 1.20

    def test_relative_overhead_shrinks_with_core_size(self):
        trace = benchmark_trace("stream", "small")
        results = [size_tier(trace, tier) for tier in CORE_TIERS]
        assert results[-1].area_overhead <= results[0].area_overhead
