"""Tests for manifest-driven campaign orchestration: atomic leases,
work-stealing workers, crash resumption, and status reporting."""

import json
import threading
from dataclasses import asdict

import pytest

from repro.common.config import config_from_dict, default_config
from repro.common.records import JobLease, record_from_dict, record_to_dict
from repro.detection.faults import FaultSite, TransientFault
from repro.harness.campaign import CampaignEngine, JobSpec, fault_grid, scheme_grid
from repro.harness.manifest import (
    CampaignManifest,
    ManifestError,
    campaign_id,
    spec_from_description,
)
from repro.harness.orchestrator import (
    CampaignWorker,
    collect,
    manifest_status,
    run_campaign,
    summarize_result,
)


class FakeClock:
    """Injectable wall clock so lease expiry needs no real waiting."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def grid():
    return fault_grid(["stream"], trials=8, scale="small", seed=1)


@pytest.fixture
def manifest(tmp_path, grid):
    return CampaignManifest.create(
        tmp_path / "m", grid, kind="fault", scheme="detection",
        scale="small", benchmarks=["stream"], clock=FakeClock())


class TestSpecRoundTrip:
    def test_config_from_dict_roundtrip(self):
        cfg = default_config().with_checker_freq(500.0).with_log(
            36 * 1024, None)
        assert config_from_dict(asdict(cfg)) == cfg

    @pytest.mark.parametrize("spec", [
        JobSpec("baseline", "stream", "small", default_config(),
                scheme="lockstep"),
        JobSpec("detection", "bitcount", "small", default_config(),
                interrupt_seqs=(10, 20)),
        JobSpec("fault", "stream", "small", default_config(),
                fault=TransientFault(FaultSite.LOAD_ADDR, seq=42, bit=7)),
    ])
    def test_spec_survives_json(self, spec):
        desc = json.loads(json.dumps(spec.describe()))
        rebuilt = spec_from_description(desc)
        assert rebuilt == spec
        assert rebuilt.key() == spec.key()


class TestManifestLifecycle:
    def test_create_is_idempotent(self, tmp_path, grid):
        a = CampaignManifest.create(tmp_path / "m", grid)
        b = CampaignManifest.create(tmp_path / "m", grid)
        assert a.header["campaign_id"] == b.header["campaign_id"]
        assert a.keys == b.keys

    def test_create_rejects_different_grid(self, tmp_path, grid):
        CampaignManifest.create(tmp_path / "m", grid)
        other = fault_grid(["stream"], trials=8, scale="small", seed=2)
        with pytest.raises(ManifestError, match="use a fresh directory"):
            CampaignManifest.create(tmp_path / "m", other)

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ManifestError, match="no campaign manifest"):
            CampaignManifest.load(tmp_path / "absent")

    def test_load_reconstructs_specs(self, tmp_path, grid):
        CampaignManifest.create(tmp_path / "m", grid)
        loaded = CampaignManifest.load(tmp_path / "m")
        assert tuple(j.spec for j in loaded.unique) == tuple(grid)
        assert loaded.header["campaign_id"] == campaign_id(
            spec.key() for spec in grid)

    def test_duplicate_slots_collapse_to_unique(self, tmp_path):
        spec = JobSpec("baseline", "stream", "small", default_config())
        manifest = CampaignManifest.create(tmp_path / "m",
                                           [spec, spec, spec])
        assert len(manifest.slots) == 3
        assert len(manifest.unique) == 1


class TestLeases:
    def test_lease_is_exclusive(self, manifest):
        key = manifest.unique[0].key
        assert manifest.try_lease(key, "a", ttl=60) is not None
        assert manifest.try_lease(key, "b", ttl=60) is None

    def test_release_returns_job(self, manifest):
        key = manifest.unique[0].key
        manifest.try_lease(key, "a", ttl=60)
        manifest.release(key)
        assert manifest.try_lease(key, "b", ttl=60) is not None

    def test_expired_lease_returns_to_pending(self, manifest):
        """The crash-recovery contract: a dead worker's leases expire and
        the jobs become leasable (and visible as pending) again."""
        clock = manifest._clock
        key = manifest.unique[0].key
        assert manifest.try_lease(key, "crashed", ttl=60) is not None
        assert manifest.job_state(key) == "leased"
        clock.advance(61)
        assert manifest.job_state(key) == "pending"
        lease = manifest.try_lease(key, "rescuer", ttl=60)
        assert lease is not None
        assert lease.worker == "rescuer"
        assert lease.attempt == 2  # reap increments the attempt count

    def test_lease_envelope_roundtrips(self, manifest):
        key = manifest.unique[0].key
        lease = manifest.try_lease(key, "a", ttl=60)
        on_disk = manifest.read_lease(key)
        assert on_disk == lease
        assert isinstance(
            record_from_dict(record_to_dict(lease)), JobLease)

    def test_lease_batch_respects_limit(self, manifest):
        batch = manifest.lease_batch("a", ttl=60, limit=3)
        assert len(batch) == 3
        rest = manifest.lease_batch("b", ttl=60, limit=100)
        assert len(rest) == len(manifest.unique) - 3
        claimed = {job.key for job, _lease in batch + rest}
        assert len(claimed) == len(manifest.unique)

    def test_overrunning_worker_cannot_release_rescuers_lease(self,
                                                              manifest):
        """A worker that overran its TTL and was reaped must not unlink
        the rescuer's live lease when it finally finishes."""
        clock = manifest._clock
        key = manifest.unique[0].key
        slow = manifest.try_lease(key, "slow", ttl=10)
        clock.advance(11)  # slow overruns; its lease expires
        rescue = manifest.try_lease(key, "rescuer", ttl=60)
        assert rescue is not None
        manifest.release(key, slow)  # slow finishes late, tries to release
        assert manifest.read_lease(key) == rescue  # rescuer unaffected
        assert manifest.job_state(key) == "leased"
        manifest.release(key, rescue)  # the owner can release
        assert manifest.job_state(key) == "pending"

    def test_lease_batch_settled_memo_skips_done_jobs(self, manifest):
        CampaignWorker(manifest, worker_id="w").run(max_jobs=3)
        settled: set[str] = set()
        batch = manifest.lease_batch("b", ttl=60, limit=100,
                                     settled=settled)
        assert len(batch) == len(manifest.unique) - 3
        assert len(settled) == 3  # the done jobs were memoised
        for job, lease in batch:
            manifest.release(job.key, lease)
        # a second scan with the memo never re-reads the settled jobs
        again = manifest.lease_batch("b", ttl=60, limit=100,
                                     settled=settled)
        assert len(again) == len(manifest.unique) - 3


class TestWorkers:
    def test_single_worker_completes_campaign(self, manifest):
        stats = CampaignWorker(manifest, worker_id="w").run()
        assert stats.executed == len(manifest.unique)
        assert stats.failed == 0
        status = manifest_status(manifest)
        assert status["complete"]

    def test_two_concurrent_workers_no_duplicates(self, tmp_path, grid):
        """Acceptance: two workers on one manifest split the campaign
        with zero duplicate executions."""
        manifest = CampaignManifest.create(tmp_path / "m", grid)
        workers = [
            CampaignWorker(CampaignManifest.load(tmp_path / "m"),
                           worker_id=f"w{i}", batch_size=2)
            for i in range(2)
        ]
        results = [None, None]

        def drive(i):
            results[i] = workers[i].run()

        threads = [threading.Thread(target=drive, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = results[0].executed + results[1].executed
        assert total == len(manifest.unique)
        assert results[0].failed == results[1].failed == 0
        assert manifest_status(manifest)["complete"]

    def test_workers_racing_on_cold_store_share_one_envelope(
            self, tmp_path, grid, monkeypatch):
        """Extension of the two-worker acceptance: the shared
        golden-trace store starts cold, both workers race to warm it,
        and exactly one valid binary envelope results — the store's
        atomic publish means the race cannot leave a torn file.  Once
        the store is warm, no worker ever re-runs the clean execution:
        it forks the stored columns instead."""
        import repro.workloads.suite as suite
        from repro.harness.campaign import (
            TRACE_STORE_DIRNAME,
            CampaignEngine,
        )
        from repro.workloads.suite import configure_trace_store
        from repro.workloads.trace_store import TraceStore

        calls: list[str] = []
        real = suite.execute_program

        def counting(program, *args, **kwargs):
            calls.append(program.name)
            return real(program, *args, **kwargs)

        monkeypatch.setattr(suite, "execute_program", counting)
        configure_trace_store(None)  # drop memos from earlier tests
        try:
            manifest = CampaignManifest.create(tmp_path / "m", grid)
            workers = [
                CampaignWorker(CampaignManifest.load(tmp_path / "m"),
                               worker_id=f"w{i}", batch_size=2)
                for i in range(2)
            ]
            threads = [threading.Thread(target=w.run) for w in workers]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert manifest_status(manifest)["complete"]

            store_dir = tmp_path / "m" / TRACE_STORE_DIRNAME
            envelopes = sorted(store_dir.glob("*/*.bin"))
            assert len(envelopes) == 1
            # the surviving envelope is complete and loadable
            store = TraceStore(store_dir)
            program = suite.benchmark_program("stream", "small")
            trace = store.get(store.key("stream", "small", program),
                              program)
            assert trace is not None and len(trace) > 0
            assert store.corrupt == 0
            # the clean execution ran at most once per racing worker
            # (each may miss before the first publish), never once per
            # job — 8 fault jobs, ≤ 2 clean runs
            assert 1 <= len(calls) <= len(workers)

            # warm-store phase: a fresh process-memo plus a tripwire on
            # the clean executor proves every further campaign over the
            # same store forks the stored envelope instead (the grid is
            # built first — sizing its faults may use the warm memo)
            other = fault_grid(["stream"], trials=4, scale="small", seed=2)
            configure_trace_store(None)

            def boom(program, *args, **kwargs):
                raise AssertionError(
                    "clean execution despite a warm golden-trace store")

            monkeypatch.setattr(suite, "execute_program", boom)
            engine = CampaignEngine(cache_dir=tmp_path / "cache2",
                                    trace_store_dir=store_dir)
            result = engine.run(list(other))
            assert len(result.records) == len(other)
        finally:
            configure_trace_store(None)

    def test_worker_max_jobs_releases_leases(self, manifest):
        stats = CampaignWorker(manifest, worker_id="w",
                               batch_size=4).run(max_jobs=3)
        assert stats.executed == 3
        status = manifest_status(manifest)
        assert status["states"]["leased"] == 0  # nothing stranded
        assert status["states"]["pending"] == len(manifest.unique) - 3

    def test_failed_job_gets_envelope_and_leaves_pool(self, manifest,
                                                      monkeypatch):
        import repro.harness.orchestrator as orch

        def boom(spec):
            raise RuntimeError("injected executor crash")

        monkeypatch.setattr(orch, "execute_job", boom)
        stats = CampaignWorker(manifest, worker_id="w").run(max_jobs=2)
        assert stats.failed == 2
        status = manifest_status(manifest)
        assert status["states"]["failed"] == 2
        assert len(status["failures"]) == 2
        assert "injected executor crash" in status["failures"][0]["error"]
        # failed jobs are not leasable until explicitly re-queued
        monkeypatch.undo()
        again = CampaignWorker(manifest, worker_id="w2").run()
        assert again.executed == len(manifest.unique) - 2
        assert manifest.clear_failures() == 2
        mop_up = CampaignWorker(manifest, worker_id="w3").run()
        assert mop_up.executed == 2
        assert manifest_status(manifest)["complete"]

    def test_collect_excludes_failed_jobs(self, manifest, monkeypatch):
        """The merge pass must report failed jobs via status, not crash
        by re-executing their deterministic exception in the engine."""
        import repro.harness.orchestrator as orch

        real = orch.execute_job
        poisoned_key = manifest.unique[0].key

        def flaky(spec):
            if spec.key() == poisoned_key:
                raise RuntimeError("deterministic failure")
            return real(spec)

        monkeypatch.setattr(orch, "execute_job", flaky)
        CampaignWorker(manifest, worker_id="w").run()
        status = manifest_status(manifest)
        assert status["states"]["failed"] == 1
        merged = collect(manifest)  # must not raise
        assert len(merged) == len(manifest.unique) - 1
        assert merged.executed == 0  # everything else replays from cache


class TestResumption:
    def test_crash_resume_is_byte_identical_to_serial(self, tmp_path, grid):
        """Acceptance: a campaign interrupted mid-flight (leases left
        behind by a crashed worker) resumes after lease expiry and its
        merged records are byte-identical to a single-process run."""
        serial = CampaignEngine(workers=1).run(grid)

        clock = FakeClock()
        manifest = CampaignManifest.create(tmp_path / "m", grid, clock=clock)
        # worker executes 3 jobs properly...
        CampaignWorker(manifest, worker_id="early").run(max_jobs=3)
        # ...then "crashes" holding two leases it never releases
        crashed = manifest.lease_batch("crashed", ttl=120, limit=2)
        assert len(crashed) == 2
        before = manifest_status(manifest)
        assert before["states"] == {
            "pending": len(manifest.unique) - 5, "leased": 2,
            "done": 3, "failed": 0}

        # a rescuer joining immediately cannot touch the leased jobs
        partial = CampaignWorker(manifest, worker_id="rescue-1").run()
        assert partial.executed == len(manifest.unique) - 5
        assert not manifest_status(manifest)["complete"]

        clock.advance(121)  # the crashed worker's leases expire
        final = CampaignWorker(manifest, worker_id="rescue-2").run()
        assert final.executed == 2
        status = manifest_status(manifest)
        assert status["complete"]

        merged = collect(manifest)
        assert merged.executed == 0  # pure cache replay
        assert merged.records_json() == serial.records_json()

    def test_finished_manifest_is_pure_replay(self, tmp_path, grid):
        manifest = CampaignManifest.create(tmp_path / "m", grid)
        result, _stats = run_campaign(manifest)
        assert manifest_status(manifest)["complete"]
        again, stats = run_campaign(manifest)
        assert stats.executed == 0
        assert again.records_json() == result.records_json()


class TestBulkJobStates:
    """The single-pass job_states scan must agree with the per-key
    job_state derivation in every state, including lease expiry."""

    def test_matches_per_key_states_across_all_states(self, manifest):
        keys = [job.key for job in manifest.unique]
        clock = manifest._clock
        # done: execute one job for real
        CampaignWorker(manifest, worker_id="w").run(max_jobs=1)
        # failed: a failure envelope
        manifest.record_failure(keys[1], "w", "boom")
        # leased (live) and leased (expired)
        assert manifest.try_lease(keys[2], "live", ttl=600) is not None
        assert manifest.try_lease(keys[3], "dead", ttl=30) is not None
        clock.advance(60)  # dead's lease expires; live's survives
        bulk = manifest.job_states()
        assert bulk == {k: manifest.job_state(k) for k in keys}
        assert sorted(bulk.values()).count("done") == 1
        assert bulk[keys[1]] == "failed"
        assert bulk[keys[2]] == "leased"
        assert bulk[keys[3]] == "pending"  # expired lease reads pending

    def test_ignores_temp_and_foreign_files(self, manifest):
        key = manifest.unique[0].key
        CampaignWorker(manifest, worker_id="w").run(max_jobs=1)
        done_key = next(k for k, s in manifest.job_states().items()
                        if s == "done")
        bucket = manifest.cache.root / done_key[:2]
        # crash-stranded temp files and the nested trace store must not
        # register as done/failed entries
        (bucket / f"{done_key}.json.tmp.999").write_text("{}")
        (manifest.root / "failed").mkdir(exist_ok=True)
        (manifest.root / "failed" / "junk.json.reap.1").write_text("{}")
        states = manifest.job_states()
        assert states[done_key] == "done"
        assert states[key] in ("done", "pending")
        assert set(states) == {job.key for job in manifest.unique}

    def test_empty_manifest_dirs_read_all_pending(self, tmp_path, grid):
        manifest = CampaignManifest.create(tmp_path / "m", grid,
                                           clock=FakeClock())
        assert set(manifest.job_states().values()) == {"pending"}


class TestCacheEtags:
    def test_etag_is_schema_qualified_strong_validator(self):
        from repro.harness.campaign import CACHE_SCHEMA_VERSION, RunCache
        etag = RunCache.etag("ab" * 32)
        assert etag == f'"{CACHE_SCHEMA_VERSION}-{"ab" * 32}"'
        assert etag.startswith('"') and etag.endswith('"')

    def test_read_envelope_returns_exact_disk_bytes(self, manifest):
        CampaignWorker(manifest, worker_id="w").run(max_jobs=1)
        key = next(k for k, s in manifest.job_states().items()
                   if s == "done")
        data = manifest.cache.read_envelope(key)
        path = manifest.cache.root / key[:2] / f"{key}.json"
        assert data == path.read_bytes()
        envelope = json.loads(data)
        assert envelope["key"] == key and "record" in envelope

    def test_read_envelope_rejects_missing_and_corrupt(self, manifest):
        key = manifest.unique[0].key
        assert manifest.cache.read_envelope(key) is None
        path = manifest.cache.root / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert manifest.cache.read_envelope(key) is None
        path.write_text(json.dumps({"key": "other", "schema": 0,
                                    "record": {}}))
        assert manifest.cache.read_envelope(key) is None


class TestStatus:
    def test_status_json_schema_roundtrips(self, manifest):
        CampaignWorker(manifest, worker_id="w").run(max_jobs=2)
        status = manifest_status(manifest)
        assert json.loads(json.dumps(status)) == status
        for field in ("campaign_id", "kind", "scheme", "scale",
                      "benchmarks", "slots", "jobs", "states",
                      "by_scheme", "by_kind", "failures", "complete"):
            assert field in status
        assert set(status["states"]) == {
            "pending", "leased", "done", "failed"}
        assert sum(status["states"].values()) == status["jobs"]

    def test_status_per_scheme_progress(self, tmp_path):
        grid = scheme_grid(["stream"], ["lockstep", "rmt"], scale="small")
        manifest = CampaignManifest.create(tmp_path / "m", grid,
                                           kind="baseline")
        CampaignWorker(manifest, worker_id="w").run(max_jobs=1)
        status = manifest_status(manifest)
        assert set(status["by_scheme"]) == {"lockstep", "rmt"}
        done = sum(g["done"] for g in status["by_scheme"].values())
        assert done == 1


class TestSummaries:
    def test_fault_summary_single_pass_matches_fields(self, tmp_path, grid):
        manifest = CampaignManifest.create(tmp_path / "m", grid)
        result, _stats = run_campaign(manifest)
        agg = summarize_result("fault", result, ["stream"])
        s = agg.summary
        assert s["jobs"] == len(grid)
        assert sum(s["outcomes"].values()) == len(grid)
        assert s["detected"] <= s["activated"]
        assert agg.escaped == s["outcomes"].get("escaped", 0)

    def test_timing_summary_has_slowdown(self, tmp_path):
        grid = scheme_grid(["stream"], ["lockstep"], scale="small")
        result = CampaignEngine(workers=1).run(grid)
        agg = summarize_result("baseline", result, ["stream"])
        assert agg.summary["mean_slowdown"] is not None
        assert agg.escaped == 0
