"""Tests for bounded automatic re-lease of failed jobs (--max-attempts)."""

import pytest

from repro.harness.campaign import fault_grid
from repro.harness.manifest import CampaignManifest
from repro.harness.orchestrator import CampaignWorker, manifest_status


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def manifest(tmp_path):
    grid = fault_grid(["stream"], trials=6, scale="small", seed=3)
    return CampaignManifest.create(
        tmp_path / "m", grid, kind="fault", scheme="detection",
        scale="small", benchmarks=["stream"], clock=FakeClock())


class TestTryLeaseRetry:
    def test_failed_job_not_leasable_by_default(self, manifest):
        key = manifest.unique[0].key
        manifest.record_failure(key, "w0", "boom", attempt=1)
        assert manifest.try_lease(key, "w1") is None
        assert manifest.job_state(key) == "failed"

    def test_retry_lease_consumes_envelope_and_bumps_attempt(self, manifest):
        key = manifest.unique[0].key
        manifest.record_failure(key, "w0", "boom", attempt=1)
        lease = manifest.try_lease(key, "w1", max_attempts=2)
        assert lease is not None
        assert lease.attempt == 2
        assert not manifest.is_failed(key)   # envelope consumed
        assert manifest.job_state(key) == "leased"

    def test_attempt_cap_is_terminal(self, manifest):
        key = manifest.unique[0].key
        manifest.record_failure(key, "w0", "boom", attempt=2)
        assert manifest.try_lease(key, "w1", max_attempts=2) is None
        assert manifest.is_failed(key)

    def test_lease_batch_requeues_only_within_budget(self, manifest):
        terminal = manifest.unique[0].key
        retryable = manifest.unique[1].key
        manifest.record_failure(terminal, "w0", "hard", attempt=3)
        manifest.record_failure(retryable, "w0", "flaky", attempt=1)
        settled: set[str] = set()
        batch = manifest.lease_batch("w1", limit=len(manifest.unique),
                                     settled=settled, max_attempts=3)
        keys = {job.key for job, _lease in batch}
        assert retryable in keys
        assert terminal not in keys
        assert terminal in settled


class TestWorkerRetry:
    def test_flaky_job_recovers_within_budget(self, manifest, monkeypatch):
        """A job that fails once then succeeds completes the campaign
        with max_attempts=2, and its failure envelope is gone."""
        import repro.harness.orchestrator as orch

        real = orch.execute_job
        flaky_key = manifest.unique[0].key
        calls = {"n": 0}

        def flaky(spec):
            if spec.key() == flaky_key:
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("transient executor crash")
            return real(spec)

        monkeypatch.setattr(orch, "execute_job", flaky)
        stats = CampaignWorker(manifest, worker_id="w",
                               max_attempts=2).run()
        assert calls["n"] == 2
        assert stats.failed == 1          # the first attempt
        assert stats.executed == len(manifest.unique)
        status = manifest_status(manifest)
        assert status["complete"]
        assert status["states"]["failed"] == 0
        assert status["failures"] == []

    def test_persistent_failure_stops_at_cap(self, manifest, monkeypatch):
        import repro.harness.orchestrator as orch

        real = orch.execute_job
        doomed_key = manifest.unique[0].key
        calls = {"n": 0}

        def doomed(spec):
            if spec.key() == doomed_key:
                calls["n"] += 1
                raise RuntimeError("permanent executor crash")
            return real(spec)

        monkeypatch.setattr(orch, "execute_job", doomed)
        stats = CampaignWorker(manifest, worker_id="w",
                               max_attempts=3).run()
        assert calls["n"] == 3            # exactly the attempt budget
        assert stats.failed == 3
        status = manifest_status(manifest)
        assert status["states"]["failed"] == 1
        # the surviving envelope carries the final attempt count
        failure = manifest.read_failure(doomed_key)
        assert failure is not None and failure.attempt == 3
        # a second worker at the same cap leases nothing more
        again = CampaignWorker(manifest, worker_id="w2",
                               max_attempts=3).run()
        assert again.executed == 0 and again.failed == 0

    def test_default_preserves_manual_retry_flow(self, manifest,
                                                 monkeypatch):
        """max_attempts=1 (the default) keeps today's behaviour: one
        failure, sticky until an operator clears it."""
        import repro.harness.orchestrator as orch

        def boom(spec):
            raise RuntimeError("crash")

        monkeypatch.setattr(orch, "execute_job", boom)
        stats = CampaignWorker(manifest, worker_id="w").run(max_jobs=1)
        assert stats.failed == 1
        monkeypatch.undo()
        # still failed: not retried automatically
        rerun = CampaignWorker(manifest, worker_id="w2").run()
        assert manifest_status(manifest)["states"]["failed"] == 1
        assert rerun.executed == len(manifest.unique) - 1
        # manual re-queue path still works
        assert manifest.clear_failures() == 1
        CampaignWorker(manifest, worker_id="w3").run()
        assert manifest_status(manifest)["complete"]


class TestCli:
    def test_worker_parser_accepts_max_attempts(self):
        from repro.__main__ import make_parser
        args = make_parser().parse_args(
            ["campaign-worker", "--manifest", "d", "--max-attempts", "4"])
        assert args.max_attempts == 4

    def test_worker_parser_default_is_one(self):
        from repro.__main__ import make_parser
        args = make_parser().parse_args(
            ["campaign-worker", "--manifest", "d"])
        assert args.max_attempts == 1
