"""Tests for the figure entry points (small scale, structure + sanity)."""

import pytest

from repro.harness.experiment import ExperimentRunner
from repro.harness.figures import (
    fig1_comparison,
    fig7,
    fig10,
    sec6b_area,
    sec6c_power,
    table1,
    table2,
)
from repro.workloads.suite import BENCHMARK_ORDER


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="small")


class TestTables:
    def test_table1(self):
        text, rows = table1()
        assert "Table I" in text
        assert len(rows) >= 10

    def test_table2(self):
        text, rows = table2()
        assert "Table II" in text
        assert len(rows) == 9


class TestFigures:
    def test_fig7_structure(self, runner):
        text, data = fig7(runner)
        assert set(data) == set(BENCHMARK_ORDER)
        assert "geomean" in text
        assert all(v >= 0.999 for v in data.values())

    def test_fig10_structure(self, runner):
        text, data = fig10(runner)
        assert set(data) == set(BENCHMARK_ORDER)
        assert all(len(v) == 4 for v in data.values())
        # checkpoint-only cost shrinks with bigger logs
        for series in data.values():
            assert series[0] >= series[-1] - 1e-9

    def test_fig1_structure(self, runner):
        text, data = fig1_comparison(runner, benchmarks=["stream"])
        assert set(data) == {"lockstep", "rmt", "ours"}
        assert data["lockstep"]["area"] == 1.0
        # the registry sweep measures detection latency per scheme:
        # lockstep in cycles, the paper scheme orders of magnitude later
        assert 0 < data["lockstep"]["detect_latency_ns"] \
            < data["ours"]["detect_latency_ns"]

    def test_fig1_includes_unprotected_when_asked(self, runner):
        text, data = fig1_comparison(
            runner, benchmarks=["stream"],
            schemes=("unprotected", "lockstep", "rmt", "detection"))
        assert set(data) == {"unprotected", "lockstep", "rmt", "ours"}
        assert data["unprotected"]["area"] == 0.0
        assert data["unprotected"]["detect_latency_ns"] is None

    def test_area_power_sections(self):
        a_text, a_data = sec6b_area()
        p_text, p_data = sec6c_power()
        assert 0.2 < a_data["overhead_vs_core"] < 0.3
        assert 0.1 < p_data["overhead"] < 0.22
