"""Tests for the experiment runner and caching."""

import pytest

from repro.harness.experiment import ExperimentRunner, bench_scale


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="small")


class TestCaching:
    def test_baseline_cached(self, runner):
        a = runner.baseline("stream")
        b = runner.baseline("stream")
        assert a is b

    def test_detection_cached_per_config(self, runner):
        cfg = runner.default_cfg
        a = runner.detection("stream", cfg)
        b = runner.detection("stream", cfg)
        assert a is b

    def test_equal_configs_share_cache(self, runner):
        a = runner.detection("stream",
                             runner.default_cfg.with_checker_freq(500.0))
        b = runner.detection("stream",
                             runner.default_cfg.with_checker_freq(500.0))
        assert a is b

    def test_different_configs_distinct(self, runner):
        a = runner.detection("stream",
                             runner.default_cfg.with_checker_freq(500.0))
        b = runner.detection("stream",
                             runner.default_cfg.with_checker_freq(250.0))
        assert a is not b


class TestSummaries:
    def test_summary_fields(self, runner):
        s = runner.summary("stream")
        assert s.benchmark == "stream"
        assert s.slowdown >= 1.0
        assert s.base_cycles > 0
        assert s.det_cycles >= s.base_cycles

    def test_sweep_shape(self, runner):
        configs = [runner.default_cfg,
                   runner.default_cfg.with_checker_freq(500.0)]
        sweep = runner.sweep(configs, benchmarks=["stream", "bitcount"])
        assert set(sweep) == {"stream", "bitcount"}
        assert all(len(rows) == 2 for rows in sweep.values())


class TestScale:
    def test_env_var_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert bench_scale() == "small"
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert bench_scale() == "default"


class TestDefaultRunner:
    def test_shared_across_calls(self, monkeypatch):
        import repro.harness.experiment as exp
        monkeypatch.setattr(exp, "_DEFAULT_RUNNER", None)
        assert exp.default_runner() is exp.default_runner()

    def test_invalidated_on_scale_change(self, monkeypatch):
        import repro.harness.experiment as exp
        monkeypatch.setattr(exp, "_DEFAULT_RUNNER", None)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        small = exp.default_runner()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "default")
        assert exp.default_runner() is not small

    def test_invalidated_on_default_config_change(self, monkeypatch):
        """Satellite regression: a stale shared runner must not keep
        serving runs timed under a configuration that is no longer the
        default."""
        import repro.harness.experiment as exp
        monkeypatch.setattr(exp, "_DEFAULT_RUNNER", None)
        before = exp.default_runner()
        changed = before.default_cfg.with_checker_cores(6)
        monkeypatch.setattr(exp, "default_config", lambda: changed)
        after = exp.default_runner()
        assert after is not before
        assert after.default_cfg == changed
        # and it is sticky: same config -> same runner again
        assert exp.default_runner() is after


class TestEngineIntegration:
    def test_sweep_batches_through_engine(self, runner):
        cfg = runner.default_cfg.with_checker_freq(250.0)
        sweep = runner.sweep([cfg], benchmarks=["stream"])
        # the sweep's runs landed in the engine memo: re-querying the
        # same cell executes nothing new
        result = runner.engine.run(
            [runner._detection_spec("stream", cfg)])
        assert result.executed == 0
        assert sweep["stream"][0].slowdown >= 1.0

    def test_disk_cache_shared_between_runners(self, tmp_path):
        from repro.harness.experiment import ExperimentRunner
        first = ExperimentRunner(scale="small", cache_dir=tmp_path)
        warm = first.summary("stream")
        second = ExperimentRunner(scale="small", cache_dir=tmp_path)
        assert second.summary("stream") == warm
        assert second.engine.cache.hits > 0

    def test_detection_view_report_fields(self, runner):
        det = runner.detection("stream")
        assert det.report.segments_checked > 0
        assert sum(det.report.closes_by_reason.values()) \
            == det.report.segments_checked
        assert len(det.report.delays_ns) == det.record.entries_checked
