"""Tests for the experiment runner and caching."""

import pytest

from repro.common.config import default_config
from repro.harness.experiment import ExperimentRunner, bench_scale


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="small")


class TestCaching:
    def test_baseline_cached(self, runner):
        a = runner.baseline("stream")
        b = runner.baseline("stream")
        assert a is b

    def test_detection_cached_per_config(self, runner):
        cfg = runner.default_cfg
        a = runner.detection("stream", cfg)
        b = runner.detection("stream", cfg)
        assert a is b

    def test_equal_configs_share_cache(self, runner):
        a = runner.detection("stream",
                             runner.default_cfg.with_checker_freq(500.0))
        b = runner.detection("stream",
                             runner.default_cfg.with_checker_freq(500.0))
        assert a is b

    def test_different_configs_distinct(self, runner):
        a = runner.detection("stream",
                             runner.default_cfg.with_checker_freq(500.0))
        b = runner.detection("stream",
                             runner.default_cfg.with_checker_freq(250.0))
        assert a is not b


class TestSummaries:
    def test_summary_fields(self, runner):
        s = runner.summary("stream")
        assert s.benchmark == "stream"
        assert s.slowdown >= 1.0
        assert s.base_cycles > 0
        assert s.det_cycles >= s.base_cycles

    def test_sweep_shape(self, runner):
        configs = [runner.default_cfg,
                   runner.default_cfg.with_checker_freq(500.0)]
        sweep = runner.sweep(configs, benchmarks=["stream", "bitcount"])
        assert set(sweep) == {"stream", "bitcount"}
        assert all(len(rows) == 2 for rows in sweep.values())


class TestScale:
    def test_env_var_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert bench_scale() == "small"
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert bench_scale() == "default"
