"""Tests for the command-line interface."""

import pytest

from repro.__main__ import FIGURE_COMMANDS, main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_figures_names(self):
        args = make_parser().parse_args(["figures", "table1", "area"])
        assert args.names == ["table1", "area"]

    def test_bench_scale_choices(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["bench", "stream", "--scale", "huge"])

    def test_campaign_kind_choices(self):
        for kind in ("baseline", "detection", "fault", "recovery"):
            args = make_parser().parse_args(["campaign", "--kind", kind])
            assert args.kind == kind
        with pytest.raises(SystemExit):
            make_parser().parse_args(["campaign", "--kind", "mystery"])

    def test_campaign_scheme_choices(self):
        for scheme in ("unprotected", "lockstep", "rmt", "detection"):
            args = make_parser().parse_args(
                ["campaign", "--scheme", scheme])
            assert args.scheme == scheme
        with pytest.raises(SystemExit):
            make_parser().parse_args(["campaign", "--scheme", "mystery"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "randacc" in out and "facesim" in out

    def test_figures_cheap_subset(self, capsys):
        assert main(["figures", "table1", "table2", "area", "power"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "area overhead" in out.lower() or "VI-B" in out

    def test_figures_unknown_name(self, capsys):
        assert main(["figures", "nonsense"]) == 2

    def test_bench(self, capsys):
        assert main(["bench", "stream", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out

    def test_campaign(self, capsys):
        assert main(["campaign", "--trials", "6", "--benchmark",
                     "bodytrack"]) == 0
        out = capsys.readouterr().out
        assert "activated" in out

    def test_list_schemes(self, capsys):
        """Acceptance: all four registered schemes enumerate with flags."""
        assert main(["list", "--schemes"]) == 0
        out = capsys.readouterr().out
        for name in ("unprotected", "lockstep", "rmt", "detection"):
            assert name in out
        assert "hard faults" in out and "recovery" in out

    def test_campaign_baseline_kind_any_scheme(self, capsys):
        assert main(["campaign", "--kind", "baseline", "--scheme",
                     "lockstep", "--benchmark", "stream"]) == 0
        out = capsys.readouterr().out
        assert "baseline campaign [lockstep]" in out
        assert "mean slowdown" in out

    def test_campaign_fault_cross_scheme(self, capsys):
        assert main(["campaign", "--kind", "fault", "--scheme", "rmt",
                     "--benchmark", "stream", "--trials", "6"]) == 0
        out = capsys.readouterr().out
        assert "fault campaign [rmt]" in out and "activated" in out

    def test_campaign_recovery_rejects_non_recovery_scheme(self, capsys):
        assert main(["campaign", "--kind", "recovery", "--scheme", "rmt",
                     "--benchmark", "stream", "--trials", "2"]) == 2
        err = capsys.readouterr().err
        assert "does not support recovery" in err

    def test_campaign_json_flags_escapes_in_exit_code(self, capsys):
        """--json must report SDC escapes the same way plain mode does:
        a nonzero exit code, not just a field in the payload."""
        import json
        argv = ["campaign", "--kind", "fault", "--scheme", "unprotected",
                "--benchmark", "stream", "--trials", "6", "--json"]
        code = main(argv)
        payload = json.loads(capsys.readouterr().out)
        escaped = payload["summary"]["outcomes"].get("escaped", 0)
        assert escaped > 0, "expected the unprotected control to leak SDCs"
        assert code == 1
        assert main(argv[:-1]) == 1  # plain mode agrees

    def test_suite(self, capsys):
        assert main(["suite", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "randacc" in out and "slowdown" in out


class TestManifestCommands:
    def test_campaign_manifest_rejects_shard(self, capsys, tmp_path):
        assert main(["campaign", "--manifest", str(tmp_path / "m"),
                     "--shard", "0/2"]) == 2
        assert "static fan-out" in capsys.readouterr().err

    def test_campaign_manifest_rejects_cache_dir(self, capsys, tmp_path):
        """--cache-dir must be rejected, not silently ignored: the
        manifest always uses its own <dir>/cache."""
        assert main(["campaign", "--manifest", str(tmp_path / "m"),
                     "--cache-dir", str(tmp_path / "c")]) == 2
        assert "silently ignored" in capsys.readouterr().err

    def test_materialize_only_requires_manifest(self, capsys):
        assert main(["campaign", "--materialize-only"]) == 2
        assert "needs --manifest" in capsys.readouterr().err

    def test_campaign_manifest_end_to_end(self, capsys, tmp_path):
        """campaign --manifest materialises, executes, and resumes as a
        pure cache replay; campaign-status and campaign-worker agree."""
        import json
        argv = ["campaign", "--benchmark", "stream", "--trials", "6",
                "--manifest", str(tmp_path / "m"), "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["manifest"]["complete"]
        assert first["manifest"]["executed_this_run"] == 6

        # identical re-run: nothing executes, records identical
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["manifest"]["executed_this_run"] == 0
        assert second["records"] == first["records"]

        # a late worker finds nothing leasable
        assert main(["campaign-worker", "--manifest", str(tmp_path / "m"),
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["executed"] == 0 and stats["failed"] == 0

        assert main(["campaign-status", "--manifest", str(tmp_path / "m"),
                     "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"] and status["states"]["done"] == 6
        assert status["campaign_id"] == first["manifest"]["campaign_id"]

    def test_worker_and_status_need_existing_manifest(self, capsys,
                                                      tmp_path):
        missing = str(tmp_path / "nothing")
        assert main(["campaign-worker", "--manifest", missing]) == 2
        assert "no campaign manifest" in capsys.readouterr().err
        assert main(["campaign-status", "--manifest", missing]) == 2
        assert "no campaign manifest" in capsys.readouterr().err

    @pytest.mark.parametrize("content", [
        "{not json",                       # unparseable
        "[1, 2, 3]",                       # wrong top-level type
        '{"manifest_schema": 1, "schema": 5, "jobs": "oops"}',
    ])
    def test_malformed_manifest_is_one_line_error(self, capsys, tmp_path,
                                                  content):
        """A corrupt manifest.json must produce a clear one-line error
        on stderr and exit 2 — never a traceback."""
        root = tmp_path / "m"
        root.mkdir()
        (root / "manifest.json").write_text(content)
        for verb in ("campaign-worker", "campaign-status"):
            assert main([verb, "--manifest", str(root)]) == 2
            err = capsys.readouterr().err
            assert "manifest" in err
            assert "Traceback" not in err
            # one line of diagnosis, pointing at the bad file
            assert len(err.strip().splitlines()) == 1
            assert str(root) in err

    def test_status_watch_refreshes_until_settled(self, capsys, tmp_path,
                                                  monkeypatch):
        import time as time_mod

        assert main(["campaign", "--benchmark", "stream", "--trials", "4",
                     "--manifest", str(tmp_path / "m")]) == 0
        capsys.readouterr()
        sleeps: list[float] = []
        monkeypatch.setattr(time_mod, "sleep",
                            lambda s: sleeps.append(s))
        # campaign already complete: --watch prints once and exits
        # without sleeping
        assert main(["campaign-status", "--manifest", str(tmp_path / "m"),
                     "--watch", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and not sleeps

    def test_status_watch_loops_while_in_progress(self, capsys, tmp_path,
                                                  monkeypatch):
        import time as time_mod

        assert main(["campaign", "--benchmark", "stream", "--trials", "4",
                     "--manifest", str(tmp_path / "m"),
                     "--materialize-only"]) == 0
        capsys.readouterr()

        # complete the campaign from inside the (patched) sleep: the
        # watch loop must observe the transition and terminate
        def finish(_seconds: float) -> None:
            from repro.harness.manifest import CampaignManifest
            from repro.harness.orchestrator import CampaignWorker
            manifest = CampaignManifest.load(tmp_path / "m")
            CampaignWorker(manifest, worker_id="bg").run()

        monkeypatch.setattr(time_mod, "sleep", finish)
        assert main(["campaign-status", "--manifest", str(tmp_path / "m"),
                     "--watch", "1"]) == 0
        out = capsys.readouterr().out
        assert "in progress" in out       # first refresh: nothing done
        assert "complete" in out          # last refresh: settled
        assert "refreshing every 1s" in out

    def test_status_watch_rejects_nonpositive(self, capsys, tmp_path):
        assert main(["campaign-status", "--manifest", str(tmp_path),
                     "--watch", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_status_human_output(self, capsys, tmp_path):
        assert main(["campaign", "--benchmark", "stream", "--trials", "6",
                     "--manifest", str(tmp_path / "m")]) == 0
        capsys.readouterr()
        assert main(["campaign-status", "--manifest",
                     str(tmp_path / "m")]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "scheme detection" in out

    def test_figure_registry_complete(self):
        for name in ("table1", "table2", "fig1", "fig7", "fig8", "fig9",
                     "fig10", "fig11", "fig12", "fig13", "area", "power"):
            assert name in FIGURE_COMMANDS
