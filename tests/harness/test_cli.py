"""Tests for the command-line interface."""

import pytest

from repro.__main__ import FIGURE_COMMANDS, main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_figures_names(self):
        args = make_parser().parse_args(["figures", "table1", "area"])
        assert args.names == ["table1", "area"]

    def test_bench_scale_choices(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["bench", "stream", "--scale", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "randacc" in out and "facesim" in out

    def test_figures_cheap_subset(self, capsys):
        assert main(["figures", "table1", "table2", "area", "power"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "area overhead" in out.lower() or "VI-B" in out

    def test_figures_unknown_name(self, capsys):
        assert main(["figures", "nonsense"]) == 2

    def test_bench(self, capsys):
        assert main(["bench", "stream", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out

    def test_campaign(self, capsys):
        assert main(["campaign", "--trials", "6", "--benchmark",
                     "bodytrack"]) == 0
        out = capsys.readouterr().out
        assert "activated" in out

    def test_suite(self, capsys):
        assert main(["suite", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "randacc" in out and "slowdown" in out

    def test_figure_registry_complete(self):
        for name in ("table1", "table2", "fig1", "fig7", "fig8", "fig9",
                     "fig10", "fig11", "fig12", "fig13", "area", "power"):
            assert name in FIGURE_COMMANDS
